//! Quickstart: compile a FIRRTL design and simulate it with GSIM.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gsim::{Compiler, Preset};

const GCD: &str = r#"
circuit Gcd :
  module Gcd :
    input clock : Clock
    input reset : UInt<1>
    input start : UInt<1>
    input a : UInt<16>
    input b : UInt<16>
    output busy : UInt<1>
    output result : UInt<16>

    reg x : UInt<16>, clock with : (reset => (reset, UInt<16>(0)))
    reg y : UInt<16>, clock with : (reset => (reset, UInt<16>(0)))
    reg running : UInt<1>, clock with : (reset => (reset, UInt<1>(0)))

    when start :
      x <= a
      y <= b
      running <= UInt<1>(1)
    else when running :
      when gt(x, y) :
        x <= tail(sub(x, y), 1)
      else when gt(y, x) :
        y <= tail(sub(y, x), 1)
      else :
        running <= UInt<1>(0)

    busy <= running
    result <= x
"#;

fn main() {
    // Parse FIRRTL, run the full optimization pipeline, compile for the
    // essential-signal engine.
    let graph = gsim_firrtl::compile(GCD).expect("valid FIRRTL");
    let (mut sim, report) = Compiler::new(&graph)
        .preset(Preset::Gsim)
        .build()
        .expect("compiles");

    println!(
        "compiled {}: {} -> {} nodes, {} supernodes, {} bytecode instrs",
        graph.name(),
        report.nodes_before,
        report.nodes_after,
        report.supernodes,
        report.instrs
    );

    // Drive it: gcd(1071, 462) = 21.
    sim.poke_u64("a", 1071).unwrap();
    sim.poke_u64("b", 462).unwrap();
    sim.poke_u64("start", 1).unwrap();
    sim.step();
    sim.poke_u64("start", 0).unwrap();
    // Outputs are evaluated before the clock edge, so `busy` shows the
    // FSM entering its loop one cycle after the start pulse.
    sim.step();
    while sim.peek_u64("busy") == Some(1) {
        sim.step();
    }
    println!(
        "gcd(1071, 462) = {} after {} cycles",
        sim.peek_u64("result").unwrap(),
        sim.cycle()
    );
    assert_eq!(sim.peek_u64("result"), Some(21));

    // The engine only evaluated what changed:
    let c = sim.counters();
    println!(
        "activity factor: {:.1}% ({} node evals over {} cycles)",
        c.activity_factor(report.nodes_after) * 100.0,
        c.node_evals,
        c.cycles
    );
}
