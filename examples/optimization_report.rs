//! Inspect what each GSIM optimization does to a design — node counts,
//! pass statistics, and the incremental speed staircase (Figure 8 in
//! miniature).
//!
//! ```sh
//! cargo run --release --example optimization_report
//! ```

use gsim::{Compiler, OptOptions};
use gsim_designs::SynthParams;
use gsim_workloads::Profile;
use std::time::Instant;

fn main() {
    let params = SynthParams::for_target("BOOM", 4_000);
    let graph = gsim_designs::synth_core(&params);
    println!(
        "design: {} nodes / {} edges\n",
        graph.num_nodes(),
        graph.num_edges()
    );

    let cycles = 4_000u64;
    println!(
        "{:<36} {:>7} {:>11} {:>10} {:>8}",
        "configuration", "nodes", "supernodes", "speed", "step"
    );
    let mut prev: Option<f64> = None;
    for (name, opts) in OptOptions::staircase() {
        let (mut sim, report) = Compiler::new(&graph).options(opts).build().unwrap();
        let mut stim = Profile::coremark().stimulus(3, 5);
        sim.poke_u64("reset", 1).unwrap();
        sim.run(2);
        sim.poke_u64("reset", 0).unwrap();
        let start = Instant::now();
        for _ in 0..cycles {
            for (l, &op) in stim.next_cycle().iter().enumerate() {
                let _ = sim.poke_u64(&format!("op_in_{l}"), op);
            }
            sim.step();
        }
        let hz = cycles as f64 / start.elapsed().as_secs_f64();
        let step = prev.map(|p| hz / p).unwrap_or(1.0);
        prev = Some(hz);
        println!(
            "{:<36} {:>7} {:>11} {:>7.1} kHz {:>7.2}x",
            format!("+ {name}"),
            report.nodes_after,
            report.supernodes,
            hz / 1e3,
            step
        );
    }

    // Detailed pass statistics for the full pipeline.
    let (_, report) = Compiler::new(&graph)
        .options(OptOptions::all())
        .build()
        .unwrap();
    let s = report.pass_stats;
    println!("\nfull-pipeline pass statistics:");
    println!("  expressions simplified : {}", s.simplified);
    println!("  aliases forwarded      : {}", s.aliases_removed);
    println!("  dead nodes removed     : {}", s.dead_removed);
    println!("  nodes inlined          : {}", s.inlined);
    println!("  subexpressions hoisted : {}", s.extracted);
    println!("  nodes split at bit level: {}", s.bit_split);
    println!(
        "  compile time           : {:.1} ms (partition {:.1} ms)",
        report.compile_time.as_secs_f64() * 1e3,
        report.partition_time.as_secs_f64() * 1e3
    );
}
