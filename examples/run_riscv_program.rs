//! Run real RISC-V machine code on the stuCore CPU under GSIM.
//!
//! Assembles an RV32I program with the bundled assembler, loads it into
//! stuCore's instruction memory, and simulates until `ecall`.
//!
//! ```sh
//! cargo run --release --example run_riscv_program
//! ```

use gsim::{Compiler, Preset};
use gsim_workloads::asm;

const PROGRAM: &str = r#"
        # sum of squares 1..20, computed with shift-and-add multiply
        li   s0, 20          # n
        li   a0, 0           # accumulator
        li   t0, 1           # i
outer:  mv   t1, t0          # multiplicand
        mv   t2, t0          # multiplier
        li   t3, 0           # product
mul:    andi t4, t2, 1
        beqz t4, shift
        add  t3, t3, t1
shift:  slli t1, t1, 1
        srli t2, t2, 1
        bnez t2, mul
        add  a0, a0, t3
        addi t0, t0, 1
        bge  s0, t0, outer
        ecall
"#;

fn main() {
    let image = asm::assemble_u64(PROGRAM).expect("assembles");
    println!("assembled {} instructions", image.len());

    let graph = gsim_designs::stu_core();
    let (mut sim, report) = Compiler::new(&graph)
        .preset(Preset::Gsim)
        .build()
        .expect("stuCore compiles");
    println!(
        "stuCore: {} nodes optimized to {}, {} supernodes",
        report.nodes_before, report.nodes_after, report.supernodes
    );

    sim.load_mem("imem", &image).unwrap();
    sim.poke_u64("reset", 1).unwrap();
    sim.run(2);
    sim.poke_u64("reset", 0).unwrap();

    let start = std::time::Instant::now();
    let mut cycles = 0u64;
    while sim.peek_u64("halt") != Some(1) && cycles < 100_000 {
        sim.run(64);
        cycles += 64;
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(sim.peek_u64("halt"), Some(1), "program must halt");

    let result = sim.peek_u64("result").unwrap();
    let expected: u64 = (1..=20u64).map(|i| i * i).sum();
    println!(
        "a0 = {result} (expected {expected}), {} cycles at {:.0} kHz",
        sim.cycle(),
        sim.cycle() as f64 / secs / 1e3
    );
    assert_eq!(result, expected);

    // Registers are architecturally visible through the memory API.
    for r in [5u64, 6, 10] {
        println!(
            "  x{r:<2} = {}",
            sim.read_mem("regfile", r).unwrap().to_u64().unwrap()
        );
    }
}
