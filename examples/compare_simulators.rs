//! Compare every simulator preset on the same design and workload —
//! a miniature of the paper's Figure 6.
//!
//! ```sh
//! cargo run --release --example compare_simulators
//! ```

use gsim::{Compiler, Preset};
use gsim_designs::SynthParams;
use gsim_workloads::Profile;
use std::time::Instant;

fn main() {
    // A Rocket-class synthetic core (~6k nodes) under a CoreMark-like
    // instruction stream.
    let params = SynthParams::for_target("Rocket", 6_000);
    let graph = gsim_designs::synth_core(&params);
    println!(
        "design: {} nodes, {} edges\n",
        graph.num_nodes(),
        graph.num_edges()
    );

    let cycles = 5_000u64;
    let presets = [
        Preset::Verilator,
        Preset::VerilatorMt(2),
        Preset::VerilatorMt(4),
        Preset::Essent,
        Preset::Arcilator,
        Preset::Gsim,
    ];

    let mut baseline_hz = None;
    println!(
        "{:<16} {:>10} {:>9} {:>10} {:>12}",
        "simulator", "speed", "speedup", "af", "signature"
    );
    for preset in presets {
        let (mut sim, report) = Compiler::new(&graph).preset(preset).build().unwrap();
        let mut stim = Profile::coremark().stimulus(1, 99);
        sim.poke_u64("reset", 1).unwrap();
        sim.run(2);
        sim.poke_u64("reset", 0).unwrap();
        sim.reset_counters();
        let start = Instant::now();
        for _ in 0..cycles {
            let ops = stim.next_cycle();
            sim.poke_u64("op_in_0", ops[0]).unwrap();
            sim.step();
        }
        let hz = cycles as f64 / start.elapsed().as_secs_f64();
        let base = *baseline_hz.get_or_insert(hz);
        // All presets must agree bit-for-bit on the design state.
        let signature = sim.peek_u64("signature").unwrap();
        println!(
            "{:<16} {:>7.1} kHz {:>8.2}x {:>9.1}% {:>12x}",
            preset.name(),
            hz / 1e3,
            hz / base,
            sim.counters().activity_factor(report.nodes_after) * 100.0,
            signature
        );
    }
}
