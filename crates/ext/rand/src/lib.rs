//! Offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API subset).
//!
//! The build environment has no registry access, so this workspace
//! vendors the exact surface it consumes: [`rngs::SmallRng`] seeded
//! via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_range`, and `gen_bool`. The generator is
//! deliberately simple (splitmix64-seeded xoshiro256**) — callers use
//! it for reproducible synthetic designs and stimulus, not for
//! statistics-grade randomness.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Produce the next word in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seeding, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly at random from a word stream.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // Compare against a 53-bit uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator (xoshiro256**), seeded via
    /// splitmix64 like the real `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(0..6u32);
            assert!(x < 6);
            let y = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
