//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate (API subset).
//!
//! The build environment has no registry access, so this workspace
//! vendors the surface its property tests use: the [`Strategy`] trait
//! with `prop_map`/`prop_flat_map`, [`any`], [`strategy::Just`], range
//! and tuple strategies, [`collection::vec`], the [`proptest!`] macro
//! (with `#![proptest_config(..)]`), and `prop_assert!`/
//! `prop_assert_eq!`.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test RNG and failures are **not shrunk** — the
//! failing input is printed as-is. Set `PROPTEST_CASES` to override the
//! case count, and `PROPTEST_SEED` to reproduce a specific run.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;

/// Runtime configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Error produced by a failing `prop_assert*!`.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type threaded through `proptest!` bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The random source handed to strategies.
pub type TestRng = SmallRng;

/// A recipe for generating random values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply draws a fresh value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> strategy::FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        strategy::FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `f` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> strategy::Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        strategy::Filter {
            inner: self,
            f,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) whence: &'static str,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted retries: {}", self.whence)
        }
    }

    /// Equal-weight choice among boxed strategies; built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<V> {
        variants: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Build from the variant list. Panics if empty.
        pub fn new(variants: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof!: no variants");
            Union { variants }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let idx = rng.gen_range(0..self.variants.len());
            self.variants[idx].new_value(rng)
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            (**self).new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
    impl_tuple_strategy!(A, B, C, D, E, G, H);
    impl_tuple_strategy!(A, B, C, D, E, G, H, I);
}

/// Types with a canonical "uniform-ish" strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::Rng::gen(rng)
            }
        }
    )*};
}
impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing arbitrary values of `T`, mirroring
/// `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive length bounds for [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec: empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector strategy, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Just;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[doc(hidden)]
pub mod __rt {
    use super::{ProptestConfig, TestCaseError, TestRng};
    use rand::SeedableRng;

    /// Derive the per-test seed: `PROPTEST_SEED` env override, else a
    /// stable hash of the test name.
    pub fn seed_for(test_name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                return v;
            }
        }
        // FNV-1a over the test name keeps runs deterministic but
        // de-correlates tests from one another.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Number of cases: `PROPTEST_CASES` env override, else the config.
    pub fn cases_for(config: &ProptestConfig) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(config.cases)
    }

    /// Run one test body across `cases` random inputs.
    pub fn run<I: std::fmt::Debug>(
        test_name: &str,
        config: &ProptestConfig,
        gen_input: impl Fn(&mut TestRng) -> I,
        body: impl Fn(I) -> Result<(), TestCaseError>,
    ) {
        let seed = seed_for(test_name);
        let mut rng = TestRng::seed_from_u64(seed);
        for case in 0..cases_for(config) {
            let input = gen_input(&mut rng);
            let repr = format!("{input:?}");
            if let Err(e) = body(input) {
                panic!(
                    "proptest: {test_name} failed at case {case} (seed {seed}):\n  \
                     input: {repr}\n  {e}"
                );
            }
        }
    }
}

/// Equal-weight choice among strategies with a common value type,
/// mirroring `proptest::prop_oneof!` (weighted variants unsupported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ::std::boxed::Box::new($strat), )+
        ])
    };
}

/// Assert a condition inside a `proptest!` body, returning a
/// `TestCaseError` (not panicking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Define property tests, mirroring `proptest::proptest!`.
///
/// Supported argument forms: `pattern in strategy_expr` and
/// `name: Type` (shorthand for `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    // Entry: optional config attribute, then test fns.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests [$config] $($rest)*);
    };
    (#[test] $($rest:tt)*) => {
        $crate::proptest!(@tests [$crate::ProptestConfig::default()] #[test] $($rest)*);
    };

    // One test fn at a time.
    (@tests [$config:expr]) => {};
    (@tests [$config:expr]
     #[test]
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        #[test]
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::proptest!(@parse config, stringify!($name), $body, [] [] $($args)*);
        }
        $crate::proptest!(@tests [$config] $($rest)*);
    };

    // Argument muncher: accumulate [patterns] [strategies].
    (@parse $config:ident, $tname:expr, $body:block, [$($pats:pat_param,)*] [$($strats:expr,)*]) => {
        $crate::__rt::run(
            $tname,
            &$config,
            |rng| {
                use $crate::Strategy as _;
                ( $( ($strats).new_value(rng), )* )
            },
            |( $($pats,)* )| { $body Ok(()) },
        );
    };
    (@parse $config:ident, $tname:expr, $body:block, [$($pats:pat_param,)*] [$($strats:expr,)*]
     $name:ident : $ty:ty) => {
        $crate::proptest!(@parse $config, $tname, $body,
            [$($pats,)* $name,] [$($strats,)* $crate::any::<$ty>(),]);
    };
    (@parse $config:ident, $tname:expr, $body:block, [$($pats:pat_param,)*] [$($strats:expr,)*]
     $name:ident : $ty:ty, $($rest:tt)*) => {
        $crate::proptest!(@parse $config, $tname, $body,
            [$($pats,)* $name,] [$($strats,)* $crate::any::<$ty>(),] $($rest)*);
    };
    (@parse $config:ident, $tname:expr, $body:block, [$($pats:pat_param,)*] [$($strats:expr,)*]
     $pat:pat_param in $strat:expr) => {
        $crate::proptest!(@parse $config, $tname, $body,
            [$($pats,)* $pat,] [$($strats,)* $strat,]);
    };
    (@parse $config:ident, $tname:expr, $body:block, [$($pats:pat_param,)*] [$($strats:expr,)*]
     $pat:pat_param in $strat:expr, $($rest:tt)*) => {
        $crate::proptest!(@parse $config, $tname, $body,
            [$($pats,)* $pat,] [$($strats,)* $strat,] $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, u32)> {
        (1u32..=60).prop_flat_map(|w| {
            let mask = (1u64 << w) - 1;
            (any::<u64>().prop_map(move |x| x & mask), Just(w))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn flat_mapped_values_respect_width((x, w) in pair()) {
            prop_assert!((1..=60).contains(&w));
            prop_assert_eq!(x & !((1u64 << w) - 1), 0);
        }

        #[test]
        fn mixed_args_and_vec_lengths(v in crate::collection::vec(any::<u8>(), 3..7), flag: bool) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            let _ = flag;
        }

        #[test]
        fn oneof_draws_every_variant(picks in crate::collection::vec(prop_oneof![
            Just(0u8),
            Just(1u8),
            Just(2u8),
        ], 64..=64)) {
            for p in &picks {
                prop_assert!(*p <= 2);
            }
            // 64 draws from 3 equal variants miss one with prob < 1e-6.
            for variant in 0u8..3 {
                prop_assert!(picks.contains(&variant), "variant {} never drawn", variant);
            }
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "boom at case")]
        fn failing_case_is_reported(x in 0u32..10) {
            prop_assert!(x < 5, "boom at case with x={}", x);
        }
    }
}
