//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate (API subset).
//!
//! The build environment has no registry access, so this workspace
//! vendors the surface its benches use: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `measurement_time`,
//! `bench_function`, `finish`), [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is a plain wall-clock loop: each bench body runs for a
//! warm-up pass and then `sample_size` timed samples (or until
//! `measurement_time` elapses, whichever comes first), reporting
//! min/median/mean per-iteration times. No statistics, plotting, or
//! baseline comparison — the benches stay runnable and comparable
//! between commits on the same host, which is all the paper-figure
//! reproductions need here.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a single benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from a function name and a parameter display value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId(s.clone())
    }
}

/// Timing driver handed to each bench closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it `self.iters` times back-to-back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level handle, mirroring `criterion::Criterion`.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name} ==");
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
            measurement_time,
        }
    }
}

/// A named set of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Cap the total time spent sampling one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark and print its per-iteration timing.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Warm-up: one untimed pass, also used to size iters per sample.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        // Aim for samples of ~measurement_time / sample_size each.
        let budget = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let iters = (budget / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let deadline = Instant::now() + self.measurement_time;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples.first().copied().unwrap_or(0.0);
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        eprintln!(
            "{}/{}: min {} | median {} | mean {}  ({} samples x {} iters)",
            self.name,
            id.0,
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            samples.len(),
            iters,
        );
        self
    }

    /// Close the group (printing nothing extra; parity with criterion).
    pub fn finish(self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collect bench functions into a named group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a bench binary, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- --test` style filters are not supported;
            // ignore argv beyond the binary name.
            $( $group(); )+
        }
    };
}
