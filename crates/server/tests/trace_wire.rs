//! Wire-level tracing: a remote [`ClientSession`] subscribing with
//! `trace on` must reconstruct, via the streamed `chg` records, the
//! exact change list an in-process session captures directly — and
//! the subscription must survive the protocol's other traffic
//! (queries, snapshots, restores) without corrupting either stream.

use gsim_server::{ClientSession, Endpoint, Server, ServerConfig};
use gsim_sim::{GsimError, Session, SimOptions, Simulator};
use gsim_wave::{first_difference, Wave, WaveCell};

const COUNTER: &str = r#"
circuit Counter :
  module Counter :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output out : UInt<8>
    reg c : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    c <= mux(en, tail(add(c, UInt<8>(1)), 1), c)
    out <= c
"#;

fn start_server(tag: &str) -> (Server, Endpoint) {
    let cache_dir =
        std::env::temp_dir().join(format!("gsim_trace_wire_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let server = Server::start(ServerConfig::new(
        Endpoint::Tcp("127.0.0.1:0".into()),
        &cache_dir,
    ))
    .expect("server start");
    let ep = server.endpoint().clone();
    (server, ep)
}

fn connect(ep: &Endpoint) -> ClientSession {
    ClientSession::connect_with_retry(ep, 5, std::time::Duration::from_millis(50))
        .expect("client connect")
}

/// The reference: capture the same stimulus in-process.
fn local_wave(cycles: u64) -> Wave {
    let graph = gsim_firrtl::compile(COUNTER).unwrap();
    let mut sim = Simulator::compile(&graph, &SimOptions::default()).unwrap();
    let cell = WaveCell::new();
    sim.poke_u64("en", 1).unwrap();
    sim.trace_start(None, Box::new(cell.sink())).unwrap();
    Session::step(&mut sim, cycles).unwrap();
    sim.trace_stop().unwrap();
    cell.take()
}

#[test]
fn remote_trace_matches_in_process_capture() {
    let (server, ep) = start_server("match");
    let mut remote = connect(&ep);
    remote.open_design(COUNTER, "interp").unwrap();
    let cell = WaveCell::new();
    remote.poke_u64("en", 1).unwrap();
    remote.trace_start(None, Box::new(cell.sink())).unwrap();
    remote.step(24).unwrap();
    remote.trace_stop().unwrap();
    let remote_wave = cell.take();
    let local = local_wave(24);
    assert_eq!(remote_wave.signals, local.signals);
    assert_eq!(
        first_difference(&local, &remote_wave),
        None,
        "remote chg stream diverged from the in-process capture"
    );
    assert!(
        !remote_wave.changes.is_empty(),
        "trace captured no changes at all"
    );
    drop(server);
}

#[test]
fn remote_trace_survives_interleaved_queries_and_restore() {
    let (server, ep) = start_server("interleave");
    let mut remote = connect(&ep);
    remote.open_design(COUNTER, "interp").unwrap();
    remote.poke_u64("en", 1).unwrap();
    let cell = WaveCell::new();
    remote
        .trace_start(Some(&["out".to_string()]), Box::new(cell.sink()))
        .unwrap();
    remote.step(4).unwrap();
    // Queries between steps must not eat or reorder chg records.
    let v = remote.peek("out").unwrap();
    assert_eq!(v.to_u64(), Some(3));
    let snap = remote.snapshot().unwrap();
    remote.step(4).unwrap();
    remote.restore(snap).unwrap();
    remote.step(2).unwrap();
    remote.trace_stop().unwrap();
    let wave = cell.take();
    assert_eq!(wave.signals.len(), 1);
    assert_eq!(wave.signals[0].name, "out");
    // The restore rewinds the counter, so the per-signal change list
    // is not monotone in value — but it must be change-complete: the
    // last record's value equals the session's final state.
    let last = wave.changes.last().expect("changes captured");
    assert_eq!(last.2, vec![5], "final chg record must match final state");
    drop(server);
}

#[test]
fn remote_trace_unknown_signal_is_typed_and_session_survives() {
    let (server, ep) = start_server("unknown");
    let mut remote = connect(&ep);
    remote.open_design(COUNTER, "interp").unwrap();
    let cell = WaveCell::new();
    let err = remote
        .trace_start(Some(&["nosuch".to_string()]), Box::new(cell.sink()))
        .unwrap_err();
    assert!(
        matches!(err, GsimError::UnknownSignal(ref n) if n == "nosuch"),
        "want UnknownSignal, got {err:?}"
    );
    // The failed subscription must leave the session fully usable,
    // including a subsequent successful trace.
    remote.poke_u64("en", 1).unwrap();
    remote.step(3).unwrap();
    assert_eq!(remote.peek("out").unwrap().to_u64(), Some(2));
    let cell = WaveCell::new();
    remote.trace_start(None, Box::new(cell.sink())).unwrap();
    remote.step(1).unwrap();
    remote.trace_stop().unwrap();
    assert!(!cell.take().changes.is_empty());
    drop(server);
}

#[test]
fn double_start_and_stop_without_start_are_config_errors() {
    let (server, ep) = start_server("config");
    let mut remote = connect(&ep);
    remote.open_design(COUNTER, "interp").unwrap();
    assert!(matches!(remote.trace_stop(), Err(GsimError::Config(_))));
    let cell = WaveCell::new();
    remote.trace_start(None, Box::new(cell.sink())).unwrap();
    let cell2 = WaveCell::new();
    assert!(matches!(
        remote.trace_start(None, Box::new(cell2.sink())),
        Err(GsimError::Config(_))
    ));
    remote.trace_stop().unwrap();
    drop(server);
}
