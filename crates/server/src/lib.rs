//! The GSIM simulation service: many concurrent sessions, one
//! compiled artifact per distinct design.
//!
//! `gsim-server` turns the single-user Session API into a serving
//! system. A [`Server`] listens on a Unix or TCP socket
//! ([`Endpoint`]); each accepted connection gets its own thread (no
//! external async runtime exists in this environment — thread-per-
//! connection with per-session read timeouts is the whole scheduling
//! story) and speaks the line protocol documented on
//! [`gsim_sim::Session`], extended with three service commands:
//!
//! * `design <nbytes> [aot|interp|jit]` — the next `nbytes` bytes are
//!   FIRRTL source; the server compiles it (through the
//!   [`gsim_codegen::ArtifactCache`] for the AoT backend, so `rustc`
//!   runs once per distinct design, not once per client; `jit` is the
//!   in-process threaded-code backend, no `rustc` involved) and binds
//!   the session to it. Response:
//!   `ready <key> <hit|miss|interp|jit|fallback> <ms>` — `fallback`
//!   means an `aot` request whose compile failed was degraded to the
//!   in-process `jit` backend instead of being refused.
//! * `stats` — service counters:
//!   `stats sessions <n> active <n> hits <n> misses <n> compiles <n>
//!   evictions <n> panics <n> fallbacks <n>`.
//! * `shutdown` — stops the whole server (test/admin facility).
//!
//! Fault tolerance: every session thread runs inside a
//! `catch_unwind` boundary (a panicking session answers
//! `err backend …` and frees its pool slot; the server keeps
//! serving, counting the event in `stats … panics`), and AoT
//! sessions are wrapped in a [`gsim_sim::SupervisedSession`] whose
//! factory recompiles through the artifact cache — a dead child
//! process is respawned (even past an eviction) and replayed to the
//! exact pre-crash state.
//!
//! After `design`, every simulation command (`poke`, `step`, `peek`,
//! `list`, `sync`, `trace on|off`, …) behaves exactly as on a local
//! session: the server bridges the wire onto a `Box<dyn Session>`
//! ([`proto`]), so the AoT and interpreter backends are served by the
//! same loop — including streamed waveform capture: `trace on`
//! subscribes the connection to unsolicited `chg <cycle> <name>
//! <hex>` value-change records (see [`gsim_sim::Session`]'s wire
//! table), which [`ClientSession`] (via
//! [`gsim_sim::Session::trace_start`]) reassembles into any
//! [`gsim_wave::WaveSink`].
//!
//! The matching [`ClientSession`] implements [`gsim_sim::Session`]
//! over the socket, which is what makes the service transparently
//! testable: the existing differential harnesses drive a remote
//! session exactly like an in-process engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod net;
pub mod proto;

mod client;
mod server;

pub use client::{ClientSession, DesignInfo};
pub use net::Endpoint;
pub use server::{Server, ServerConfig, ServiceStats};
