//! Transport plumbing: one address/stream/listener type over TCP and
//! Unix-domain sockets, so the rest of the crate is socket-family
//! agnostic.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where the service listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7734` (`127.0.0.1:0` picks a
    /// free port; [`crate::Server::endpoint`] reports the resolved one).
    Tcp(String),
    /// A Unix-domain socket path (stale files are replaced on bind).
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses an endpoint string: `tcp:<addr>` / `unix:<path>`
    /// explicitly, else anything containing `/` is a Unix socket path
    /// and anything else a TCP address.
    pub fn parse(s: &str) -> Endpoint {
        if let Some(addr) = s.strip_prefix("tcp:") {
            Endpoint::Tcp(addr.to_string())
        } else if let Some(path) = s.strip_prefix("unix:") {
            Endpoint::Unix(PathBuf::from(path))
        } else if s.contains('/') {
            Endpoint::Unix(PathBuf::from(s))
        } else {
            Endpoint::Tcp(s.to_string())
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// A connected byte stream of either family.
#[derive(Debug)]
pub(crate) enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    pub(crate) fn connect(ep: &Endpoint) -> std::io::Result<Stream> {
        match ep {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                // The protocol is small request/response lines; Nagle
                // would add ~40ms delayed-ACK stalls per round trip.
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            )),
        }
    }

    pub(crate) fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    pub(crate) fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(t),
        }
    }

    /// Shuts down both directions; any blocked read on a clone of
    /// this stream returns immediately.
    pub(crate) fn shutdown(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A bound listener of either family.
#[derive(Debug)]
pub(crate) enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Binds `ep`, replacing a stale Unix socket file if present.
    /// Returns the listener and its *resolved* endpoint (a TCP bind to
    /// port 0 reports the picked port).
    pub(crate) fn bind(ep: &Endpoint) -> std::io::Result<(Listener, Endpoint)> {
        match ep {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                let resolved = Endpoint::Tcp(l.local_addr()?.to_string());
                Ok((Listener::Tcp(l), resolved))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent)?;
                }
                let l = UnixListener::bind(path)?;
                Ok((Listener::Unix(l), ep.clone()))
            }
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            )),
        }
    }

    pub(crate) fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}
