//! The service client: [`ClientSession`] implements the
//! backend-agnostic [`Session`] trait over a socket to a running
//! [`crate::Server`], so every harness written against
//! `&mut dyn Session` — including the differential tests that pin the
//! engines to the reference interpreter — drives a *remote* session
//! unchanged.
//!
//! The wire logic mirrors `gsim_codegen::AotSession` (same pipelined
//! mutating commands, `sync` fences, one-round-trip queries), plus
//! the three service commands: [`ClientSession::open_design`],
//! [`ClientSession::stats`], and [`ClientSession::shutdown_server`].

use crate::net::{Endpoint, Stream};
use crate::server::ServiceStats;
use gsim_sim::{
    Counters, GsimError, MemoryInfo, Scenario, Session, SessionFrame, SignalInfo, SnapshotId,
};
use gsim_value::Value;
use std::io::{BufRead as _, BufReader, Write as _};

/// Pipelined-cycle bound between `sync` fences (same rationale and
/// value as the AoT session's chunking).
const SYNC_CHUNK: u64 = 128;

/// The server's answer to `design`: which artifact the session is
/// bound to and how it was obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignInfo {
    /// Content-addressed artifact key (32 hex digits).
    pub key: String,
    /// `"hit"` (cached binary reused), `"miss"` (compiled now),
    /// `"interp"` / `"jit"` (in-process backends — no artifact), or
    /// `"fallback"` (an `aot` request whose compile failed, served on
    /// the in-process `jit` backend instead of refused).
    pub status: String,
    /// Server-side milliseconds from request to ready.
    pub ready_ms: u64,
}

/// A remote simulation session on a running [`crate::Server`].
#[derive(Debug)]
pub struct ClientSession {
    reader: BufReader<Stream>,
    writer: Stream,
    cycle: u64,
    unsynced: u64,
    /// Reassembles unsolicited `chg` records into the caller's
    /// [`gsim_wave::WaveSink`] while a trace subscription is active;
    /// `None` when tracing is off.
    router: Option<gsim_wave::ChgRouter>,
}

impl ClientSession {
    /// Connects to the service at `ep`. The connection is idle until
    /// [`ClientSession::open_design`] binds it to a design.
    ///
    /// # Errors
    ///
    /// Returns the underlying socket error.
    pub fn connect(ep: &Endpoint) -> std::io::Result<ClientSession> {
        let stream = Stream::connect(ep)?;
        let writer = stream.try_clone()?;
        Ok(ClientSession {
            reader: BufReader::new(stream),
            writer,
            cycle: 0,
            unsynced: 0,
            router: None,
        })
    }

    /// Connects with bounded retry: up to `attempts` tries, sleeping
    /// `backoff` before the second and doubling it each further try.
    /// Rides out a service that is still binding its socket (or
    /// briefly restarting) without hammering it.
    ///
    /// # Errors
    ///
    /// The *last* attempt's socket error once the budget is spent.
    pub fn connect_with_retry(
        ep: &Endpoint,
        attempts: u32,
        backoff: std::time::Duration,
    ) -> std::io::Result<ClientSession> {
        let mut wait = backoff;
        let mut last = None;
        for tried in 0..attempts.max(1) {
            if tried > 0 {
                std::thread::sleep(wait);
                wait *= 2;
            }
            match ClientSession::connect(ep) {
                Ok(s) => return Ok(s),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| std::io::Error::other("no connection attempts made")))
    }

    /// Sends FIRRTL source and binds this session to the compiled
    /// design. `backend` is `"aot"` (through the artifact cache) or
    /// `"interp"`.
    ///
    /// # Errors
    ///
    /// [`GsimError::Parse`] / [`GsimError::Compile`] travel back as
    /// typed errors; transport failures are [`GsimError::Io`].
    pub fn open_design(&mut self, firrtl: &str, backend: &str) -> Result<DesignInfo, GsimError> {
        self.send(&format!("design {} {backend}", firrtl.len()))?;
        let w = self.writer()?;
        w.write_all(firrtl.as_bytes())
            .map_err(|e| GsimError::Io(format!("design upload: {e}")))?;
        self.flush()?;
        let line = self.next_line()?;
        if line.starts_with("err ") {
            return Err(GsimError::from_wire(&line));
        }
        let mut it = line.split_whitespace();
        let (Some("ready"), Some(key), Some(status), Some(ms)) =
            (it.next(), it.next(), it.next(), it.next())
        else {
            return Err(GsimError::Protocol(format!("bad ready response: {line}")));
        };
        self.cycle = 0;
        Ok(DesignInfo {
            key: key.to_string(),
            status: status.to_string(),
            ready_ms: ms.parse().unwrap_or(0),
        })
    }

    /// Fetches the service-level counters (sessions, cache hits, …).
    ///
    /// # Errors
    ///
    /// [`GsimError::Io`] on transport failure, [`GsimError::Protocol`]
    /// on a malformed response.
    pub fn stats(&mut self) -> Result<ServiceStats, GsimError> {
        let line = self.query("stats")?;
        ServiceStats::parse_wire(&line)
            .ok_or_else(|| GsimError::Protocol(format!("bad stats response: {line}")))
    }

    /// Runs `n` perturbed branches of `scenario` on the server, forked
    /// from the session's current state, and returns the streamed
    /// `branch` wire lines verbatim (the format of
    /// [`gsim_sim::BranchResult::render_wire`], index order). The
    /// remote session is back at its pre-explore state afterwards.
    ///
    /// # Errors
    ///
    /// Typed simulation errors travel back as `err` lines; transport
    /// failures are [`GsimError::Io`].
    pub fn explore(&mut self, scenario: &Scenario, n: usize) -> Result<Vec<String>, GsimError> {
        let text = scenario.render();
        self.send(&format!("explore {n} {}", text.len()))?;
        let w = self.writer()?;
        w.write_all(text.as_bytes())
            .map_err(|e| GsimError::Io(format!("scenario upload: {e}")))?;
        self.flush()?;
        let mut branches = Vec::new();
        loop {
            let line = self.next_line()?;
            if line.starts_with("err ") {
                return Err(GsimError::from_wire(&line));
            }
            if let Some(rest) = line.strip_prefix("ok") {
                self.cycle = rest.trim().parse().unwrap_or(self.cycle);
                return Ok(branches);
            }
            branches.push(line);
        }
    }

    /// Asks the server to shut down (test/admin facility).
    ///
    /// # Errors
    ///
    /// [`GsimError::Io`] on transport failure.
    pub fn shutdown_server(&mut self) -> Result<(), GsimError> {
        let line = self.query("shutdown")?;
        if line.starts_with("ok") {
            Ok(())
        } else {
            Err(GsimError::Protocol(format!(
                "bad shutdown response: {line}"
            )))
        }
    }

    fn writer(&mut self) -> Result<&mut Stream, GsimError> {
        Ok(&mut self.writer)
    }

    fn send(&mut self, line: &str) -> Result<(), GsimError> {
        let w = self.writer()?;
        writeln!(w, "{line}").map_err(|e| GsimError::Io(format!("server write: {e}")))
    }

    fn flush(&mut self) -> Result<(), GsimError> {
        self.writer()?
            .flush()
            .map_err(|e| GsimError::Io(format!("server flush: {e}")))
    }

    fn read_line(&mut self) -> Result<String, GsimError> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| GsimError::Io(format!("server read: {e}")))?;
        if n == 0 {
            return Err(GsimError::Io("server closed the connection".into()));
        }
        Ok(line.trim_end().to_string())
    }

    /// Reads the next *response* line: unsolicited `chg` trace records
    /// are routed into the active wave subscription (or dropped when
    /// none is active — a defensive guard, the server only streams
    /// after `trace on`) so protocol readers see exactly the line
    /// counts the command grammar promises.
    fn next_line(&mut self) -> Result<String, GsimError> {
        loop {
            let line = self.read_line()?;
            if line.starts_with("chg ") {
                if let Some(router) = self.router.as_mut() {
                    router.feed(&line);
                }
                continue;
            }
            return Ok(line);
        }
    }

    /// Fences the pipeline: `sync`, drain queued `err` lines until the
    /// matching `ok`, resynchronize the local cycle mirror.
    fn sync(&mut self) -> Result<u64, GsimError> {
        self.send("sync")?;
        self.flush()?;
        self.unsynced = 0;
        let mut first_err = None;
        let server_cycle;
        loop {
            let line = self.next_line()?;
            if let Some(rest) = line.strip_prefix("ok") {
                server_cycle = rest.trim().parse().unwrap_or(self.cycle);
                break;
            }
            if line.starts_with("err ") && first_err.is_none() {
                first_err = Some(GsimError::from_wire(&line));
            }
        }
        self.cycle = server_cycle;
        match first_err {
            Some(e) => Err(e),
            None => Ok(server_cycle),
        }
    }

    /// One query round trip (stream fenced — every public method
    /// maintains that invariant).
    fn query(&mut self, req: &str) -> Result<String, GsimError> {
        self.send(req)?;
        self.flush()?;
        let line = self.next_line()?;
        if line.starts_with("err ") {
            return Err(GsimError::from_wire(&line));
        }
        Ok(line)
    }

    /// `list` round trip returning the payload of the `want` line.
    fn list_line(&mut self, want: &str) -> Result<String, GsimError> {
        self.send("list")?;
        self.flush()?;
        let mut found = None;
        for expect in ["inputs", "signals", "mems"] {
            let line = self.next_line()?;
            if line.starts_with("err ") {
                return Err(GsimError::from_wire(&line));
            }
            let Some(rest) = line.strip_prefix(expect) else {
                return Err(GsimError::Protocol(format!("bad list response: {line}")));
            };
            if expect == want {
                found = Some(rest.trim().to_string());
            }
        }
        found.ok_or_else(|| GsimError::Protocol("list response incomplete".into()))
    }

    fn parse_signal_list(payload: &str) -> Result<Vec<SignalInfo>, GsimError> {
        payload
            .split_whitespace()
            .map(|tok| {
                let (name, width) = tok
                    .rsplit_once(':')
                    .ok_or_else(|| GsimError::Protocol(format!("bad list entry: {tok}")))?;
                let width = width
                    .parse()
                    .map_err(|_| GsimError::Protocol(format!("bad list width: {tok}")))?;
                Ok(SignalInfo {
                    name: name.to_string(),
                    width,
                })
            })
            .collect()
    }
}

impl Session for ClientSession {
    fn backend(&self) -> &'static str {
        "client"
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn poke(&mut self, name: &str, v: Value) -> Result<(), GsimError> {
        self.send(&format!("poke {name} {v:x}"))?;
        self.sync().map(|_| ())
    }

    fn peek(&mut self, name: &str) -> Result<Value, GsimError> {
        let line = self.query(&format!("peek {name}"))?;
        let mut it = line.split_whitespace();
        let (Some("val"), Some(w), Some(hex)) = (it.next(), it.next(), it.next()) else {
            return Err(GsimError::Protocol(format!("bad peek response: {line}")));
        };
        let width: u32 = w
            .parse()
            .map_err(|_| GsimError::Protocol(format!("bad peek width: {line}")))?;
        Value::from_str_radix(hex, 16, width)
            .map_err(|e| GsimError::Protocol(format!("bad peek value {hex:?}: {e}")))
    }

    fn load_mem(&mut self, name: &str, image: &[u64]) -> Result<(), GsimError> {
        let mut line = String::with_capacity(6 + name.len() + image.len() * 9);
        line.push_str("load ");
        line.push_str(name);
        for w in image {
            line.push_str(&format!(" {w:x}"));
        }
        self.send(&line)?;
        self.sync().map(|_| ())
    }

    fn step(&mut self, n: u64) -> Result<(), GsimError> {
        self.send(&format!("step {n}"))?;
        self.sync().map(|_| ())
    }

    #[allow(deprecated)] // the pipelined wire override must shadow the shim
    fn run_driven(
        &mut self,
        n: u64,
        drive: &mut dyn FnMut(u64, &mut SessionFrame),
    ) -> Result<(), GsimError> {
        let mut frame = SessionFrame::default();
        let end = self.cycle + n;
        let mut at = self.cycle;
        // Same error discipline as the AoT session: stimulus errors do
        // not cut the run short (first one reported at the end); only
        // fatal transport errors abort.
        let mut first_err: Option<GsimError> = None;
        while at < end {
            if first_err.is_none() {
                frame.clear();
                drive(at, &mut frame);
                for (name, v) in frame.pokes() {
                    self.send(&format!("poke {name} {v:x}"))?;
                }
            }
            self.send("step 1")?;
            at += 1;
            self.unsynced += 1;
            if self.unsynced >= SYNC_CHUNK || at == end {
                if let Err(e) = self.sync() {
                    if e.is_fatal() {
                        return Err(e);
                    }
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn counters(&mut self) -> Result<Counters, GsimError> {
        let line = self.query("counters")?;
        let mut it = line.split_whitespace();
        if it.next() != Some("counters") {
            return Err(GsimError::Protocol(format!(
                "bad counters response: {line}"
            )));
        }
        let mut next = || -> Result<u64, GsimError> {
            it.next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| GsimError::Protocol(format!("bad counters response: {line}")))
        };
        Ok(Counters {
            cycles: next()?,
            supernode_evals: next()?,
            node_evals: next()?,
            value_changes: next()?,
            ..Counters::default()
        })
    }

    fn snapshot(&mut self) -> Result<SnapshotId, GsimError> {
        let line = self.query("snapshot")?;
        let mut it = line.split_whitespace();
        let (Some("snap"), Some(id)) = (it.next(), it.next()) else {
            return Err(GsimError::Protocol(format!(
                "bad snapshot response: {line}"
            )));
        };
        let raw: u64 = id
            .parse()
            .map_err(|_| GsimError::Protocol(format!("bad snapshot id: {line}")))?;
        Ok(SnapshotId::from_raw(raw))
    }

    fn restore(&mut self, id: SnapshotId) -> Result<(), GsimError> {
        self.send(&format!("restore {}", id.raw()))?;
        self.sync().map(|_| ())
    }

    fn trace_start(
        &mut self,
        signals: Option<&[String]>,
        sink: Box<dyn gsim_wave::WaveSink>,
    ) -> Result<(), GsimError> {
        if self.router.is_some() {
            return Err(GsimError::Config(
                "a trace is already active on this session".into(),
            ));
        }
        // Resolve the traced subset client-side so a typo is a typed
        // error before any wire traffic, mirroring `AotSession`. The
        // server re-validates, but its `err` would only surface at
        // the next fence.
        let all = self.signals()?;
        let selected: Vec<SignalInfo> = match signals {
            None => all,
            Some(subset) => subset
                .iter()
                .map(|name| {
                    all.iter()
                        .find(|s| &s.name == name)
                        .cloned()
                        .ok_or_else(|| GsimError::UnknownSignal(name.clone()))
                })
                .collect::<Result<_, _>>()?,
        };
        let mut cmd = String::from("trace on");
        for s in &selected {
            cmd.push(' ');
            cmd.push_str(&s.name);
        }
        // The router mirrors the server's zero-width exclusion so the
        // baseline completes.
        let wave_sigs: Vec<gsim_wave::WaveSignal> = selected
            .iter()
            .filter(|s| s.width > 0)
            .map(|s| gsim_wave::WaveSignal::new(&s.name, s.width))
            .collect();
        self.router = Some(gsim_wave::ChgRouter::new("top", wave_sigs, sink));
        self.send(&cmd)?;
        // The fence pulls the baseline burst through `next_line` into
        // the router before returning.
        match self.sync() {
            Ok(_) => Ok(()),
            Err(e) => {
                self.router = None;
                Err(e)
            }
        }
    }

    fn trace_stop(&mut self) -> Result<(), GsimError> {
        if self.router.is_none() {
            return Err(GsimError::Config(
                "no trace is active on this session".into(),
            ));
        }
        // `trace off` is silent on success; the fence both confirms it
        // and pulls every record still queued in the pipe through
        // `next_line` into the router before we tear it down.
        let res = self
            .send("trace off")
            .and_then(|()| self.sync().map(|_| ()));
        let router = self.router.take().expect("checked above");
        res?;
        router.finish().map_err(|e| GsimError::Io(e.to_string()))
    }

    fn inputs(&mut self) -> Result<Vec<SignalInfo>, GsimError> {
        let payload = self.list_line("inputs")?;
        Self::parse_signal_list(&payload)
    }

    fn signals(&mut self) -> Result<Vec<SignalInfo>, GsimError> {
        let payload = self.list_line("signals")?;
        Self::parse_signal_list(&payload)
    }

    fn export_state(&mut self) -> Result<Option<Vec<u8>>, GsimError> {
        let line = match self.query("state") {
            // The server signals a non-exporting backend with a
            // `config` error; the trait contract for that is `None`.
            Err(GsimError::Config(_)) => return Ok(None),
            other => other?,
        };
        let mut it = line.split_whitespace();
        let (Some("state"), Some(_cycle), Some(blob)) = (it.next(), it.next(), it.next()) else {
            return Err(GsimError::Protocol(format!("bad state response: {line}")));
        };
        Ok(Some(blob.as_bytes().to_vec()))
    }

    fn import_state(&mut self, state: &[u8]) -> Result<(), GsimError> {
        let blob = std::str::from_utf8(state)
            .map_err(|_| GsimError::Protocol("state blob is not ASCII".into()))?;
        self.send(&format!("loadstate {blob}"))?;
        // The fence surfaces a rejected blob and resynchronizes the
        // local cycle mirror with the imported state's cycle count.
        self.sync().map(|_| ())
    }

    fn memories(&mut self) -> Result<Vec<MemoryInfo>, GsimError> {
        let payload = self.list_line("mems")?;
        payload
            .split_whitespace()
            .map(|tok| {
                let mut it = tok.rsplitn(3, ':');
                let width = it.next().and_then(|v| v.parse().ok());
                let depth = it.next().and_then(|v| v.parse().ok());
                let name = it.next();
                match (name, depth, width) {
                    (Some(n), Some(depth), Some(width)) => Ok(MemoryInfo {
                        name: n.to_string(),
                        depth,
                        width,
                    }),
                    _ => Err(GsimError::Protocol(format!("bad list entry: {tok}"))),
                }
            })
            .collect()
    }
}
