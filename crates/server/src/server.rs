//! The listener and per-connection service loop.
//!
//! Thread-per-connection: the accept loop hands every connection to a
//! worker thread holding its own `BufReader`/writer clone of the
//! socket. The session pool is the registry of live connections —
//! bounded by [`ServerConfig::max_sessions`], with a writer clone of
//! every stream retained so graceful shutdown can unblock parked
//! reads — and the artifact cache ([`gsim_codegen::ArtifactCache`])
//! is the shared substrate that makes session startup cheap: the
//! first session for a design pays `rustc`, every later one reuses
//! the published binary.
//!
//! Per-session isolation: each connection gets a private scratch
//! directory (the compiled child process's working directory), so
//! concurrent sessions on one cached artifact never share mutable
//! filesystem state; idleness is bounded by a per-session read
//! timeout.

use crate::net::{Endpoint, Listener, Stream};
use crate::proto::{Flow, SessionProto};
use gsim_codegen::{AotOptions, ArtifactCache, ArtifactKey, CacheStats};
use gsim_sim::{
    ExploreOptions, Explorer, FaultPlan, GsimError, Scenario, Session, SessionFactory, SimOptions,
    Simulator, SuperviseOptions, SupervisedSession,
};
use std::collections::HashMap;
use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen.
    pub endpoint: Endpoint,
    /// Root of the on-disk artifact cache (also hosts the per-session
    /// scratch directories under `scratch/`).
    pub cache_dir: PathBuf,
    /// Artifact-cache capacity (entries) before LRU eviction.
    pub cache_capacity: usize,
    /// Maximum concurrent sessions; excess connections are refused
    /// with a `config` error.
    pub max_sessions: usize,
    /// Per-session idle bound: a connection with no traffic for this
    /// long is closed (`None` = unbounded).
    pub idle_timeout: Option<Duration>,
    /// Deterministic fault injection for the chaos suite (empty in
    /// production). Honoured by the artifact cache (publish faults),
    /// the session loop (`reset_session_at_cmd`,
    /// `panic_session_at_cmd`, `short_writes`), and the AoT child
    /// processes (`kill_child_at_cycle` / `stall_child_at_cycle`,
    /// first spawn only — respawns come up clean so recovery can
    /// succeed).
    pub faults: FaultPlan,
}

impl ServerConfig {
    /// Defaults: 64-entry cache, 64 sessions, 5-minute idle timeout.
    pub fn new(endpoint: Endpoint, cache_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            endpoint,
            cache_dir: cache_dir.into(),
            cache_capacity: ArtifactCache::DEFAULT_CAPACITY,
            max_sessions: 64,
            idle_timeout: Some(Duration::from_secs(300)),
            faults: FaultPlan::default(),
        }
    }
}

/// Point-in-time service counters (the `stats` wire line, typed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Connections accepted over the server's lifetime.
    pub sessions: u64,
    /// Currently connected sessions.
    pub active: u64,
    /// Session threads that panicked (caught at the `catch_unwind`
    /// boundary; the server keeps serving).
    pub panics: u64,
    /// AoT `design` requests degraded to the in-process `jit` backend
    /// because the compile failed.
    pub fallbacks: u64,
    /// Artifact-cache counters.
    pub cache: CacheStats,
}

impl ServiceStats {
    /// Renders the `stats …` wire line.
    pub fn render_wire(&self) -> String {
        format!(
            "stats sessions {} active {} hits {} misses {} compiles {} evictions {} panics {} fallbacks {}",
            self.sessions,
            self.active,
            self.cache.hits,
            self.cache.misses,
            self.cache.compiles,
            self.cache.evictions,
            self.panics,
            self.fallbacks
        )
    }

    /// Parses the `stats …` wire line ([`None`] if malformed).
    pub fn parse_wire(line: &str) -> Option<ServiceStats> {
        let mut it = line.split_whitespace();
        if it.next() != Some("stats") {
            return None;
        }
        let mut field = |name: &str| -> Option<u64> {
            (it.next()? == name)
                .then(|| it.next()?.parse().ok())
                .flatten()
        };
        Some(ServiceStats {
            sessions: field("sessions")?,
            active: field("active")?,
            cache: CacheStats {
                hits: field("hits")?,
                misses: field("misses")?,
                compiles: field("compiles")?,
                evictions: field("evictions")?,
            },
            panics: field("panics")?,
            fallbacks: field("fallbacks")?,
        })
    }
}

/// State shared between the accept loop and every session thread.
#[derive(Debug)]
struct Shared {
    cache: ArtifactCache,
    cfg: ServerConfig,
    /// Resolved listen endpoint (for the shutdown self-connect).
    endpoint: Endpoint,
    stop: AtomicBool,
    sessions_total: AtomicU64,
    active: AtomicU64,
    panics: AtomicU64,
    fallbacks: AtomicU64,
    next_id: AtomicU64,
    /// The session pool's roster: a writer clone per live connection,
    /// so shutdown can unblock every parked read.
    registry: Mutex<HashMap<u64, Stream>>,
}

impl Shared {
    fn stats(&self) -> ServiceStats {
        ServiceStats {
            sessions: self.sessions_total.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            cache: self.cache.stats(),
        }
    }

    /// Flips the stop flag, kicks every live session off its socket,
    /// and unblocks the accept loop with a self-connect.
    fn trigger_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Ok(registry) = self.registry.lock() {
            for stream in registry.values() {
                stream.shutdown();
            }
        }
        let _ = Stream::connect(&self.endpoint);
    }
}

/// A running simulation service. Dropping (or [`Server::stop`])
/// shuts it down gracefully: the listener exits, live sessions are
/// disconnected, their threads unwind.
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the endpoint, opens the artifact cache, and starts the
    /// accept loop.
    ///
    /// # Errors
    ///
    /// Returns the bind / cache-directory error.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let mut cache = ArtifactCache::new(&cfg.cache_dir, cfg.cache_capacity)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        cache.set_faults(cfg.faults.clone());
        let (listener, endpoint) = Listener::bind(&cfg.endpoint)?;
        let shared = Arc::new(Shared {
            cache,
            cfg,
            endpoint,
            stop: AtomicBool::new(false),
            sessions_total: AtomicU64::new(0),
            active: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            registry: Mutex::new(HashMap::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(&accept_shared, &listener));
        Ok(Server {
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The resolved listen endpoint (reports the picked port when the
    /// config asked for `127.0.0.1:0`).
    pub fn endpoint(&self) -> &Endpoint {
        &self.shared.endpoint
    }

    /// Current service counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats()
    }

    /// Blocks until the server stops on its own (a client's
    /// `shutdown` command), then cleans up — the `gsim serve`
    /// foreground mode.
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Drop runs `stop` for the registry/socket-file cleanup; the
        // accept thread is already joined.
    }

    /// Graceful shutdown: stop accepting, disconnect live sessions,
    /// join the accept loop.
    pub fn stop(&mut self) {
        self.shared.trigger_stop();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Endpoint::Unix(path) = &self.shared.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &Listener) {
    loop {
        let stream = match listener.accept() {
            Ok(s) => s,
            Err(_) if shared.stop.load(Ordering::SeqCst) => break,
            Err(_) => continue,
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        std::thread::spawn(move || serve_connection(&shared, stream, id));
    }
}

/// One session, cradle to grave: admission, registry, protocol loop,
/// cleanup.
fn serve_connection(shared: &Arc<Shared>, stream: Stream, id: u64) {
    // Admission: bounded session pool.
    let active = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
    if active > shared.cfg.max_sessions as u64 {
        let mut w = stream;
        let _ = writeln!(
            w,
            "{}",
            GsimError::Config("session limit reached".into()).to_wire()
        );
        shared.active.fetch_sub(1, Ordering::SeqCst);
        return;
    }
    shared.sessions_total.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_read_timeout(shared.cfg.idle_timeout);
    let registered = match stream.try_clone() {
        Ok(clone) => {
            if let Ok(mut reg) = shared.registry.lock() {
                reg.insert(id, clone);
            }
            true
        }
        Err(_) => false,
    };

    let scratch = shared.cfg.cache_dir.join("scratch").join(id.to_string());
    let _ = std::fs::create_dir_all(&scratch);

    // The protocol loop runs inside a `catch_unwind` boundary: a bug
    // (or an injected `panic_session_at_cmd`) in one session thread
    // must not take the process — and with it every other tenant —
    // down. The client is told with a typed `err backend` line on the
    // registry's writer clone; the pool slot is reclaimed below either
    // way.
    let panic_writer = stream.try_clone();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        session_loop(shared, stream, &scratch)
    }));
    if result.is_err() {
        shared.panics.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut w) = panic_writer {
            let _ = writeln!(
                w,
                "{}",
                GsimError::Backend("session thread panicked".into()).to_wire()
            );
            let _ = w.flush();
        }
    }

    // Cleanup is unconditional: pool slot, roster entry, scratch dir.
    shared.active.fetch_sub(1, Ordering::SeqCst);
    if registered {
        if let Ok(mut reg) = shared.registry.lock() {
            reg.remove(&id);
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
    let _ = result;
}

/// The session loop's write half, with the `short_writes` fault
/// applied: one byte per `write` call, so chaos tests prove every
/// client reassembles arbitrarily fragmented wire lines.
struct SessionWriter {
    stream: Stream,
    short: bool,
}

impl std::io::Write for SessionWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.short && !buf.is_empty() {
            self.stream.write(&buf[..1])
        } else {
            self.stream.write(buf)
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.stream.flush()
    }
}

fn session_loop(
    shared: &Arc<Shared>,
    stream: Stream,
    scratch: &std::path::Path,
) -> std::io::Result<()> {
    let faults = shared.cfg.faults.clone();
    let mut writer = SessionWriter {
        stream: stream.try_clone()?,
        short: faults.short_writes,
    };
    let mut reader = BufReader::new(stream);
    let mut proto = SessionProto::new();
    let mut session: Option<Box<dyn Session>> = None;
    let mut cmds: u64 = 0;

    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client hung up
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                let _ = writeln!(
                    writer,
                    "{}",
                    GsimError::Io("session idle timeout".into()).to_wire()
                );
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        let line = line.trim_end();
        if !line.is_empty() {
            cmds += 1;
            if faults.reset_session_at_cmd == Some(cmds) {
                // Injected connection reset: drop both stream halves
                // without a farewell, like a yanked network cable.
                return Ok(());
            }
            if faults.panic_session_at_cmd == Some(cmds) {
                panic!("injected fault: session panic at command {cmds}");
            }
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("design") => {
                let nbytes: usize = it.next().and_then(|v| v.parse().ok()).unwrap_or(0);
                let backend = it.next().unwrap_or("aot").to_string();
                let mut src = vec![0u8; nbytes];
                reader.read_exact(&mut src)?;
                let src = String::from_utf8_lossy(&src).into_owned();
                let start = Instant::now();
                match open_design(shared, &src, &backend, scratch) {
                    Ok((sess, key, status)) => {
                        session = Some(sess);
                        let ms = start.elapsed().as_millis();
                        writeln!(writer, "ready {key} {status} {ms}")?;
                    }
                    Err(e) => writeln!(writer, "{}", e.to_wire())?,
                }
                writer.flush()?;
            }
            Some("explore") => {
                let n: usize = it.next().and_then(|v| v.parse().ok()).unwrap_or(0);
                let nbytes: usize = it.next().and_then(|v| v.parse().ok()).unwrap_or(0);
                let mut payload = vec![0u8; nbytes];
                reader.read_exact(&mut payload)?;
                match session.as_deref_mut() {
                    Some(sess) => match run_explore(sess, &payload, n) {
                        Ok(report) => {
                            for b in &report.branches {
                                writeln!(writer, "{}", b.render_wire())?;
                            }
                            writeln!(writer, "ok {}", sess.cycle())?;
                        }
                        Err(e) => writeln!(writer, "{}", e.to_wire())?,
                    },
                    None => writeln!(
                        writer,
                        "{}",
                        GsimError::Protocol("no design loaded".into()).to_wire()
                    )?,
                }
                writer.flush()?;
            }
            Some("stats") => {
                writeln!(writer, "{}", shared.stats().render_wire())?;
                writer.flush()?;
            }
            Some("shutdown") => {
                let cycle = session.as_ref().map(|s| s.cycle()).unwrap_or(0);
                writeln!(writer, "ok {cycle}")?;
                writer.flush()?;
                shared.trigger_stop();
                return Ok(());
            }
            Some(_) => match session.as_deref_mut() {
                Some(sess) => {
                    if proto.handle_line(sess, line, &mut writer)? == Flow::Unhandled {
                        proto.reject(&GsimError::Protocol(format!("unknown command: {line}")));
                    }
                }
                // No design bound yet: queries answer immediately,
                // mutating commands queue, `sync` fences — same shape
                // as a bound session, so pipelined clients never hang.
                None => match line.split_whitespace().next() {
                    Some("sync") => proto.sync(0, &mut writer)?,
                    Some("peek" | "counters" | "snapshot" | "list") => {
                        writeln!(
                            writer,
                            "{}",
                            GsimError::Protocol("no design loaded".into()).to_wire()
                        )?;
                        writer.flush()?;
                    }
                    _ => proto.reject(&GsimError::Protocol("no design loaded".into())),
                },
            },
            None => {} // blank line
        }
    }
}

/// Serves one `explore <n> <nbytes>` request: parses the uploaded
/// scenario text, forks the open session's current state
/// ([`Session::clone_at_snapshot`] — CoW in-process forks for
/// interp/jit, sibling processes from the same cached binary for
/// AoT), and runs `n` perturbed branches. The session is handed back
/// at its pre-explore state, so the tenant continues where it left
/// off.
fn run_explore(
    sess: &mut dyn Session,
    payload: &[u8],
    n: usize,
) -> Result<gsim_sim::ExploreReport, GsimError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| GsimError::Protocol("scenario payload is not UTF-8".into()))?;
    let sc = Scenario::parse(text)?;
    Explorer::new(sess)
        .options(ExploreOptions::default())
        .run(&sc, n, None)
}

/// Compiles FIRRTL source into a session: through the artifact cache
/// for the AoT backend (the child process runs in the per-session
/// scratch directory), in-process for the interpreter.
///
/// The AoT path is fault-tolerant on both axes: the session is
/// wrapped in a [`SupervisedSession`] whose factory recompiles
/// through the cache (so a dead child respawns even after its
/// artifact was evicted), and a failed compile degrades to the
/// in-process `jit` backend with status `"fallback"` instead of
/// refusing the design.
fn open_design(
    shared: &Arc<Shared>,
    src: &str,
    backend: &str,
    scratch: &std::path::Path,
) -> Result<(Box<dyn Session>, String, &'static str), GsimError> {
    let graph = gsim_firrtl::compile(src).map_err(GsimError::Parse)?;
    let (optimized, _) = gsim_passes::run(graph, &gsim_passes::PassOptions::all());
    match backend {
        "interp" => {
            let sim = Simulator::compile(&optimized, &SimOptions::default())?;
            // No artifact for the interpreter; key the design source
            // itself so logs still correlate sessions on one design.
            let key = ArtifactKey::fingerprint(src).to_string();
            Ok((Box::new(sim), key, "interp"))
        }
        "jit" => {
            // In-process threaded-code backend: AoT-class dispatch with
            // no rustc in the loop, so a cache-miss upload is served in
            // milliseconds. No artifact, same source fingerprint.
            let sim = Simulator::compile(&optimized, &SimOptions::threaded())?;
            let key = ArtifactKey::fingerprint(src).to_string();
            Ok((Box::new(sim), key, "jit"))
        }
        "aot" => {
            // The factory compiles *inside* the supervisor so a
            // respawn after artifact eviction transparently rebuilds;
            // it reports key/status out through `info` so the initial
            // spawn is not double-compiled just to learn them. Child
            // faults apply to the first spawn only: a respawned child
            // that re-inherited `kill_child_at_cycle` would die again
            // and again until the recovery budget ran out.
            let info: Arc<Mutex<Option<(String, bool)>>> = Arc::new(Mutex::new(None));
            let factory_info = Arc::clone(&info);
            let factory_shared = Arc::clone(shared);
            let factory_graph = optimized.clone();
            let factory_scratch = scratch.to_path_buf();
            let mut first_spawn = true;
            let factory: SessionFactory = Box::new(move || {
                let sim = factory_shared
                    .cache
                    .compile(&factory_graph, &AotOptions::default())?;
                if let Ok(mut slot) = factory_info.lock() {
                    *slot = Some((
                        ArtifactKey::fingerprint(&sim.emit.code).to_string(),
                        sim.from_cache,
                    ));
                }
                let plan = if first_spawn {
                    factory_shared.cfg.faults.clone()
                } else {
                    FaultPlan::default()
                };
                first_spawn = false;
                let sess = sim.session_with(Some(&factory_scratch), &plan)?;
                Ok(Box::new(sess) as Box<dyn Session>)
            });
            match SupervisedSession::new(factory, SuperviseOptions::default()) {
                Ok(sup) => {
                    let (key, from_cache) = info
                        .lock()
                        .ok()
                        .and_then(|slot| slot.clone())
                        .unwrap_or_else(|| (ArtifactKey::fingerprint(src).to_string(), false));
                    let status = if from_cache { "hit" } else { "miss" };
                    Ok((Box::new(sup), key, status))
                }
                Err(_) => {
                    // Graceful degradation: serve the design anyway on
                    // the in-process threaded-code backend and say so.
                    shared.fallbacks.fetch_add(1, Ordering::Relaxed);
                    let sim = Simulator::compile(&optimized, &SimOptions::threaded())?;
                    let key = ArtifactKey::fingerprint(src).to_string();
                    Ok((Box::new(sim), key, "fallback"))
                }
            }
        }
        other => Err(GsimError::Config(format!(
            "unknown backend {other:?} (expected aot, interp, or jit)"
        ))),
    }
}
