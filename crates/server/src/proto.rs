//! The wire ↔ [`Session`] bridge: one implementation of the line
//! protocol's server side over any `Box<dyn Session>`, so the service
//! serves the AoT backend (a persistent compiled process) and the
//! interpreter engines through the same loop — and stays, by
//! construction, semantically identical to the protocol loop the
//! emitted binary runs in `--serve` mode.
//!
//! Semantics (documented in full on [`gsim_sim::Session`]): mutating
//! commands (`poke`, `load`, `step`, `restore`, `loadstate`, `trace`)
//! are silent on success and *queue* their errors; `sync` drains the
//! queue (in command order) and answers `ok <cycle>`; queries
//! (`peek`, `counters`, `snapshot`, `state`, `list`) answer exactly
//! one request each — `list` with its fixed three lines.
//!
//! Tracing: `trace on [<signal>…]` subscribes the connection to
//! value-change records. The bridge installs a
//! [`gsim_wave::LineSink`] over a [`gsim_wave::SharedBuf`] via
//! [`Session::trace_start`]; the session (any backend) feeds it, and
//! the bridge drains the buffered `chg <cycle> <name> <hex>` lines
//! onto the wire after every state-moving command — so, exactly as in
//! the emitted binary's `--serve` loop, unsolicited records always
//! precede the next command response that could observe the
//! post-change state.

use gsim_sim::{GsimError, Session};
use gsim_value::Value;
use gsim_wave::{LineSink, SharedBuf};
use std::io::Write;

/// What [`SessionProto::handle_line`] did with a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// The line was a simulation-protocol command and was processed.
    Handled,
    /// Not a simulation-protocol command; the caller owns it (the
    /// service layer handles `design`/`stats`/`shutdown` and rejects
    /// the rest via [`SessionProto::reject`]).
    Unhandled,
}

/// Per-connection protocol state: the queued-error buffer that gives
/// mutating commands their pipelined, silent-on-success semantics,
/// plus the active trace subscription's staging buffer.
#[derive(Debug, Default)]
pub struct SessionProto {
    queued: Vec<String>,
    /// `Some` while a `trace on` subscription is active: the shared
    /// buffer the session's [`gsim_wave::LineSink`] writes `chg`
    /// records into, drained onto the wire between commands.
    trace_buf: Option<SharedBuf>,
}

impl SessionProto {
    /// Fresh per-connection state.
    pub fn new() -> SessionProto {
        SessionProto::default()
    }

    /// Queues an error against the next `sync` fence (used for
    /// mutating commands and protocol violations).
    pub fn reject(&mut self, e: &GsimError) {
        self.queued.push(e.to_wire());
    }

    /// Drains any `chg` records the active trace sink staged since
    /// the last drain onto the wire, keeping the protocol's ordering
    /// guarantee: records precede the next response that could
    /// observe the post-change state.
    fn drain_trace(&mut self, out: &mut impl Write) -> std::io::Result<()> {
        if let Some(buf) = &self.trace_buf {
            if !buf.is_empty() {
                out.write_all(&buf.drain())?;
                out.flush()?;
            }
        }
        Ok(())
    }

    /// Answers `sync`: queued errors in command order, then
    /// `ok <cycle>`.
    pub fn sync(&mut self, cycle: u64, out: &mut impl Write) -> std::io::Result<()> {
        self.drain_trace(out)?;
        for line in self.queued.drain(..) {
            writeln!(out, "{line}")?;
        }
        writeln!(out, "ok {cycle}")?;
        out.flush()
    }

    /// Dispatches one protocol line against `sess`, writing any
    /// response to `out`.
    ///
    /// # Errors
    ///
    /// Only transport ([`std::io::Error`]) failures propagate;
    /// simulation errors travel the protocol as `err` lines.
    pub fn handle_line(
        &mut self,
        sess: &mut dyn Session,
        line: &str,
        out: &mut impl Write,
    ) -> std::io::Result<Flow> {
        let mut it = line.split_whitespace();
        match it.next() {
            Some("poke") => {
                let (Some(name), Some(hex)) = (it.next(), it.next()) else {
                    self.queued
                        .push(GsimError::Protocol(format!("bad poke: {line}")).to_wire());
                    return Ok(Flow::Handled);
                };
                // Parse at the hex digits' natural width; the backend
                // zero-extends or truncates to the input's declared
                // width (the trait's poke contract).
                let width = (hex.len() as u32 * 4).max(1);
                match Value::from_str_radix(hex, 16, width) {
                    Ok(v) => {
                        if let Err(e) = sess.poke(name, v) {
                            self.queued.push(e.to_wire());
                        }
                    }
                    Err(_) => self
                        .queued
                        .push(GsimError::Protocol(format!("bad poke value: {hex}")).to_wire()),
                }
            }
            Some("load") => {
                let Some(name) = it.next() else {
                    self.queued
                        .push(GsimError::Protocol(format!("bad load: {line}")).to_wire());
                    return Ok(Flow::Handled);
                };
                let mut image = Vec::new();
                let mut bad = false;
                for tok in it {
                    match u64::from_str_radix(tok, 16) {
                        Ok(w) => image.push(w),
                        Err(_) => {
                            bad = true;
                            break;
                        }
                    }
                }
                if bad {
                    self.queued
                        .push(GsimError::Protocol(format!("bad load word in: {line}")).to_wire());
                } else if let Err(e) = sess.load_mem(name, &image) {
                    self.queued.push(e.to_wire());
                }
            }
            Some("step") => {
                let n = it.next().and_then(|v| v.parse().ok()).unwrap_or(1);
                if let Err(e) = sess.step(n) {
                    self.queued.push(e.to_wire());
                }
                self.drain_trace(out)?;
            }
            Some("restore") => {
                let raw: u64 = it.next().and_then(|v| v.parse().ok()).unwrap_or(u64::MAX);
                if let Err(e) = sess.restore(gsim_sim::SnapshotId::from_raw(raw)) {
                    self.queued.push(e.to_wire());
                }
                self.drain_trace(out)?;
            }
            Some("peek") => {
                let name = it.next().unwrap_or("");
                match sess.peek(name) {
                    Ok(v) => writeln!(out, "val {} {v:x}", v.width())?,
                    Err(e) => writeln!(out, "{}", e.to_wire())?,
                }
                out.flush()?;
            }
            Some("counters") => {
                match sess.counters() {
                    Ok(c) => writeln!(
                        out,
                        "counters {} {} {} {}",
                        c.cycles, c.supernode_evals, c.node_evals, c.value_changes
                    )?,
                    Err(e) => writeln!(out, "{}", e.to_wire())?,
                }
                out.flush()?;
            }
            Some("snapshot") => {
                match sess.snapshot() {
                    Ok(id) => writeln!(out, "snap {}", id.raw())?,
                    Err(e) => writeln!(out, "{}", e.to_wire())?,
                }
                out.flush()?;
            }
            Some("state") => {
                match sess.export_state() {
                    Ok(Some(blob)) => writeln!(
                        out,
                        "state {} {}",
                        sess.cycle(),
                        String::from_utf8_lossy(&blob)
                    )?,
                    Ok(None) => writeln!(
                        out,
                        "{}",
                        GsimError::Config("this backend does not export state".into()).to_wire()
                    )?,
                    Err(e) => writeln!(out, "{}", e.to_wire())?,
                }
                out.flush()?;
            }
            Some("loadstate") => {
                let blob = it.next().unwrap_or("");
                if let Err(e) = sess.import_state(blob.as_bytes()) {
                    self.queued.push(e.to_wire());
                }
                self.drain_trace(out)?;
            }
            Some("trace") => match it.next() {
                Some("on") => {
                    if self.trace_buf.is_some() {
                        self.queued.push(
                            GsimError::Config("a trace is already active on this session".into())
                                .to_wire(),
                        );
                        return Ok(Flow::Handled);
                    }
                    let names: Vec<String> = it.map(str::to_string).collect();
                    let buf = SharedBuf::new();
                    // The session validates the subset (typed
                    // `unknown-signal` surfaces at the next fence) and
                    // writes the baseline burst into the sink on
                    // success; drain it so the burst precedes
                    // everything that follows.
                    match sess.trace_start(
                        (!names.is_empty()).then_some(names.as_slice()),
                        Box::new(LineSink::new(buf.clone())),
                    ) {
                        Ok(()) => {
                            self.trace_buf = Some(buf);
                            self.drain_trace(out)?;
                        }
                        Err(e) => self.queued.push(e.to_wire()),
                    }
                }
                Some("off") => {
                    if self.trace_buf.is_none() {
                        self.queued.push(
                            GsimError::Config("no trace is active on this session".into())
                                .to_wire(),
                        );
                        return Ok(Flow::Handled);
                    }
                    if let Err(e) = sess.trace_stop() {
                        self.queued.push(e.to_wire());
                    }
                    // Flush whatever the sink staged up to the stop,
                    // then drop the subscription.
                    self.drain_trace(out)?;
                    self.trace_buf = None;
                }
                _ => self
                    .queued
                    .push(GsimError::Protocol(format!("bad trace: {line}")).to_wire()),
            },
            Some("list") => {
                match (sess.inputs(), sess.signals(), sess.memories()) {
                    (Ok(ins), Ok(sigs), Ok(mems)) => {
                        let fmt_sigs = |v: &[gsim_sim::SignalInfo]| {
                            v.iter()
                                .map(|s| format!(" {}:{}", s.name, s.width))
                                .collect::<String>()
                        };
                        writeln!(out, "inputs{}", fmt_sigs(&ins))?;
                        writeln!(out, "signals{}", fmt_sigs(&sigs))?;
                        let mems: String = mems
                            .iter()
                            .map(|m| format!(" {}:{}:{}", m.name, m.depth, m.width))
                            .collect();
                        writeln!(out, "mems{mems}")?;
                    }
                    (r, s, m) => {
                        let e = [
                            r.err().map(|e| e.to_wire()),
                            s.err().map(|e| e.to_wire()),
                            m.err().map(|e| e.to_wire()),
                        ]
                        .into_iter()
                        .flatten()
                        .next()
                        .expect("at least one error");
                        writeln!(out, "{e}")?;
                    }
                }
                out.flush()?;
            }
            Some("sync") => self.sync(sess.cycle(), out)?,
            _ => return Ok(Flow::Unhandled),
        }
        Ok(Flow::Handled)
    }
}
