//! Property tests: the full pass pipeline preserves cycle-accurate
//! behaviour on randomly generated circuits (outputs compared against
//! the unoptimized graph in the reference interpreter).

use gsim_graph::interp::RefInterp;
use gsim_graph::{Expr, Graph, GraphBuilder, NodeId, PrimOp};
use gsim_passes::{run, PassOptions};
use gsim_value::Value;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Plan {
    ops: Vec<(u8, u16, u16, u8)>,
    stimulus: Vec<u64>,
}

fn plan() -> impl Strategy<Value = Plan> {
    (
        proptest::collection::vec(
            (any::<u8>(), any::<u16>(), any::<u16>(), any::<u8>()),
            4..40,
        ),
        proptest::collection::vec(any::<u64>(), 6..16),
    )
        .prop_map(|(ops, stimulus)| Plan { ops, stimulus })
}

/// Builds a random but always-valid circuit with slicing/concat shapes
/// (bit-split fodder), constants (folding fodder), shared subtrees
/// (inline/extract fodder), and registers with reset (reset-pass
/// fodder).
fn build_graph(p: &Plan) -> Graph {
    let mut b = GraphBuilder::new("rand");
    let rst = b.input("rst", 1, false);
    let a = b.input("a", 16, false);
    let c = b.input("c", 16, false);
    let mut pool: Vec<(NodeId, u32)> = vec![(a, 16), (c, 16)];
    for (i, &(op, s1, s2, k)) in p.ops.iter().enumerate() {
        let (x, wx) = pool[s1 as usize % pool.len()];
        let (y, wy) = pool[s2 as usize % pool.len()];
        let rx = Expr::reference(x, wx, false);
        let ry = Expr::reference(y, wy, false);
        let e = match op % 8 {
            0 => Expr::prim(PrimOp::Cat, vec![rx, ry], vec![]).unwrap(),
            1 => {
                let hi = k as u32 % wx;
                Expr::prim(PrimOp::Bits, vec![rx], vec![hi, hi.min(hi / 2)]).unwrap()
            }
            2 => Expr::prim(PrimOp::Xor, vec![rx, ry], vec![]).unwrap(),
            3 => Expr::prim(
                PrimOp::And,
                vec![rx, Expr::constant(Value::from_u64(k as u64, wx))],
                vec![],
            )
            .unwrap(),
            4 => Expr::truncate(Expr::prim(PrimOp::Add, vec![rx, ry], vec![]).unwrap(), 16),
            5 => Expr::prim(PrimOp::Not, vec![rx], vec![]).unwrap(),
            6 => {
                let sel = Expr::prim(PrimOp::Orr, vec![rx], vec![]).unwrap();
                Expr::prim(PrimOp::Mux, vec![sel, ry.clone(), ry], vec![]).unwrap()
            }
            _ => Expr::prim(PrimOp::Orr, vec![rx], vec![]).unwrap(),
        };
        let w = e.width;
        if op.is_multiple_of(5) && w <= 64 {
            let r = b.reg_with_reset(format!("r{i}"), w, false, rst, Value::from_u64(k as u64, w));
            b.set_reg_next(r, e);
            pool.push((r, w));
        } else {
            pool.push((b.comb(format!("n{i}"), e), w));
        }
    }
    for (i, &(id, w)) in pool.iter().rev().take(3).enumerate() {
        b.output(format!("out{i}"), Expr::reference(id, w, false));
    }
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn full_pipeline_preserves_behaviour(p in plan()) {
        let original = build_graph(&p);
        let (optimized, _) = run(original.clone(), &PassOptions::all());
        optimized.validate().unwrap();

        let mut ref_sim = RefInterp::new(&original).unwrap();
        let mut opt_sim = RefInterp::new(&optimized).unwrap();
        for (cycle, &stim) in p.stimulus.iter().enumerate() {
            for sim in [&mut ref_sim, &mut opt_sim] {
                sim.poke_u64("a", stim & 0xffff).unwrap();
                sim.poke_u64("c", stim >> 16 & 0xffff).unwrap();
                sim.poke_u64("rst", u64::from(stim % 11 == 0)).unwrap();
                sim.step();
            }
            for o in ["out0", "out1", "out2"] {
                prop_assert_eq!(
                    ref_sim.peek(o),
                    opt_sim.peek(o),
                    "{} diverged at cycle {} ({} -> {} nodes)",
                    o, cycle, original.num_nodes(), optimized.num_nodes()
                );
            }
        }
    }

    #[test]
    fn listing5_and_listing6_reset_forms_agree(p in plan()) {
        // reset in the fast path (mux) vs metadata for the slow path
        let graph = build_graph(&p);
        let (fast, _) = run(graph.clone(), &PassOptions { reset_slow_path: false, ..PassOptions::all() });
        let (slow, _) = run(graph, &PassOptions { reset_slow_path: true, ..PassOptions::all() });
        let mut s_fast = RefInterp::new(&fast).unwrap();
        let mut s_slow = RefInterp::new(&slow).unwrap();
        for &stim in &p.stimulus {
            for sim in [&mut s_fast, &mut s_slow] {
                sim.poke_u64("a", stim & 0xffff).unwrap();
                sim.poke_u64("c", stim >> 16 & 0xffff).unwrap();
                sim.poke_u64("rst", u64::from(stim % 3 == 0)).unwrap();
                sim.step();
            }
            for o in ["out0", "out1", "out2"] {
                prop_assert_eq!(s_fast.peek(o), s_slow.peek(o));
            }
        }
    }
}
