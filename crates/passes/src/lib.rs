//! Node-level and bit-level optimization passes (GSIM paper §III-B/C).
//!
//! Each pass is a graph-to-graph transformation that preserves
//! cycle-accurate behaviour (the differential tests in this crate and in
//! `tests/` check every pass against the reference interpreter):
//!
//! * [`simplify`] — expression simplification: constant folding,
//!   algebraic identities, and pattern recognition such as the one-hot
//!   `bits(dshl(1, a), k, k)` → `eq(a, k)` rewrite from the paper.
//! * [`redundant`] — redundant-node elimination: alias nodes, dead
//!   nodes, shorted nodes (via folding + dead-code removal), and unused
//!   self-updating registers (§III-B, Figure 2).
//! * [`inline`] — node inlining vs extraction driven by the paper's
//!   cost model `cost(f) × #refs > cost(f) + cost_node` (§III-B,
//!   Figure 3), including common-subexpression extraction.
//! * [`bitsplit`] — bit-level node splitting along consumers' bit-slice
//!   boundaries (§III-C, Figure 4), reducing the activity factor when
//!   only some bits of a wide signal change.
//! * [`reset`] — lowering register resets into next-value muxes; this is
//!   the *unoptimized* form (Listing 5). Keeping `RegReset` metadata and
//!   letting the engine check reset once per cycle (Listing 6) is GSIM's
//!   reset-handling optimization, so this pass is applied when that
//!   optimization is *disabled*.
//!
//! [`run`] applies a configured pipeline in a sensible fixed order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitsplit;
pub mod inline;
pub mod rebuild;
pub mod redundant;
pub mod reset;
pub mod simplify;

use gsim_graph::Graph;

/// Which passes to run; one flag per paper technique so the Figure 8
/// breakdown can enable them incrementally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassOptions {
    /// Expression simplification (constant folding, identities,
    /// one-hot pattern recognition).
    pub expression_simplify: bool,
    /// Redundant node elimination (alias/dead/shorted/unused-reg).
    pub redundant_elim: bool,
    /// Inline cheap single-use logic into its consumers.
    pub node_inline: bool,
    /// Extract common subexpressions into shared nodes.
    pub node_extract: bool,
    /// Split multi-bit nodes along consumer slice boundaries.
    pub bit_split: bool,
    /// Keep `RegReset` metadata for the engine's slow path (`true`) or
    /// lower resets into per-register muxes (`false`, Listing 5).
    pub reset_slow_path: bool,
}

impl PassOptions {
    /// Everything off: the unoptimized baseline of Figure 8.
    pub fn none() -> PassOptions {
        PassOptions {
            expression_simplify: false,
            redundant_elim: false,
            node_inline: false,
            node_extract: false,
            bit_split: false,
            reset_slow_path: false,
        }
    }

    /// Everything on: the full GSIM pipeline.
    pub fn all() -> PassOptions {
        PassOptions {
            expression_simplify: true,
            redundant_elim: true,
            node_inline: true,
            node_extract: true,
            bit_split: true,
            reset_slow_path: true,
        }
    }
}

impl Default for PassOptions {
    fn default() -> Self {
        PassOptions::all()
    }
}

/// Counters describing what the pipeline did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Expressions rewritten by simplification.
    pub simplified: usize,
    /// Alias nodes forwarded.
    pub aliases_removed: usize,
    /// Dead nodes removed (includes shorted nodes and unused registers).
    pub dead_removed: usize,
    /// Nodes inlined into their consumers.
    pub inlined: usize,
    /// Common subexpressions extracted into new nodes.
    pub extracted: usize,
    /// Nodes split at the bit level.
    pub bit_split: usize,
    /// Registers whose reset was lowered to a mux (reset optimization
    /// disabled).
    pub resets_lowered: usize,
}

/// Runs the configured pass pipeline.
///
/// Order: simplify → redundant elimination → inline/extract → bit split
/// → cleanup (simplify + redundant elimination again), with the reset
/// lowering applied first when the slow path is disabled.
pub fn run(mut graph: Graph, opts: &PassOptions) -> (Graph, PassStats) {
    let mut stats = PassStats::default();
    if !opts.reset_slow_path {
        stats.resets_lowered = reset::lower_resets_to_mux(&mut graph);
    }
    if opts.expression_simplify {
        stats.simplified += simplify::simplify(&mut graph);
    }
    if opts.redundant_elim {
        let r = redundant::eliminate(&mut graph);
        stats.aliases_removed += r.aliases;
        stats.dead_removed += r.dead;
    }
    if opts.node_inline {
        stats.inlined += inline::inline_cheap(&mut graph);
        if opts.redundant_elim {
            let r = redundant::eliminate(&mut graph);
            stats.aliases_removed += r.aliases;
            stats.dead_removed += r.dead;
        }
    }
    if opts.node_extract {
        stats.extracted += inline::extract_common(&mut graph);
    }
    if opts.bit_split {
        stats.bit_split += bitsplit::split(&mut graph);
        // bit splitting leaves aliases and slack; clean up.
        if opts.expression_simplify {
            stats.simplified += simplify::simplify(&mut graph);
        }
        if opts.redundant_elim {
            let r = redundant::eliminate(&mut graph);
            stats.aliases_removed += r.aliases;
            stats.dead_removed += r.dead;
        }
    }
    (graph, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_firrtl::compile;

    #[test]
    fn full_pipeline_shrinks_and_preserves_interface() {
        let g = compile(
            r#"
circuit T :
  module T :
    input clock : Clock
    input a : UInt<8>
    output y : UInt<8>
    node t1 = and(a, UInt<8>(255))
    node t2 = or(t1, UInt<8>(0))
    node unused = xor(a, UInt<8>(3))
    y <= t2
"#,
        )
        .unwrap();
        let before = g.num_nodes();
        let (g2, stats) = run(g, &PassOptions::all());
        assert!(g2.num_nodes() < before);
        assert!(stats.dead_removed > 0 || stats.aliases_removed > 0);
        assert!(g2.node_by_name("a").is_some());
        assert!(g2.node_by_name("y").is_some());
        g2.validate().unwrap();
    }

    #[test]
    fn none_options_do_nothing_but_reset_lowering_off() {
        let g = compile(
            r#"
circuit T :
  module T :
    input a : UInt<4>
    output y : UInt<4>
    y <= a
"#,
        )
        .unwrap();
        let n = g.num_nodes();
        let (g2, stats) = run(g, &PassOptions::none());
        // reset_slow_path=false lowers resets, but there are none here.
        assert_eq!(g2.num_nodes(), n);
        assert_eq!(stats.resets_lowered, 0);
    }
}
