//! Register reset lowering (paper §III-B "Reset handling optimization").
//!
//! GSIM's optimized form (Listing 6) keeps reset *out* of the register's
//! next-value expression: the engine updates registers speculatively and
//! checks each distinct reset signal once per cycle on a slow path. That
//! form is the graph's native representation ([`gsim_graph::RegReset`]
//! metadata).
//!
//! This pass produces the *unoptimized* form (Listing 5) used as the
//! baseline: every register's next value becomes
//! `mux(reset, init, next)`, so the reset signal is re-checked for every
//! register on every evaluation — exactly the overhead the paper's
//! optimization removes.

use gsim_graph::{Expr, Graph, NodeKind, PrimOp};

/// Lowers every `RegReset` into a mux in the register's next-value
/// expression. Returns the number of registers rewritten.
pub fn lower_resets_to_mux(graph: &mut Graph) -> usize {
    let ids: Vec<_> = graph.node_ids().collect();
    let mut count = 0;
    for id in ids {
        let node = graph.node(id);
        let NodeKind::Reg { reset: Some(r) } = &node.kind else {
            continue;
        };
        let (signal, init) = (r.signal, r.init.clone());
        let (w, s) = (node.width, node.signed);
        let next = node.expr.clone().expect("register has next expression");
        let init_expr = if s {
            Expr::constant_signed(init)
        } else {
            Expr::constant(init)
        };
        let sig_node = graph.node(signal);
        let sel = Expr::reference(signal, sig_node.width, sig_node.signed);
        // Reset signals are 1-bit UInt by construction; be defensive
        // about odd inputs by reducing wider signals with orr.
        let sel = if sel.width == 1 && !sel.signed {
            sel
        } else {
            Expr::prim(PrimOp::Orr, vec![sel], vec![]).expect("orr")
        };
        let mux = Expr::prim(PrimOp::Mux, vec![sel, init_expr, next], vec![]).expect("reset mux");
        debug_assert_eq!(mux.width, w);
        let node = graph.node_mut(id);
        node.expr = Some(mux);
        node.kind = NodeKind::Reg { reset: None };
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_firrtl::compile;
    use gsim_graph::interp::RefInterp;

    #[test]
    fn lowered_reset_behaves_identically() {
        let g1 = compile(
            r#"
circuit R :
  module R :
    input clock : Clock
    input reset : UInt<1>
    output q : UInt<8>
    reg c : UInt<8>, clock with : (reset => (reset, UInt<8>(100)))
    c <= tail(add(c, UInt<8>(1)), 1)
    q <= c
"#,
        )
        .unwrap();
        let mut g2 = g1.clone();
        let n = lower_resets_to_mux(&mut g2);
        assert_eq!(n, 1);
        g2.validate().unwrap();
        // No RegReset metadata remains.
        for (_, node) in g2.iter() {
            assert!(!matches!(node.kind, NodeKind::Reg { reset: Some(_) }));
        }

        let mut s1 = RefInterp::new(&g1).unwrap();
        let mut s2 = RefInterp::new(&g2).unwrap();
        let stimulus = [0u64, 0, 1, 0, 0, 1, 1, 0, 0, 0];
        for rst in stimulus {
            s1.poke_u64("reset", rst).unwrap();
            s2.poke_u64("reset", rst).unwrap();
            s1.step();
            s2.step();
            assert_eq!(s1.peek_u64("q"), s2.peek_u64("q"));
        }
    }

    #[test]
    fn no_reset_registers_untouched() {
        let mut g = compile(
            r#"
circuit P :
  module P :
    input clock : Clock
    input a : UInt<4>
    output q : UInt<4>
    reg r : UInt<4>, clock
    r <= a
    q <= r
"#,
        )
        .unwrap();
        assert_eq!(lower_resets_to_mux(&mut g), 0);
    }
}
