//! Graph rebuilding with node-id remapping (shared by elimination and
//! splitting passes).

use gsim_graph::{Expr, ExprKind, Graph, Mem, MemId, Node, NodeId, NodeKind};

/// Rebuilds `graph`, keeping only nodes where `keep[i]` is true, and
/// remapping all references. Memories with no surviving ports are
/// dropped.
///
/// # Panics
///
/// Panics if a kept node references a dropped node (pass bug).
pub fn retain_nodes(graph: &Graph, keep: &[bool]) -> Graph {
    assert_eq!(keep.len(), graph.num_nodes());
    let mut remap: Vec<Option<NodeId>> = vec![None; graph.num_nodes()];
    let mut new_index = 0usize;
    for (i, &k) in keep.iter().enumerate() {
        if k {
            remap[i] = Some(NodeId::from_index(new_index));
            new_index += 1;
        }
    }

    // Figure out which memories survive (any port kept).
    let mut mem_used = vec![false; graph.mems().len()];
    for (id, node) in graph.iter() {
        if !keep[id.index()] {
            continue;
        }
        match node.kind {
            NodeKind::MemRead { mem } | NodeKind::MemWrite { mem } => {
                mem_used[mem.index()] = true;
            }
            _ => {}
        }
    }
    let mut mem_remap: Vec<Option<MemId>> = vec![None; graph.mems().len()];
    let mut new_mems: Vec<Mem> = Vec::new();
    for (i, used) in mem_used.iter().enumerate() {
        if *used {
            mem_remap[i] = Some(MemId::from_index(new_mems.len()));
            new_mems.push(graph.mems()[i].clone());
        }
    }

    let remap_expr = |e: &Expr| -> Expr {
        let mut out = e.clone();
        out.visit_mut(&mut |sub| {
            if let ExprKind::Ref(id) = &mut sub.kind {
                *id = remap[id.index()]
                    .unwrap_or_else(|| panic!("kept node references dropped node {id}"));
            }
        });
        out
    };

    let mut out = Graph::default();
    out.set_name(graph.name());
    for m in new_mems {
        out.push_mem(m);
    }
    for (id, node) in graph.iter() {
        if !keep[id.index()] {
            continue;
        }
        let kind = match &node.kind {
            NodeKind::Reg { reset } => NodeKind::Reg {
                reset: reset.as_ref().map(|r| gsim_graph::RegReset {
                    signal: remap[r.signal.index()]
                        .expect("reset signal of kept register must survive"),
                    init: r.init.clone(),
                }),
            },
            NodeKind::MemRead { mem } => NodeKind::MemRead {
                mem: mem_remap[mem.index()].expect("port mem survives"),
            },
            NodeKind::MemWrite { mem } => NodeKind::MemWrite {
                mem: mem_remap[mem.index()].expect("port mem survives"),
            },
            other => other.clone(),
        };
        out.push_node(Node {
            name: node.name.clone(),
            kind,
            width: node.width,
            signed: node.signed,
            expr: node.expr.as_ref().map(remap_expr),
            write: node.write.as_ref().map(|w| {
                Box::new(gsim_graph::node::MemWriteOperands {
                    addr: remap_expr(&w.addr),
                    data: remap_expr(&w.data),
                    en: remap_expr(&w.en),
                })
            }),
        });
    }
    out
}

/// Replaces every reference to `from` with a reference to `to`
/// throughout the graph (alias forwarding). Also fixes register reset
/// signals.
pub fn redirect_refs(graph: &mut Graph, forward: &[Option<NodeId>]) {
    let resolve = |mut id: NodeId| -> NodeId {
        // Follow forwarding chains (alias of alias).
        let mut hops = 0;
        while let Some(next) = forward[id.index()] {
            id = next;
            hops += 1;
            assert!(hops <= forward.len(), "alias cycle");
        }
        id
    };
    let ids: Vec<NodeId> = graph.node_ids().collect();
    for id in ids {
        let node = graph.node_mut(id);
        if let Some(e) = &mut node.expr {
            e.visit_mut(&mut |sub| {
                if let ExprKind::Ref(r) = &mut sub.kind {
                    *r = resolve(*r);
                }
            });
        }
        if let Some(w) = &mut node.write {
            for e in [&mut w.addr, &mut w.data, &mut w.en] {
                e.visit_mut(&mut |sub| {
                    if let ExprKind::Ref(r) = &mut sub.kind {
                        *r = resolve(*r);
                    }
                });
            }
        }
        if let NodeKind::Reg { reset: Some(r) } = &mut node.kind {
            r.signal = resolve(r.signal);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_graph::{Expr, GraphBuilder};

    #[test]
    fn retain_drops_and_remaps() {
        let mut b = GraphBuilder::new("t");
        let a = b.input("a", 4, false);
        let dead = b.comb("dead", Expr::reference(a, 4, false));
        let alive = b.comb("alive", Expr::reference(a, 4, false));
        b.output("y", Expr::reference(alive, 4, false));
        let g = b.finish().unwrap();

        let mut keep = vec![true; g.num_nodes()];
        keep[dead.index()] = false;
        let g2 = retain_nodes(&g, &keep);
        assert_eq!(g2.num_nodes(), 3);
        g2.validate().unwrap();
        assert!(g2.node_by_name("dead").is_none());
        assert!(g2.node_by_name("alive").is_some());
    }

    #[test]
    fn redirect_follows_chains() {
        let mut b = GraphBuilder::new("t");
        let a = b.input("a", 4, false);
        let al1 = b.comb("al1", Expr::reference(a, 4, false));
        let al2 = b.comb("al2", Expr::reference(al1, 4, false));
        b.output("y", Expr::reference(al2, 4, false));
        let mut g = b.finish().unwrap();

        let mut fwd = vec![None; g.num_nodes()];
        fwd[al2.index()] = Some(al1);
        fwd[al1.index()] = Some(a);
        redirect_refs(&mut g, &fwd);
        let y = g.node_by_name("y").unwrap();
        assert_eq!(g.node(y).expr.as_ref().unwrap().as_ref_node(), Some(a));
    }
}
