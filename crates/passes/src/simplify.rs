//! Expression simplification (paper §III-B "Expression simplification").
//!
//! Bottom-up rewriting of every expression in the graph:
//!
//! * constant folding (all-constant operand trees collapse),
//! * algebraic identities (`x & 0`, `x | 0`, `x ^ 0`, `mux` with a
//!   constant selector, double negation, nested `bits`, full-width
//!   `bits`, shifts by zero, ...),
//! * the paper's one-hot pattern: a node `B = dshl(1, A)` consumed as
//!   `bits(B, k, k)` rewrites to `eq(A, k)`, eliminating the dynamic
//!   shift from the hot path of decoder logic.

use gsim_graph::{Expr, ExprKind, Graph, NodeId, PrimOp};
use gsim_value::Value;

/// Simplifies all expressions in the graph, including cross-node
/// constant propagation (a node that folds to a constant is substituted
/// into its users). Returns the number of rewrites applied.
pub fn simplify(graph: &mut Graph) -> usize {
    let mut total = 0;
    // Iterate: folding node A to a constant can unlock folding in its
    // users on the next round. Bounded to keep worst cases linear.
    for _ in 0..8 {
        let n = simplify_round(graph) + propagate_constants(graph);
        total += n;
        if n == 0 {
            break;
        }
    }
    total
}

/// Substitutes references to constant-valued combinational nodes with
/// their constant. Returns the number of substitutions.
fn propagate_constants(graph: &mut Graph) -> usize {
    let consts: Vec<Option<Expr>> = graph
        .node_ids()
        .map(|id| {
            let node = graph.node(id);
            // Only plain comb logic: registers hold state, memory reads
            // are port semantics, outputs are sinks.
            if !matches!(node.kind, gsim_graph::NodeKind::Comb) {
                return None;
            }
            let e = node.expr.as_ref()?;
            e.is_const().then(|| e.clone())
        })
        .collect();
    if consts.iter().all(Option::is_none) {
        return 0;
    }
    let mut count = 0;
    let ids: Vec<NodeId> = graph.node_ids().collect();
    for id in ids {
        let replace = |e: &mut Expr, count: &mut usize| {
            e.visit_mut(&mut |sub| {
                if let ExprKind::Ref(r) = &sub.kind {
                    if let Some(c) = &consts[r.index()] {
                        if r.index() != id.index() {
                            *sub = c.clone();
                            *count += 1;
                        }
                    }
                }
            });
        };
        let node = graph.node(id);
        if node.expr.is_some() {
            let mut e = graph.node(id).expr.clone().expect("checked");
            replace(&mut e, &mut count);
            graph.node_mut(id).expr = Some(e);
        }
        let node = graph.node(id);
        if node.write.is_some() {
            let mut w = graph.node(id).write.clone().expect("checked");
            replace(&mut w.addr, &mut count);
            replace(&mut w.data, &mut count);
            replace(&mut w.en, &mut count);
            graph.node_mut(id).write = Some(w);
        }
    }
    count
}

fn simplify_round(graph: &mut Graph) -> usize {
    let mut total = 0;
    // Snapshot node exprs for cross-node patterns (one-hot detection
    // looks through references at their *pre-pass* definitions, which is
    // safe because both forms are equivalent).
    let defs: Vec<Option<Expr>> = graph
        .node_ids()
        .map(|id| graph.node(id).expr.clone())
        .collect();
    let ids: Vec<NodeId> = graph.node_ids().collect();
    for id in ids {
        let node = graph.node(id);
        let kind_is_mem_read = matches!(node.kind, gsim_graph::NodeKind::MemRead { .. });
        if let Some(e) = node.expr.clone() {
            let (e2, n) = rewrite(e, &defs);
            total += n;
            if n > 0 {
                if kind_is_mem_read {
                    // address expression; width may legally differ
                    graph.node_mut(id).expr = Some(e2);
                } else {
                    debug_assert_eq!(e2.width, graph.node(id).width);
                    graph.node_mut(id).expr = Some(e2);
                }
            }
        }
        let node = graph.node(id);
        if let Some(w) = node.write.clone() {
            let mut w = w;
            let mut n = 0;
            let (addr, n1) = rewrite(w.addr, &defs);
            let (data, n2) = rewrite(w.data, &defs);
            let (en, n3) = rewrite(w.en, &defs);
            n += n1 + n2 + n3;
            if n > 0 {
                w.addr = addr;
                w.data = data;
                w.en = en;
                graph.node_mut(id).write = Some(w);
            }
            total += n;
        }
    }
    total
}

/// Rewrites one expression bottom-up. Returns the new expression and the
/// number of rewrites applied. The result always has the same width and
/// signedness as the input.
fn rewrite(e: Expr, defs: &[Option<Expr>]) -> (Expr, usize) {
    let (width, signed) = (e.width, e.signed);
    match e.kind {
        ExprKind::Const(_) | ExprKind::Ref(_) => (e, 0),
        ExprKind::Prim(op, args, params) => {
            let mut count = 0;
            let mut new_args = Vec::with_capacity(args.len());
            for a in args {
                let (a2, n) = rewrite(a, defs);
                count += n;
                new_args.push(a2);
            }
            match try_rules(op, &new_args, &params, width, signed, defs) {
                Some(better) => {
                    debug_assert_eq!(
                        (better.width, better.signed),
                        (width, signed),
                        "rule for {op} changed type"
                    );
                    (better, count + 1)
                }
                None => (
                    Expr {
                        kind: ExprKind::Prim(op, new_args, params),
                        width,
                        signed,
                    },
                    count,
                ),
            }
        }
    }
}

/// Wraps `e` so its (width, signed) matches the target exactly, used when
/// a rule result is narrower than the original expression.
fn coerce(e: Expr, width: u32, signed: bool) -> Expr {
    let mut cur = e;
    if cur.width < width {
        cur = Expr::prim(PrimOp::Pad, vec![cur], vec![width]).expect("pad");
    } else if cur.width > width {
        cur = Expr::prim(PrimOp::Bits, vec![cur], vec![width - 1, 0]).expect("bits");
        // Bits yields unsigned; sign restored below.
    }
    if cur.signed != signed {
        let op = if signed {
            PrimOp::AsSInt
        } else {
            PrimOp::AsUInt
        };
        cur = Expr::prim(op, vec![cur], vec![]).expect("cast");
    }
    cur
}

fn all_const(args: &[Expr]) -> Option<Vec<Value>> {
    args.iter().map(|a| a.as_const().cloned()).collect()
}

fn is_zero_const(e: &Expr) -> bool {
    e.as_const().is_some_and(Value::is_zero)
}

fn is_ones_const(e: &Expr) -> bool {
    e.as_const().is_some_and(|v| *v == Value::ones(v.width()))
}

/// Looks through a `Ref` to its defining expression (for cross-node
/// patterns). Returns `None` for non-refs or expression-less nodes.
fn def_of<'a>(e: &Expr, defs: &'a [Option<Expr>]) -> Option<&'a Expr> {
    match e.kind {
        ExprKind::Ref(id) => defs.get(id.index()).and_then(|d| d.as_ref()),
        _ => None,
    }
}

fn try_rules(
    op: PrimOp,
    args: &[Expr],
    params: &[u32],
    width: u32,
    signed: bool,
    defs: &[Option<Expr>],
) -> Option<Expr> {
    use PrimOp::*;

    // Constant folding handles every op uniformly.
    if let Some(vals) = all_const(args) {
        let v = gsim_graph::expr::eval_prim(op, &vals, params, args[0].signed, args);
        debug_assert_eq!(v.width(), width, "folded width mismatch for {op}");
        return Some(if signed {
            Expr::constant_signed(v)
        } else {
            Expr::constant(v)
        });
    }

    match op {
        And => {
            if is_zero_const(&args[0]) || is_zero_const(&args[1]) {
                return Some(coerce(Expr::constant(Value::zero(width)), width, signed));
            }
            // x & ones(width of x) == x, when widths already agree
            if is_ones_const(&args[1]) && args[0].width == width {
                return Some(coerce(args[0].clone(), width, signed));
            }
            if is_ones_const(&args[0]) && args[1].width == width {
                return Some(coerce(args[1].clone(), width, signed));
            }
            None
        }
        Or | Xor => {
            if is_zero_const(&args[1]) && args[0].width == width {
                return Some(coerce(args[0].clone(), width, signed));
            }
            if is_zero_const(&args[0]) && args[1].width == width {
                return Some(coerce(args[1].clone(), width, signed));
            }
            None
        }
        Add => {
            // add(x, 0) widens by one bit; still worth removing the add.
            if is_zero_const(&args[1]) {
                return Some(coerce(args[0].clone(), width, signed));
            }
            if is_zero_const(&args[0]) {
                return Some(coerce(args[1].clone(), width, signed));
            }
            None
        }
        Sub => {
            if is_zero_const(&args[1]) {
                return Some(coerce(args[0].clone(), width, signed));
            }
            None
        }
        Mul => {
            if is_zero_const(&args[0]) || is_zero_const(&args[1]) {
                return Some(coerce(Expr::constant(Value::zero(width)), width, signed));
            }
            None
        }
        Shl if params[0] == 0 => Some(coerce(args[0].clone(), width, signed)),
        Shr if params[0] == 0 && args[0].width > 1 => Some(coerce(args[0].clone(), width, signed)),
        Pad if args[0].width >= params[0] => Some(coerce(args[0].clone(), width, signed)),
        Not => {
            // not(not(x)) == x (as UInt)
            if let ExprKind::Prim(Not, inner, _) = &args[0].kind {
                return Some(coerce(inner[0].clone(), width, signed));
            }
            None
        }
        AsUInt | AsSInt => {
            if args[0].signed == signed {
                return Some(args[0].clone());
            }
            // collapse double casts
            if let ExprKind::Prim(AsUInt | AsSInt, inner, _) = &args[0].kind {
                return Some(coerce(inner[0].clone(), width, signed));
            }
            None
        }
        Mux => {
            if let Some(sel) = args[0].as_const() {
                let arm = if sel.is_zero() {
                    &args[1 + 1]
                } else {
                    &args[1]
                };
                return Some(coerce(arm.clone(), width, signed));
            }
            if args[1] == args[2] {
                return Some(coerce(args[1].clone(), width, signed));
            }
            None
        }
        Bits => {
            let (hi, lo) = (params[0], params[1]);
            // Full-width slice of an unsigned value is the identity.
            if lo == 0 && hi + 1 == args[0].width && !args[0].signed {
                return Some(args[0].clone());
            }
            // bits(bits(x, h1, l1), h2, l2) = bits(x, l1+h2, l1+l2)
            if let ExprKind::Prim(Bits, inner, ip) = &args[0].kind {
                let l1 = ip[1];
                return Some(
                    Expr::prim(Bits, vec![inner[0].clone()], vec![l1 + hi, l1 + lo])
                        .expect("nested bits in range"),
                );
            }
            // bits(cat(a, b), ...) contained in one operand narrows to it.
            if let ExprKind::Prim(Cat, inner, _) = &args[0].kind {
                let lo_w = inner[1].width;
                if hi < lo_w {
                    return Some(coerce(
                        Expr::prim(Bits, vec![inner[1].clone()], vec![hi, lo])
                            .expect("cat-low slice"),
                        width,
                        signed,
                    ));
                }
                if lo >= lo_w {
                    return Some(coerce(
                        Expr::prim(Bits, vec![inner[0].clone()], vec![hi - lo_w, lo - lo_w])
                            .expect("cat-high slice"),
                        width,
                        signed,
                    ));
                }
            }
            // One-hot pattern (paper): bits(B, k, k) where B = dshl(1, A)
            // becomes eq(A, k) — also matched through a node reference.
            if hi == lo {
                let shifted = match &args[0].kind {
                    ExprKind::Prim(Dshl, inner, _) => Some(inner),
                    _ => def_of(&args[0], defs).and_then(|d| match &d.kind {
                        ExprKind::Prim(Dshl, inner, _) => Some(inner),
                        _ => None,
                    }),
                };
                if let Some(inner) = shifted {
                    let base_is_one = inner[0].as_const().is_some_and(|v| v.to_u64() == Some(1));
                    if base_is_one && !inner[1].signed {
                        let k = hi;
                        let amt = inner[1].clone();
                        let kconst = Expr::constant(Value::from_u64(k as u64, amt.width.max(1)));
                        // eq requires equal-width reasoning handled by ops
                        let eq = Expr::prim(Eq, vec![amt, kconst], vec![]).expect("eq");
                        return Some(coerce(eq, width, signed));
                    }
                }
            }
            None
        }
        Cat => {
            // cat with zero-width operand is the other operand.
            if args[0].width == 0 {
                return Some(coerce(args[1].clone(), width, signed));
            }
            if args[1].width == 0 {
                return Some(coerce(args[0].clone(), width, signed));
            }
            None
        }
        Dshl => {
            if let Some(sh) = args[1].as_const() {
                let n = sh.to_u64().unwrap_or(0) as u32;
                let shl = Expr::prim(Shl, vec![args[0].clone()], vec![n]).expect("shl");
                return Some(coerce(shl, width, signed));
            }
            None
        }
        Dshr => {
            if let Some(sh) = args[1].as_const() {
                let n = sh.to_u64().unwrap_or(0) as u32;
                // dshr keeps the operand width; shr shrinks — coerce back.
                let shr = Expr::prim(Shr, vec![args[0].clone()], vec![n.min(args[0].width)])
                    .expect("shr");
                return Some(coerce(shr, width, signed));
            }
            None
        }
        Eq => {
            if args[0] == args[1] {
                return Some(coerce(Expr::const_u64(1, 1), width, signed));
            }
            None
        }
        Neq => {
            if args[0] == args[1] {
                return Some(coerce(Expr::const_u64(0, 1), width, signed));
            }
            None
        }
        _ => None,
    }
}

/// Folds an expression to a constant if possible (public helper used by
/// other passes and tests).
pub fn fold_const(e: &Expr) -> Option<Value> {
    e.eval(&mut |_| None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_graph::interp::RefInterp;
    use gsim_graph::GraphBuilder;

    fn simplified(src: &str) -> (Graph, Graph, usize) {
        let g = gsim_firrtl::compile(src).unwrap();
        let mut g2 = g.clone();
        let n = simplify(&mut g2);
        g2.validate().unwrap();
        (g, g2, n)
    }

    fn equivalent(g1: &Graph, g2: &Graph, inputs: &[(&str, u64)], outputs: &[&str]) {
        let mut s1 = RefInterp::new(g1).unwrap();
        let mut s2 = RefInterp::new(g2).unwrap();
        for round in 0..8u64 {
            for (name, base) in inputs {
                let v = base.wrapping_mul(round + 1) ^ round;
                s1.poke_u64(name, v).unwrap();
                s2.poke_u64(name, v).unwrap();
            }
            s1.step();
            s2.step();
            for o in outputs {
                assert_eq!(s1.peek(o), s2.peek(o), "output {o} diverged at {round}");
            }
        }
    }

    #[test]
    fn constant_folding_collapses() {
        let (g1, g2, n) = simplified(
            r#"
circuit C :
  module C :
    output y : UInt<8>
    node a = add(UInt<4>(3), UInt<4>(4))
    node b = mul(a, UInt<4>(2))
    y <= bits(b, 7, 0)
"#,
        );
        assert!(n > 0);
        let y = g2.node_by_name("y").unwrap();
        assert_eq!(
            fold_const(g2.node(y).expr.as_ref().unwrap())
                .unwrap()
                .to_u64(),
            Some(14)
        );
        equivalent(&g1, &g2, &[], &["y"]);
    }

    #[test]
    fn identities_removed() {
        let (g1, g2, n) = simplified(
            r#"
circuit I :
  module I :
    input x : UInt<8>
    output y : UInt<8>
    node a = and(x, UInt<8>(255))
    node b = or(a, UInt<8>(0))
    node c = xor(b, UInt<8>(0))
    node d = not(not(c))
    y <= d
"#,
        );
        assert!(n >= 4);
        equivalent(&g1, &g2, &[("x", 0xa5)], &["y"]);
    }

    #[test]
    fn mux_constant_selector() {
        let (g1, g2, n) = simplified(
            r#"
circuit M :
  module M :
    input a : UInt<4>
    input b : UInt<4>
    output y : UInt<4>
    output z : UInt<4>
    y <= mux(UInt<1>(1), a, b)
    z <= mux(UInt<1>(0), a, b)
"#,
        );
        assert!(n >= 2);
        let y = g2.node_by_name("y").unwrap();
        assert!(g2.node(y).expr.as_ref().unwrap().as_ref_node().is_some());
        equivalent(&g1, &g2, &[("a", 5), ("b", 9)], &["y", "z"]);
    }

    #[test]
    fn one_hot_pattern_within_tree() {
        // C = bits(dshl(1, A), 3, 3)  ==>  C = eq(A, 3)
        let (g1, g2, n) = simplified(
            r#"
circuit O :
  module O :
    input a : UInt<3>
    output c : UInt<1>
    node b = dshl(UInt<1>(1), a)
    c <= bits(b, 3, 3)
"#,
        );
        assert!(n > 0);
        let c = g2.node_by_name("c").unwrap();
        let mut saw_eq = false;
        g2.node(c).expr.as_ref().unwrap().visit(&mut |e| {
            if let ExprKind::Prim(PrimOp::Eq, ..) = e.kind {
                saw_eq = true;
            }
        });
        assert!(saw_eq, "one-hot pattern should rewrite to eq");
        equivalent(&g1, &g2, &[("a", 3)], &["c"]);
    }

    #[test]
    fn nested_bits_flatten() {
        let (g1, g2, n) = simplified(
            r#"
circuit B :
  module B :
    input x : UInt<16>
    output y : UInt<2>
    y <= bits(bits(x, 11, 4), 5, 4)
"#,
        );
        assert!(n > 0);
        let y = g2.node_by_name("y").unwrap();
        match &g2.node(y).expr.as_ref().unwrap().kind {
            ExprKind::Prim(PrimOp::Bits, _, p) => assert_eq!(p, &vec![9, 8]),
            other => panic!("expected flattened bits, got {other:?}"),
        }
        equivalent(&g1, &g2, &[("x", 0xbeef)], &["y"]);
    }

    #[test]
    fn bits_through_cat() {
        let (g1, g2, _) = simplified(
            r#"
circuit K :
  module K :
    input a : UInt<8>
    input b : UInt<8>
    output lo : UInt<8>
    output hi : UInt<4>
    node c = cat(a, b)
    lo <= bits(c, 7, 0)
    hi <= bits(c, 15, 12)
"#,
        );
        equivalent(&g1, &g2, &[("a", 0x12), ("b", 0x34)], &["lo", "hi"]);
    }

    #[test]
    fn dshl_by_constant_becomes_static() {
        let (g1, g2, n) = simplified(
            r#"
circuit D :
  module D :
    input x : UInt<8>
    output y : UInt<11>
    y <= dshl(x, UInt<2>(3))
"#,
        );
        assert!(n > 0);
        equivalent(&g1, &g2, &[("x", 0x7f)], &["y"]);
    }

    #[test]
    fn width_and_sign_preserved_by_coercion() {
        let mut b = GraphBuilder::new("w");
        let x = b.input("x", 8, false);
        // pad(x, 4) is a no-op pad (width already >= 4)
        let e = Expr::prim(PrimOp::Pad, vec![Expr::reference(x, 8, false)], vec![4]).unwrap();
        let c = b.comb("c", e);
        b.output("y", Expr::reference(c, 8, false));
        let mut g = b.finish().unwrap();
        let n = simplify(&mut g);
        assert!(n > 0);
        g.validate().unwrap();
    }
}
