//! Redundant node elimination (paper §III-B, Figure 2).
//!
//! Four kinds of redundancy, matching the paper:
//!
//! 1. **Alias nodes** — combinational nodes whose whole expression is a
//!    single reference; users are redirected to the referee.
//! 2. **Dead nodes** — nodes whose value cannot influence any sink
//!    (top-level output or memory write).
//! 3. **Shorted nodes** — nodes cut off by constant selection (e.g. the
//!    unused arm of a constant-selector mux). These become dead once
//!    [`crate::simplify`] folds the selector, so this pass is run after
//!    simplification.
//! 4. **Unused registers** — registers that only feed their own next
//!    value (self-updating state nobody reads); reverse reachability
//!    from sinks handles these uniformly, because the cycle
//!    `r -> r` never reaches a sink.

use crate::rebuild;
use gsim_graph::{Graph, NodeId, NodeKind};

/// What [`eliminate`] removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElimStats {
    /// Alias nodes forwarded and removed.
    pub aliases: usize,
    /// Dead (unreachable-to-sink) nodes removed, including unused
    /// registers and shorted nodes.
    pub dead: usize,
}

/// Runs alias forwarding then dead-node elimination, rebuilding the
/// graph. Top-level inputs and outputs always survive.
pub fn eliminate(graph: &mut Graph) -> ElimStats {
    // Alias forwarding must run before dead-node removal: forwarding
    // strands the alias nodes, which the dead pass then collects.
    let aliases = forward_aliases(graph);
    let dead = remove_dead(graph);
    ElimStats { aliases, dead }
}

/// Redirects users of pure-alias nodes to the aliased node. The alias
/// node itself becomes dead (removed by [`remove_dead`]).
pub fn forward_aliases(graph: &mut Graph) -> usize {
    let mut forward: Vec<Option<NodeId>> = vec![None; graph.num_nodes()];
    let mut count = 0;
    for (id, node) in graph.iter() {
        // Outputs keep their node (they are the interface); registers
        // and memory ports have state/port semantics; only plain comb
        // aliases forward.
        if !matches!(node.kind, NodeKind::Comb) {
            continue;
        }
        if let Some(e) = &node.expr {
            if let Some(target) = e.as_ref_node() {
                // Type must match exactly for a transparent alias.
                let t = graph.node(target);
                if t.width == node.width && t.signed == node.signed {
                    forward[id.index()] = Some(target);
                    count += 1;
                }
            }
        }
    }
    if count > 0 {
        rebuild::redirect_refs(graph, &forward);
    }
    count
}

/// Removes nodes that cannot reach a sink (output or memory write),
/// rebuilding the graph. Inputs are always kept.
pub fn remove_dead(graph: &mut Graph) -> usize {
    let n = graph.num_nodes();
    let mut live = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    for (id, node) in graph.iter() {
        if node.kind.is_sink() {
            live[id.index()] = true;
            stack.push(id);
        }
    }
    while let Some(id) = stack.pop() {
        for dep in graph.node(id).dep_refs() {
            if !live[dep.index()] {
                live[dep.index()] = true;
                stack.push(dep);
            }
        }
    }
    // Inputs are interface; keep them even if unread.
    for (id, node) in graph.iter() {
        if matches!(node.kind, NodeKind::Input) {
            live[id.index()] = true;
        }
    }
    let dead = live.iter().filter(|&&l| !l).count();
    if dead > 0 {
        *graph = rebuild::retain_nodes(graph, &live);
    }
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_firrtl::compile;
    use gsim_graph::interp::RefInterp;

    #[test]
    fn alias_chain_collapses() {
        let mut g = compile(
            r#"
circuit A :
  module A :
    input x : UInt<8>
    output y : UInt<8>
    wire a : UInt<8>
    wire b : UInt<8>
    a <= x
    b <= a
    y <= b
"#,
        )
        .unwrap();
        let before = g.num_nodes();
        let stats = eliminate(&mut g);
        assert!(stats.aliases >= 2);
        assert!(g.num_nodes() < before);
        g.validate().unwrap();
        let mut sim = RefInterp::new(&g).unwrap();
        sim.poke_u64("x", 0x5c).unwrap();
        sim.step();
        assert_eq!(sim.peek_u64("y"), Some(0x5c));
    }

    #[test]
    fn dead_logic_removed() {
        let mut g = compile(
            r#"
circuit D :
  module D :
    input x : UInt<8>
    output y : UInt<8>
    node used = not(x)
    node unused1 = xor(x, UInt<8>(1))
    node unused2 = and(unused1, UInt<8>(3))
    y <= used
"#,
        )
        .unwrap();
        let stats = eliminate(&mut g);
        assert!(stats.dead >= 2);
        assert!(g.node_by_name("unused1").is_none());
        assert!(g.node_by_name("unused2").is_none());
        assert!(g.node_by_name("used").is_some());
        g.validate().unwrap();
    }

    #[test]
    fn unused_self_updating_register_removed() {
        let mut g = compile(
            r#"
circuit R :
  module R :
    input clock : Clock
    input x : UInt<8>
    output y : UInt<8>
    reg ghost : UInt<8>, clock
    ghost <= tail(add(ghost, UInt<8>(1)), 1)
    y <= x
"#,
        )
        .unwrap();
        let stats = eliminate(&mut g);
        assert!(stats.dead >= 1);
        assert!(g.node_by_name("ghost").is_none());
        g.validate().unwrap();
    }

    #[test]
    fn live_register_chain_kept() {
        let mut g = compile(
            r#"
circuit L :
  module L :
    input clock : Clock
    input x : UInt<8>
    output y : UInt<8>
    reg r : UInt<8>, clock
    r <= x
    y <= r
"#,
        )
        .unwrap();
        eliminate(&mut g);
        assert!(g.node_by_name("r").is_some());
    }

    #[test]
    fn shorted_node_removed_after_simplify() {
        // G = mux(D, E+1, F) with D = 1: F's cone is shorted out.
        let mut g = compile(
            r#"
circuit S :
  module S :
    input e : UInt<8>
    input x : UInt<8>
    output g : UInt<9>
    node d = UInt<1>(1)
    node f = xor(x, UInt<8>(99))
    g <= mux(d, add(e, UInt<8>(1)), pad(f, 9))
"#,
        )
        .unwrap();
        crate::simplify::simplify(&mut g);
        let stats = eliminate(&mut g);
        assert!(stats.dead >= 1);
        assert!(g.node_by_name("f").is_none(), "shorted node must go");
        let mut sim = RefInterp::new(&g).unwrap();
        sim.poke_u64("e", 7).unwrap();
        sim.step();
        assert_eq!(sim.peek_u64("g"), Some(8));
    }

    #[test]
    fn mem_with_dead_ports_dropped() {
        let mut g = compile(
            r#"
circuit M :
  module M :
    input x : UInt<8>
    output y : UInt<8>
    mem scratch :
      data-type => UInt<8>
      depth => 8
      read-latency => 0
      write-latency => 1
      reader => r
    scratch.r.addr <= bits(x, 2, 0)
    y <= x
"#,
        )
        .unwrap();
        assert_eq!(g.mems().len(), 1);
        eliminate(&mut g);
        assert_eq!(g.mems().len(), 0, "memory with no live ports dropped");
        g.validate().unwrap();
    }

    #[test]
    fn write_only_memory_kept() {
        // A write port is a sink, so the memory stays even if never read.
        let mut g = compile(
            r#"
circuit W :
  module W :
    input clock : Clock
    input x : UInt<8>
    output y : UInt<8>
    mem log :
      data-type => UInt<8>
      depth => 8
      read-latency => 0
      write-latency => 1
      writer => w
    log.w.addr <= bits(x, 2, 0)
    log.w.data <= x
    log.w.en <= UInt<1>(1)
    y <= x
"#,
        )
        .unwrap();
        eliminate(&mut g);
        assert_eq!(g.mems().len(), 1);
    }
}
