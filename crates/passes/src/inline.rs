//! Node inlining and extraction (paper §III-B, Figure 3).
//!
//! Two directions of the same trade-off between node count `N` and
//! evaluation cost `E`:
//!
//! * [`inline_cheap`] — a node `f` whose evaluation is cheap relative to
//!   the bookkeeping of keeping it as a separate node is substituted
//!   into its consumers. The paper's criterion: keep `f` extracted only
//!   when `cost(f) × #refs > cost(f) + cost_node`.
//! * [`extract_common`] — the inverse: subexpressions appearing several
//!   times (after inlining or straight from the front end) whose
//!   duplicated evaluation costs more than a shared node are hoisted
//!   into new nodes.

use gsim_graph::{Expr, ExprKind, Graph, NodeId, NodeKind};
use std::collections::HashMap;

/// Abstract cost of having a node at all (active-bit bookkeeping,
/// activation, storage) in the same "operator" units as
/// [`gsim_graph::PrimOp::cost`]. The paper calls this `cost_node`.
pub const COST_NODE: u32 = 2;

/// Upper bound on the evaluation cost of an expression we are willing
/// to inline. The paper's model compares only evaluation cost against
/// node bookkeeping; in an essential-signal engine a node is *also* a
/// change-detection cut point, and folding a long chain into one giant
/// expression forfeits the early cut-off when an intermediate value is
/// unchanged. Bounding inlined-expression size keeps the node-count
/// reduction where it pays without destroying activity granularity.
pub const MAX_INLINE_COST: u32 = 6;

/// Inlines nodes whose shared evaluation does not pay for itself.
/// Returns the number of nodes inlined.
pub fn inline_cheap(graph: &mut Graph) -> usize {
    let n = graph.num_nodes();
    // Nodes that must stay: everything that is not plain comb logic,
    // plus register reset signals (the engine needs them as nodes).
    let mut must_stay = vec![false; n];
    for (id, node) in graph.iter() {
        match &node.kind {
            NodeKind::Comb => {}
            _ => must_stay[id.index()] = true,
        }
        if let NodeKind::Reg { reset: Some(r) } = &node.kind {
            must_stay[r.signal.index()] = true;
        }
    }

    // Textual reference counts (occurrences, not distinct users):
    // duplicated evaluation is per occurrence.
    let mut refcount = vec![0u32; n];
    for (_, node) in graph.iter() {
        for dep in node.dep_refs() {
            refcount[dep.index()] += 1;
        }
    }

    // Decide in forward topological order, tracking each candidate's
    // *effective* cost — its own operators plus the effective cost of
    // every already-inlined operand. Chains therefore stop inlining
    // once the accumulated expression reaches the granularity bound,
    // instead of collapsing one cheap step at a time.
    let order = gsim_graph::topo::toposort(graph).expect("valid graph");
    let mut inline = vec![false; n];
    let mut eff_cost = vec![0u32; n];
    for &id in order.iter() {
        let node = graph.node(id);
        let Some(expr) = &node.expr else { continue };
        let mut cost = expr.op_cost().max(1);
        for dep in expr.refs() {
            if inline[dep.index()] {
                cost = cost.saturating_add(eff_cost[dep.index()]);
            }
        }
        eff_cost[id.index()] = cost;
        if must_stay[id.index()] {
            continue;
        }
        let refs = refcount[id.index()];
        if refs == 0 {
            continue; // dead; redundant elimination's job
        }
        // Extract (keep the node) when sharing wins; inline otherwise,
        // but never build expressions past the granularity bound.
        let keep =
            (cost as u64) * (refs as u64) > (cost + COST_NODE) as u64 || cost > MAX_INLINE_COST;
        if !keep {
            inline[id.index()] = true;
            // Every reference inside f now occurs `refs` times.
            let extra = refs - 1;
            if extra > 0 {
                for dep in expr.refs() {
                    refcount[dep.index()] += extra;
                }
            }
        }
    }

    let inlined = inline.iter().filter(|&&b| b).count();
    if inlined == 0 {
        return 0;
    }

    // Substitute in topological order (operands before users) so each
    // inlined node's final expression is ready when consumers need it.
    let mut final_expr: Vec<Option<Expr>> = vec![None; n];
    let subst = |e: &Expr, final_expr: &[Option<Expr>], inline: &[bool]| -> Expr {
        let mut out = e.clone();
        out.visit_mut(&mut |sub| {
            if let ExprKind::Ref(r) = &sub.kind {
                if inline[r.index()] {
                    *sub = final_expr[r.index()]
                        .clone()
                        .expect("inlined operand processed before user");
                }
            }
        });
        out
    };
    for &id in &order {
        let node = graph.node(id);
        if let Some(e) = &node.expr {
            let new = subst(e, &final_expr, &inline);
            final_expr[id.index()] = Some(new);
        }
    }
    // Install substituted expressions everywhere.
    let ids: Vec<NodeId> = graph.node_ids().collect();
    for id in ids {
        if let Some(e) = final_expr[id.index()].take() {
            graph.node_mut(id).expr = Some(e);
        }
        let node = graph.node(id);
        if let Some(w) = node.write.clone() {
            let mut w = w;
            // final_expr entries were taken; recompute lazily for writes.
            w.addr = subst_into(&w.addr, graph, &inline);
            w.data = subst_into(&w.data, graph, &inline);
            w.en = subst_into(&w.en, graph, &inline);
            graph.node_mut(id).write = Some(w);
        }
    }
    // Inlined nodes are now unreferenced; drop them.
    let keep: Vec<bool> = (0..n).map(|i| !inline[i]).collect();
    *graph = crate::rebuild::retain_nodes(graph, &keep);
    inlined
}

/// Recursive substitution that reads final expressions straight from the
/// (already substituted) graph.
fn subst_into(e: &Expr, graph: &Graph, inline: &[bool]) -> Expr {
    let mut out = e.clone();
    out.visit_mut(&mut |sub| {
        if let ExprKind::Ref(r) = &sub.kind {
            if inline[r.index()] {
                let inner = graph
                    .node(*r)
                    .expr
                    .clone()
                    .expect("inlined node has expression");
                *sub = subst_into(&inner, graph, inline);
            }
        }
    });
    out
}

/// Extracts common subexpressions whose duplicated evaluation costs more
/// than a shared node (`cost × count > cost + cost_node`). Returns the
/// number of new nodes created.
pub fn extract_common(graph: &mut Graph) -> usize {
    // Count structurally identical subexpressions across the graph.
    let mut counts: HashMap<Expr, u32> = HashMap::new();
    for (_, node) in graph.iter() {
        let mut record = |e: &Expr| {
            e.visit(&mut |sub| {
                if matches!(sub.kind, ExprKind::Prim(..)) && sub.op_cost() >= 2 {
                    *counts.entry(sub.clone()).or_insert(0) += 1;
                }
            });
        };
        if let Some(e) = &node.expr {
            record(e);
        }
        if let Some(w) = &node.write {
            record(&w.addr);
            record(&w.data);
            record(&w.en);
        }
    }

    // Candidates by descending cost so larger shared trees win first.
    let mut candidates: Vec<(Expr, u32)> = counts
        .into_iter()
        .filter(|(e, c)| {
            let cost = e.op_cost() as u64;
            *c >= 2 && cost * (*c as u64) > cost + COST_NODE as u64
        })
        .collect();
    candidates.sort_by(|a, b| {
        (b.0.op_cost(), b.1)
            .cmp(&(a.0.op_cost(), a.1))
            .then_with(|| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)))
    });

    let mut created = 0;
    for (expr, _) in candidates {
        // Recheck the count: earlier extractions may have absorbed this.
        let mut occurrences = 0;
        for (_, node) in graph.iter() {
            let mut count_in = |e: &Expr| {
                e.visit(&mut |sub| {
                    if *sub == expr {
                        occurrences += 1;
                    }
                });
            };
            if let Some(e) = &node.expr {
                count_in(e);
            }
            if let Some(w) = &node.write {
                count_in(&w.addr);
                count_in(&w.data);
                count_in(&w.en);
            }
        }
        let cost = expr.op_cost() as u64;
        if occurrences < 2 || cost * occurrences <= cost + COST_NODE as u64 {
            continue;
        }
        // Hoist: new node; replace each occurrence by a reference.
        let name = format!("_cse{}", graph.num_nodes());
        let new_id = graph.push_node(gsim_graph::Node {
            name,
            kind: NodeKind::Comb,
            width: expr.width,
            signed: expr.signed,
            expr: Some(expr.clone()),
            write: None,
        });
        let reference = Expr::reference(new_id, expr.width, expr.signed);
        let ids: Vec<NodeId> = graph.node_ids().collect();
        for id in ids {
            if id == new_id {
                continue;
            }
            let replace = |e: &mut Expr| {
                e.visit_mut(&mut |sub| {
                    if *sub == expr {
                        *sub = reference.clone();
                    }
                });
            };
            let node = graph.node_mut(id);
            if let Some(e) = &mut node.expr {
                replace(e);
            }
            if let Some(w) = &mut node.write {
                replace(&mut w.addr);
                replace(&mut w.data);
                replace(&mut w.en);
            }
        }
        created += 1;
    }
    created
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_firrtl::compile;
    use gsim_graph::interp::RefInterp;

    fn check_equiv(g1: &Graph, g2: &Graph, inputs: &[&str], outputs: &[&str]) {
        let mut s1 = RefInterp::new(g1).unwrap();
        let mut s2 = RefInterp::new(g2).unwrap();
        for round in 0..10u64 {
            for (i, name) in inputs.iter().enumerate() {
                let v = round.wrapping_mul(0x9e3779b9).rotate_left(i as u32) ^ round;
                s1.poke_u64(name, v).unwrap();
                s2.poke_u64(name, v).unwrap();
            }
            s1.step();
            s2.step();
            for o in outputs {
                assert_eq!(s1.peek(o), s2.peek(o), "{o} diverged at cycle {round}");
            }
        }
    }

    #[test]
    fn single_use_node_inlined() {
        let g1 = compile(
            r#"
circuit I :
  module I :
    input a : UInt<8>
    output y : UInt<8>
    node t = not(a)
    y <= not(t)
"#,
        )
        .unwrap();
        let mut g2 = g1.clone();
        let n = inline_cheap(&mut g2);
        assert!(n >= 1);
        assert!(g2.node_by_name("t").is_none());
        g2.validate().unwrap();
        check_equiv(&g1, &g2, &["a"], &["y"]);
    }

    #[test]
    fn expensive_shared_node_kept() {
        // f = a * b used 4 times: cost(mul)=3, 3*4=12 > 3+2 -> keep.
        let g1 = compile(
            r#"
circuit K :
  module K :
    input a : UInt<8>
    input b : UInt<8>
    output w : UInt<16>
    output x : UInt<16>
    output y : UInt<16>
    output z : UInt<16>
    node f = mul(a, b)
    w <= f
    x <= not(f)
    y <= and(f, UInt<16>(255))
    z <= or(f, UInt<16>(1))
"#,
        )
        .unwrap();
        let mut g2 = g1.clone();
        inline_cheap(&mut g2);
        assert!(
            g2.node_by_name("f").is_some(),
            "multiply shared 4 ways must stay extracted"
        );
        check_equiv(&g1, &g2, &["a", "b"], &["w", "x", "y", "z"]);
    }

    #[test]
    fn cheap_shared_node_inlined() {
        // f = not(a): cost 1, 2 refs: 1*2 <= 1+2 -> inline.
        let g1 = compile(
            r#"
circuit C :
  module C :
    input a : UInt<8>
    output x : UInt<8>
    output y : UInt<8>
    node f = not(a)
    x <= f
    y <= and(f, UInt<8>(15))
"#,
        )
        .unwrap();
        let mut g2 = g1.clone();
        let n = inline_cheap(&mut g2);
        assert!(n >= 1);
        assert!(g2.node_by_name("f").is_none());
        check_equiv(&g1, &g2, &["a"], &["x", "y"]);
    }

    #[test]
    fn registers_never_inlined() {
        let g1 = compile(
            r#"
circuit R :
  module R :
    input clock : Clock
    input a : UInt<8>
    output y : UInt<8>
    reg r : UInt<8>, clock
    r <= a
    y <= r
"#,
        )
        .unwrap();
        let mut g2 = g1.clone();
        inline_cheap(&mut g2);
        assert!(g2.node_by_name("r").is_some());
        check_equiv(&g1, &g2, &["a"], &["y"]);
    }

    #[test]
    fn chain_inlining_never_duplicates_expensive_work() {
        // g = not(f), used twice; f = a*b. Whatever gets inlined where,
        // the multiply must be evaluated exactly once in the final
        // graph (it may legally migrate into the shared node g).
        let g1 = compile(
            r#"
circuit M :
  module M :
    input a : UInt<4>
    input b : UInt<4>
    output x : UInt<8>
    output y : UInt<8>
    node f = mul(a, b)
    node g = not(f)
    x <= g
    y <= and(g, UInt<8>(60))
"#,
        )
        .unwrap();
        let mut g2 = g1.clone();
        inline_cheap(&mut g2);
        let mut muls = 0;
        for (_, node) in g2.iter() {
            if let Some(e) = &node.expr {
                e.visit(&mut |sub| {
                    if matches!(sub.kind, ExprKind::Prim(gsim_graph::PrimOp::Mul, ..)) {
                        muls += 1;
                    }
                });
            }
        }
        assert_eq!(muls, 1, "multiply must not be duplicated");
        check_equiv(&g1, &g2, &["a", "b"], &["x", "y"]);
    }

    #[test]
    fn extraction_hoists_repeated_multiplies() {
        let g1 = compile(
            r#"
circuit E :
  module E :
    input a : UInt<8>
    input b : UInt<8>
    output x : UInt<16>
    output y : UInt<16>
    output z : UInt<16>
    x <= mul(a, b)
    y <= not(mul(a, b))
    z <= and(mul(a, b), UInt<16>(4095))
"#,
        )
        .unwrap();
        let mut g2 = g1.clone();
        let n = extract_common(&mut g2);
        assert!(n >= 1, "mul(a,b) x3 must be extracted");
        g2.validate().unwrap();
        check_equiv(&g1, &g2, &["a", "b"], &["x", "y", "z"]);
    }

    #[test]
    fn extraction_skips_cheap_duplicates() {
        let g1 = compile(
            r#"
circuit S :
  module S :
    input a : UInt<8>
    output x : UInt<8>
    output y : UInt<8>
    x <= not(a)
    y <= not(a)
"#,
        )
        .unwrap();
        let mut g2 = g1.clone();
        let n = extract_common(&mut g2);
        assert_eq!(n, 0, "cost 1 x2 does not beat cost 1 + cost_node 2");
    }

    #[test]
    fn reset_signal_survives_inlining() {
        let g1 = compile(
            r#"
circuit P :
  module P :
    input clock : Clock
    input reset : UInt<1>
    input a : UInt<8>
    output y : UInt<8>
    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(7)))
    r <= a
    y <= r
"#,
        )
        .unwrap();
        let mut g2 = g1.clone();
        inline_cheap(&mut g2);
        g2.validate().unwrap();
        check_equiv(&g1, &g2, &["a"], &["y"]);
    }
}
