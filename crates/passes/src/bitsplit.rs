//! Bit-level node splitting (paper §III-C, Figure 4).
//!
//! Long signals often change in only a few bits per cycle; a consumer
//! that slices only the unchanged bits is still activated when the node
//! value changes. Splitting the node along the slice boundaries its
//! consumers actually use removes those false activations, lowering the
//! activity factor `af`.
//!
//! Algorithm (per round, iterated so splits propagate along chains like
//! the paper's `D → E → {F, G}` example):
//!
//! 1. For every unsigned combinational node `n`, classify each use:
//!    a direct `bits(n, hi, lo)` is a *slice use*; anything else is a
//!    *full use*. Nodes with only slice uses and at least one interior
//!    boundary are split candidates.
//! 2. The slice endpoints induce an interval partition of `n`'s bits.
//!    `n`'s expression is decomposed per interval — possible when it is
//!    built from bit-parallel operations (`cat`, `bits`, `not`, `and`,
//!    `or`, `xor`, `mux`, `pad`) over unsigned operands.
//! 3. One new node per interval replaces `n`; consumers' slices become
//!    references (or concatenations) of the parts. Bits nobody reads
//!    become dead parts that redundant-node elimination removes.

use gsim_graph::{Expr, ExprKind, Graph, Node, NodeId, NodeKind, PrimOp};
use gsim_value::{ops, Value};
use std::collections::HashMap;

/// Maximum propagation rounds per [`split`] call.
const MAX_ROUNDS: usize = 4;

/// Runs bit-splitting to a fixpoint (bounded rounds). Returns the number
/// of nodes split.
pub fn split(graph: &mut Graph) -> usize {
    let mut total = 0;
    for _ in 0..MAX_ROUNDS {
        let n = split_round(graph);
        total += n;
        if n == 0 {
            break;
        }
    }
    total
}

/// How one node is used across the graph.
#[derive(Debug, Default, Clone)]
struct UseSummary {
    /// `(lo, hi_exclusive)` for each `bits` use.
    slices: Vec<(u32, u32)>,
    /// Number of non-slice (whole-value) uses.
    full_uses: usize,
}

fn split_round(graph: &mut Graph) -> usize {
    let n = graph.num_nodes();
    let mut uses: Vec<UseSummary> = vec![UseSummary::default(); n];

    // Classify uses. A use is a slice only when the reference appears
    // directly inside bits(, hi, lo).
    let classify = |e: &Expr, uses: &mut Vec<UseSummary>| {
        classify_expr(e, uses);
    };
    for (_, node) in graph.iter() {
        if let Some(e) = &node.expr {
            classify(e, &mut uses);
        }
        if let Some(w) = &node.write {
            classify(&w.addr, &mut uses);
            classify(&w.data, &mut uses);
            classify(&w.en, &mut uses);
        }
        if let NodeKind::Reg { reset: Some(r) } = &node.kind {
            uses[r.signal.index()].full_uses += 1;
        }
    }

    // Pick candidates and build their interval partitions.
    let mut plans: Vec<(NodeId, Vec<(u32, u32)>)> = Vec::new();
    for (id, node) in graph.iter() {
        if !matches!(node.kind, NodeKind::Comb) || node.signed || node.width < 2 {
            continue;
        }
        let summary = &uses[id.index()];
        if summary.full_uses > 0 || summary.slices.is_empty() {
            continue;
        }
        let mut cuts: Vec<u32> = vec![0, node.width];
        for &(lo, hi) in &summary.slices {
            cuts.push(lo);
            cuts.push(hi);
        }
        cuts.sort_unstable();
        cuts.dedup();
        if cuts.len() <= 2 {
            continue; // single interval — nothing to split
        }
        let Some(expr) = &node.expr else { continue };
        let intervals: Vec<(u32, u32)> = cuts.windows(2).map(|w| (w[0], w[1])).collect();
        // All intervals must be decomposable.
        if intervals
            .iter()
            .all(|&(lo, hi)| decompose(expr, lo, hi).is_some())
        {
            plans.push((id, intervals));
        }
    }
    if plans.is_empty() {
        return 0;
    }

    // Create part nodes.
    let mut parts_of: HashMap<NodeId, Vec<(u32, u32, NodeId)>> = HashMap::new();
    for (id, intervals) in &plans {
        let node = graph.node(*id);
        let base_name = if node.name.is_empty() {
            format!("{id}")
        } else {
            node.name.clone()
        };
        let expr = node.expr.clone().expect("candidate has expr");
        let mut parts = Vec::with_capacity(intervals.len());
        for &(lo, hi) in intervals {
            let part_expr = decompose(&expr, lo, hi).expect("checked decomposable");
            debug_assert_eq!(part_expr.width, hi - lo);
            let part = graph.push_node(Node {
                name: format!("{base_name}${hi}_{lo}"),
                kind: NodeKind::Comb,
                width: hi - lo,
                signed: false,
                expr: Some(part_expr),
                write: None,
            });
            parts.push((lo, hi, part));
        }
        parts_of.insert(*id, parts);
    }

    // Rewrite consumers: every bits(split_node, hi, lo) becomes the
    // concatenation of the covering parts (always aligned, because the
    // cuts came from these very slices).
    let ids: Vec<NodeId> = graph.node_ids().collect();
    for id in ids {
        // Skip the new part nodes themselves (their exprs reference the
        // *operands* of the split node, never the split node).
        let node = graph.node_mut(id);
        if let Some(e) = &mut node.expr {
            rewrite_slices(e, &parts_of);
        }
        if let Some(w) = &mut node.write {
            rewrite_slices(&mut w.addr, &parts_of);
            rewrite_slices(&mut w.data, &parts_of);
            rewrite_slices(&mut w.en, &parts_of);
        }
    }
    // Split nodes are now unreferenced; drop them.
    let keep: Vec<bool> = (0..graph.num_nodes())
        .map(|i| !parts_of.contains_key(&NodeId::from_index(i)))
        .collect();
    *graph = crate::rebuild::retain_nodes(graph, &keep);
    plans.len()
}

fn classify_expr(e: &Expr, uses: &mut [UseSummary]) {
    match &e.kind {
        ExprKind::Ref(id) => uses[id.index()].full_uses += 1,
        ExprKind::Const(_) => {}
        ExprKind::Prim(op, args, params) => {
            if *op == PrimOp::Bits {
                if let ExprKind::Ref(id) = &args[0].kind {
                    let (hi, lo) = (params[0], params[1]);
                    uses[id.index()].slices.push((lo, hi + 1));
                    return;
                }
            }
            for a in args {
                classify_expr(a, uses);
            }
        }
    }
}

/// Extracts bits `[lo, hi)` of `e` as a new expression, if `e` is
/// bit-parallel decomposable. The result is unsigned with width
/// `hi - lo`.
fn decompose(e: &Expr, lo: u32, hi: u32) -> Option<Expr> {
    debug_assert!(lo < hi && hi <= e.width);
    let w = hi - lo;
    match &e.kind {
        ExprKind::Const(v) => Some(Expr::constant(ops::bits(
            &v.zext_or_trunc(e.width.max(hi)),
            hi - 1,
            lo,
        ))),
        ExprKind::Ref(_) => {
            if e.signed {
                return None;
            }
            if lo == 0 && hi == e.width {
                Some(e.clone())
            } else {
                Some(Expr::prim(PrimOp::Bits, vec![e.clone()], vec![hi - 1, lo]).ok()?)
            }
        }
        ExprKind::Prim(op, args, params) => match op {
            PrimOp::Cat => {
                let lo_w = args[1].width;
                if hi <= lo_w {
                    decompose(&args[1], lo, hi)
                } else if lo >= lo_w {
                    decompose(&args[0], lo - lo_w, hi - lo_w)
                } else {
                    let low_part = decompose(&args[1], lo, lo_w)?;
                    let high_part = decompose(&args[0], 0, hi - lo_w)?;
                    Some(Expr::prim(PrimOp::Cat, vec![high_part, low_part], vec![]).ok()?)
                }
            }
            PrimOp::Bits => {
                let inner_lo = params[1];
                decompose(&args[0], inner_lo + lo, inner_lo + hi)
            }
            PrimOp::Not => {
                let inner = slice_zext(&args[0], lo, hi)?;
                Some(Expr::prim(PrimOp::Not, vec![inner], vec![]).ok()?)
            }
            PrimOp::And | PrimOp::Or | PrimOp::Xor => {
                if args[0].signed || args[1].signed {
                    return None;
                }
                let a = slice_zext(&args[0], lo, hi)?;
                let b = slice_zext(&args[1], lo, hi)?;
                let mut out = Expr::prim(*op, vec![a, b], vec![]).ok()?;
                if out.width < w {
                    out = Expr::prim(PrimOp::Pad, vec![out], vec![w]).ok()?;
                }
                Some(out)
            }
            PrimOp::Mux => {
                if args[1].signed || args[2].signed {
                    return None;
                }
                let t = slice_zext(&args[1], lo, hi)?;
                let f = slice_zext(&args[2], lo, hi)?;
                let t = pad_to(t, w)?;
                let f = pad_to(f, w)?;
                Some(Expr::prim(PrimOp::Mux, vec![args[0].clone(), t, f], vec![]).ok()?)
            }
            PrimOp::Pad => {
                if args[0].signed {
                    return None;
                }
                slice_zext(&args[0], lo, hi).and_then(|s| pad_to(s, w))
            }
            _ => None,
        },
    }
}

/// Slices `[lo, hi)` out of an operand treated as zero-extended to any
/// width: bits past the operand's width are constant zero. The result
/// width may be less than `hi - lo` when the high part is all zeros
/// (callers pad when the exact width matters).
fn slice_zext(e: &Expr, lo: u32, hi: u32) -> Option<Expr> {
    if e.signed {
        return None;
    }
    if lo >= e.width {
        return Some(Expr::constant(Value::zero(hi - lo)));
    }
    let real_hi = hi.min(e.width);
    decompose(e, lo, real_hi)
}

fn pad_to(e: Expr, w: u32) -> Option<Expr> {
    if e.width == w {
        Some(e)
    } else if e.width < w {
        Expr::prim(PrimOp::Pad, vec![e], vec![w]).ok()
    } else {
        Expr::prim(PrimOp::Bits, vec![e], vec![w - 1, 0]).ok()
    }
}

/// Replaces references to split nodes with (concatenations of) their
/// parts. Direct consumer slices align with the cuts by construction,
/// but expressions *inside freshly created parts* may slice another
/// node split in the same round at shifted offsets — so reconstruction
/// handles arbitrary ranges by sub-slicing overlapping parts.
///
/// Traversal is pre-order with explicit recursion: the `bits(ref)`
/// pattern must be seen before its child `ref` is rewritten.
fn rewrite_slices(e: &mut Expr, parts_of: &HashMap<NodeId, Vec<(u32, u32, NodeId)>>) {
    // bits(split, hi, lo) -> reconstruct [lo, hi+1)
    if let ExprKind::Prim(PrimOp::Bits, args, params) = &e.kind {
        if let ExprKind::Ref(target) = &args[0].kind {
            if let Some(parts) = parts_of.get(target) {
                let (hi, lo) = (params[0] + 1, params[1]);
                *e = reconstruct(parts, lo, hi);
                return;
            }
        }
    }
    // bare reference to a split node -> reconstruct the full value
    if let ExprKind::Ref(target) = &e.kind {
        if let Some(parts) = parts_of.get(target) {
            let full = parts.iter().map(|&(_, phi, _)| phi).max().expect("parts");
            *e = reconstruct(parts, 0, full);
            return;
        }
    }
    if let ExprKind::Prim(_, args, _) = &mut e.kind {
        for a in args {
            rewrite_slices(a, parts_of);
        }
    }
}

/// Builds bits `[lo, hi)` of a split node from its parts, sub-slicing
/// parts that straddle the boundaries.
fn reconstruct(parts: &[(u32, u32, NodeId)], lo: u32, hi: u32) -> Expr {
    let mut covering: Vec<(u32, u32, NodeId)> = parts
        .iter()
        .filter(|&&(plo, phi, _)| phi > lo && plo < hi)
        .copied()
        .collect();
    covering.sort_by_key(|&(plo, _, _)| plo);
    debug_assert!(!covering.is_empty(), "parts must cover every bit");
    let mut acc: Option<Expr> = None;
    for (plo, phi, part) in covering {
        let w = phi - plo;
        let local_lo = lo.max(plo) - plo;
        let local_hi = hi.min(phi) - plo;
        let r = Expr::reference(part, w, false);
        let piece = if local_lo == 0 && local_hi == w {
            r
        } else {
            Expr::prim(PrimOp::Bits, vec![r], vec![local_hi - 1, local_lo]).expect("part slice")
        };
        acc = Some(match acc {
            None => piece,
            Some(low) => Expr::prim(PrimOp::Cat, vec![piece, low], vec![]).expect("cat parts"),
        });
    }
    acc.expect("nonempty covering")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_firrtl::compile;
    use gsim_graph::interp::RefInterp;

    fn check_equiv(g1: &Graph, g2: &Graph, inputs: &[&str], outputs: &[&str]) {
        let mut s1 = RefInterp::new(g1).unwrap();
        let mut s2 = RefInterp::new(g2).unwrap();
        for round in 0..16u64 {
            for (i, name) in inputs.iter().enumerate() {
                let v = round
                    .wrapping_mul(0x2545f491_4f6cdd1d)
                    .rotate_left(i as u32 * 7);
                s1.poke_u64(name, v).unwrap();
                s2.poke_u64(name, v).unwrap();
            }
            s1.step();
            s2.step();
            for o in outputs {
                assert_eq!(s1.peek(o), s2.peek(o), "{o} diverged at {round}");
            }
        }
    }

    /// The paper's Figure 4: D = cat(C, B, A); E = not(D);
    /// F = bits(E, 1, 0); G = bits(E, 5, 2).
    const FIGURE4: &str = r#"
circuit Fig4 :
  module Fig4 :
    input a : UInt<2>
    input b : UInt<2>
    input c : UInt<2>
    output f : UInt<2>
    output g : UInt<4>
    node d = cat(c, cat(b, a))
    node e = not(d)
    f <= bits(e, 1, 0)
    g <= bits(e, 5, 2)
"#;

    #[test]
    fn figure4_splits_the_chain() {
        let g1 = compile(FIGURE4).unwrap();
        let mut g2 = g1.clone();
        let n = split(&mut g2);
        assert!(n >= 2, "both e and d should split, got {n}");
        g2.validate().unwrap();
        check_equiv(&g1, &g2, &["a", "b", "c"], &["f", "g"]);
        // After splitting, no node should combine a with (b, c):
        // the cone of f depends only on a.
        let f = g2.node_by_name("f").unwrap();
        let mut cone = vec![f];
        let mut seen = std::collections::HashSet::new();
        let mut depends_on_b_or_c = false;
        while let Some(id) = cone.pop() {
            if !seen.insert(id) {
                continue;
            }
            let node = g2.node(id);
            if node.name == "b" || node.name == "c" {
                depends_on_b_or_c = true;
            }
            cone.extend(node.dep_refs());
        }
        assert!(
            !depends_on_b_or_c,
            "after the split, f must not depend on b or c (paper Figure 4)"
        );
    }

    #[test]
    fn unaligned_slices_still_correct() {
        let g1 = compile(
            r#"
circuit U :
  module U :
    input x : UInt<16>
    input y : UInt<16>
    output p : UInt<5>
    output q : UInt<11>
    node m = xor(x, y)
    p <= bits(m, 4, 0)
    q <= bits(m, 15, 5)
"#,
        )
        .unwrap();
        let mut g2 = g1.clone();
        let n = split(&mut g2);
        assert!(n >= 1);
        check_equiv(&g1, &g2, &["x", "y"], &["p", "q"]);
    }

    #[test]
    fn overlapping_slices_use_finer_cuts() {
        let g1 = compile(
            r#"
circuit O :
  module O :
    input x : UInt<8>
    output p : UInt<6>
    output q : UInt<6>
    node m = not(x)
    p <= bits(m, 5, 0)
    q <= bits(m, 7, 2)
"#,
        )
        .unwrap();
        let mut g2 = g1.clone();
        let n = split(&mut g2);
        assert!(n >= 1);
        // cuts at 0,2,6,8: three parts; p = cat(part2, part1),
        // q = cat(part3, part2)
        check_equiv(&g1, &g2, &["x"], &["p", "q"]);
    }

    #[test]
    fn full_use_prevents_split() {
        let g1 = compile(
            r#"
circuit N :
  module N :
    input x : UInt<8>
    output p : UInt<4>
    output whole : UInt<8>
    node m = not(x)
    p <= bits(m, 3, 0)
    whole <= m
"#,
        )
        .unwrap();
        let mut g2 = g1.clone();
        let n = split(&mut g2);
        assert_eq!(n, 0, "whole-value consumer blocks the split");
    }

    #[test]
    fn arithmetic_nodes_not_split() {
        let g1 = compile(
            r#"
circuit A :
  module A :
    input x : UInt<8>
    input y : UInt<8>
    output p : UInt<4>
    output q : UInt<5>
    node s = add(x, y)
    p <= bits(s, 3, 0)
    q <= bits(s, 8, 4)
"#,
        )
        .unwrap();
        let mut g2 = g1.clone();
        let n = split(&mut g2);
        assert_eq!(n, 0, "carries couple the bits of an adder");
        check_equiv(&g1, &g2, &["x", "y"], &["p", "q"]);
    }

    #[test]
    fn mux_decomposes() {
        let g1 = compile(
            r#"
circuit M :
  module M :
    input sel : UInt<1>
    input x : UInt<8>
    input y : UInt<8>
    output p : UInt<4>
    output q : UInt<4>
    node m = mux(sel, x, y)
    p <= bits(m, 3, 0)
    q <= bits(m, 7, 4)
"#,
        )
        .unwrap();
        let mut g2 = g1.clone();
        let n = split(&mut g2);
        assert!(n >= 1, "mux is bit-parallel given a scalar selector");
        check_equiv(&g1, &g2, &["sel", "x", "y"], &["p", "q"]);
    }

    #[test]
    fn dead_interval_becomes_removable() {
        // Bits 4..8 of m are never read: after the split the middle part
        // is dead and redundant elimination removes its logic.
        let g1 = compile(
            r#"
circuit D :
  module D :
    input x : UInt<12>
    output p : UInt<4>
    output q : UInt<4>
    node m = not(x)
    p <= bits(m, 3, 0)
    q <= bits(m, 11, 8)
"#,
        )
        .unwrap();
        let mut g2 = g1.clone();
        split(&mut g2);
        crate::redundant::eliminate(&mut g2);
        g2.validate().unwrap();
        check_equiv(&g1, &g2, &["x"], &["p", "q"]);
        // The dead middle part must be gone.
        assert!(
            g2.node_by_name("m$8_4").is_none(),
            "unread interval should be removed"
        );
    }
}
