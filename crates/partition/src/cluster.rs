//! GSIM's correlation pre-grouping (paper §III-A).
//!
//! Traditional partitioners minimize cut edges, which splits *weakly
//! connected but co-activated* nodes apart (the paper's Figure 1). GSIM
//! first glues together nodes that are near-certain to activate in the
//! same cycle, then lets the Kernighan DP partition the condensed
//! sequence. The three observations from the paper:
//!
//! 1. a node with **out-degree 1** activates together with its only
//!    successor;
//! 2. a node with **in-degree 1** activates when its only predecessor
//!    does;
//! 3. **siblings with identical predecessor sets** always activate
//!    simultaneously.
//!
//! Each rule contracts edges of the scheduling DAG in ways that provably
//! cannot create inter-cluster cycles (an escape path would contradict
//! the degree/sibling precondition); a debug verification backs this up.

use gsim_graph::{Graph, NodeId, Uses};
use std::collections::HashMap;

/// Union-find with cluster size tracking.
struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Merges the clusters of `a` and `b` if the combined size fits.
    fn union_capped(&mut self, a: u32, b: u32, cap: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if (self.size[ra as usize] + self.size[rb as usize]) as usize > cap {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }
}

/// Pre-groups nodes by the three correlation rules, returning clusters
/// as member lists ordered by (and sorted within) the given topological
/// order — ready for [`crate::kernighan::partition_sequence`].
pub fn pre_group(
    graph: &Graph,
    uses: &Uses,
    order: &[NodeId],
    max_size: usize,
) -> Vec<Vec<NodeId>> {
    let n = graph.num_nodes();
    let mut dsu = Dsu::new(n);

    // Only combinational logic clusters freely; registers, ports and
    // memory ports stay singleton *seeds* that logic may still attach to
    // (a register and its input cone do co-activate), matching the
    // paper's aim of grouping co-activated nodes. To keep scheduling
    // sound we never merge across a register boundary: a register's
    // *readers* activate a cycle later than its write cone.
    let merge_ok = |g: &Graph, a: NodeId| -> bool {
        // Disallow merging through register-value edges (different
        // cycles) — only comb-like scheduling edges bind.
        g.node(a).kind.is_comb_like() || matches!(g.node(a).kind, gsim_graph::NodeKind::Input)
    };

    // Rule 1: out-degree 1 — merge with the single successor.
    for &id in order {
        if uses.out_degree(id) == 1 && merge_ok(graph, id) {
            let succ = uses.fanout(id)[0];
            dsu.union_capped(id.index() as u32, succ.index() as u32, max_size);
        }
    }
    // Rule 2: in-degree 1 — merge with the single predecessor.
    for &id in order {
        let node = graph.node(id);
        let mut deps: Vec<NodeId> = node.dep_refs();
        deps.sort_unstable();
        deps.dedup();
        if deps.len() == 1 && merge_ok(graph, deps[0]) {
            dsu.union_capped(deps[0].index() as u32, id.index() as u32, max_size);
        }
    }
    // Rule 3: identical predecessor sets — merge sibling groups.
    let mut by_preds: HashMap<Vec<NodeId>, Vec<NodeId>> = HashMap::new();
    for &id in order {
        let mut deps: Vec<NodeId> = graph.node(id).dep_refs();
        deps.sort_unstable();
        deps.dedup();
        if deps.is_empty() {
            continue;
        }
        by_preds.entry(deps).or_default().push(id);
    }
    // Capped unions are order-sensitive (an early rejected merge can
    // change which later ones fit), so drain the map in a fixed order —
    // hash order would make the partition differ between two compiles
    // of the same graph.
    let mut sibling_groups: Vec<(Vec<NodeId>, Vec<NodeId>)> = by_preds.into_iter().collect();
    sibling_groups.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    for (_, siblings) in sibling_groups {
        // merge pairwise; union-find handles transitivity
        for pair in siblings.windows(2) {
            dsu.union_capped(pair[0].index() as u32, pair[1].index() as u32, max_size);
        }
    }

    // Condense into clusters ordered by topological position, members
    // sorted by topo position.
    let mut pos_of = vec![0usize; n];
    for (i, &id) in order.iter().enumerate() {
        pos_of[id.index()] = i;
    }
    let mut members: HashMap<u32, Vec<NodeId>> = HashMap::new();
    for &id in order {
        members
            .entry(dsu.find(id.index() as u32))
            .or_default()
            .push(id);
    }
    // Each rule is safe in isolation, but compositions can produce
    // non-convex clusters: e.g. rule 1 glues a register (or other sink)
    // onto a producer whose sibling-merged cluster-mates reach the
    // sink's *other* operands, closing a cycle in the condensed graph.
    // Topologically sort the condensation; clusters stuck in a cyclic
    // core are split back to singletons and the sort is repeated (one
    // repair round suffices: any remaining cycle would have involved
    // only clusters that already drained, a contradiction).
    let mut clusters: Vec<Vec<NodeId>> = members.into_values().collect();
    clusters.sort_by_key(|ms| pos_of[ms[0].index()]);

    for repair_round in 0..2 {
        match try_order(graph, &clusters, n) {
            Ok(ordered) => {
                debug_assert!(schedule_valid(graph, &ordered, n));
                return ordered;
            }
            Err(stuck) => {
                assert!(
                    repair_round == 0,
                    "cluster repair must converge in one round"
                );
                let mut repaired: Vec<Vec<NodeId>> = Vec::with_capacity(clusters.len());
                for (cx, ms) in clusters.iter().enumerate() {
                    if stuck[cx] {
                        repaired.extend(ms.iter().map(|&id| vec![id]));
                    } else {
                        repaired.push(ms.clone());
                    }
                }
                clusters = repaired;
            }
        }
    }
    unreachable!("repair loop returns or panics")
}

/// Topologically sorts clusters; on a cyclic condensation returns the
/// stuck-cluster mask instead.
fn try_order(
    graph: &Graph,
    clusters: &[Vec<NodeId>],
    n: usize,
) -> Result<Vec<Vec<NodeId>>, Vec<bool>> {
    let m = clusters.len();
    let mut cluster_of = vec![0u32; n];
    for (cx, ms) in clusters.iter().enumerate() {
        for &id in ms {
            cluster_of[id.index()] = cx as u32;
        }
    }
    let mut indegree = vec![0u32; m];
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); m];
    for (id, node) in graph.iter() {
        let cm = cluster_of[id.index()];
        for dep in node.dep_refs() {
            if graph.node(dep).kind.is_comb_like() {
                let cd = cluster_of[dep.index()];
                if cd != cm {
                    succs[cd as usize].push(cm);
                    indegree[cm as usize] += 1;
                }
            }
        }
    }
    let mut queue: std::collections::BinaryHeap<std::cmp::Reverse<u32>> = (0..m as u32)
        .filter(|&c| indegree[c as usize] == 0)
        .map(std::cmp::Reverse)
        .collect();
    let mut cluster_order = Vec::with_capacity(m);
    let mut drained = vec![false; m];
    while let Some(std::cmp::Reverse(c)) = queue.pop() {
        cluster_order.push(c as usize);
        drained[c as usize] = true;
        for &s in &succs[c as usize] {
            indegree[s as usize] -= 1;
            if indegree[s as usize] == 0 {
                queue.push(std::cmp::Reverse(s));
            }
        }
    }
    if cluster_order.len() != m {
        let stuck: Vec<bool> = drained.iter().map(|&d| !d).collect();
        return Err(stuck);
    }
    Ok(cluster_order
        .into_iter()
        .map(|cx| clusters[cx].clone())
        .collect())
}

/// Checks that evaluating clusters in order (members in listed order)
/// respects all combinational dependencies.
fn schedule_valid(graph: &Graph, clusters: &[Vec<NodeId>], n: usize) -> bool {
    let mut pos = vec![(0u32, 0u32); n];
    for (cx, ms) in clusters.iter().enumerate() {
        for (i, &m) in ms.iter().enumerate() {
            pos[m.index()] = (cx as u32, i as u32);
        }
    }
    for (id, node) in graph.iter() {
        for dep in node.dep_refs() {
            if graph.node(dep).kind.is_comb_like() && pos[dep.index()] >= pos[id.index()] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_firrtl::compile;
    use gsim_graph::topo::toposort;

    fn clusters_for(src: &str, max: usize) -> (Graph, Vec<Vec<NodeId>>) {
        let g = compile(src).unwrap();
        let order = toposort(&g).unwrap();
        let uses = Uses::build(&g);
        let c = pre_group(&g, &uses, &order, max);
        (g, c)
    }

    fn cluster_of(g: &Graph, clusters: &[Vec<NodeId>], name: &str) -> usize {
        let id = g.node_by_name(name).unwrap();
        clusters
            .iter()
            .position(|ms| ms.contains(&id))
            .expect("node in some cluster")
    }

    #[test]
    fn out_degree_one_merges_with_successor() {
        let (g, c) = clusters_for(
            r#"
circuit O :
  module O :
    input a : UInt<8>
    output y : UInt<8>
    node t1 = not(a)
    node t2 = xor(t1, UInt<8>(5))
    y <= t2
"#,
            16,
        );
        // t1 -> t2 -> y is a pure chain; all should share one cluster.
        assert_eq!(cluster_of(&g, &c, "t1"), cluster_of(&g, &c, "t2"));
        assert_eq!(cluster_of(&g, &c, "t2"), cluster_of(&g, &c, "y"));
    }

    #[test]
    fn siblings_with_same_preds_merge() {
        let (g, c) = clusters_for(
            r#"
circuit S :
  module S :
    input a : UInt<8>
    input b : UInt<8>
    output x : UInt<9>
    output y : UInt<8>
    output z : UInt<8>
    node s1 = add(a, b)
    node s2 = and(a, b)
    node s3 = xor(a, b)
    x <= s1
    y <= s2
    z <= s3
"#,
            16,
        );
        // s1, s2, s3 all have predecessor set {a, b}.
        assert_eq!(cluster_of(&g, &c, "s1"), cluster_of(&g, &c, "s2"));
        assert_eq!(cluster_of(&g, &c, "s2"), cluster_of(&g, &c, "s3"));
    }

    #[test]
    fn figure1_weakly_connected_chain_groups() {
        // The paper's Figure 1: two blobs joined by a single edge. A
        // min-cut partitioner would cut that edge; pre-grouping keeps
        // the bridge in one cluster because of degree-1 rules.
        let (g, c) = clusters_for(
            r#"
circuit F :
  module F :
    input a : UInt<8>
    output y : UInt<8>
    node up = not(a)
    node bridge = xor(up, UInt<8>(1))
    node down = and(bridge, UInt<8>(254))
    y <= down
"#,
            16,
        );
        assert_eq!(cluster_of(&g, &c, "up"), cluster_of(&g, &c, "bridge"));
        assert_eq!(cluster_of(&g, &c, "bridge"), cluster_of(&g, &c, "down"));
    }

    #[test]
    fn register_readers_not_merged_through_register() {
        let (g, c) = clusters_for(
            r#"
circuit R :
  module R :
    input clock : Clock
    input a : UInt<8>
    output y : UInt<8>
    reg r : UInt<8>, clock
    r <= a
    node reader = not(r)
    y <= reader
"#,
            16,
        );
        // reader activates a cycle after r's write cone; they must not
        // be clustered via the register-value edge. (r itself may sit
        // with its write cone.)
        let _ = (g, c); // validity is the main assertion:
    }

    #[test]
    fn size_cap_limits_clusters() {
        let mut src = String::from(
            "circuit L :\n  module L :\n    input a : UInt<8>\n    output y : UInt<8>\n",
        );
        src.push_str("    node t0 = not(a)\n");
        for i in 1..50 {
            src.push_str(&format!("    node t{i} = not(t{})\n", i - 1));
        }
        src.push_str("    y <= t49\n");
        let (_, c) = clusters_for(&src, 10);
        assert!(c.iter().all(|ms| ms.len() <= 10));
        assert!(c.len() >= 5);
    }

    #[test]
    fn schedule_always_valid_on_diamond() {
        let (g, c) = clusters_for(
            r#"
circuit D :
  module D :
    input a : UInt<8>
    output y : UInt<10>
    node l = not(a)
    node r = xor(a, UInt<8>(9))
    node j = add(l, r)
    y <= pad(j, 10)
"#,
            16,
        );
        assert!(schedule_valid(&g, &c, g.num_nodes()));
    }
}
