//! Supernode construction (paper §III-A and Table III).
//!
//! A *supernode* is a set of nodes sharing one active bit: activating any
//! member evaluates them all. Bigger supernodes reduce the active-bit
//! examination cost `Aexam` but can raise the activity factor `af` when
//! weakly-related nodes get grouped. The paper compares three
//! algorithms, all implemented here:
//!
//! * [`Algorithm::Kernighan`] — Kernighan's 1971 optimal sequential
//!   partition: nodes in topological order are cut into contiguous
//!   intervals of bounded size, minimizing cut edges by dynamic
//!   programming.
//! * [`Algorithm::MffcBased`] — ESSENT-style zones from maximum
//!   fanout-free cones: a node joins the zone of its consumers when they
//!   all agree, so every zone is a cone feeding one root.
//! * [`Algorithm::Gsim`] — the paper's enhancement: first group nodes
//!   that are *certain* to activate together (out-degree-1 nodes with
//!   their successor, in-degree-1 nodes with their predecessor, siblings
//!   with identical predecessors — §III-A observations ❶❷❸), protect
//!   those groups, then run the Kernighan DP over the condensed graph.
//! * [`Algorithm::None`] — one node per supernode (the unpartitioned
//!   baseline row of Table III).
//!
//! All algorithms produce supernodes in a valid topological order with
//! members internally ordered, ready for the engine's one-pass sweep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod kernighan;
pub mod levels;
pub mod mffc;

pub use levels::SupernodeDag;

use gsim_graph::{Graph, NodeId, Uses};
use std::time::{Duration, Instant};

/// Partitioning algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// One node per supernode.
    None,
    /// Kernighan's sequential-partition DP over the plain topo order.
    Kernighan,
    /// ESSENT-style maximum fanout-free cones.
    MffcBased,
    /// GSIM: correlation pre-grouping + Kernighan DP (the paper's
    /// enhanced algorithm).
    Gsim,
}

impl Algorithm {
    /// Human-readable name matching the paper's Table III rows.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::None => "None",
            Algorithm::Kernighan => "Kernighan",
            Algorithm::MffcBased => "MFFC-based",
            Algorithm::Gsim => "GSIM",
        }
    }
}

/// Partitioning options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionOptions {
    /// The algorithm to use.
    pub algorithm: Algorithm,
    /// Maximum number of nodes per supernode (the paper's command-line
    /// knob; Figure 9 sweeps it). Ignored by [`Algorithm::None`].
    pub max_size: usize,
}

impl PartitionOptions {
    /// The default maximum supernode size, shared by the GSIM and
    /// ESSENT configurations: the paper's optimal range is 20–50
    /// members (Figure 9), and ESSENT's published evaluation uses the
    /// same order of magnitude, so both presets sit at its middle.
    pub const DEFAULT_MAX_SIZE: usize = 30;
}

impl Default for PartitionOptions {
    /// GSIM with [`PartitionOptions::DEFAULT_MAX_SIZE`] — inside the
    /// paper's optimal 20–50 range (Figure 9).
    fn default() -> Self {
        PartitionOptions {
            algorithm: Algorithm::Gsim,
            max_size: PartitionOptions::DEFAULT_MAX_SIZE,
        }
    }
}

/// A supernode partition of a circuit graph.
#[derive(Debug, Clone)]
pub struct Partition {
    /// `assignment[node] = supernode index`.
    pub assignment: Vec<u32>,
    /// Member nodes per supernode; supernodes are topologically ordered
    /// and members are in evaluation order.
    pub supernodes: Vec<Vec<NodeId>>,
    /// Wall-clock time spent partitioning (Table III's "partition
    /// time" column).
    pub build_time: Duration,
    /// The algorithm that produced this partition.
    pub algorithm: Algorithm,
}

impl Partition {
    /// Number of supernodes.
    pub fn len(&self) -> usize {
        self.supernodes.len()
    }

    /// `true` when the partition is empty (empty graph).
    pub fn is_empty(&self) -> bool {
        self.supernodes.is_empty()
    }

    /// Size of the largest supernode.
    pub fn max_supernode_size(&self) -> usize {
        self.supernodes.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Checks structural invariants: every node in exactly one
    /// supernode, assignment consistent, and the supernode order is a
    /// valid schedule (all combinational dependencies point backwards
    /// or within the same supernode).
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic if an invariant is violated (used by
    /// tests and debug assertions).
    pub fn assert_valid(&self, graph: &Graph) {
        let n = graph.num_nodes();
        let mut seen = vec![false; n];
        for (snx, members) in self.supernodes.iter().enumerate() {
            assert!(!members.is_empty(), "supernode {snx} is empty");
            for &m in members {
                assert!(!seen[m.index()], "node {m} appears twice");
                seen[m.index()] = true;
                assert_eq!(
                    self.assignment[m.index()],
                    snx as u32,
                    "assignment mismatch"
                );
            }
        }
        assert!(seen.iter().all(|&s| s), "some nodes unassigned");

        // Scheduling validity: comb dependencies must be evaluated
        // no later than their users.
        let mut pos = vec![(0u32, 0u32); n];
        for (snx, members) in self.supernodes.iter().enumerate() {
            for (i, &m) in members.iter().enumerate() {
                pos[m.index()] = (snx as u32, i as u32);
            }
        }
        for (id, node) in graph.iter() {
            for dep in node.dep_refs() {
                if graph.node(dep).kind.is_comb_like() {
                    assert!(
                        pos[dep.index()] < pos[id.index()],
                        "dependency {dep} of {id} scheduled after it"
                    );
                }
            }
        }
    }
}

/// Builds a partition of `graph`.
pub fn build(graph: &Graph, opts: &PartitionOptions) -> Partition {
    let start = Instant::now();
    let order = gsim_graph::topo::toposort(graph).expect("graph must be acyclic");
    let uses = Uses::build(graph);
    let mut partition = match opts.algorithm {
        Algorithm::None => singletons(graph, &order),
        Algorithm::Kernighan => {
            let items: Vec<Vec<NodeId>> = order.iter().map(|&id| vec![id]).collect();
            kernighan::partition_sequence(graph, &uses, items, opts.max_size)
        }
        Algorithm::MffcBased => mffc::partition(graph, &uses, &order, opts.max_size),
        Algorithm::Gsim => {
            let clusters = cluster::pre_group(graph, &uses, &order, opts.max_size);
            kernighan::partition_sequence(graph, &uses, clusters, opts.max_size)
        }
    };
    partition.build_time = start.elapsed();
    partition.algorithm = opts.algorithm;
    partition
}

/// One node per supernode, in topological order.
fn singletons(graph: &Graph, order: &[NodeId]) -> Partition {
    let mut assignment = vec![0u32; graph.num_nodes()];
    let mut supernodes = Vec::with_capacity(order.len());
    for (i, &id) in order.iter().enumerate() {
        assignment[id.index()] = i as u32;
        supernodes.push(vec![id]);
    }
    Partition {
        assignment,
        supernodes,
        build_time: Duration::ZERO,
        algorithm: Algorithm::None,
    }
}

/// Assembles a `Partition` from supernode member lists that are already
/// in a valid topological order.
pub(crate) fn from_groups(graph: &Graph, groups: Vec<Vec<NodeId>>) -> Partition {
    let mut assignment = vec![u32::MAX; graph.num_nodes()];
    for (snx, members) in groups.iter().enumerate() {
        for &m in members {
            assignment[m.index()] = snx as u32;
        }
    }
    debug_assert!(assignment.iter().all(|&a| a != u32::MAX));
    Partition {
        assignment,
        supernodes: groups,
        build_time: Duration::ZERO,
        algorithm: Algorithm::None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_firrtl::compile;

    fn sample_graph() -> Graph {
        compile(
            r#"
circuit P :
  module P :
    input clock : Clock
    input a : UInt<8>
    input b : UInt<8>
    output x : UInt<8>
    output y : UInt<8>
    node s = tail(add(a, b), 1)
    node t = xor(s, UInt<8>(85))
    node u = and(s, b)
    reg r1 : UInt<8>, clock
    reg r2 : UInt<8>, clock
    r1 <= t
    r2 <= u
    x <= r1
    y <= r2
"#,
        )
        .unwrap()
    }

    #[test]
    fn all_algorithms_produce_valid_partitions() {
        let g = sample_graph();
        for alg in [
            Algorithm::None,
            Algorithm::Kernighan,
            Algorithm::MffcBased,
            Algorithm::Gsim,
        ] {
            let p = build(
                &g,
                &PartitionOptions {
                    algorithm: alg,
                    max_size: 4,
                },
            );
            p.assert_valid(&g);
            assert!(p.max_supernode_size() <= 4, "{alg:?} exceeded max size");
        }
    }

    #[test]
    fn none_is_singletons() {
        let g = sample_graph();
        let p = build(
            &g,
            &PartitionOptions {
                algorithm: Algorithm::None,
                max_size: 8,
            },
        );
        assert_eq!(p.len(), g.num_nodes());
        assert_eq!(p.max_supernode_size(), 1);
    }

    #[test]
    fn grouping_reduces_supernode_count() {
        let g = sample_graph();
        let baseline = build(
            &g,
            &PartitionOptions {
                algorithm: Algorithm::None,
                max_size: 1,
            },
        )
        .len();
        for alg in [Algorithm::Kernighan, Algorithm::MffcBased, Algorithm::Gsim] {
            let p = build(
                &g,
                &PartitionOptions {
                    algorithm: alg,
                    max_size: 6,
                },
            );
            assert!(
                p.len() < baseline,
                "{alg:?} produced {} supernodes vs {baseline} nodes",
                p.len()
            );
        }
    }

    #[test]
    fn max_size_one_degenerates_to_singletons() {
        let g = sample_graph();
        for alg in [Algorithm::Kernighan, Algorithm::Gsim, Algorithm::MffcBased] {
            let p = build(
                &g,
                &PartitionOptions {
                    algorithm: alg,
                    max_size: 1,
                },
            );
            p.assert_valid(&g);
            assert_eq!(p.max_supernode_size(), 1);
        }
    }
}
