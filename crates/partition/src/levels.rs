//! The supernode dependency DAG and its level schedule.
//!
//! The essential-signal engine needs more than a linear supernode order
//! to go parallel: it needs to know which supernodes are *independent*.
//! [`SupernodeDag`] condenses the circuit graph onto the partition —
//! one vertex per supernode, one edge per combinational dependency
//! crossing supernode boundaries — and assigns every supernode a
//! *level* such that all of its predecessors sit at strictly lower
//! levels. Supernodes sharing a level have no dependencies among
//! themselves, so a level can be swept by many threads at once with a
//! barrier between levels (the bulk-synchronous schedule of the
//! parallel essential engine).
//!
//! Because supernode partitions are built in topological order (every
//! algorithm in this crate guarantees it, and [`Partition::assert_valid`]
//! checks it), every condensed edge points from a lower supernode index
//! to a higher one. [`SupernodeDag::compute`] validates exactly that —
//! a backward edge would make the schedule cyclic — so the level
//! assignment is acyclic by construction.

use crate::Partition;
use gsim_graph::Graph;

/// The condensed dependency DAG over a [`Partition`]'s supernodes,
/// with a level assignment for bulk-synchronous parallel sweeps.
#[derive(Debug, Clone)]
pub struct SupernodeDag {
    /// CSR offsets: the successors of supernode `sn` are
    /// `succs[succ_offsets[sn]..succ_offsets[sn + 1]]`.
    pub succ_offsets: Vec<u32>,
    /// Flattened successor lists, deduplicated and ascending per
    /// supernode.
    pub succs: Vec<u32>,
    /// `level[sn]`: length of the longest dependency chain ending at
    /// `sn` (sources at level 0).
    pub level: Vec<u32>,
    /// Supernode indices grouped by level, ascending within each group.
    /// Supernodes in one group are mutually independent.
    pub groups: Vec<Vec<u32>>,
}

impl SupernodeDag {
    /// Condenses `graph`'s combinational scheduling edges onto
    /// `partition`'s supernodes and assigns levels
    /// (`level(sn) = 1 + max(level(preds))`, sources at 0).
    ///
    /// Register and input references impose no edge: registers read
    /// their previous value and inputs only change between cycles, so
    /// neither orders supernodes within a sweep.
    ///
    /// # Panics
    ///
    /// Panics if an edge points from a higher supernode index to a
    /// lower one — i.e. the partition is not a topological order of
    /// its own condensation, which would make any level schedule
    /// cyclic. Partitions built by [`crate::build`] never trip this.
    pub fn compute(graph: &Graph, partition: &Partition) -> SupernodeDag {
        let n = partition.supernodes.len();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (id, node) in graph.iter() {
            let own = partition.assignment[id.index()];
            for dep in node.dep_refs() {
                if !graph.node(dep).kind.is_comb_like() {
                    continue;
                }
                let from = partition.assignment[dep.index()];
                if from == own {
                    continue;
                }
                assert!(
                    from < own,
                    "supernode edge {from} -> {own} points backwards: \
                     the partition is not in topological order"
                );
                edges.push((from, own));
            }
        }
        edges.sort_unstable();
        edges.dedup();

        let mut succ_offsets = vec![0u32; n + 1];
        for &(from, _) in &edges {
            succ_offsets[from as usize + 1] += 1;
        }
        for i in 0..n {
            succ_offsets[i + 1] += succ_offsets[i];
        }
        let succs: Vec<u32> = edges.iter().map(|&(_, to)| to).collect();

        // Every edge ascends in supernode index, so one pass over the
        // source-sorted edge list finalizes each level before it is
        // read.
        let mut level = vec![0u32; n];
        for &(from, to) in &edges {
            level[to as usize] = level[to as usize].max(level[from as usize] + 1);
        }
        let depth = level.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut groups = vec![Vec::new(); depth];
        for (sn, &lv) in level.iter().enumerate() {
            groups[lv as usize].push(sn as u32);
        }

        SupernodeDag {
            succ_offsets,
            succs,
            level,
            groups,
        }
    }

    /// Number of supernodes.
    pub fn len(&self) -> usize {
        self.level.len()
    }

    /// `true` for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.level.is_empty()
    }

    /// Number of levels (barriers per parallel sweep).
    pub fn depth(&self) -> usize {
        self.groups.len()
    }

    /// Successor supernodes of `sn` (deduplicated, ascending).
    pub fn succs_of(&self, sn: u32) -> &[u32] {
        let lo = self.succ_offsets[sn as usize] as usize;
        let hi = self.succ_offsets[sn as usize + 1] as usize;
        &self.succs[lo..hi]
    }

    /// Checks that the level assignment is a valid topological
    /// coloring: every edge goes strictly level-up, and `groups`
    /// contains every supernode exactly once at its assigned level.
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic if an invariant is violated (used by
    /// tests and debug assertions).
    pub fn assert_valid(&self) {
        for sn in 0..self.len() as u32 {
            for &succ in self.succs_of(sn) {
                assert!(
                    self.level[succ as usize] > self.level[sn as usize],
                    "edge {sn} -> {succ} does not go level-up \
                     ({} -> {})",
                    self.level[sn as usize],
                    self.level[succ as usize]
                );
            }
        }
        let mut seen = vec![false; self.len()];
        for (lv, group) in self.groups.iter().enumerate() {
            for &sn in group {
                assert_eq!(
                    self.level[sn as usize] as usize, lv,
                    "supernode {sn} grouped at the wrong level"
                );
                assert!(!seen[sn as usize], "supernode {sn} grouped twice");
                seen[sn as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some supernodes ungrouped");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build, Algorithm, PartitionOptions};

    fn sample() -> Graph {
        gsim_firrtl::compile(
            r#"
circuit L :
  module L :
    input clock : Clock
    input a : UInt<8>
    input b : UInt<8>
    output x : UInt<8>
    output y : UInt<8>
    node s = tail(add(a, b), 1)
    node t = xor(s, UInt<8>(85))
    node u = and(s, b)
    reg r : UInt<8>, clock
    r <= t
    x <= r
    y <= u
"#,
        )
        .unwrap()
    }

    #[test]
    fn levels_are_topological_for_all_algorithms() {
        let g = sample();
        for alg in [
            Algorithm::None,
            Algorithm::Kernighan,
            Algorithm::MffcBased,
            Algorithm::Gsim,
        ] {
            let p = build(
                &g,
                &PartitionOptions {
                    algorithm: alg,
                    max_size: 3,
                },
            );
            let dag = SupernodeDag::compute(&g, &p);
            dag.assert_valid();
            assert_eq!(dag.len(), p.len());
            let grouped: usize = dag.groups.iter().map(Vec::len).sum();
            assert_eq!(grouped, p.len());
        }
    }

    #[test]
    fn register_references_do_not_create_edges() {
        // r's reader (output x) must be allowed at any level relative
        // to r's next-value logic: registers read last cycle's value.
        let g = sample();
        let p = build(
            &g,
            &PartitionOptions {
                algorithm: Algorithm::None,
                max_size: 1,
            },
        );
        let dag = SupernodeDag::compute(&g, &p);
        // There is at least one level-0 supernode beyond the pure
        // sources; the chain a -> s -> t gives depth >= 3.
        assert!(dag.depth() >= 3);
        // Edge count excludes same-supernode and register edges.
        assert!(dag.succs.len() < g.num_edges());
    }
}
