//! MFFC-based partitioning (the ESSENT baseline of Table III).
//!
//! Maximum fanout-free cones: every sink (output, memory write), every
//! register, and every node with consumers in different zones roots a
//! zone; a combinational node whose consumers all live in one zone joins
//! it. Each zone is therefore a cone whose internal nodes fan out only
//! within the zone — the classic technology-mapping structure ESSENT
//! builds its partitions from.
//!
//! Inter-zone edges leave only through zone roots, which makes the
//! contracted zone graph acyclic (an inter-zone cycle would imply a
//! combinational cycle between the roots).

use crate::Partition;
use gsim_graph::{Graph, NodeId, Uses};

/// Builds an MFFC-based partition. `max_size` caps zone sizes; an
/// overfull zone is split along the topological order of its members.
pub fn partition(graph: &Graph, uses: &Uses, order: &[NodeId], max_size: usize) -> Partition {
    let n = graph.num_nodes();
    let mut zone: Vec<u32> = vec![u32::MAX; n];
    let mut zone_size: Vec<u32> = Vec::new();
    let mut next_zone = 0u32;
    let mut alloc_zone = |zone_size: &mut Vec<u32>| {
        let z = next_zone;
        next_zone += 1;
        zone_size.push(0);
        z
    };

    // Reverse topological sweep: consumers are assigned before their
    // operands, so "all consumers in one zone" is decidable.
    for &id in order.iter().rev() {
        let node = graph.node(id);
        // Roots: anything that is not plain combinational logic.
        let is_root = !matches!(node.kind, gsim_graph::NodeKind::Comb);
        let mut target = None;
        if !is_root {
            let mut consumers = uses.fanout(id).iter();
            if let Some(&first) = consumers.next() {
                let z = zone[first.index()];
                if z != u32::MAX && consumers.all(|&c| zone[c.index()] == z) {
                    target = Some(z);
                }
            }
        }
        let assigned = match target {
            Some(z) if (zone_size[z as usize] as usize) < max_size => z,
            _ => alloc_zone(&mut zone_size),
        };
        zone[id.index()] = assigned;
        zone_size[assigned as usize] += 1;
    }

    // Group members per zone in topological order, splitting any zone
    // that still exceeds the cap (defensive; the sweep already caps).
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); next_zone as usize];
    for &id in order {
        members[zone[id.index()] as usize].push(id);
    }
    // Zones must be emitted in a topological order of the zone DAG.
    // Every member of a cone is a predecessor of its root, so the root
    // is the zone's maximum topo position. For an inter-zone edge
    // u (in W) -> m (in Z): pos(root W) = pos(u) < pos(m) <= pos(root Z),
    // hence sorting zones by root position yields a valid schedule.
    let mut root_pos = vec![0usize; next_zone as usize];
    let mut pos_of = vec![0usize; n];
    for (i, &id) in order.iter().enumerate() {
        pos_of[id.index()] = i;
    }
    for (z, ms) in members.iter().enumerate() {
        if let Some(&last) = ms.last() {
            root_pos[z] = pos_of[last.index()];
        }
    }
    let mut zone_order: Vec<usize> = (0..next_zone as usize)
        .filter(|&z| !members[z].is_empty())
        .collect();
    zone_order.sort_by_key(|&z| root_pos[z]);

    let mut groups = Vec::with_capacity(zone_order.len());
    for z in zone_order {
        let ms = std::mem::take(&mut members[z]);
        if ms.len() <= max_size {
            groups.push(ms);
        } else {
            for chunk in ms.chunks(max_size) {
                groups.push(chunk.to_vec());
            }
        }
    }
    crate::from_groups(graph, groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_firrtl::compile;
    use gsim_graph::topo::toposort;

    #[test]
    fn cone_logic_shares_a_zone_with_its_register() {
        // A register fed by a private cone of logic: the whole cone
        // should land in one supernode with the register.
        let g = compile(
            r#"
circuit C :
  module C :
    input clock : Clock
    input a : UInt<8>
    output q : UInt<8>
    node t1 = not(a)
    node t2 = xor(t1, UInt<8>(3))
    node t3 = and(t2, UInt<8>(127))
    reg r : UInt<8>, clock
    r <= t3
    q <= r
"#,
        )
        .unwrap();
        let order = toposort(&g).unwrap();
        let uses = Uses::build(&g);
        let p = partition(&g, &uses, &order, 16);
        p.assert_valid(&g);
        let r = g.node_by_name("r").unwrap();
        let zone_r = p.assignment[r.index()];
        for name in ["t1", "t2", "t3"] {
            let id = g.node_by_name(name).unwrap();
            assert_eq!(
                p.assignment[id.index()],
                zone_r,
                "{name} should be in the register's cone"
            );
        }
    }

    #[test]
    fn shared_node_roots_its_own_zone() {
        // s feeds two different register cones, so it cannot join either.
        let g = compile(
            r#"
circuit S :
  module S :
    input clock : Clock
    input a : UInt<8>
    output x : UInt<8>
    output y : UInt<8>
    node s = not(a)
    reg r1 : UInt<8>, clock
    reg r2 : UInt<8>, clock
    r1 <= xor(s, UInt<8>(1))
    r2 <= xor(s, UInt<8>(2))
    x <= r1
    y <= r2
"#,
        )
        .unwrap();
        let order = toposort(&g).unwrap();
        let uses = Uses::build(&g);
        let p = partition(&g, &uses, &order, 16);
        p.assert_valid(&g);
        let s = g.node_by_name("s").unwrap();
        let r1 = g.node_by_name("r1").unwrap();
        let r2 = g.node_by_name("r2").unwrap();
        assert_ne!(p.assignment[s.index()], p.assignment[r1.index()]);
        assert_ne!(p.assignment[s.index()], p.assignment[r2.index()]);
    }

    #[test]
    fn size_cap_respected() {
        // Long chain into one register: the cone would be huge; the cap
        // must split it.
        let mut src = String::from(
            "circuit L :\n  module L :\n    input clock : Clock\n    input a : UInt<8>\n    output q : UInt<8>\n",
        );
        src.push_str("    node t0 = not(a)\n");
        for i in 1..40 {
            src.push_str(&format!("    node t{i} = not(t{})\n", i - 1));
        }
        src.push_str("    reg r : UInt<8>, clock\n    r <= t39\n    q <= r\n");
        let g = compile(&src).unwrap();
        let order = toposort(&g).unwrap();
        let uses = Uses::build(&g);
        let p = partition(&g, &uses, &order, 8);
        p.assert_valid(&g);
        assert!(p.max_supernode_size() <= 8);
        assert!(p.len() >= 5);
    }
}
