//! Kernighan's optimal sequential partition (JACM 1971), adapted to
//! supernode construction.
//!
//! Given items in a fixed (topological) order, cut the sequence into
//! contiguous intervals whose total node weight respects `max_size`,
//! minimizing the number of graph edges crossing interval boundaries.
//! Dynamic programming over cut positions is optimal for a fixed order —
//! this is exactly the paper's "original Kernighan's Algorithm" baseline,
//! and also the final step of GSIM's enhanced algorithm (run over
//! pre-grouped clusters instead of raw nodes).
//!
//! Because intervals of a topological order are contracted, the
//! resulting supernode graph is automatically acyclic.

use crate::Partition;
use gsim_graph::{Graph, NodeId, Uses};

/// Partitions a sequence of items (each item = one or more nodes,
/// already topologically ordered) into intervals of total weight at most
/// `max_size`, minimizing cut edges. Returns the assembled partition.
///
/// # Panics
///
/// Panics if any single item exceeds `max_size` (callers cap cluster
/// sizes during pre-grouping) or if `max_size` is zero.
pub fn partition_sequence(
    graph: &Graph,
    uses: &Uses,
    items: Vec<Vec<NodeId>>,
    max_size: usize,
) -> Partition {
    assert!(max_size > 0, "max_size must be positive");
    let m = items.len();
    if m == 0 {
        return crate::from_groups(graph, items);
    }

    // Item index per node.
    let mut item_of = vec![u32::MAX; graph.num_nodes()];
    for (ix, members) in items.iter().enumerate() {
        for &n in members {
            item_of[n.index()] = ix as u32;
        }
    }
    let weight: Vec<u32> = items.iter().map(|it| it.len() as u32).collect();
    for (&w, it) in weight.iter().zip(&items) {
        assert!(
            (w as usize) <= max_size,
            "item with {w} nodes exceeds max size {max_size}: first node {}",
            it[0]
        );
    }

    // Edges between items, as (min_pos, max_pos) pairs; parallel edges
    // keep their multiplicity (each represents real activation traffic).
    // Adjacency lists sorted for the incremental DP update.
    let mut in_later: Vec<Vec<u32>> = vec![Vec::new(); m]; // key: max_pos -> min_pos list
    let mut out_earlier: Vec<Vec<u32>> = vec![Vec::new(); m]; // key: min_pos -> max_pos list
    for id in graph.node_ids() {
        let a = item_of[id.index()];
        for &succ in uses.fanout(id) {
            let b = item_of[succ.index()];
            if a == b {
                continue;
            }
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            in_later[hi as usize].push(lo);
            out_earlier[lo as usize].push(hi);
        }
    }
    for v in &mut out_earlier {
        v.sort_unstable();
    }

    // DP: best[i] = minimal cut cost of partitioning items [0, i).
    // Transition: best[i] = min over window j of best[j] + cut(j, i)
    // where cut(j, i) counts edges whose later endpoint lies in [j, i)
    // and earlier endpoint before j.
    const INF: u64 = u64::MAX / 2;
    let mut best = vec![INF; m + 1];
    let mut parent = vec![0usize; m + 1];
    best[0] = 0;
    for i in 1..=m {
        // Walk j downward from i-1, maintaining cut(j, i) incrementally.
        let mut cut: u64 = 0;
        let mut weight_sum: u64 = 0;
        let mut j = i;
        while j > 0 {
            let jj = j - 1; // item being added to the interval
            weight_sum += weight[jj] as u64;
            if weight_sum > max_size as u64 {
                break;
            }
            // Edges whose later endpoint is jj: become cut (earlier
            // endpoint is outside, to the left).
            cut += in_later[jj].len() as u64;
            // Edges from jj to items inside [jj+1, i): no longer cut.
            // out_earlier[jj] is sorted by the later endpoint.
            let inside = out_earlier[jj]
                .iter()
                .take_while(|&&hi| (hi as usize) < i)
                .filter(|&&hi| (hi as usize) >= j)
                .count();
            cut -= inside as u64;
            j = jj;
            let cand = best[j].saturating_add(cut);
            if cand < best[i] {
                best[i] = cand;
                parent[i] = j;
            }
        }
        debug_assert!(best[i] < INF, "window must admit at least one cut");
    }

    // Reconstruct boundaries.
    let mut bounds = Vec::new();
    let mut i = m;
    while i > 0 {
        bounds.push((parent[i], i));
        i = parent[i];
    }
    bounds.reverse();

    let groups: Vec<Vec<NodeId>> = bounds
        .into_iter()
        .map(|(lo, hi)| items[lo..hi].iter().flatten().copied().collect())
        .collect();
    crate::from_groups(graph, groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_graph::{Expr, GraphBuilder, PrimOp};

    /// Two independent chains: the optimal 2-way split with max_size 4
    /// cuts between the chains, not across one.
    #[test]
    fn dp_prefers_cutting_between_components() {
        let mut b = GraphBuilder::new("two_chains");
        let a = b.input("a", 8, false);
        let c = b.input("c", 8, false);
        let mut prev = a;
        let mut chain1 = vec![];
        for i in 0..3 {
            prev = b.comb(
                format!("x{i}"),
                Expr::truncate(
                    Expr::prim(
                        PrimOp::Xor,
                        vec![Expr::reference(prev, 8, false), Expr::const_u64(i, 8)],
                        vec![],
                    )
                    .unwrap(),
                    8,
                ),
            );
            chain1.push(prev);
        }
        b.output("o1", Expr::reference(prev, 8, false));
        let mut prev2 = c;
        for i in 0..3 {
            prev2 = b.comb(
                format!("y{i}"),
                Expr::truncate(
                    Expr::prim(
                        PrimOp::Xor,
                        vec![Expr::reference(prev2, 8, false), Expr::const_u64(i, 8)],
                        vec![],
                    )
                    .unwrap(),
                    8,
                ),
            );
        }
        b.output("o2", Expr::reference(prev2, 8, false));
        let g = b.finish().unwrap();

        let order = gsim_graph::topo::toposort(&g).unwrap();
        let uses = Uses::build(&g);
        let items: Vec<Vec<NodeId>> = order.iter().map(|&id| vec![id]).collect();
        let p = partition_sequence(&g, &uses, items, 5);
        p.assert_valid(&g);

        // No supernode should mix x-chain and y-chain logic: with
        // max_size 5, grouping each chain (input + 3 nodes + output = 5)
        // separately achieves zero cut within chains.
        for sn in &p.supernodes {
            let has_x = sn.iter().any(|&n| g.node(n).name.starts_with('x'));
            let has_y = sn.iter().any(|&n| g.node(n).name.starts_with('y'));
            assert!(
                !(has_x && has_y),
                "supernode mixes independent chains: {sn:?}"
            );
        }
    }

    #[test]
    fn respects_max_size_exactly() {
        let mut b = GraphBuilder::new("chain");
        let a = b.input("a", 4, false);
        let mut prev = a;
        for i in 0..20 {
            prev = b.comb(
                format!("n{i}"),
                Expr::truncate(
                    Expr::prim(
                        PrimOp::Xor,
                        vec![Expr::reference(prev, 4, false), Expr::const_u64(i, 4)],
                        vec![],
                    )
                    .unwrap(),
                    4,
                ),
            );
        }
        b.output("o", Expr::reference(prev, 4, false));
        let g = b.finish().unwrap();
        let order = gsim_graph::topo::toposort(&g).unwrap();
        let uses = Uses::build(&g);
        let items: Vec<Vec<NodeId>> = order.iter().map(|&id| vec![id]).collect();
        for max in [1usize, 3, 7, 22, 100] {
            let p = partition_sequence(&g, &uses, items.clone(), max);
            p.assert_valid(&g);
            assert!(p.max_supernode_size() <= max);
        }
        // A straight chain with a huge budget should become 1 supernode.
        let p = partition_sequence(&g, &uses, items, 100);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn weighted_items_respect_budget() {
        let mut b = GraphBuilder::new("w");
        let a = b.input("a", 4, false);
        let mut nodes = vec![a];
        for i in 0..6 {
            let n = b.comb(
                format!("n{i}"),
                Expr::truncate(
                    Expr::prim(
                        PrimOp::Xor,
                        vec![Expr::reference(a, 4, false), Expr::const_u64(i, 4)],
                        vec![],
                    )
                    .unwrap(),
                    4,
                ),
            );
            nodes.push(n);
        }
        let g = b.finish().unwrap();
        let uses = Uses::build(&g);
        // Pre-grouped clusters of size 2, 2, 3 (plus the input).
        let items = vec![
            vec![nodes[0]],
            vec![nodes[1], nodes[2]],
            vec![nodes[3], nodes[4]],
            vec![nodes[5], nodes[6]],
        ];
        let p = partition_sequence(&g, &uses, items, 4);
        p.assert_valid(&g);
        assert!(p.max_supernode_size() <= 4);
    }
}
