//! Property tests: partition invariants on randomly generated DAGs.
//!
//! Every algorithm, on every random circuit, must produce a partition
//! where (a) each node is in exactly one supernode, (b) the size cap
//! holds, and (c) the supernode order is a valid evaluation schedule —
//! the invariant the engines' correctness rests on (checked by
//! `Partition::assert_valid`).

use gsim_graph::{Expr, Graph, GraphBuilder, NodeId, PrimOp};
use gsim_partition::{build, Algorithm, PartitionOptions};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct GraphPlan {
    ops: Vec<(u8, u16, u16)>,
    n_inputs: u8,
    regs_every: u8,
}

fn plan() -> impl Strategy<Value = GraphPlan> {
    (
        proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 4..60),
        1u8..4,
        2u8..8,
    )
        .prop_map(|(ops, n_inputs, regs_every)| GraphPlan {
            ops,
            n_inputs,
            regs_every,
        })
}

fn build_graph(p: &GraphPlan) -> Graph {
    let mut b = GraphBuilder::new("rand");
    let mut pool: Vec<NodeId> = Vec::new();
    for i in 0..p.n_inputs {
        pool.push(b.input(format!("in{i}"), 8, false));
    }
    for (i, &(op, s1, s2)) in p.ops.iter().enumerate() {
        let a = pool[s1 as usize % pool.len()];
        let c = pool[s2 as usize % pool.len()];
        let e = match op % 4 {
            0 => Expr::truncate(
                Expr::prim(
                    PrimOp::Add,
                    vec![Expr::reference(a, 8, false), Expr::reference(c, 8, false)],
                    vec![],
                )
                .unwrap(),
                8,
            ),
            1 => Expr::prim(
                PrimOp::Xor,
                vec![Expr::reference(a, 8, false), Expr::reference(c, 8, false)],
                vec![],
            )
            .unwrap(),
            2 => Expr::prim(PrimOp::Not, vec![Expr::reference(a, 8, false)], vec![]).unwrap(),
            _ => Expr::truncate(
                Expr::prim(
                    PrimOp::Mul,
                    vec![Expr::reference(a, 8, false), Expr::reference(c, 8, false)],
                    vec![],
                )
                .unwrap(),
                8,
            ),
        };
        if op % p.regs_every.max(2) == 0 {
            let r = b.reg(format!("r{i}"), 8, false);
            b.set_reg_next(r, e);
            pool.push(r);
        } else {
            pool.push(b.comb(format!("c{i}"), e));
        }
    }
    let last = *pool.last().unwrap();
    b.output("out", Expr::reference(last, 8, false));
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn partitions_always_valid(p in plan(), max_size in 1usize..40) {
        let g = build_graph(&p);
        for alg in [
            Algorithm::None,
            Algorithm::Kernighan,
            Algorithm::MffcBased,
            Algorithm::Gsim,
        ] {
            let part = build(&g, &PartitionOptions { algorithm: alg, max_size });
            part.assert_valid(&g);
            prop_assert!(
                part.max_supernode_size() <= max_size,
                "{alg:?} violated size cap"
            );
        }
    }

    #[test]
    fn grouping_never_worse_than_singletons(p in plan()) {
        let g = build_graph(&p);
        let singles = build(&g, &PartitionOptions { algorithm: Algorithm::None, max_size: 1 });
        for alg in [Algorithm::Kernighan, Algorithm::MffcBased, Algorithm::Gsim] {
            let part = build(&g, &PartitionOptions { algorithm: alg, max_size: 30 });
            prop_assert!(part.len() <= singles.len());
        }
    }
}
