//! Property tests: the supernode level assignment is a valid
//! topological coloring on randomized synthetic designs.
//!
//! The parallel essential engine's whole correctness argument rests on
//! one structural property: every edge of the condensed supernode
//! dependency DAG goes *strictly level-up*, so supernodes sharing a
//! level are mutually independent and a bulk-synchronous sweep (one
//! barrier per level) can never evaluate a consumer before its
//! producer. This test checks that property — plus group consistency —
//! over randomized processor-shaped netlists from `gsim_designs` for
//! every partitioning algorithm and supernode size cap.

use gsim_designs::{synth_core, SynthParams};
use gsim_partition::{build, Algorithm, PartitionOptions, SupernodeDag};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct DesignPlan {
    lanes: usize,
    fu_chains: usize,
    fu_depth: usize,
    fus_per_lane: usize,
    seed: u64,
    max_size: usize,
    algorithm: Algorithm,
}

fn plan() -> impl Strategy<Value = DesignPlan> {
    (
        1usize..4,
        1usize..5,
        2usize..8,
        2usize..6,
        any::<u64>(),
        1usize..40,
        prop_oneof![
            Just(Algorithm::None),
            Just(Algorithm::Kernighan),
            Just(Algorithm::MffcBased),
            Just(Algorithm::Gsim),
        ],
    )
        .prop_map(
            |(lanes, fu_chains, fu_depth, fus_per_lane, seed, max_size, algorithm)| DesignPlan {
                lanes,
                fu_chains,
                fu_depth,
                fus_per_lane,
                seed,
                max_size,
                algorithm,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn level_assignment_is_a_topological_coloring(plan in plan()) {
        let params = SynthParams {
            name: "prop".into(),
            lanes: plan.lanes,
            fu_chains: plan.fu_chains,
            fu_depth: plan.fu_depth,
            fus_per_lane: plan.fus_per_lane,
            seed: plan.seed,
        };
        let graph = synth_core(&params);
        let partition = build(
            &graph,
            &PartitionOptions {
                algorithm: plan.algorithm,
                max_size: plan.max_size,
            },
        );
        partition.assert_valid(&graph);
        let dag = SupernodeDag::compute(&graph, &partition);

        // Structural consistency (every supernode grouped once, at its
        // assigned level) and the coloring property itself.
        dag.assert_valid();
        prop_assert_eq!(dag.len(), partition.len());

        // Spell the load-bearing property out explicitly, independent
        // of assert_valid: every edge goes strictly level-up.
        for sn in 0..dag.len() as u32 {
            for &succ in dag.succs_of(sn) {
                prop_assert!(
                    dag.level[succ as usize] > dag.level[sn as usize],
                    "edge {} (level {}) -> {} (level {}) not strictly level-up",
                    sn,
                    dag.level[sn as usize],
                    succ,
                    dag.level[succ as usize]
                );
            }
        }

        // The schedule is exhaustive: level groups cover all supernodes.
        let grouped: usize = dag.groups.iter().map(Vec::len).sum();
        prop_assert_eq!(grouped, partition.len());
    }
}
