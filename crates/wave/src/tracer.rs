//! The backend-agnostic capture layer.
//!
//! A [`Tracer`] sits between a simulation backend and a
//! [`WaveSink`]. The backend only has to answer one question — "read
//! signal *i* into this buffer" — via the callback passed to
//! [`Tracer::begin`] and [`Tracer::capture`]; the tracer owns a
//! shadow copy of every traced value and emits a change record
//! exactly when a post-cycle read differs from the shadow. Because
//! the comparison happens on the architectural values every backend
//! already exposes (the same values `peek` reads), two backends that
//! are peek-equivalent at every cycle produce *identical* change
//! streams — which is precisely the property `gsim wavediff` pins.

use std::io;

use crate::sink::WaveSink;
use crate::vcd::{limbs, mask_words, WaveSignal};

/// Captures change-driven records from any backend into a
/// [`WaveSink`].
///
/// Zero-width signals are filtered out at construction: VCD cannot
/// declare them and they carry no values. The read callback receives
/// the signal's index in the *original* list passed to
/// [`Tracer::new`], so backends can keep one slot table regardless
/// of filtering.
pub struct Tracer {
    top: String,
    /// `(original index, signal)` for each traced (width > 0) signal.
    sigs: Vec<(usize, WaveSignal)>,
    shadow: Vec<Vec<u64>>,
    sink: Box<dyn WaveSink>,
    started: bool,
    error: Option<io::Error>,
    buf: Vec<u64>,
}

impl Tracer {
    /// A tracer for `signals` (zero-width entries are dropped)
    /// feeding `sink`. Nothing is emitted until [`Tracer::begin`].
    pub fn new(top: &str, signals: &[WaveSignal], sink: Box<dyn WaveSink>) -> Tracer {
        let sigs: Vec<(usize, WaveSignal)> = signals
            .iter()
            .enumerate()
            .filter(|(_, s)| s.width > 0)
            .map(|(i, s)| (i, s.clone()))
            .collect();
        let shadow = sigs
            .iter()
            .map(|(_, s)| vec![0u64; limbs(s.width)])
            .collect();
        Tracer {
            top: top.to_string(),
            sigs,
            shadow,
            sink,
            started: false,
            error: None,
            buf: Vec::new(),
        }
    }

    /// Number of traced signals after zero-width filtering.
    pub fn traced(&self) -> usize {
        self.sigs.len()
    }

    /// Emits the header and the baseline snapshot at `time`, filling
    /// the shadow from `read` (which must write signal `orig_index`'s
    /// current value into the provided buffer, resizing it as
    /// needed). Call once, before the first [`Tracer::capture`].
    pub fn begin(&mut self, time: u64, read: &mut dyn FnMut(usize, &mut Vec<u64>)) {
        if self.started || self.error.is_some() {
            return;
        }
        self.started = true;
        for (k, (orig, sig)) in self.sigs.iter().enumerate() {
            let shadow = &mut self.shadow[k];
            shadow.clear();
            read(*orig, shadow);
            shadow.resize(limbs(sig.width), 0);
            mask_words(shadow, sig.width);
        }
        let table: Vec<WaveSignal> = self.sigs.iter().map(|(_, s)| s.clone()).collect();
        let r = self
            .sink
            .start(&self.top, &table)
            .and_then(|()| self.sink.dumpvars(time, &self.shadow));
        if let Err(e) = r {
            self.error = Some(e);
        }
    }

    /// Compares every traced signal against its shadow and emits a
    /// change record at `time` for each difference, updating the
    /// shadow. Sink errors are latched (first wins) and stop further
    /// emission; capture itself never fails the simulation.
    pub fn capture(&mut self, time: u64, read: &mut dyn FnMut(usize, &mut Vec<u64>)) {
        if !self.started || self.error.is_some() {
            return;
        }
        let buf = &mut self.buf;
        for (k, (orig, sig)) in self.sigs.iter().enumerate() {
            buf.clear();
            read(*orig, buf);
            buf.resize(limbs(sig.width), 0);
            mask_words(buf, sig.width);
            let shadow = &mut self.shadow[k];
            if buf != shadow {
                shadow.clone_from(buf);
                if let Err(e) = self.sink.change(time, k, buf) {
                    self.error = Some(e);
                    return;
                }
            }
        }
    }

    /// Finishes the capture: surfaces the first latched sink error,
    /// then the sink's own [`WaveSink::finish`].
    pub fn finish(mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.sink.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::WaveCell;
    use crate::vcd::Wave;

    /// A toy backend: a value table the test mutates between cycles.
    fn read_from(vals: &[Vec<u64>]) -> impl FnMut(usize, &mut Vec<u64>) + '_ {
        move |i, buf| buf.extend_from_slice(&vals[i])
    }

    #[test]
    fn emits_only_changes_and_masks_to_width() {
        let sigs = vec![
            WaveSignal::new("a", 4),
            WaveSignal::new("b", 64),
            WaveSignal::new("w", 130),
        ];
        let cell = WaveCell::new();
        let mut tr = Tracer::new("top", &sigs, Box::new(cell.sink()));
        assert_eq!(tr.traced(), 3);

        let mut vals = vec![vec![0x1f], vec![7], vec![1, 2, 0xffff]];
        tr.begin(10, &mut read_from(&vals));
        // a masked to 4 bits, w's top limb masked to 2 bits.
        vals = vec![vec![0x1f], vec![8], vec![1, 2, 0xffff]];
        tr.capture(11, &mut read_from(&vals));
        // No change at all this cycle.
        tr.capture(12, &mut read_from(&vals));
        vals = vec![vec![0x2f], vec![8], vec![1, 3, 0xffff]];
        tr.capture(13, &mut read_from(&vals));
        tr.finish().unwrap();

        let w = cell.take();
        assert_eq!(
            w.changes,
            vec![
                (10, 0, vec![0xf]),
                (10, 1, vec![7]),
                (10, 2, vec![1, 2, 3]),
                (11, 1, vec![8]),
                // 0x2f masks to 0xf == shadow: no record for `a`.
                (13, 2, vec![1, 3, 3]),
            ]
        );
    }

    #[test]
    fn zero_width_signals_are_excluded() {
        let sigs = vec![
            WaveSignal::new("a", 8),
            WaveSignal::new("ghost", 0),
            WaveSignal::new("b", 8),
        ];
        let cell = WaveCell::new();
        let mut tr = Tracer::new("top", &sigs, Box::new(cell.sink()));
        assert_eq!(tr.traced(), 2);
        // The read callback still sees original indices 0 and 2.
        let mut seen = Vec::new();
        tr.begin(0, &mut |i, buf| {
            seen.push(i);
            buf.push(i as u64);
        });
        assert_eq!(seen, vec![0, 2]);
        tr.finish().unwrap();
        let w = cell.take();
        assert_eq!(
            w.signals,
            vec![WaveSignal::new("a", 8), WaveSignal::new("b", 8)]
        );
        assert_eq!(w.changes, vec![(0, 0, vec![0]), (0, 1, vec![2])]);
    }

    #[test]
    fn capture_before_begin_is_a_no_op() {
        let cell = WaveCell::new();
        let mut tr = Tracer::new("top", &[WaveSignal::new("a", 8)], Box::new(cell.sink()));
        tr.capture(5, &mut |_, buf| buf.push(1));
        tr.finish().unwrap();
        assert_eq!(cell.take(), Wave::default());
    }
}
