//! IEEE-1364 VCD writing and parsing, plus the in-memory [`Wave`]
//! model both sides share.
//!
//! The emitted subset is deliberately small and deterministic — one
//! `$scope module <top>`, `wire` vars only, two-state values — so
//! that two VCDs produced from the same change stream are
//! byte-identical regardless of which backend produced them. The
//! parser accepts exactly that subset (four-state `x`/`z` values are
//! reported as errors: no GSIM backend produces them, and silently
//! mapping them would defeat `wavediff`).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, Write};

use crate::sink::WaveSink;

/// One traced signal: its dotted name and bit width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveSignal {
    /// Signal name as the Session API reports it (e.g. `io_out`).
    pub name: String,
    /// Width in bits. Zero-width signals cannot appear in a VCD; the
    /// capture layer excludes them before a sink ever sees a header.
    pub width: u32,
}

impl WaveSignal {
    /// Convenience constructor.
    pub fn new(name: &str, width: u32) -> WaveSignal {
        WaveSignal {
            name: name.to_string(),
            width,
        }
    }
}

/// An in-memory waveform: a signal table plus a flat, time-ordered
/// change list (including the initial `$dumpvars` snapshot, recorded
/// as a change for every signal at the baseline time).
///
/// Values are little-endian 64-bit limbs, exactly as the simulator
/// stores them, masked to the signal width.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Wave {
    /// Name of the single `$scope module` the signals live in.
    pub top: String,
    /// The signal table; change records index into it.
    pub signals: Vec<WaveSignal>,
    /// `(time, signal index, value)` records in emission order.
    pub changes: Vec<(u64, usize, Vec<u64>)>,
}

impl Wave {
    /// The canonical per-signal change sequence: for each signal, its
    /// `(time, value)` records in time order, keeping only the *last*
    /// record at any given time and dropping records that repeat the
    /// previous value. Two waves with equal signal tables and equal
    /// canonical sequences describe identical signal histories, even
    /// if one writer emitted redundant records.
    pub fn canonical(&self) -> Vec<Vec<(u64, Vec<u64>)>> {
        let mut per: Vec<Vec<(u64, Vec<u64>)>> = vec![Vec::new(); self.signals.len()];
        for (t, s, v) in &self.changes {
            let seq = &mut per[*s];
            if let Some(last) = seq.last_mut() {
                if last.0 == *t {
                    // Later record at the same time wins.
                    last.1 = v.clone();
                    // It may now repeat the value before it.
                    let n = seq.len();
                    if n >= 2 && seq[n - 2].1 == seq[n - 1].1 {
                        seq.pop();
                    }
                    continue;
                }
                if last.1 == *v {
                    continue;
                }
            }
            seq.push((*t, v.clone()));
        }
        per
    }
}

/// Number of 64-bit limbs needed for `width` bits (at least one, so
/// even a 1-bit signal carries a limb).
pub(crate) fn limbs(width: u32) -> usize {
    (width as usize).div_ceil(64).max(1)
}

/// Masks `words` in place to `width` bits.
pub(crate) fn mask_words(words: &mut [u64], width: u32) {
    let full = (width as usize) / 64;
    let rem = width % 64;
    for (i, w) in words.iter_mut().enumerate() {
        if i < full {
            continue;
        }
        if i == full && rem != 0 {
            *w &= (1u64 << rem) - 1;
        } else {
            *w = 0;
        }
    }
}

/// The short printable identifier code VCD assigns to signal `n`:
/// bijective base-94 over the printable ASCII range `!`..`~`, so
/// signal 0 is `!`, 93 is `~`, 94 is `!!`, matching common tooling.
pub fn id_code(mut n: usize) -> String {
    let mut buf = Vec::new();
    loop {
        buf.push(b'!' + (n % 94) as u8);
        n /= 94;
        if n == 0 {
            break;
        }
        n -= 1;
    }
    buf.reverse();
    String::from_utf8(buf).expect("printable ASCII")
}

/// Renders limbs as lowercase hex with no leading zeros (`"0"` for
/// zero) — the same convention the wire protocol and the AoT runtime
/// use, so `chg` records and `peek` replies compare as exact strings.
pub fn words_to_hex(words: &[u64], width: u32) -> String {
    let n = limbs(width).min(words.len().max(1));
    let mut s = String::new();
    let mut leading = true;
    for i in (0..n).rev() {
        let w = words.get(i).copied().unwrap_or(0);
        if leading {
            if w == 0 && i != 0 {
                continue;
            }
            let _ = write!(s, "{w:x}");
            leading = false;
        } else {
            let _ = write!(s, "{w:016x}");
        }
    }
    if s.is_empty() {
        s.push('0');
    }
    s
}

/// Parses lowercase/uppercase hex into limbs masked to `width`;
/// `None` on empty input, non-hex digits, or a value that does not
/// fit the signal width.
pub fn hex_to_words(s: &str, width: u32) -> Option<Vec<u64>> {
    if s.is_empty() {
        return None;
    }
    let n = limbs(width);
    let mut words = vec![0u64; n];
    for c in s.chars() {
        let d = c.to_digit(16)? as u64;
        // Shift the whole value left by 4 and or in the digit.
        let mut carry = d;
        for w in words.iter_mut() {
            let out = *w >> 60;
            *w = (*w << 4) | carry;
            carry = out;
        }
        if carry != 0 {
            return None;
        }
    }
    let mut check = words.clone();
    mask_words(&mut check, width);
    if check != words {
        return None;
    }
    Some(words)
}

/// Renders limbs as binary with no leading zeros (`"0"` for zero),
/// the vector-value format VCD `b` records use.
fn words_to_bin(words: &[u64], width: u32) -> String {
    let n = limbs(width).min(words.len().max(1));
    let mut s = String::new();
    for i in (0..n).rev() {
        let w = words.get(i).copied().unwrap_or(0);
        if s.is_empty() {
            if w == 0 && i != 0 {
                continue;
            }
            let _ = write!(s, "{w:b}");
        } else {
            let _ = write!(s, "{w:064b}");
        }
    }
    if s == "0" && words.iter().all(|&w| w == 0) {
        return "0".to_string();
    }
    if s.is_empty() {
        s.push('0');
    }
    s
}

/// Parses a VCD `b` record's binary digits into limbs; `None` on
/// empty input, non-binary digits, or overflow past `width`.
fn bin_to_words(s: &str, width: u32) -> Option<Vec<u64>> {
    if s.is_empty() {
        return None;
    }
    let n = limbs(width);
    let mut words = vec![0u64; n];
    for c in s.chars() {
        let d = match c {
            '0' => 0u64,
            '1' => 1u64,
            _ => return None,
        };
        let mut carry = d;
        for w in words.iter_mut() {
            let out = *w >> 63;
            *w = (*w << 1) | carry;
            carry = out;
        }
        if carry != 0 {
            return None;
        }
    }
    let mut check = words.clone();
    mask_words(&mut check, width);
    if check != words {
        return None;
    }
    Some(words)
}

/// A streaming IEEE-1364 VCD writer implementing [`WaveSink`].
///
/// Emission is deterministic: a fixed header (`$timescale 1ns`), one
/// `$scope module <top>`, ids assigned by signal index via
/// [`id_code`], a `#<time>`-stamped `$dumpvars` baseline, and change
/// records that only advance `#<time>` when time actually moves.
/// Scalar (1-bit) signals use `0<id>`/`1<id>`; wider signals use
/// `b<binary> <id>` with no leading zeros.
pub struct VcdWriter<W: Write> {
    out: W,
    widths: Vec<u32>,
    ids: Vec<String>,
    cur_time: Option<u64>,
}

impl<W: Write> VcdWriter<W> {
    /// Wraps `out`; nothing is written until [`WaveSink::start`].
    pub fn new(out: W) -> VcdWriter<W> {
        VcdWriter {
            out,
            widths: Vec::new(),
            ids: Vec::new(),
            cur_time: None,
        }
    }

    /// Consumes the writer, returning the underlying output.
    pub fn into_inner(self) -> W {
        self.out
    }

    fn stamp(&mut self, time: u64) -> io::Result<()> {
        if self.cur_time != Some(time) {
            writeln!(self.out, "#{time}")?;
            self.cur_time = Some(time);
        }
        Ok(())
    }

    fn value(&mut self, signal: usize, words: &[u64]) -> io::Result<()> {
        let width = self.widths[signal];
        if width == 1 {
            let bit = words.first().copied().unwrap_or(0) & 1;
            writeln!(self.out, "{bit}{}", self.ids[signal])
        } else {
            writeln!(
                self.out,
                "b{} {}",
                words_to_bin(words, width),
                self.ids[signal]
            )
        }
    }
}

impl<W: Write + Send> WaveSink for VcdWriter<W> {
    fn start(&mut self, top: &str, signals: &[WaveSignal]) -> io::Result<()> {
        self.widths = signals.iter().map(|s| s.width).collect();
        self.ids = (0..signals.len()).map(id_code).collect();
        writeln!(self.out, "$timescale 1ns $end")?;
        writeln!(self.out, "$scope module {top} $end")?;
        for (i, s) in signals.iter().enumerate() {
            writeln!(
                self.out,
                "$var wire {} {} {} $end",
                s.width, self.ids[i], s.name
            )?;
        }
        writeln!(self.out, "$upscope $end")?;
        writeln!(self.out, "$enddefinitions $end")?;
        Ok(())
    }

    fn dumpvars(&mut self, time: u64, values: &[Vec<u64>]) -> io::Result<()> {
        self.stamp(time)?;
        writeln!(self.out, "$dumpvars")?;
        for (i, v) in values.iter().enumerate() {
            self.value(i, v)?;
        }
        writeln!(self.out, "$end")?;
        Ok(())
    }

    fn change(&mut self, time: u64, signal: usize, words: &[u64]) -> io::Result<()> {
        self.stamp(time)?;
        self.value(signal, words)
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Parses VCD text (the subset [`VcdWriter`] emits, which is also
/// the common two-state subset other tools produce) into a [`Wave`].
///
/// # Errors
///
/// A human-readable message naming the offending token for anything
/// outside the supported subset — unknown declarations are skipped if
/// they are well-formed `$...$end` blocks, but four-state values
/// (`x`/`z`), `real` values, undeclared id codes, and truncated
/// constructs are errors.
pub fn parse_vcd(text: &str) -> Result<Wave, String> {
    let mut toks = text.split_whitespace();
    let mut wave = Wave::default();
    let mut by_id: HashMap<String, usize> = HashMap::new();
    let mut scope_depth = 0usize;

    // Declaration section, up to $enddefinitions.
    loop {
        let tok = toks
            .next()
            .ok_or_else(|| "unexpected end of VCD in declarations".to_string())?;
        match tok {
            "$enddefinitions" => {
                expect_end(&mut toks, "$enddefinitions")?;
                break;
            }
            "$scope" => {
                let kind = toks.next().ok_or("truncated $scope")?;
                let name = toks.next().ok_or("truncated $scope")?;
                expect_end(&mut toks, "$scope")?;
                if kind == "module" && scope_depth == 0 {
                    wave.top = name.to_string();
                }
                scope_depth += 1;
            }
            "$upscope" => {
                expect_end(&mut toks, "$upscope")?;
                scope_depth = scope_depth.saturating_sub(1);
            }
            "$var" => {
                let _kind = toks.next().ok_or("truncated $var")?;
                let width: u32 = toks
                    .next()
                    .ok_or("truncated $var")?
                    .parse()
                    .map_err(|_| "bad $var width".to_string())?;
                if width == 0 {
                    return Err("zero-width $var is not representable".to_string());
                }
                let id = toks.next().ok_or("truncated $var")?.to_string();
                let name = toks.next().ok_or("truncated $var")?.to_string();
                // Optional bit-range token (`[7:0]`) before $end.
                loop {
                    let t = toks.next().ok_or("truncated $var")?;
                    if t == "$end" {
                        break;
                    }
                    if !t.starts_with('[') {
                        return Err(format!("malformed $var near {id:?}"));
                    }
                }
                by_id.insert(id, wave.signals.len());
                wave.signals.push(WaveSignal { name, width });
            }
            t if t.starts_with('$') => {
                // $timescale, $date, $version, $comment, ...: skip to $end.
                skip_to_end(&mut toks, t)?;
            }
            t => return Err(format!("unexpected token {t:?} in declarations")),
        }
    }

    // Value-change section.
    let mut time = 0u64;
    while let Some(tok) = toks.next() {
        if let Some(t) = tok.strip_prefix('#') {
            time = t.parse().map_err(|_| format!("bad timestamp {tok:?}"))?;
        } else if tok == "$dumpvars" || tok == "$end" {
            // The baseline block's values are ordinary value tokens;
            // the wrapping keywords carry no information.
        } else if tok.starts_with('$') {
            skip_to_end(&mut toks, tok)?;
        } else if let Some(rest) = tok.strip_prefix('b') {
            let id = toks
                .next()
                .ok_or_else(|| format!("vector value {tok:?} missing id code"))?;
            let idx = *by_id
                .get(id)
                .ok_or_else(|| format!("undeclared id code {id:?}"))?;
            let words = bin_to_words(rest, wave.signals[idx].width).ok_or_else(|| {
                format!("bad vector value {tok:?} for {:?}", wave.signals[idx].name)
            })?;
            wave.changes.push((time, idx, words));
        } else {
            let mut chars = tok.chars();
            let v = chars.next().expect("split_whitespace yields non-empty");
            let id: String = chars.collect();
            let bit = match v {
                '0' => 0u64,
                '1' => 1u64,
                'x' | 'X' | 'z' | 'Z' => {
                    return Err(format!(
                        "four-state value {tok:?} is not supported (two-state VCDs only)"
                    ))
                }
                _ => return Err(format!("unexpected token {tok:?} in value changes")),
            };
            let idx = *by_id
                .get(id.as_str())
                .ok_or_else(|| format!("undeclared id code {id:?}"))?;
            wave.changes.push((time, idx, vec![bit]));
        }
    }
    Ok(wave)
}

fn expect_end<'a>(toks: &mut impl Iterator<Item = &'a str>, what: &str) -> Result<(), String> {
    match toks.next() {
        Some("$end") => Ok(()),
        _ => Err(format!("{what} not terminated by $end")),
    }
}

fn skip_to_end<'a>(toks: &mut impl Iterator<Item = &'a str>, what: &str) -> Result<(), String> {
    for t in toks.by_ref() {
        if t == "$end" {
            return Ok(());
        }
    }
    Err(format!("{what} not terminated by $end"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_codes_are_bijective_base94() {
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!!");
        assert_eq!(id_code(94 + 93), "!~");
        assert_eq!(id_code(94 + 94), "\"!");
        // Distinctness over a healthy range.
        let mut seen = std::collections::HashSet::new();
        for n in 0..10_000 {
            assert!(seen.insert(id_code(n)), "collision at {n}");
        }
    }

    #[test]
    fn hex_round_trips_and_masks() {
        assert_eq!(words_to_hex(&[0], 8), "0");
        assert_eq!(words_to_hex(&[0xff], 8), "ff");
        assert_eq!(words_to_hex(&[0, 1], 128), "10000000000000000");
        assert_eq!(hex_to_words("10000000000000000", 128), Some(vec![0, 1]));
        assert_eq!(hex_to_words("ff", 8), Some(vec![0xff]));
        assert_eq!(hex_to_words("1ff", 8), None, "overflow past width");
        assert_eq!(hex_to_words("", 8), None);
        assert_eq!(hex_to_words("zz", 8), None);
        for w in [1u32, 7, 64, 65, 128, 130] {
            let mut words = vec![0xdead_beef_cafe_f00d; limbs(w)];
            mask_words(&mut words, w);
            let hex = words_to_hex(&words, w);
            assert_eq!(hex_to_words(&hex, w), Some(words), "width {w}");
        }
    }

    #[test]
    fn binary_round_trips() {
        assert_eq!(words_to_bin(&[0, 0, 0], 130), "0");
        assert_eq!(words_to_bin(&[5], 4), "101");
        assert_eq!(bin_to_words("101", 4), Some(vec![5]));
        assert_eq!(bin_to_words("100000000", 8), None, "overflow");
        let v = vec![u64::MAX, 0x3];
        assert_eq!(bin_to_words(&words_to_bin(&v, 66), 66), Some(v));
    }

    /// Golden byte-for-byte emission for a fixed design and stimulus,
    /// including a wide (>128-bit) signal. This pins the exact output
    /// format: any change to header layout, id assignment, timestamp
    /// placement, or value rendering fails here first.
    #[test]
    fn golden_vcd_emission() {
        let signals = vec![
            WaveSignal::new("clk_en", 1),
            WaveSignal::new("io_out", 8),
            WaveSignal::new("io_wide", 130),
        ];
        let mut w = VcdWriter::new(Vec::new());
        w.start("top", &signals).unwrap();
        w.dumpvars(0, &[vec![0], vec![0], vec![0, 0, 0]]).unwrap();
        w.change(1, 0, &[1]).unwrap();
        w.change(1, 1, &[0x2a]).unwrap();
        w.change(3, 2, &[0x1, 0x0, 0x2]).unwrap();
        w.finish().unwrap();
        let text = String::from_utf8(w.into_inner()).unwrap();
        let expected = "\
$timescale 1ns $end
$scope module top $end
$var wire 1 ! clk_en $end
$var wire 8 \" io_out $end
$var wire 130 # io_wide $end
$upscope $end
$enddefinitions $end
#0
$dumpvars
0!
b0 \"
b0 #
$end
#1
1!
b101010 \"
#3
b1000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000001 #
";
        assert_eq!(text, expected);
    }

    #[test]
    fn parser_inverts_writer() {
        let signals = vec![
            WaveSignal::new("a", 1),
            WaveSignal::new("b", 64),
            WaveSignal::new("c", 190),
        ];
        let mut w = VcdWriter::new(Vec::new());
        w.start("top", &signals).unwrap();
        w.dumpvars(5, &[vec![1], vec![0xdead], vec![1, 2, 3]])
            .unwrap();
        w.change(6, 0, &[0]).unwrap();
        w.change(6, 2, &[0, 0, 0]).unwrap();
        w.change(9, 1, &[u64::MAX]).unwrap();
        let text = String::from_utf8(w.into_inner()).unwrap();
        let wave = parse_vcd(&text).unwrap();
        assert_eq!(wave.top, "top");
        assert_eq!(wave.signals, signals);
        assert_eq!(
            wave.changes,
            vec![
                (5, 0, vec![1]),
                (5, 1, vec![0xdead]),
                (5, 2, vec![1, 2, 3]),
                (6, 0, vec![0]),
                (6, 2, vec![0, 0, 0]),
                (9, 1, vec![u64::MAX]),
            ]
        );
    }

    #[test]
    fn parser_tolerates_headers_and_rejects_four_state() {
        let text = "\
$date today $end
$version hand-written $end
$comment multi token comment $end
$timescale 1ns $end
$scope module dut $end
$var wire 4 ! bus [3:0] $end
$upscope $end
$enddefinitions $end
#0
$dumpvars
b1010 !
$end
";
        let wave = parse_vcd(text).unwrap();
        assert_eq!(wave.top, "dut");
        assert_eq!(wave.signals, vec![WaveSignal::new("bus", 4)]);
        assert_eq!(wave.changes, vec![(0, 0, vec![0xa])]);

        let bad = text.replace("b1010 !", "bx010 !");
        assert!(parse_vcd(&bad).is_err());
        let bad = "$enddefinitions $end\n#0\nx!\n";
        assert!(parse_vcd(bad).unwrap_err().contains("four-state"));
        assert!(parse_vcd("$scope module top $end").is_err());
    }

    #[test]
    fn canonical_dedupes_and_takes_last_at_time() {
        let wave = Wave {
            top: "top".into(),
            signals: vec![WaveSignal::new("a", 8), WaveSignal::new("b", 8)],
            changes: vec![
                (0, 0, vec![1]),
                (0, 0, vec![2]), // same time: last wins
                (1, 0, vec![2]), // repeats previous value: dropped
                (2, 0, vec![3]),
                (0, 1, vec![9]),
                (2, 1, vec![9]), // repeat: dropped
            ],
        };
        assert_eq!(
            wave.canonical(),
            vec![vec![(0, vec![2]), (2, vec![3])], vec![(0, vec![9])],]
        );
        // Same-time overwrite back to the prior value collapses fully.
        let wave2 = Wave {
            top: "top".into(),
            signals: vec![WaveSignal::new("a", 8)],
            changes: vec![(0, 0, vec![1]), (2, 0, vec![5]), (2, 0, vec![1])],
        };
        assert_eq!(wave2.canonical(), vec![vec![(0, vec![1])]]);
    }
}
