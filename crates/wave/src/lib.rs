//! Waveform capture, exchange, and comparison for the GSIM stack.
//!
//! Every execution backend in this workspace already *detects* value
//! changes — the interpreter's change-detected stores, the threaded
//! backend's epilogues, and the AoT emitter's compiled compare-and-
//! store all count `value_changes`. This crate turns that machinery
//! into a first-class artifact: per-signal value-change streams that
//! can be written as IEEE-1364 VCD, streamed over the session wire
//! protocol, captured in memory, and diffed across backends.
//!
//! The crate is dependency-free (std only) so every layer of the
//! workspace — including the benchmark harness and the emitted AoT
//! binaries' driver code — can speak waveforms without cycles in the
//! crate graph. The pieces:
//!
//! * [`WaveSignal`] / [`WaveSink`] — the capture interface: a header
//!   ([`WaveSink::start`]), one baseline snapshot
//!   ([`WaveSink::dumpvars`]), then change records
//!   ([`WaveSink::change`]). Sinks are where captured changes *go*:
//!   a VCD file ([`VcdWriter`]), an in-memory [`Wave`] ([`MemSink`]),
//!   or `chg` lines on a wire ([`LineSink`]).
//! * [`Tracer`] — the backend-agnostic capture layer: it owns a
//!   shadow copy of every traced signal and emits a change record
//!   exactly when a post-cycle value differs from the shadow, so any
//!   backend that can *read* its signals can produce a bit-identical
//!   change stream, regardless of how its internal change detection
//!   is organized. Zero-width signals are excluded at construction
//!   (VCD cannot represent them, and no backend stores them).
//! * [`Wave`] / [`parse_vcd`] / [`diff`] — the comparison side:
//!   parse a VCD back into change lists, canonicalize (initial values
//!   and deduplicated per-signal change sequences), and report typed
//!   differences. `gsim wavediff` and the cross-backend CI matrix are
//!   built on [`diff`]; the exploration engine's first-differing-
//!   change divergence uses [`first_difference`].
//! * [`ChgRouter`] — the client side of the wire protocol's
//!   `chg <cycle> <name> <hex>` records: routes streamed lines into
//!   any [`WaveSink`], reconstructing the baseline `$dumpvars` block
//!   from the initial burst the server sends at `trace on`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diff;
mod sink;
mod tracer;
mod vcd;

pub use diff::{diff, first_difference, WaveDiff};
pub use sink::{ChgRouter, CountingWriter, LineSink, MemSink, SharedBuf, WaveCell, WaveSink};
pub use tracer::Tracer;
pub use vcd::{hex_to_words, id_code, parse_vcd, words_to_hex, VcdWriter, Wave, WaveSignal};
