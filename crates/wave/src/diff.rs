//! Canonical waveform comparison: the engine behind `gsim wavediff`
//! and the Explorer's first-differing-change divergence report.

use std::collections::BTreeMap;
use std::fmt;

use crate::vcd::{words_to_hex, Wave};

/// One difference between two waves. `a`/`b` refer to the two
/// arguments of [`diff`] in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaveDiff {
    /// A signal declared in only one wave.
    OnlyIn {
        /// `"a"` or `"b"`.
        side: &'static str,
        /// The signal's name.
        name: String,
    },
    /// A signal declared with different widths.
    Width {
        /// The signal's name.
        name: String,
        /// Width in wave `a`.
        a: u32,
        /// Width in wave `b`.
        b: u32,
    },
    /// The first point where a signal's canonical change sequences
    /// disagree. `None` on one side means that side's sequence ended
    /// (no further changes) while the other still has one.
    Value {
        /// The signal's name.
        name: String,
        /// Time of the first disagreement.
        time: u64,
        /// `a`'s value at that point as hex, if it has one.
        a: Option<String>,
        /// `b`'s value at that point as hex, if it has one.
        b: Option<String>,
    },
}

impl fmt::Display for WaveDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaveDiff::OnlyIn { side, name } => {
                write!(f, "signal {name}: only in {side}")
            }
            WaveDiff::Width { name, a, b } => {
                write!(f, "signal {name}: width {a} in a vs {b} in b")
            }
            WaveDiff::Value { name, time, a, b } => {
                let show = |v: &Option<String>| match v {
                    Some(h) => h.clone(),
                    None => "(no change)".to_string(),
                };
                write!(
                    f,
                    "signal {name}: first difference at time {time}: a={} b={}",
                    show(a),
                    show(b)
                )
            }
        }
    }
}

/// Diffs two waves after canonicalization ([`Wave::canonical`]):
/// signals present on one side only, width mismatches, and — for
/// each signal common to both — the *first* point where the
/// canonical change sequences disagree. Redundant records (repeated
/// values, multiple records at one time) never produce differences,
/// so waves from different writers compare by signal history, not by
/// byte layout. Results are ordered by signal name.
pub fn diff(a: &Wave, b: &Wave) -> Vec<WaveDiff> {
    let index = |w: &Wave| -> BTreeMap<String, usize> {
        w.signals
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.clone(), i))
            .collect()
    };
    let ia = index(a);
    let ib = index(b);
    let ca = a.canonical();
    let cb = b.canonical();

    let mut names: Vec<&String> = ia.keys().chain(ib.keys()).collect();
    names.sort();
    names.dedup();

    let mut out = Vec::new();
    for name in names {
        let (sa, sb) = match (ia.get(name), ib.get(name)) {
            (Some(&sa), Some(&sb)) => (sa, sb),
            (Some(_), None) => {
                out.push(WaveDiff::OnlyIn {
                    side: "a",
                    name: name.clone(),
                });
                continue;
            }
            (None, Some(_)) => {
                out.push(WaveDiff::OnlyIn {
                    side: "b",
                    name: name.clone(),
                });
                continue;
            }
            (None, None) => unreachable!("name came from one of the indexes"),
        };
        let (wa, wb) = (a.signals[sa].width, b.signals[sb].width);
        if wa != wb {
            out.push(WaveDiff::Width {
                name: name.clone(),
                a: wa,
                b: wb,
            });
            continue;
        }
        let (qa, qb) = (&ca[sa], &cb[sb]);
        for k in 0..qa.len().max(qb.len()) {
            match (qa.get(k), qb.get(k)) {
                (Some(ra), Some(rb)) if ra == rb => continue,
                (ra, rb) => {
                    let time = match (ra, rb) {
                        (Some(ra), Some(rb)) => ra.0.min(rb.0),
                        (Some(ra), None) => ra.0,
                        (None, Some(rb)) => rb.0,
                        (None, None) => unreachable!("k < max len"),
                    };
                    out.push(WaveDiff::Value {
                        name: name.clone(),
                        time,
                        a: ra.map(|r| words_to_hex(&r.1, wa)),
                        b: rb.map(|r| words_to_hex(&r.1, wb)),
                    });
                    break;
                }
            }
        }
    }
    out
}

/// The earliest time at which the two waves' signal histories
/// disagree: `None` if they are canonically identical, the minimum
/// [`WaveDiff::Value`] time otherwise. Structural differences
/// (missing signals, width mismatches) make the waves incomparable
/// from the start and report `Some(0)`. The Explorer uses this to
/// report branch divergence as the first differing *change*.
pub fn first_difference(a: &Wave, b: &Wave) -> Option<u64> {
    let ds = diff(a, b);
    if ds.is_empty() {
        return None;
    }
    ds.iter()
        .map(|d| match d {
            WaveDiff::Value { time, .. } => *time,
            WaveDiff::OnlyIn { .. } | WaveDiff::Width { .. } => 0,
        })
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcd::WaveSignal;

    fn wave(signals: &[(&str, u32)], changes: &[(u64, usize, u64)]) -> Wave {
        Wave {
            top: "top".into(),
            signals: signals
                .iter()
                .map(|&(n, w)| WaveSignal::new(n, w))
                .collect(),
            changes: changes.iter().map(|&(t, s, v)| (t, s, vec![v])).collect(),
        }
    }

    #[test]
    fn identical_histories_diff_empty_despite_redundancy() {
        let a = wave(&[("x", 8)], &[(0, 0, 1), (2, 0, 5)]);
        // Same history with a redundant repeat and a same-time overwrite.
        let b = wave(&[("x", 8)], &[(0, 0, 3), (0, 0, 1), (1, 0, 1), (2, 0, 5)]);
        assert!(diff(&a, &b).is_empty());
        assert_eq!(first_difference(&a, &b), None);
    }

    #[test]
    fn reports_first_value_difference_only() {
        let a = wave(&[("x", 8)], &[(0, 0, 1), (2, 0, 5), (4, 0, 9)]);
        let b = wave(&[("x", 8)], &[(0, 0, 1), (3, 0, 6), (4, 0, 9)]);
        let ds = diff(&a, &b);
        assert_eq!(
            ds,
            vec![WaveDiff::Value {
                name: "x".into(),
                time: 2,
                a: Some("5".into()),
                b: Some("6".into()),
            }]
        );
        assert_eq!(first_difference(&a, &b), Some(2));
    }

    #[test]
    fn reports_missing_trailing_changes() {
        let a = wave(&[("x", 8)], &[(0, 0, 1), (2, 0, 5)]);
        let b = wave(&[("x", 8)], &[(0, 0, 1)]);
        let ds = diff(&a, &b);
        assert_eq!(
            ds,
            vec![WaveDiff::Value {
                name: "x".into(),
                time: 2,
                a: Some("5".into()),
                b: None,
            }]
        );
        assert_eq!(first_difference(&a, &b), Some(2));
    }

    #[test]
    fn structural_differences() {
        let a = wave(&[("x", 8), ("y", 4)], &[]);
        let b = wave(&[("x", 16), ("z", 1)], &[]);
        let ds = diff(&a, &b);
        assert_eq!(
            ds,
            vec![
                WaveDiff::Width {
                    name: "x".into(),
                    a: 8,
                    b: 16
                },
                WaveDiff::OnlyIn {
                    side: "a",
                    name: "y".into()
                },
                WaveDiff::OnlyIn {
                    side: "b",
                    name: "z".into()
                },
            ]
        );
        assert_eq!(first_difference(&a, &b), Some(0));
        // Display stays stable (wavediff prints these lines).
        assert_eq!(ds[0].to_string(), "signal x: width 8 in a vs 16 in b");
        assert_eq!(ds[1].to_string(), "signal y: only in a");
    }

    #[test]
    fn divergence_takes_earliest_time_across_signals() {
        let a = wave(
            &[("x", 8), ("y", 8)],
            &[(0, 0, 1), (0, 1, 1), (5, 0, 2), (3, 1, 9)],
        );
        let b = wave(
            &[("x", 8), ("y", 8)],
            &[(0, 0, 1), (0, 1, 1), (5, 0, 3), (3, 1, 8)],
        );
        assert_eq!(first_difference(&a, &b), Some(3));
    }
}
