//! Where captured changes go: the [`WaveSink`] trait and its
//! standard implementations.
//!
//! A sink receives exactly one [`WaveSink::start`] header, then one
//! [`WaveSink::dumpvars`] baseline snapshot, then zero or more
//! [`WaveSink::change`] records in non-decreasing time order, then
//! one [`WaveSink::finish`]. [`crate::VcdWriter`] is the file-format
//! sink; this module holds the in-memory sink the Explorer uses
//! ([`MemSink`]), the wire-protocol sink servers use ([`LineSink`]),
//! the wire-protocol *source* clients use ([`ChgRouter`]), and two
//! small plumbing adapters ([`SharedBuf`], [`CountingWriter`]).

use std::collections::HashMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::vcd::{hex_to_words, words_to_hex, Wave, WaveSignal};

/// Receives a change stream: header, baseline, changes, finish.
///
/// Sinks are `Send` so a traced session can cross threads (the
/// Explorer runs branches on a worker pool). Methods return
/// `io::Result` so file- and socket-backed sinks can surface write
/// failures; the capture layer latches the first error and stops
/// feeding the sink rather than failing the simulation itself.
pub trait WaveSink: Send {
    /// Declares the scope name and the traced signal table. Called
    /// exactly once, before any values.
    fn start(&mut self, top: &str, signals: &[WaveSignal]) -> io::Result<()>;

    /// The baseline snapshot: one value per declared signal (same
    /// order), stamped with the capture start time.
    fn dumpvars(&mut self, time: u64, values: &[Vec<u64>]) -> io::Result<()>;

    /// One value change: `signal` indexes the table from
    /// [`WaveSink::start`]; `words` are masked little-endian limbs.
    fn change(&mut self, time: u64, signal: usize, words: &[u64]) -> io::Result<()>;

    /// Flush and close. Default: no-op.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A cloneable handle to a [`Wave`] being filled in by a [`MemSink`].
///
/// The Explorer hands the sink to a session (which wants ownership)
/// while keeping a cell to read the wave back after the branch runs.
#[derive(Debug, Clone, Default)]
pub struct WaveCell(Arc<Mutex<Wave>>);

impl WaveCell {
    /// A cell holding an empty wave.
    pub fn new() -> WaveCell {
        WaveCell::default()
    }

    /// A [`MemSink`] that records into this cell.
    pub fn sink(&self) -> MemSink {
        MemSink { cell: self.clone() }
    }

    /// Takes the recorded wave out, leaving an empty one.
    pub fn take(&self) -> Wave {
        std::mem::take(&mut self.0.lock().expect("wave cell poisoned"))
    }

    /// A clone of the wave recorded so far.
    pub fn snapshot(&self) -> Wave {
        self.0.lock().expect("wave cell poisoned").clone()
    }
}

/// Records the change stream into an in-memory [`Wave`] via a
/// [`WaveCell`]. The baseline snapshot is recorded as one change per
/// signal at the baseline time, matching what [`crate::parse_vcd`]
/// produces for a `$dumpvars` block.
#[derive(Debug)]
pub struct MemSink {
    cell: WaveCell,
}

impl WaveSink for MemSink {
    fn start(&mut self, top: &str, signals: &[WaveSignal]) -> io::Result<()> {
        let mut w = self.cell.0.lock().expect("wave cell poisoned");
        *w = Wave {
            top: top.to_string(),
            signals: signals.to_vec(),
            changes: Vec::new(),
        };
        Ok(())
    }

    fn dumpvars(&mut self, time: u64, values: &[Vec<u64>]) -> io::Result<()> {
        let mut w = self.cell.0.lock().expect("wave cell poisoned");
        for (i, v) in values.iter().enumerate() {
            w.changes.push((time, i, v.clone()));
        }
        Ok(())
    }

    fn change(&mut self, time: u64, signal: usize, words: &[u64]) -> io::Result<()> {
        let mut w = self.cell.0.lock().expect("wave cell poisoned");
        w.changes.push((time, signal, words.to_vec()));
        Ok(())
    }
}

/// Emits the change stream as wire-protocol lines: one
/// `chg <time> <name> <hex>` per record, the format the server and
/// the AoT serve loop stream to clients. The baseline snapshot is
/// emitted as one `chg` line per signal (clients reconstruct the
/// `$dumpvars` block from the first full burst — see [`ChgRouter`]).
pub struct LineSink<W: Write + Send> {
    out: W,
    names: Vec<String>,
    widths: Vec<u32>,
}

impl<W: Write + Send> LineSink<W> {
    /// Wraps `out`; nothing is written until [`WaveSink::start`].
    pub fn new(out: W) -> LineSink<W> {
        LineSink {
            out,
            names: Vec::new(),
            widths: Vec::new(),
        }
    }
}

impl<W: Write + Send> WaveSink for LineSink<W> {
    fn start(&mut self, _top: &str, signals: &[WaveSignal]) -> io::Result<()> {
        self.names = signals.iter().map(|s| s.name.clone()).collect();
        self.widths = signals.iter().map(|s| s.width).collect();
        Ok(())
    }

    fn dumpvars(&mut self, time: u64, values: &[Vec<u64>]) -> io::Result<()> {
        for (i, v) in values.iter().enumerate() {
            writeln!(
                self.out,
                "chg {time} {} {}",
                self.names[i],
                words_to_hex(v, self.widths[i])
            )?;
        }
        Ok(())
    }

    fn change(&mut self, time: u64, signal: usize, words: &[u64]) -> io::Result<()> {
        writeln!(
            self.out,
            "chg {time} {} {}",
            self.names[signal],
            words_to_hex(words, self.widths[signal])
        )?;
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// A cloneable shared byte buffer implementing [`Write`].
///
/// The server's protocol handler installs a [`LineSink`] over one of
/// these, then drains it onto the client socket after each command so
/// streamed `chg` records always precede the command's reply.
#[derive(Debug, Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// An empty buffer.
    pub fn new() -> SharedBuf {
        SharedBuf::default()
    }

    /// Takes all buffered bytes out.
    pub fn drain(&self) -> Vec<u8> {
        std::mem::take(&mut self.0.lock().expect("shared buf poisoned"))
    }

    /// Whether the buffer currently holds any bytes.
    pub fn is_empty(&self) -> bool {
        self.0.lock().expect("shared buf poisoned").is_empty()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .expect("shared buf poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A [`Write`] adapter that counts bytes as they pass through — the
/// bench harness wraps a [`crate::VcdWriter`]'s output with one to
/// measure VCD bytes per cycle without keeping the bytes.
#[derive(Debug, Clone, Default)]
pub struct CountingWriter(Arc<AtomicU64>);

impl CountingWriter {
    /// A fresh counter at zero.
    pub fn new() -> CountingWriter {
        CountingWriter::default()
    }

    /// Total bytes written so far.
    pub fn bytes(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Write for CountingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The client side of streamed tracing: feeds wire-protocol
/// `chg <time> <name> <hex>` lines into any [`WaveSink`].
///
/// The server emits one `chg` line per traced signal as the baseline
/// burst when tracing starts, then one line per change. The router
/// knows the traced signal table up front (the client chose it), so
/// it treats the first `signals.len()` lines as the baseline,
/// forwards them as a single [`WaveSink::dumpvars`], and streams the
/// rest as [`WaveSink::change`] records.
///
/// [`ChgRouter::feed`] is infallible by design — it is called from
/// deep inside client read loops — so parse and sink errors are
/// latched and surfaced by [`ChgRouter::finish`].
pub struct ChgRouter {
    top: String,
    signals: Vec<WaveSignal>,
    index: HashMap<String, usize>,
    sink: Box<dyn WaveSink>,
    baseline: Vec<Option<Vec<u64>>>,
    baseline_time: u64,
    remaining: usize,
    error: Option<io::Error>,
}

impl std::fmt::Debug for ChgRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChgRouter")
            .field("top", &self.top)
            .field("signals", &self.signals.len())
            .field("baseline_remaining", &self.remaining)
            .field("errored", &self.error.is_some())
            .finish_non_exhaustive()
    }
}

impl ChgRouter {
    /// A router for the given traced-signal table, forwarding into
    /// `sink`. The sink's `start` is deferred until the baseline
    /// burst completes so a failed `trace on` never half-opens it.
    pub fn new(top: &str, signals: Vec<WaveSignal>, sink: Box<dyn WaveSink>) -> ChgRouter {
        let index = signals
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.clone(), i))
            .collect();
        let remaining = signals.len();
        let baseline = vec![None; signals.len()];
        ChgRouter {
            top: top.to_string(),
            signals,
            index,
            sink,
            baseline,
            baseline_time: 0,
            remaining,
            error: None,
        }
    }

    /// Routes one wire line that already matched the `chg ` prefix.
    /// Malformed lines and sink failures are latched (first error
    /// wins) and subsequent lines are ignored.
    pub fn feed(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.feed_inner(line) {
            self.error = Some(e);
        }
    }

    fn feed_inner(&mut self, line: &str) -> io::Result<()> {
        let bad =
            |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("{what}: {line:?}"));
        let mut it = line.split_whitespace();
        if it.next() != Some("chg") {
            return Err(bad("not a chg record"));
        }
        let time: u64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad chg time"))?;
        let name = it.next().ok_or_else(|| bad("chg missing signal name"))?;
        let hex = it.next().ok_or_else(|| bad("chg missing value"))?;
        let &idx = self
            .index
            .get(name)
            .ok_or_else(|| bad("chg for untraced signal"))?;
        let words =
            hex_to_words(hex, self.signals[idx].width).ok_or_else(|| bad("bad chg value"))?;
        if self.remaining > 0 {
            self.baseline_time = time;
            if self.baseline[idx].replace(words).is_none() {
                self.remaining -= 1;
            }
            if self.remaining == 0 {
                self.sink.start(&self.top, &self.signals)?;
                let values: Vec<Vec<u64>> = self
                    .baseline
                    .iter_mut()
                    .map(|v| v.take().expect("baseline complete"))
                    .collect();
                self.sink.dumpvars(self.baseline_time, &values)?;
            }
            return Ok(());
        }
        self.sink.change(time, idx, &words)
    }

    /// Finishes the stream: surfaces the first latched error, then
    /// the sink's own [`WaveSink::finish`]. An incomplete baseline
    /// (tracing stopped before every signal reported) is an error.
    pub fn finish(mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if self.remaining > 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "trace ended with incomplete baseline ({} signals missing)",
                    self.remaining
                ),
            ));
        }
        self.sink.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigs() -> Vec<WaveSignal> {
        vec![WaveSignal::new("a", 1), WaveSignal::new("b", 72)]
    }

    #[test]
    fn mem_sink_records_baseline_and_changes() {
        let cell = WaveCell::new();
        let mut s = cell.sink();
        s.start("top", &sigs()).unwrap();
        s.dumpvars(3, &[vec![1], vec![0x10, 0x1]]).unwrap();
        s.change(4, 0, &[0]).unwrap();
        s.finish().unwrap();
        let w = cell.take();
        assert_eq!(w.top, "top");
        assert_eq!(w.signals, sigs());
        assert_eq!(
            w.changes,
            vec![(3, 0, vec![1]), (3, 1, vec![0x10, 0x1]), (4, 0, vec![0])]
        );
        assert_eq!(cell.take(), Wave::default(), "take drains the cell");
    }

    #[test]
    fn line_sink_emits_chg_records() {
        let mut s = LineSink::new(Vec::new());
        s.start("top", &sigs()).unwrap();
        s.dumpvars(0, &[vec![1], vec![0x10, 0x1]]).unwrap();
        s.change(2, 1, &[0xff, 0]).unwrap();
        s.finish().unwrap();
        let text = String::from_utf8(s.out).unwrap();
        assert_eq!(text, "chg 0 a 1\nchg 0 b 10000000000000010\nchg 2 b ff\n");
    }

    #[test]
    fn chg_router_reconstructs_stream() {
        let cell = WaveCell::new();
        let mut r = ChgRouter::new("top", sigs(), Box::new(cell.sink()));
        r.feed("chg 5 a 1");
        r.feed("chg 5 b 10");
        r.feed("chg 7 a 0");
        r.feed("chg 9 b ff");
        r.finish().unwrap();
        let w = cell.take();
        assert_eq!(w.top, "top");
        assert_eq!(w.signals, sigs());
        assert_eq!(
            w.changes,
            vec![
                (5, 0, vec![1]),
                (5, 1, vec![0x10, 0]),
                (7, 0, vec![0]),
                (9, 1, vec![0xff, 0]),
            ]
        );
    }

    #[test]
    fn chg_router_latches_errors() {
        let cell = WaveCell::new();
        let mut r = ChgRouter::new("top", sigs(), Box::new(cell.sink()));
        r.feed("chg 0 a 1");
        r.feed("chg 0 nosuch 5");
        r.feed("chg 0 b 2");
        let e = r.finish().unwrap_err();
        assert!(e.to_string().contains("untraced"), "{e}");

        let cell = WaveCell::new();
        let mut r = ChgRouter::new("top", sigs(), Box::new(cell.sink()));
        r.feed("chg 0 a 1");
        let e = r.finish().unwrap_err();
        assert!(e.to_string().contains("incomplete baseline"), "{e}");
    }

    #[test]
    fn shared_buf_and_counting_writer() {
        let buf = SharedBuf::new();
        let mut w = buf.clone();
        w.write_all(b"hello").unwrap();
        assert!(!buf.is_empty());
        assert_eq!(buf.drain(), b"hello");
        assert!(buf.is_empty());

        let c = CountingWriter::new();
        let mut w = c.clone();
        w.write_all(b"12345").unwrap();
        w.write_all(b"678").unwrap();
        assert_eq!(c.bytes(), 8);
    }
}
