//! Property test: `parse_vcd(VcdWriter(x))` round-trips arbitrary
//! change lists, and canonicalization makes the round trip
//! diff-clean even when the generated stream is redundant.

use gsim_wave::{diff, parse_vcd, VcdWriter, Wave, WaveSignal, WaveSink};
use proptest::prelude::*;

/// A generated trace: a signal table and a time-ordered change list
/// (values already masked to each signal's width).
fn arb_wave() -> impl Strategy<Value = Wave> {
    proptest::collection::vec(1u32..200, 1..6).prop_flat_map(|widths| {
        let signals: Vec<WaveSignal> = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| WaveSignal::new(&format!("sig_{i}"), w))
            .collect();
        let n = signals.len();
        let change = (0u64..50, 0..n, proptest::collection::vec(any::<u64>(), 4));
        (proptest::collection::vec(change, 0..40), Just(signals)).prop_map(|(raw, signals)| {
            let mut changes: Vec<(u64, usize, Vec<u64>)> = raw
                .into_iter()
                .map(|(t, s, mut words)| {
                    let limbs = (signals[s].width as usize).div_ceil(64).max(1);
                    words.truncate(limbs);
                    words.resize(limbs, 0);
                    let rem = signals[s].width % 64;
                    if rem != 0 {
                        let last = words.len() - 1;
                        words[last] &= (1u64 << rem) - 1;
                    }
                    (t, s, words)
                })
                .collect();
            // The writer requires non-decreasing time.
            changes.sort_by_key(|c| c.0);
            Wave {
                top: "top".to_string(),
                signals,
                changes,
            }
        })
    })
}

fn write_vcd(wave: &Wave) -> String {
    let mut w = VcdWriter::new(Vec::new());
    w.start(&wave.top, &wave.signals).unwrap();
    // Baseline: every signal at the first change time (or 0).
    let t0 = wave.changes.first().map(|c| c.0).unwrap_or(0);
    let baseline: Vec<Vec<u64>> = wave
        .signals
        .iter()
        .map(|s| vec![0u64; (s.width as usize).div_ceil(64).max(1)])
        .collect();
    w.dumpvars(t0, &baseline).unwrap();
    for (t, s, v) in &wave.changes {
        w.change(*t, *s, v).unwrap();
    }
    w.finish().unwrap();
    String::from_utf8(w.into_inner()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Writing then parsing preserves the signal table and the change
    // list (with the baseline prepended), and emission is
    // deterministic byte-for-byte.
    #[test]
    fn parser_inverts_writer(wave in arb_wave()) {
        let text = write_vcd(&wave);
        let parsed = parse_vcd(&text).unwrap();
        prop_assert_eq!(&parsed.top, &wave.top);
        prop_assert_eq!(&parsed.signals, &wave.signals);

        // The parsed change list is exactly baseline + original list.
        let t0 = wave.changes.first().map(|c| c.0).unwrap_or(0);
        let mut expected: Vec<(u64, usize, Vec<u64>)> = wave
            .signals
            .iter()
            .enumerate()
            .map(|(i, s)| (t0, i, vec![0u64; (s.width as usize).div_ceil(64).max(1)]))
            .collect();
        expected.extend(wave.changes.iter().cloned());
        prop_assert_eq!(&parsed.changes, &expected);

        // And emission is deterministic: same wave, same bytes.
        let text2 = write_vcd(&wave);
        prop_assert_eq!(text, text2);
    }

    // Two redundant encodings of the same history are diff-clean.
    #[test]
    fn canonical_diff_ignores_redundancy(wave in arb_wave()) {
        let text = write_vcd(&wave);
        let parsed = parse_vcd(&text).unwrap();
        // Re-encode the *parsed* wave (baseline included) and parse
        // again: same canonical history, so zero differences.
        let mut w = VcdWriter::new(Vec::new());
        w.start(&parsed.top, &parsed.signals).unwrap();
        let baseline: Vec<Vec<u64>> = parsed
            .signals
            .iter()
            .map(|s| vec![0u64; (s.width as usize).div_ceil(64).max(1)])
            .collect();
        w.dumpvars(parsed.changes.first().map(|c| c.0).unwrap_or(0), &baseline).unwrap();
        for (t, s, v) in &parsed.changes {
            w.change(*t, *s, v).unwrap();
        }
        w.finish().unwrap();
        let text2 = String::from_utf8(w.into_inner()).unwrap();
        let reparsed = parse_vcd(&text2).unwrap();
        prop_assert!(diff(&parsed, &reparsed).is_empty());
    }
}
