//! Real RV32I programs for stuCore.
//!
//! Each program ends with `ecall` leaving a checksum in `a0` (stuCore's
//! `result` output), so correctness is architecturally checkable on
//! every engine.

use crate::asm::{assemble_u64, AsmError};

/// A ready-to-load program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Name (used in reports).
    pub name: &'static str,
    /// Instruction-memory image.
    pub image: Vec<u64>,
    /// Expected `a0` checksum at halt (architectural oracle).
    pub expected_result: u64,
    /// Generous cycle budget to reach `ecall`.
    pub max_cycles: u64,
}

fn build(name: &'static str, src: &str, expected_result: u64, max_cycles: u64) -> Program {
    let image = assemble_u64(src).unwrap_or_else(|e: AsmError| panic!("{name}: {e}"));
    Program {
        name,
        image,
        expected_result,
        max_cycles,
    }
}

/// Iterative Fibonacci: `a0 = fib(n)`.
pub fn fib(n: u32) -> Program {
    let src = format!(
        r#"
        li   t0, {n}        # counter
        li   a0, 0          # fib(0)
        li   t1, 1          # fib(1)
        beqz t0, done
loop:   add  t2, a0, t1
        mv   a0, t1
        mv   t1, t2
        addi t0, t0, -1
        bnez t0, loop
done:   ecall
"#
    );
    let expected = {
        let (mut a, mut b) = (0u64, 1u64);
        for _ in 0..n {
            let t = (a + b) & 0xffff_ffff;
            a = b;
            b = t;
        }
        a
    };
    build("fib", &src, expected, 64 + 8 * n as u64)
}

/// CoreMark-mini: a hot loop mixing arithmetic, shifts, branches, and
/// memory traffic over a small working set, accumulating a checksum —
/// the hot-spot profile the paper attributes to CoreMark.
pub fn coremark_mini(iters: u32) -> Program {
    let src = format!(
        r#"
        li   s0, {iters}     # outer iterations
        li   a0, 0x5a5a      # checksum
        li   s1, 256         # working-set base (bytes)
        li   s2, 16          # table entries
        # initialize table: mem[base + 4i] = i * 2654435761 (knuth)
        li   t0, 0
        li   t3, 0x9e3779b1
init:   slli t1, t0, 2
        add  t1, t1, s1
        mv   t2, t0
        add  t2, t2, t3
        sw   t2, 0(t1)
        addi t0, t0, 1
        blt  t0, s2, init
outer:  li   t0, 0
inner:  andi t4, t0, 15
        slli t1, t4, 2
        add  t1, t1, s1
        lw   t2, 0(t1)       # load table entry
        add  a0, a0, t2      # accumulate
        xor  t2, t2, a0
        srli t5, t2, 3
        add  t2, t2, t5
        sw   t2, 0(t1)       # store back (memory write traffic)
        andi t6, a0, 7       # branchy: data-dependent path
        beqz t6, skip
        addi a0, a0, 13
skip:   addi t0, t0, 1
        blt  t0, s2, inner
        addi s0, s0, -1
        bnez s0, outer
        ecall
"#
    );
    build(
        "coremark_mini",
        &src,
        coremark_mini_expected(iters),
        2_000 + iters as u64 * 16 * 12,
    )
}

/// Host-side model of `coremark_mini` (the architectural oracle).
fn coremark_mini_expected(iters: u32) -> u64 {
    let m = |x: u64| x & 0xffff_ffff;
    let mut table = [0u64; 16];
    for (i, t) in table.iter_mut().enumerate() {
        *t = m(i as u64 + 0x9e37_79b1);
    }
    let mut a0: u64 = 0x5a5a;
    for _ in 0..iters {
        for t in &mut table {
            let mut t2 = *t;
            a0 = m(a0 + t2);
            t2 = m(t2 ^ a0);
            t2 = m(t2 + (t2 >> 3));
            *t = t2;
            if a0 & 7 != 0 {
                a0 = m(a0 + 13);
            }
        }
    }
    a0
}

/// Linux-boot-mini: irregular pointer chasing across a larger working
/// set with unpredictable branches — the flat, low-locality profile the
/// paper attributes to booting Linux.
pub fn linux_boot_mini(steps: u32) -> Program {
    let src = format!(
        r#"
        li   s0, {steps}
        li   s1, 1024        # ring buffer base
        li   s2, 64          # entries
        li   a0, 0xb007      # checksum
        # build a scrambled pointer ring: next(i) = (i * 13 + 7) mod 64
        li   t0, 0
ring:   slli t1, t0, 2
        add  t1, t1, s1
        li   t2, 13
        mv   t3, t0
        # t3 = t0 * 13 via shifts/adds (no mul on rv32i base)
        slli t4, t3, 3
        slli t5, t3, 2
        add  t4, t4, t5
        add  t4, t4, t3
        addi t4, t4, 7
        andi t4, t4, 63
        slli t4, t4, 2
        add  t4, t4, s1
        sw   t4, 0(t1)       # store pointer
        addi t0, t0, 1
        blt  t0, s2, ring
        # chase pointers
        mv   t0, s1
chase:  lw   t0, 0(t0)       # follow pointer
        add  a0, a0, t0
        andi t6, a0, 31
        slli t6, t6, 2
        add  t6, t6, s1
        lw   t5, 0(t6)       # irregular second access
        xor  a0, a0, t5
        andi t4, a0, 1
        beqz t4, even
        addi a0, a0, 3
        j    next
even:   addi a0, a0, -1
next:   addi s0, s0, -1
        bnez s0, chase
        ecall
"#
    );
    build(
        "linux_boot_mini",
        &src,
        linux_boot_mini_expected(steps),
        3_000 + steps as u64 * 12,
    )
}

fn linux_boot_mini_expected(steps: u32) -> u64 {
    let m = |x: u64| x & 0xffff_ffff;
    let base = 1024u64;
    let mut mem = std::collections::HashMap::<u64, u64>::new();
    for i in 0..64u64 {
        let next = (i * 13 + 7) % 64;
        mem.insert(base + i * 4, base + next * 4);
    }
    let mut a0: u64 = 0xb007;
    let mut t0 = base;
    for _ in 0..steps {
        t0 = *mem.get(&t0).unwrap_or(&0);
        a0 = m(a0 + t0);
        let idx = a0 & 31;
        let t5 = *mem.get(&(base + idx * 4)).unwrap_or(&0);
        a0 = m(a0 ^ t5);
        if a0 & 1 != 0 {
            a0 = m(a0 + 3);
        } else {
            a0 = m(a0.wrapping_sub(1));
        }
    }
    a0
}

/// In-place bubble sort of a small descending array; checksum is the
/// weighted sum of the sorted array.
pub fn bubble_sort() -> Program {
    let n = 12u64;
    let src = format!(
        r#"
        li   s1, 512         # array base
        li   s2, {n}
        # fill descending: a[i] = n - i
        li   t0, 0
fill:   slli t1, t0, 2
        add  t1, t1, s1
        sub  t2, s2, t0
        sw   t2, 0(t1)
        addi t0, t0, 1
        blt  t0, s2, fill
        # bubble sort
        addi s3, s2, -1      # passes
pass:   li   t0, 0
        addi t6, s2, -1
bubl:   slli t1, t0, 2
        add  t1, t1, s1
        lw   t2, 0(t1)
        lw   t3, 4(t1)
        bge  t3, t2, noswap
        sw   t3, 0(t1)
        sw   t2, 4(t1)
noswap: addi t0, t0, 1
        blt  t0, t6, bubl
        addi s3, s3, -1
        bnez s3, pass
        # checksum = sum (i+1)*a[i]
        li   a0, 0
        li   t0, 0
sum:    slli t1, t0, 2
        add  t1, t1, s1
        lw   t2, 0(t1)
        addi t3, t0, 1
        # multiply t2 * t3 by repeated add (t3 small)
        li   t4, 0
mulp:   add  t4, t4, t2
        addi t3, t3, -1
        bnez t3, mulp
        add  a0, a0, t4
        addi t0, t0, 1
        blt  t0, s2, sum
        ecall
"#
    );
    let expected: u64 = (1..=n).map(|i| i * i).sum::<u64>() & 0xffff_ffff;
    build("bubble_sort", &src, expected, 40_000)
}

/// Word-wise memcpy with verification checksum.
pub fn memcpy_bench(words: u32) -> Program {
    let src = format!(
        r#"
        li   s1, 2048        # src base
        li   s2, 6144        # dst base
        li   s3, {words}
        li   t0, 0
fill:   slli t1, t0, 2
        add  t1, t1, s1
        xori t2, t0, 0x2a
        sw   t2, 0(t1)
        addi t0, t0, 1
        blt  t0, s3, fill
        li   t0, 0
copy:   slli t1, t0, 2
        add  t2, t1, s1
        add  t3, t1, s2
        lw   t4, 0(t2)
        sw   t4, 0(t3)
        addi t0, t0, 1
        blt  t0, s3, copy
        li   a0, 0
        li   t0, 0
check:  slli t1, t0, 2
        add  t3, t1, s2
        lw   t4, 0(t3)
        add  a0, a0, t4
        addi t0, t0, 1
        blt  t0, s3, check
        ecall
"#
    );
    let expected: u64 = (0..words as u64).map(|i| i ^ 0x2a).sum::<u64>() & 0xffff_ffff;
    build("memcpy", &src, expected, 2_000 + words as u64 * 36)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_assemble() {
        for p in [
            fib(10),
            coremark_mini(2),
            linux_boot_mini(50),
            bubble_sort(),
            memcpy_bench(16),
        ] {
            assert!(!p.image.is_empty(), "{} empty", p.name);
            assert!(p.image.len() < 4096, "{} too large for imem", p.name);
        }
    }

    #[test]
    fn fib_expectations() {
        assert_eq!(fib(0).expected_result, 0);
        assert_eq!(fib(1).expected_result, 1);
        assert_eq!(fib(10).expected_result, 55);
        assert_eq!(fib(20).expected_result, 6765);
    }
}
