//! Software workloads for the GSIM evaluation.
//!
//! The paper runs CoreMark, Linux boot, and SPEC CPU2006 SimPoint
//! checkpoints. This crate provides their stand-ins at two levels:
//!
//! * [`asm`] — an RV32I-subset assembler (two-pass, labels, ABI
//!   register names) producing machine code for the real `stuCore` CPU.
//! * [`programs`] — real programs assembled for stuCore:
//!   `coremark_mini` (hot arithmetic/branch/memory loop with a
//!   checksum, mirroring CoreMark's hot-spot profile), `linux_boot_mini`
//!   (irregular pointer-chasing over a large working set, mirroring
//!   Linux boot's flat profile), plus smaller kernels (`fib`,
//!   `bubble_sort`, `memcpy`).
//! * [`stimulus`] — opcode-stream profiles for the synthetic cores:
//!   hot-loop (CoreMark-like), irregular (Linux-like), and 12
//!   SPEC-CPU2006-checkpoint personalities with distinct
//!   activity/locality/mix parameters (Figure 7's x-axis).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod programs;
pub mod stimulus;

pub use asm::{assemble, AsmError};
pub use stimulus::{spec_profiles, Profile, Stimulus};
