//! Opcode-stream stimulus profiles for the synthetic cores.
//!
//! The synthetic processors decode a 32-bit "instruction" per lane per
//! cycle; a [`Profile`] shapes that stream:
//!
//! * `activity` — probability a lane receives a real op (vs a bubble),
//!   the dominant control on the design's activity factor;
//! * `hot_set` — number of distinct instruction patterns cycled through.
//!   A small hot set (CoreMark-like) re-executes the same ops so signal
//!   values repeat and fewer nodes change; a large set (Linux-like)
//!   keeps values churning;
//! * `fu_spread` — how many functional units the stream exercises
//!   (instruction-mix diversity).
//!
//! [`spec_profiles`] returns the 12 SPEC CPU2006 checkpoint
//! personalities of the paper's Figure 7, with parameters chosen to
//! reflect the published characterization (memory-bound vs
//! compute-bound vs branch-heavy; see EXPERIMENTS.md).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A stimulus personality.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Display name.
    pub name: &'static str,
    /// Probability a cycle carries a real op (0.0–1.0).
    pub activity: f64,
    /// Distinct instruction patterns cycled through.
    pub hot_set: usize,
    /// Fraction of the FU space the mix exercises (0.0–1.0).
    pub fu_spread: f64,
}

impl Profile {
    /// CoreMark: hot loops, high activity, small working set.
    pub fn coremark() -> Profile {
        Profile {
            name: "CoreMark",
            activity: 0.75,
            hot_set: 24,
            fu_spread: 0.35,
        }
    }

    /// Linux boot: flat profile, moderate activity, huge working set.
    pub fn linux() -> Profile {
        Profile {
            name: "Linux",
            activity: 0.55,
            hot_set: 4096,
            fu_spread: 0.9,
        }
    }

    /// Idle stream (bubbles only) — used by ablation sanity checks.
    pub fn idle() -> Profile {
        Profile {
            name: "idle",
            activity: 0.0,
            hot_set: 1,
            fu_spread: 0.0,
        }
    }

    /// Instantiates the generator with a deterministic seed.
    pub fn stimulus(&self, lanes: usize, seed: u64) -> Stimulus {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xc0ff_ee00);
        let patterns = (0..self.hot_set.max(1))
            .map(|_| rng.gen::<u32>() as u64)
            .collect();
        Stimulus {
            profile: self.clone(),
            lanes,
            patterns,
            cursor: 0,
            rng,
        }
    }
}

/// A running stimulus stream.
#[derive(Debug)]
pub struct Stimulus {
    profile: Profile,
    lanes: usize,
    patterns: Vec<u64>,
    cursor: usize,
    rng: SmallRng,
}

impl Stimulus {
    /// Produces the opcode word for every lane for one cycle.
    pub fn next_cycle(&mut self) -> Vec<u64> {
        (0..self.lanes)
            .map(|lane| {
                if !self.rng.gen_bool(self.profile.activity.clamp(0.0, 1.0)) {
                    return 0; // bubble
                }
                let pat = self.patterns[self.cursor % self.patterns.len()];
                self.cursor = self.cursor.wrapping_add(1 + lane);
                // Constrain the FU-select byte to the exercised range.
                let spread = (self.profile.fu_spread.clamp(0.05, 1.0) * 255.0) as u64;
                let fu = (pat >> 8 & 0xff) % spread.max(1);
                (pat & !0xff00) | (fu << 8) | 1 // bit 0 set: always valid
            })
            .collect()
    }

    /// The profile driving this stream.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }
}

/// The 12 SPEC CPU2006 SimPoint checkpoints of Figure 7. Parameters
/// model the published workload characterization: memory-bound codes
/// (mcf, lbm, GemsFDTD, libquantum) have lower issue activity and wide
/// footprints; compute-bound codes (hmmer, h264ref, bzip2) run hot and
/// narrow; branch-heavy ones (gobmk, perlbench, xalancbmk) sit between
/// with diverse mixes.
pub fn spec_profiles() -> Vec<Profile> {
    vec![
        Profile {
            name: "perlbench_diffmail",
            activity: 0.62,
            hot_set: 512,
            fu_spread: 0.80,
        },
        Profile {
            name: "bzip2_chicken",
            activity: 0.72,
            hot_set: 96,
            fu_spread: 0.45,
        },
        Profile {
            name: "mcf",
            activity: 0.35,
            hot_set: 2048,
            fu_spread: 0.55,
        },
        Profile {
            name: "gobmk_13x13",
            activity: 0.58,
            hot_set: 768,
            fu_spread: 0.85,
        },
        Profile {
            name: "hmmer_retro",
            activity: 0.82,
            hot_set: 48,
            fu_spread: 0.30,
        },
        Profile {
            name: "libquantum",
            activity: 0.45,
            hot_set: 64,
            fu_spread: 0.25,
        },
        Profile {
            name: "h264ref_sss",
            activity: 0.78,
            hot_set: 160,
            fu_spread: 0.50,
        },
        Profile {
            name: "omnetpp",
            activity: 0.48,
            hot_set: 1024,
            fu_spread: 0.75,
        },
        Profile {
            name: "xalancbmk",
            activity: 0.55,
            hot_set: 1536,
            fu_spread: 0.85,
        },
        Profile {
            name: "bwave",
            activity: 0.50,
            hot_set: 256,
            fu_spread: 0.40,
        },
        Profile {
            name: "GemsFDTD",
            activity: 0.42,
            hot_set: 512,
            fu_spread: 0.45,
        },
        Profile {
            name: "lbm",
            activity: 0.38,
            hot_set: 128,
            fu_spread: 0.30,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let p = Profile::coremark();
        let mut a = p.stimulus(2, 42);
        let mut b = p.stimulus(2, 42);
        for _ in 0..50 {
            assert_eq!(a.next_cycle(), b.next_cycle());
        }
    }

    #[test]
    fn activity_controls_bubble_rate() {
        let mut hot = Profile::coremark().stimulus(1, 7);
        let mut idle = Profile::idle().stimulus(1, 7);
        let hot_ops = (0..1000).filter(|_| hot.next_cycle()[0] != 0).count();
        let idle_ops = (0..1000).filter(|_| idle.next_cycle()[0] != 0).count();
        assert!(hot_ops > 600, "hot stream too idle: {hot_ops}");
        assert_eq!(idle_ops, 0);
    }

    #[test]
    fn hot_set_limits_distinct_patterns() {
        let p = Profile {
            name: "test",
            activity: 1.0,
            hot_set: 8,
            fu_spread: 0.5,
        };
        let mut s = p.stimulus(1, 3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(s.next_cycle()[0]);
        }
        assert!(
            seen.len() <= 8 + 1,
            "too many distinct patterns: {}",
            seen.len()
        );
    }

    #[test]
    fn twelve_spec_checkpoints() {
        let profiles = spec_profiles();
        assert_eq!(profiles.len(), 12);
        let names: std::collections::HashSet<_> = profiles.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 12);
    }
}
