//! Two-pass RV32I-subset assembler.
//!
//! Supports exactly the instructions stuCore executes, plus labels and
//! the common pseudo-instructions. Syntax follows the GNU assembler:
//!
//! ```text
//! start:  addi t0, zero, 10      # comment
//!         li   t1, 1234
//! loop:   addi t0, t0, -1
//!         bne  t0, zero, loop
//!         ecall
//! ```

use std::collections::HashMap;
use std::fmt;

/// Assembly error with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// Explanation.
    pub msg: String,
    /// 1-based line number.
    pub line: usize,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asm error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// Parses a register name (`x0`-`x31` or ABI names).
fn reg(name: &str, line: usize) -> Result<u32, AsmError> {
    let aliases: [(&str, u32); 33] = [
        ("zero", 0),
        ("ra", 1),
        ("sp", 2),
        ("gp", 3),
        ("tp", 4),
        ("t0", 5),
        ("t1", 6),
        ("t2", 7),
        ("s0", 8),
        ("fp", 8),
        ("s1", 9),
        ("a0", 10),
        ("a1", 11),
        ("a2", 12),
        ("a3", 13),
        ("a4", 14),
        ("a5", 15),
        ("a6", 16),
        ("a7", 17),
        ("s2", 18),
        ("s3", 19),
        ("s4", 20),
        ("s5", 21),
        ("s6", 22),
        ("s7", 23),
        ("s8", 24),
        ("s9", 25),
        ("s10", 26),
        ("s11", 27),
        ("t3", 28),
        ("t4", 29),
        ("t5", 30),
        ("t6", 31),
    ];
    if let Some(rest) = name.strip_prefix('x') {
        if let Ok(n) = rest.parse::<u32>() {
            if n < 32 {
                return Ok(n);
            }
        }
    }
    aliases
        .iter()
        .find(|(a, _)| *a == name)
        .map(|&(_, n)| n)
        .ok_or_else(|| AsmError {
            msg: format!("unknown register {name:?}"),
            line,
        })
}

fn imm(s: &str, labels: &HashMap<String, i64>, pc: i64, line: usize) -> Result<i64, AsmError> {
    let s = s.trim();
    if let Some(v) = labels.get(s) {
        return Ok(v - pc); // pc-relative by default (branch/jump use)
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| AsmError {
        msg: format!("bad immediate {s:?}"),
        line,
    })?;
    Ok(if neg { -v } else { v })
}

/// Absolute value of a label or literal (for `li`-style uses).
fn abs_imm(s: &str, labels: &HashMap<String, i64>, line: usize) -> Result<i64, AsmError> {
    if let Some(v) = labels.get(s.trim()) {
        return Ok(*v);
    }
    imm(s, labels, 0, line)
}

fn enc_r(f7: u32, rs2: u32, rs1: u32, f3: u32, rd: u32, op: u32) -> u32 {
    (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op
}

fn enc_i(immv: i64, rs1: u32, f3: u32, rd: u32, op: u32) -> u32 {
    ((immv as u32 & 0xfff) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op
}

fn enc_s(immv: i64, rs2: u32, rs1: u32, f3: u32, op: u32) -> u32 {
    let i = immv as u32;
    ((i >> 5 & 0x7f) << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | ((i & 0x1f) << 7) | op
}

fn enc_b(immv: i64, rs2: u32, rs1: u32, f3: u32, op: u32) -> u32 {
    let i = immv as u32;
    ((i >> 12 & 1) << 31)
        | ((i >> 5 & 0x3f) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (f3 << 12)
        | ((i >> 1 & 0xf) << 8)
        | ((i >> 11 & 1) << 7)
        | op
}

fn enc_u(immv: i64, rd: u32, op: u32) -> u32 {
    (immv as u32 & 0xffff_f000) | (rd << 7) | op
}

fn enc_j(immv: i64, rd: u32, op: u32) -> u32 {
    let i = immv as u32;
    ((i >> 20 & 1) << 31)
        | ((i >> 1 & 0x3ff) << 21)
        | ((i >> 11 & 1) << 20)
        | ((i >> 12 & 0xff) << 12)
        | (rd << 7)
        | op
}

/// Splits an `offset(base)` operand.
fn mem_operand(s: &str, line: usize) -> Result<(String, String), AsmError> {
    let open = s.find('(').ok_or_else(|| AsmError {
        msg: format!("expected offset(base), got {s:?}"),
        line,
    })?;
    let close = s.rfind(')').ok_or_else(|| AsmError {
        msg: "missing ')'".into(),
        line,
    })?;
    Ok((
        s[..open].trim().to_string(),
        s[open + 1..close].trim().to_string(),
    ))
}

/// Expanded source line (post-pseudo-expansion word count).
fn words_for_line(mnemonic: &str) -> usize {
    match mnemonic {
        "li" => 2, // worst case lui+addi; pass 2 always emits 2 for stability
        _ => 1,
    }
}

/// Assembles source into 32-bit instruction words (origin 0).
///
/// # Errors
///
/// Returns [`AsmError`] for unknown mnemonics, bad operands, or
/// out-of-range immediates.
pub fn assemble(src: &str) -> Result<Vec<u32>, AsmError> {
    // Pass 1: label addresses.
    let mut labels: HashMap<String, i64> = HashMap::new();
    let mut pc = 0i64;
    for (ln, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let mut rest = line;
        while let Some(colon) = rest.find(':') {
            let (label, after) = rest.split_at(colon);
            let label = label.trim();
            if label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && !label.is_empty() {
                labels.insert(label.to_string(), pc);
                rest = after[1..].trim();
            } else {
                break;
            }
        }
        if rest.is_empty() {
            continue;
        }
        let mnemonic = rest.split_whitespace().next().unwrap_or("");
        pc += 4 * words_for_line(mnemonic) as i64;
        let _ = ln;
    }

    // Pass 2: encode.
    let mut out: Vec<u32> = Vec::new();
    let mut pc = 0i64;
    for (ln, raw) in src.lines().enumerate() {
        let lineno = ln + 1;
        let mut text = strip_comment(raw).trim();
        while let Some(colon) = text.find(':') {
            let (label, after) = text.split_at(colon);
            if label
                .trim()
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
                && !label.trim().is_empty()
            {
                text = after[1..].trim();
            } else {
                break;
            }
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, args_text) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        let args: Vec<String> = if args_text.is_empty() {
            vec![]
        } else {
            args_text.split(',').map(|a| a.trim().to_string()).collect()
        };
        let nargs = args.len();
        let need = |n: usize| -> Result<(), AsmError> {
            if nargs != n {
                Err(AsmError {
                    msg: format!("{mnemonic} expects {n} operands, got {nargs}"),
                    line: lineno,
                })
            } else {
                Ok(())
            }
        };
        let rg = |i: usize| reg(&args[i], lineno);
        match mnemonic {
            // R-type
            "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or" | "and" => {
                need(3)?;
                let (rd, rs1, rs2) = (rg(0)?, rg(1)?, rg(2)?);
                let (f3, f7) = match mnemonic {
                    "add" => (0, 0),
                    "sub" => (0, 0x20),
                    "sll" => (1, 0),
                    "slt" => (2, 0),
                    "sltu" => (3, 0),
                    "xor" => (4, 0),
                    "srl" => (5, 0),
                    "sra" => (5, 0x20),
                    "or" => (6, 0),
                    _ => (7, 0),
                };
                out.push(enc_r(f7, rs2, rs1, f3, rd, 0x33));
                pc += 4;
            }
            // I-type ALU
            "addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" => {
                need(3)?;
                let (rd, rs1) = (rg(0)?, rg(1)?);
                let iv = imm(&args[2], &HashMap::new(), 0, lineno)?;
                check_range(iv, -2048, 2047, lineno)?;
                let f3 = match mnemonic {
                    "addi" => 0,
                    "slti" => 2,
                    "sltiu" => 3,
                    "xori" => 4,
                    "ori" => 6,
                    _ => 7,
                };
                out.push(enc_i(iv, rs1, f3, rd, 0x13));
                pc += 4;
            }
            "slli" | "srli" | "srai" => {
                need(3)?;
                let (rd, rs1) = (rg(0)?, rg(1)?);
                let sh = imm(&args[2], &HashMap::new(), 0, lineno)?;
                check_range(sh, 0, 31, lineno)?;
                let (f3, f7) = match mnemonic {
                    "slli" => (1, 0),
                    "srli" => (5, 0),
                    _ => (5, 0x20),
                };
                out.push(enc_r(f7, sh as u32, rs1, f3, rd, 0x13));
                pc += 4;
            }
            "lw" => {
                need(2)?;
                let rd = rg(0)?;
                let (off, base) = mem_operand(&args[1], lineno)?;
                let iv = imm(&off, &HashMap::new(), 0, lineno)?;
                let rs1 = reg(&base, lineno)?;
                out.push(enc_i(iv, rs1, 2, rd, 0x03));
                pc += 4;
            }
            "sw" => {
                need(2)?;
                let rs2 = rg(0)?;
                let (off, base) = mem_operand(&args[1], lineno)?;
                let iv = imm(&off, &HashMap::new(), 0, lineno)?;
                let rs1 = reg(&base, lineno)?;
                out.push(enc_s(iv, rs2, rs1, 2, 0x23));
                pc += 4;
            }
            "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
                need(3)?;
                let (rs1, rs2) = (rg(0)?, rg(1)?);
                let target = imm(&args[2], &labels, pc, lineno)?;
                check_range(target, -4096, 4095, lineno)?;
                let f3 = match mnemonic {
                    "beq" => 0,
                    "bne" => 1,
                    "blt" => 4,
                    "bge" => 5,
                    "bltu" => 6,
                    _ => 7,
                };
                out.push(enc_b(target, rs2, rs1, f3, 0x63));
                pc += 4;
            }
            "lui" => {
                need(2)?;
                let rd = rg(0)?;
                let iv = abs_imm(&args[1], &labels, lineno)?;
                out.push(enc_u(iv << 12, rd, 0x37));
                pc += 4;
            }
            "auipc" => {
                need(2)?;
                let rd = rg(0)?;
                let iv = abs_imm(&args[1], &labels, lineno)?;
                out.push(enc_u(iv << 12, rd, 0x17));
                pc += 4;
            }
            "jal" => {
                // jal rd, label  |  jal label (rd = ra)
                let (rd, target) = if nargs == 2 {
                    (rg(0)?, imm(&args[1], &labels, pc, lineno)?)
                } else {
                    need(1)?;
                    (1, imm(&args[0], &labels, pc, lineno)?)
                };
                out.push(enc_j(target, rd, 0x6f));
                pc += 4;
            }
            "jalr" => {
                // jalr rd, offset(rs1) | jalr rs1
                if nargs == 1 {
                    let rs1 = rg(0)?;
                    out.push(enc_i(0, rs1, 0, 1, 0x67));
                } else {
                    need(2)?;
                    let rd = rg(0)?;
                    let (off, base) = mem_operand(&args[1], lineno)?;
                    let iv = imm(&off, &HashMap::new(), 0, lineno)?;
                    let rs1 = reg(&base, lineno)?;
                    out.push(enc_i(iv, rs1, 0, rd, 0x67));
                }
                pc += 4;
            }
            "ecall" => {
                need(0)?;
                out.push(0x0000_0073);
                pc += 4;
            }
            // pseudo-instructions
            "nop" => {
                need(0)?;
                out.push(enc_i(0, 0, 0, 0, 0x13));
                pc += 4;
            }
            "mv" => {
                need(2)?;
                let (rd, rs) = (rg(0)?, rg(1)?);
                out.push(enc_i(0, rs, 0, rd, 0x13));
                pc += 4;
            }
            "j" => {
                need(1)?;
                let target = imm(&args[0], &labels, pc, lineno)?;
                out.push(enc_j(target, 0, 0x6f));
                pc += 4;
            }
            "ret" => {
                need(0)?;
                out.push(enc_i(0, 1, 0, 0, 0x67));
                pc += 4;
            }
            "beqz" | "bnez" => {
                need(2)?;
                let rs1 = rg(0)?;
                let target = imm(&args[1], &labels, pc, lineno)?;
                let f3 = if mnemonic == "beqz" { 0 } else { 1 };
                out.push(enc_b(target, 0, rs1, f3, 0x63));
                pc += 4;
            }
            "li" => {
                // Always two words (lui+addi) so label addresses from
                // pass 1 stay correct.
                need(2)?;
                let rd = rg(0)?;
                let v = abs_imm(&args[1], &labels, lineno)? as i32;
                let lo = (v << 20) >> 20; // sign-extended low 12
                let hi = (v as i64 - lo as i64) >> 12;
                out.push(enc_u(hi << 12, rd, 0x37));
                out.push(enc_i(lo as i64, rd, 0, rd, 0x13));
                pc += 8;
            }
            other => {
                return Err(AsmError {
                    msg: format!("unknown mnemonic {other:?}"),
                    line: lineno,
                });
            }
        }
    }
    Ok(out)
}

fn check_range(v: i64, lo: i64, hi: i64, line: usize) -> Result<(), AsmError> {
    if v < lo || v > hi {
        return Err(AsmError {
            msg: format!("immediate {v} out of range [{lo}, {hi}]"),
            line,
        });
    }
    Ok(())
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Assembled words as `u64`s (the simulator memory-image type).
pub fn assemble_u64(src: &str) -> Result<Vec<u64>, AsmError> {
    Ok(assemble(src)?.into_iter().map(u64::from).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_known_instructions() {
        // cross-checked against GNU as output
        assert_eq!(assemble("addi x1, x0, 5").unwrap(), vec![0x0050_0093]);
        assert_eq!(assemble("add x10, x1, x2").unwrap(), vec![0x0020_8533]);
        assert_eq!(assemble("ecall").unwrap(), vec![0x0000_0073]);
        assert_eq!(assemble("sw x1, 0(x2)").unwrap(), vec![0x0011_2023]);
        assert_eq!(assemble("lw x10, 0(x2)").unwrap(), vec![0x0001_2503]);
        assert_eq!(assemble("sub x3, x4, x5").unwrap(), vec![0x4052_01b3]);
        assert_eq!(assemble("srai x1, x1, 3").unwrap(), vec![0x4030_d093]);
        assert_eq!(assemble("lui x5, 0x12345").unwrap(), vec![0x1234_52b7]);
    }

    #[test]
    fn branch_offsets_resolve() {
        let code =
            assemble("addi x1, x0, 3\nloop: addi x1, x1, -1\nbne x1, x0, loop\necall").unwrap();
        assert_eq!(code[2], 0xfe00_9ee3); // bne x1, x0, -4
    }

    #[test]
    fn forward_branches_resolve() {
        let code = assemble("beq x0, x0, done\nnop\ndone: ecall").unwrap();
        // offset +8
        assert_eq!(code[0], enc_b(8, 0, 0, 0, 0x63));
    }

    #[test]
    fn li_expands_to_two_words() {
        let code = assemble("li a0, 0x12345678").unwrap();
        assert_eq!(code.len(), 2);
        // lui sets the (rounded) upper part; addi adds the low part.
        let upper = code[0] & 0xffff_f000;
        let low = (code[1] as i32) >> 20;
        let value = (upper as i64 + low as i64) as u32;
        assert_eq!(value, 0x1234_5678);
        // negative low half rounds the lui up
        let code = assemble("li a0, 0x12345fff").unwrap();
        let upper = code[0] & 0xffff_f000;
        let low = (code[1] as i32) >> 20;
        assert_eq!((upper as i64 + low as i64) as u32, 0x1234_5fff);
    }

    #[test]
    fn abi_names_work() {
        let a = assemble("add a0, t0, s1").unwrap();
        let b = assemble("add x10, x5, x9").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\nbogus x1, x2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus"));
        let err = assemble("addi x1, x0, 99999").unwrap_err();
        assert!(err.to_string().contains("out of range"));
        let err = assemble("add x32, x0, x0").unwrap_err();
        assert!(err.to_string().contains("register"));
    }

    #[test]
    fn labels_on_own_line() {
        let code = assemble("start:\n  addi x1, x0, 1\n  j start\n").unwrap();
        assert_eq!(code.len(), 2);
        assert_eq!(code[1], enc_j(-4, 0, 0x6f));
    }
}
