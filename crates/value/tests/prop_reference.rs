//! Property tests: `gsim_value::ops` against a 128-bit reference model.
//!
//! For operand widths up to 60 bits, every FIRRTL op has an obvious exact
//! reference implementation on `i128`/`u128`. These tests pin the word-
//! slice kernels to that reference across random operands and widths.

use gsim_value::{ops, Value};
use proptest::prelude::*;

/// A random (value, width) pair with width in 1..=60.
fn operand() -> impl Strategy<Value = (u64, u32)> {
    (1u32..=60).prop_flat_map(|w| {
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        (any::<u64>().prop_map(move |x| x & mask), Just(w))
    })
}

fn as_i128(x: u64, w: u32) -> i128 {
    let shift = 128 - w;
    (((x as u128) << shift) as i128) >> shift
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn add_matches_reference(((a, wa), (b, wb)) in (operand(), operand()), signed: bool) {
        let va = Value::from_u64(a, wa);
        let vb = Value::from_u64(b, wb);
        let r = ops::add(&va, &vb, signed);
        if signed {
            prop_assert_eq!(r.to_i128().unwrap(), as_i128(a, wa) + as_i128(b, wb));
        } else {
            prop_assert_eq!(r.to_u128().unwrap(), (a as u128) + (b as u128));
        }
    }

    #[test]
    fn sub_matches_reference(((a, wa), (b, wb)) in (operand(), operand())) {
        let va = Value::from_u64(a, wa);
        let vb = Value::from_u64(b, wb);
        // Signed subtraction is exact at max+1 bits.
        let r = ops::sub(&va, &vb, true);
        prop_assert_eq!(r.to_i128().unwrap(), as_i128(a, wa) - as_i128(b, wb));
    }

    #[test]
    fn mul_matches_reference(((a, wa), (b, wb)) in (operand(), operand()), signed: bool) {
        let va = Value::from_u64(a, wa);
        let vb = Value::from_u64(b, wb);
        let r = ops::mul(&va, &vb, signed);
        if signed {
            prop_assert_eq!(r.to_i128().unwrap(), as_i128(a, wa) * as_i128(b, wb));
        } else {
            prop_assert_eq!(r.to_u128().unwrap(), (a as u128) * (b as u128));
        }
    }

    #[test]
    fn divrem_matches_reference(((a, wa), (b, wb)) in (operand(), operand()), signed: bool) {
        let va = Value::from_u64(a, wa);
        let vb = Value::from_u64(b, wb);
        let q = ops::div(&va, &vb, signed);
        let r = ops::rem(&va, &vb, signed);
        if signed {
            let (sa, sb) = (as_i128(a, wa), as_i128(b, wb));
            if sb != 0 {
                prop_assert_eq!(q.to_i128().unwrap(), sa / sb);
                // rem result width is min(wa,wb); value fits because
                // |rem| < |b| <= 2^(wb-1) and takes a's sign
                let expect_r = sa % sb;
                let w = wa.min(wb);
                let masked = ((expect_r as u128) & ((1u128 << w) - 1)) as u64;
                prop_assert_eq!(r.to_u64().unwrap(), masked);
            } else {
                prop_assert_eq!(q.to_i128().unwrap(), 0);
            }
        } else if let (Some(eq), Some(er)) = (a.checked_div(b), a.checked_rem(b)) {
            prop_assert_eq!(q.to_u64().unwrap(), eq);
            prop_assert_eq!(r.to_u64().unwrap(), er & low_mask(wa.min(wb)));
        } else {
            // division by zero yields 0 in this IR
            prop_assert_eq!(q.to_u64().unwrap(), 0);
        }
    }

    #[test]
    fn comparisons_match_reference(((a, wa), (b, wb)) in (operand(), operand()), signed: bool) {
        let va = Value::from_u64(a, wa);
        let vb = Value::from_u64(b, wb);
        let (ra, rb) = if signed {
            (as_i128(a, wa), as_i128(b, wb))
        } else {
            (a as i128, b as i128)
        };
        prop_assert_eq!(ops::lt(&va, &vb, signed).to_u64(), Some((ra < rb) as u64));
        prop_assert_eq!(ops::leq(&va, &vb, signed).to_u64(), Some((ra <= rb) as u64));
        prop_assert_eq!(ops::gt(&va, &vb, signed).to_u64(), Some((ra > rb) as u64));
        prop_assert_eq!(ops::geq(&va, &vb, signed).to_u64(), Some((ra >= rb) as u64));
        prop_assert_eq!(ops::eq(&va, &vb, signed).to_u64(), Some((ra == rb) as u64));
        prop_assert_eq!(ops::neq(&va, &vb, signed).to_u64(), Some((ra != rb) as u64));
    }

    #[test]
    fn bitwise_matches_reference(((a, wa), (b, wb)) in (operand(), operand())) {
        let va = Value::from_u64(a, wa);
        let vb = Value::from_u64(b, wb);
        let w = wa.max(wb);
        prop_assert_eq!(ops::and(&va, &vb, false).to_u64(), Some(a & b));
        prop_assert_eq!(ops::or(&va, &vb, false).to_u64(), Some(a | b));
        prop_assert_eq!(ops::xor(&va, &vb, false).to_u64(), Some(a ^ b));
        prop_assert_eq!(ops::not(&va).to_u64(), Some(!a & low_mask(wa)));
        let _ = w;
    }

    #[test]
    fn shifts_match_reference((a, wa) in operand(), n in 0u32..70) {
        let va = Value::from_u64(a, wa);
        let r = ops::shl(&va, n.min(30));
        prop_assert_eq!(r.to_u128().unwrap(), (a as u128) << n.min(30));
        let r = ops::shr(&va, n, false);
        let expect = if n >= 64 { 0 } else { a >> n };
        prop_assert_eq!(r.to_u64().unwrap(), expect);
        // arithmetic shift
        let r = ops::shr(&va, n, true);
        let sa = as_i128(a, wa);
        let expect = sa >> n.min(127);
        let w = wa.saturating_sub(n).max(1);
        prop_assert_eq!(r.to_i128().unwrap(), {
            let shift = 128 - w;
            (expect << shift) >> shift
        });
    }

    #[test]
    fn cat_bits_roundtrip(((a, wa), (b, wb)) in (operand(), operand())) {
        let va = Value::from_u64(a, wa);
        let vb = Value::from_u64(b, wb);
        let c = ops::cat(&va, &vb);
        prop_assert_eq!(c.width(), wa + wb);
        prop_assert_eq!(ops::bits(&c, wa + wb - 1, wb).to_u64(), Some(a));
        prop_assert_eq!(ops::bits(&c, wb - 1, 0).to_u64(), Some(b));
        prop_assert_eq!(ops::head(&c, wa).to_u64(), Some(a));
        if wa > 0 {
            prop_assert_eq!(ops::tail(&c, wa).to_u64(), Some(b));
        }
    }

    #[test]
    fn reductions_match_reference((a, wa) in operand()) {
        let va = Value::from_u64(a, wa);
        let all = low_mask(wa);
        prop_assert_eq!(ops::andr(&va).to_u64(), Some((a == all) as u64));
        prop_assert_eq!(ops::orr(&va).to_u64(), Some((a != 0) as u64));
        prop_assert_eq!(ops::xorr(&va).to_u64(), Some((a.count_ones() % 2) as u64));
    }

    #[test]
    fn wide_values_roundtrip_through_parse(ws in proptest::collection::vec(any::<u64>(), 1..5)) {
        let width = ws.len() as u32 * 64;
        let v = Value::from_words(ws, width);
        let s = format!("{v}");
        let parsed: Value = s.parse().unwrap();
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn wide_mul_div_consistent(ws in proptest::collection::vec(any::<u64>(), 1..4),
                               d in 1u64..u64::MAX) {
        // (a * d) / d == a for values well inside the result width
        let width = ws.len() as u32 * 64;
        let a = Value::from_words(ws, width);
        let dv = Value::from_u64(d, 64);
        let prod = ops::mul(&a, &dv, false);
        let q = ops::div(&prod, &dv.zext_or_trunc(prod.width()), false);
        prop_assert_eq!(q.zext_or_trunc(width), a);
    }
}

fn low_mask(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}
