//! Owned, width-tagged bit vectors.

use crate::{words, words_for, MAX_WIDTH};
use std::fmt;
use std::str::FromStr;

/// An owned bit vector of fixed width, stored canonically
/// (zero-masked above the width).
///
/// `Value` is the convenience type used for constants, folding, memory
/// images, and test oracles. The simulation hot path works on raw word
/// slices instead (see [`crate::words`]).
///
/// # Example
///
/// ```
/// use gsim_value::Value;
///
/// let v = Value::from_u64(0xabcd, 16);
/// assert_eq!(v.to_u64(), Some(0xabcd));
/// assert_eq!(v.width(), 16);
/// assert_eq!(format!("{v}"), "16'habcd");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Value {
    width: u32,
    words: Vec<u64>,
}

/// Error produced when parsing a [`Value`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseValueError {
    msg: String,
}

impl fmt::Display for ParseValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid value literal: {}", self.msg)
    }
}

impl std::error::Error for ParseValueError {}

impl Value {
    /// The all-zero value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` exceeds [`MAX_WIDTH`].
    pub fn zero(width: u32) -> Self {
        assert!(width <= MAX_WIDTH, "width {width} exceeds MAX_WIDTH");
        Value {
            width,
            words: vec![0; words_for(width)],
        }
    }

    /// The all-ones value of the given width.
    pub fn ones(width: u32) -> Self {
        let mut v = Value::zero(width);
        for w in &mut v.words {
            *w = u64::MAX;
        }
        words::mask_in_place(&mut v.words, width);
        v
    }

    /// Builds a value from a `u64`, truncating to `width` bits.
    pub fn from_u64(x: u64, width: u32) -> Self {
        let mut v = Value::zero(width);
        if !v.words.is_empty() {
            v.words[0] = x;
            words::mask_in_place(&mut v.words, width);
        }
        v
    }

    /// Builds a value from an `i64` in two's complement, truncated/masked
    /// to `width` bits.
    pub fn from_i64(x: i64, width: u32) -> Self {
        let mut v = Value::zero(width);
        if !v.words.is_empty() {
            v.words[0] = x as u64;
            for w in &mut v.words[1..] {
                *w = if x < 0 { u64::MAX } else { 0 };
            }
            words::mask_in_place(&mut v.words, width);
        }
        v
    }

    /// Builds a value from a `u128`, truncating to `width` bits.
    pub fn from_u128(x: u128, width: u32) -> Self {
        let mut v = Value::zero(width);
        if !v.words.is_empty() {
            v.words[0] = x as u64;
            if v.words.len() > 1 {
                v.words[1] = (x >> 64) as u64;
            }
            words::mask_in_place(&mut v.words, width);
        }
        v
    }

    /// Builds a value from raw little-endian words, masking to `width`.
    pub fn from_words(mut ws: Vec<u64>, width: u32) -> Self {
        ws.resize(words_for(width), 0);
        let mut v = Value { width, words: ws };
        words::mask_in_place(&mut v.words, width);
        v
    }

    /// Parses a FIRRTL-style literal body in the given radix
    /// (2, 8, 10, or 16), e.g. `"hff"` body `ff` with radix 16.
    ///
    /// A leading `-` negates in two's complement at the target width
    /// (FIRRTL signed literals).
    ///
    /// # Errors
    ///
    /// Returns an error for empty bodies, invalid digits, or an
    /// unsupported radix.
    pub fn from_str_radix(s: &str, radix: u32, width: u32) -> Result<Self, ParseValueError> {
        if !matches!(radix, 2 | 8 | 10 | 16) {
            return Err(ParseValueError {
                msg: format!("unsupported radix {radix}"),
            });
        }
        let (neg, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        if body.is_empty() {
            return Err(ParseValueError {
                msg: "empty literal".into(),
            });
        }
        let mut v = Value::zero(width.max(1));
        let nwords = v.words.len();
        for ch in body.chars() {
            if ch == '_' {
                continue;
            }
            let d = ch.to_digit(radix).ok_or_else(|| ParseValueError {
                msg: format!("invalid digit {ch:?} for radix {radix}"),
            })? as u64;
            // v = v * radix + d
            let mut carry = d;
            for w in v.words.iter_mut().take(nwords) {
                let t = *w as u128 * radix as u128 + carry as u128;
                *w = t as u64;
                carry = (t >> 64) as u64;
            }
        }
        if neg {
            let copy = v.words.clone();
            words::neg(&mut v.words, &copy);
        }
        words::mask_in_place(&mut v.words, width);
        v.width = width;
        v.words.truncate(words_for(width));
        Ok(v)
    }

    /// The width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The underlying little-endian words (canonical form).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// `true` if every bit is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        words::is_zero(&self.words)
    }

    /// Bit `i`, reading beyond the width as zero.
    #[inline]
    pub fn bit(&self, i: u32) -> bool {
        words::get_bit(&self.words, i)
    }

    /// The value as a `u64` if it fits, else `None`.
    pub fn to_u64(&self) -> Option<u64> {
        if self.words.is_empty() {
            return Some(0);
        }
        if self.words[1..].iter().any(|&w| w != 0) {
            return None;
        }
        Some(self.words[0])
    }

    /// The value as a `u128` if it fits, else `None`.
    pub fn to_u128(&self) -> Option<u128> {
        if self.words.is_empty() {
            return Some(0);
        }
        if self.words.len() > 2 && self.words[2..].iter().any(|&w| w != 0) {
            return None;
        }
        let lo = self.words[0] as u128;
        let hi = self.words.get(1).copied().unwrap_or(0) as u128;
        Some(lo | hi << 64)
    }

    /// Interprets the value as signed two's complement at its width and
    /// returns it as `i128` if it fits.
    pub fn to_i128(&self) -> Option<i128> {
        if self.width == 0 {
            return Some(0);
        }
        if self.width > 128 {
            // Only fits if it is a sign-extension of a 128-bit value.
            let neg = self.bit(self.width - 1);
            let mut copy = self.clone();
            // check bits 127..width-1 all equal sign
            for i in 127..self.width {
                if self.bit(i) != neg {
                    return None;
                }
            }
            copy.words.truncate(2);
            copy.words.resize(2, 0);
            let raw = copy.words[0] as u128 | (copy.words[1] as u128) << 64;
            return Some(raw as i128);
        }
        let raw = self.to_u128().expect("width <= 128 always fits u128");
        let shift = 128 - self.width;
        Some(((raw << shift) as i128) >> shift)
    }

    /// Re-widths the value: truncates or zero-extends to `new_width`.
    pub fn zext_or_trunc(&self, new_width: u32) -> Value {
        let mut v = Value::zero(new_width);
        words::copy(&mut v.words, &self.words);
        words::mask_in_place(&mut v.words, new_width);
        v
    }

    /// Re-widths the value, sign-extending from the current width.
    pub fn sext_or_trunc(&self, new_width: u32) -> Value {
        let mut v = Value::zero(new_width);
        words::sext_copy(&mut v.words, &self.words, self.width, new_width);
        v
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::zero(1)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Value({self})")
    }
}

fn fmt_hex_digits(words: &[u64], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let mut started = false;
    for i in (0..words.len()).rev() {
        if started {
            write!(f, "{:016x}", words[i])?;
        } else if words[i] != 0 || i == 0 {
            write!(f, "{:x}", words[i])?;
            started = true;
        }
    }
    if !started {
        write!(f, "0")?;
    }
    Ok(())
}

impl fmt::Display for Value {
    /// Formats as `<width>'h<hex>`, e.g. `16'habcd`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h", self.width)?;
        fmt_hex_digits(&self.words, f)
    }
}

impl fmt::LowerHex for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_hex_digits(&self.words, f)
    }
}

impl fmt::Binary for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width).rev() {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        if self.width == 0 {
            write!(f, "0")?;
        }
        Ok(())
    }
}

impl FromStr for Value {
    type Err = ParseValueError;

    /// Parses `<width>'h<hex>`, `<width>'b<bin>`, `<width>'d<dec>`, or a
    /// bare decimal number (width inferred as the minimal width).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some((w, rest)) = s.split_once('\'') {
            let width: u32 = w.parse().map_err(|_| ParseValueError {
                msg: format!("bad width {w:?}"),
            })?;
            let (radix, body) = match rest.chars().next() {
                Some('h') => (16, &rest[1..]),
                Some('b') => (2, &rest[1..]),
                Some('o') => (8, &rest[1..]),
                Some('d') => (10, &rest[1..]),
                _ => {
                    return Err(ParseValueError {
                        msg: format!("bad radix prefix in {rest:?}"),
                    })
                }
            };
            Value::from_str_radix(body, radix, width)
        } else {
            let v = Value::from_str_radix(s, 10, 128)?;
            let min_width = words::top_bit(v.words()).map_or(1, |b| b + 1);
            Ok(v.zext_or_trunc(min_width))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_masking() {
        let v = Value::from_u64(0x1ff, 8);
        assert_eq!(v.to_u64(), Some(0xff));
        let v = Value::from_u64(5, 3);
        assert_eq!(v.to_u64(), Some(5));
        let v = Value::zero(0);
        assert_eq!(v.to_u64(), Some(0));
        assert_eq!(v.words().len(), 0);
    }

    #[test]
    fn from_i64_negative() {
        let v = Value::from_i64(-1, 130);
        assert_eq!(v.words().len(), 3);
        assert!(v.bit(129));
        assert!(!v.bit(130));
        assert_eq!(v.to_i128(), Some(-1));
    }

    #[test]
    fn parse_literals() {
        let v: Value = "16'habcd".parse().unwrap();
        assert_eq!(v.to_u64(), Some(0xabcd));
        let v: Value = "4'b1010".parse().unwrap();
        assert_eq!(v.to_u64(), Some(0b1010));
        let v: Value = "8'd200".parse().unwrap();
        assert_eq!(v.to_u64(), Some(200));
        let v: Value = "42".parse().unwrap();
        assert_eq!(v.to_u64(), Some(42));
        assert_eq!(v.width(), 6);
        assert!("8'xzz".parse::<Value>().is_err());
        assert!("8'h".parse::<Value>().is_err());
    }

    #[test]
    fn parse_negative_literal_wraps() {
        let v = Value::from_str_radix("-1", 10, 8).unwrap();
        assert_eq!(v.to_u64(), Some(0xff));
        assert_eq!(v.to_i128(), Some(-1));
    }

    #[test]
    fn parse_wide_hex() {
        let v = Value::from_str_radix("ffffffffffffffffffffffffffffffff", 16, 128).unwrap();
        assert_eq!(v.to_u128(), Some(u128::MAX));
        assert_eq!(format!("{v:x}"), "ffffffffffffffffffffffffffffffff");
    }

    #[test]
    fn display_formats() {
        let v = Value::from_u128(0x1_0000_0000_0000_00ffu128, 72);
        assert_eq!(format!("{v}"), "72'h100000000000000ff");
        let v = Value::zero(8);
        assert_eq!(format!("{v}"), "8'h0");
        let v = Value::from_u64(0b101, 3);
        assert_eq!(format!("{v:b}"), "101");
    }

    #[test]
    fn to_i128_sign_interprets() {
        let v = Value::from_u64(0xff, 8);
        assert_eq!(v.to_i128(), Some(-1));
        let v = Value::from_u64(0x7f, 8);
        assert_eq!(v.to_i128(), Some(127));
        let v = Value::ones(200);
        assert_eq!(v.to_i128(), Some(-1));
    }

    #[test]
    fn widening_ops() {
        let v = Value::from_u64(0x80, 8);
        assert_eq!(v.zext_or_trunc(16).to_u64(), Some(0x80));
        assert_eq!(v.sext_or_trunc(16).to_u64(), Some(0xff80));
        assert_eq!(v.sext_or_trunc(4).to_u64(), Some(0));
        let v = Value::from_u64(0x5, 8);
        assert_eq!(v.sext_or_trunc(16).to_u64(), Some(0x5));
    }

    #[test]
    fn ones_masked() {
        let v = Value::ones(65);
        assert_eq!(v.words(), &[u64::MAX, 1]);
    }
}
