//! Allocation-free arithmetic kernels over little-endian `u64` word slices.
//!
//! These functions are the primitive operations the simulation engine
//! executes. All of them:
//!
//! * treat slices as little-endian (`s[0]` holds bits 0..64),
//! * operate on *canonical* inputs (bits above the logical width are zero)
//!   and produce canonical outputs when given the destination width,
//! * never allocate.
//!
//! Destination and source slices may have different lengths where
//! documented; most binary kernels require equal lengths because the
//! bytecode compiler legalizes operand widths ahead of time.

use std::cmp::Ordering;

/// Masks bits at positions `>= width` in `w` to zero (canonicalizes).
///
/// `width` is interpreted relative to the full slice: `w.len() * 64` bits.
///
/// # Panics
///
/// Panics if `width` exceeds the slice capacity.
#[inline]
pub fn mask_in_place(w: &mut [u64], width: u32) {
    let nbits = (w.len() * 64) as u32;
    assert!(width <= nbits, "width {width} exceeds capacity {nbits}");
    let full = (width / 64) as usize;
    let rem = width % 64;
    if rem != 0 {
        w[full] &= (1u64 << rem) - 1;
        for word in &mut w[full + 1..] {
            *word = 0;
        }
    } else {
        for word in &mut w[full..] {
            *word = 0;
        }
    }
}

/// Returns `true` if every word of `w` is zero.
#[inline]
pub fn is_zero(w: &[u64]) -> bool {
    w.iter().all(|&x| x == 0)
}

/// Reads bit `i` of `w` (bit 0 is the least significant).
///
/// Bits beyond the slice read as zero.
#[inline]
pub fn get_bit(w: &[u64], i: u32) -> bool {
    let word = (i / 64) as usize;
    if word >= w.len() {
        return false;
    }
    (w[word] >> (i % 64)) & 1 == 1
}

/// Sets bit `i` of `w` to `v`.
///
/// # Panics
///
/// Panics if `i` is beyond the slice capacity.
#[inline]
pub fn set_bit(w: &mut [u64], i: u32, v: bool) {
    let word = (i / 64) as usize;
    let mask = 1u64 << (i % 64);
    if v {
        w[word] |= mask;
    } else {
        w[word] &= !mask;
    }
}

/// Copies `src` into `dst`, zero-extending or truncating to `dst.len()`.
#[inline]
pub fn copy(dst: &mut [u64], src: &[u64]) {
    let n = dst.len().min(src.len());
    dst[..n].copy_from_slice(&src[..n]);
    for w in &mut dst[n..] {
        *w = 0;
    }
}

/// Copies `src` (canonical at `src_width` bits) into `dst`,
/// sign-extending from `src_width` and then masking to `dst_width`.
///
/// If `src_width` is zero the result is zero.
pub fn sext_copy(dst: &mut [u64], src: &[u64], src_width: u32, dst_width: u32) {
    copy(dst, src);
    if src_width > 0 && src_width < dst_width && get_bit(src, src_width - 1) {
        // Fill bits [src_width, dst_width) with ones.
        let lo_word = (src_width / 64) as usize;
        let lo_rem = src_width % 64;
        if lo_rem != 0 {
            dst[lo_word] |= !((1u64 << lo_rem) - 1);
        } else if lo_word < dst.len() {
            dst[lo_word] = u64::MAX;
        }
        for w in dst.iter_mut().skip(lo_word + 1) {
            *w = u64::MAX;
        }
    }
    mask_in_place(dst, dst_width);
}

/// `dst = a + b` (wrapping at the slice length). All slices must have
/// equal length. Returns the carry out of the top word.
///
/// # Panics
///
/// Panics if slice lengths differ.
#[inline]
pub fn add(dst: &mut [u64], a: &[u64], b: &[u64]) -> bool {
    assert_eq!(dst.len(), a.len());
    assert_eq!(dst.len(), b.len());
    let mut carry = 0u64;
    for i in 0..dst.len() {
        let (s1, c1) = a[i].overflowing_add(b[i]);
        let (s2, c2) = s1.overflowing_add(carry);
        dst[i] = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    carry != 0
}

/// `dst = a - b` (wrapping at the slice length). All slices must have
/// equal length. Returns `true` if a borrow out occurred (a < b).
///
/// # Panics
///
/// Panics if slice lengths differ.
#[inline]
pub fn sub(dst: &mut [u64], a: &[u64], b: &[u64]) -> bool {
    assert_eq!(dst.len(), a.len());
    assert_eq!(dst.len(), b.len());
    let mut borrow = 0u64;
    for i in 0..dst.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        dst[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    borrow != 0
}

/// `dst = a * b` (wrapping at the slice length), schoolbook.
///
/// `dst` must not alias `a` or `b`. All slices must have equal length.
///
/// # Panics
///
/// Panics if slice lengths differ.
pub fn mul(dst: &mut [u64], a: &[u64], b: &[u64]) {
    assert_eq!(dst.len(), a.len());
    assert_eq!(dst.len(), b.len());
    dst.fill(0);
    let n = dst.len();
    for i in 0..n {
        if a[i] == 0 {
            continue;
        }
        let mut carry = 0u128;
        for j in 0..n - i {
            let t = a[i] as u128 * b[j] as u128 + dst[i + j] as u128 + carry;
            dst[i + j] = t as u64;
            carry = t >> 64;
        }
    }
}

/// Unsigned comparison of equal-length canonical slices.
#[inline]
pub fn ucmp(a: &[u64], b: &[u64]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// Signed comparison of equal-length slices that are sign-extended to the
/// full slice capacity (i.e. the top bit of the top word is the sign).
#[inline]
pub fn scmp_extended(a: &[u64], b: &[u64]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return Ordering::Equal;
    }
    let top = a.len() - 1;
    let sa = (a[top] as i64) < 0;
    let sb = (b[top] as i64) < 0;
    match (sa, sb) {
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        _ => ucmp(a, b),
    }
}

/// `dst = a << sh` (in-slice, bits shifted past the top are lost).
///
/// `dst` and `a` must have equal length; `dst` may alias `a` only when the
/// caller guarantees `dst == a` is the same slice (in-place shift is
/// supported via copy semantics below — we iterate from the top).
pub fn shl(dst: &mut [u64], a: &[u64], sh: u32) {
    assert_eq!(dst.len(), a.len());
    let n = dst.len();
    let word_sh = (sh / 64) as usize;
    let bit_sh = sh % 64;
    if word_sh >= n {
        dst.fill(0);
        return;
    }
    if bit_sh == 0 {
        for i in (word_sh..n).rev() {
            dst[i] = a[i - word_sh];
        }
    } else {
        for i in (word_sh..n).rev() {
            let hi = a[i - word_sh] << bit_sh;
            let lo = if i - word_sh > 0 {
                a[i - word_sh - 1] >> (64 - bit_sh)
            } else {
                0
            };
            dst[i] = hi | lo;
        }
    }
    for w in &mut dst[..word_sh] {
        *w = 0;
    }
}

/// `dst = a >> sh` (logical). `dst` and `a` must have equal length.
pub fn lshr(dst: &mut [u64], a: &[u64], sh: u32) {
    assert_eq!(dst.len(), a.len());
    let n = dst.len();
    let word_sh = (sh / 64) as usize;
    let bit_sh = sh % 64;
    if word_sh >= n {
        dst.fill(0);
        return;
    }
    if bit_sh == 0 {
        dst[..n - word_sh].copy_from_slice(&a[word_sh..]);
    } else {
        for i in 0..n - word_sh {
            let lo = a[i + word_sh] >> bit_sh;
            let hi = if i + word_sh + 1 < n {
                a[i + word_sh + 1] << (64 - bit_sh)
            } else {
                0
            };
            dst[i] = lo | hi;
        }
    }
    for w in &mut dst[n - word_sh..] {
        *w = 0;
    }
}

/// Arithmetic shift right of `a`, canonical at `width` bits, producing a
/// canonical result at `width` bits in `dst`.
///
/// The sign bit is bit `width - 1` of `a`.
pub fn ashr(dst: &mut [u64], a: &[u64], sh: u32, width: u32) {
    if width == 0 {
        dst.fill(0);
        return;
    }
    let neg = get_bit(a, width - 1);
    let sh = sh.min(width);
    lshr(dst, a, sh);
    if neg {
        // Fill bits [width - sh, width) with ones.
        for i in width - sh..width {
            set_bit(dst, i, true);
        }
    }
}

/// Extracts bits `[lo, lo + dst_width)` of `a` into `dst` (canonical).
///
/// `dst_width` is `hi - lo + 1` for a FIRRTL `bits(a, hi, lo)`.
pub fn extract(dst: &mut [u64], a: &[u64], lo: u32, dst_width: u32) {
    let word_sh = (lo / 64) as usize;
    let bit_sh = lo % 64;
    for (i, d) in dst.iter_mut().enumerate() {
        let src_i = i + word_sh;
        let lo_part = if src_i < a.len() {
            a[src_i] >> bit_sh
        } else {
            0
        };
        let hi_part = if bit_sh != 0 && src_i + 1 < a.len() {
            a[src_i + 1] << (64 - bit_sh)
        } else {
            0
        };
        *d = lo_part | hi_part;
    }
    mask_in_place(dst, dst_width);
}

/// Concatenation: `dst = hi_val ## lo_val` where `lo_val` occupies
/// `lo_width` bits. `dst` must be long enough for the combined value.
pub fn cat(dst: &mut [u64], hi_val: &[u64], lo_val: &[u64], lo_width: u32) {
    copy(dst, lo_val);
    // OR the high part shifted left by lo_width.
    let word_sh = (lo_width / 64) as usize;
    let bit_sh = lo_width % 64;
    for (i, &h) in hi_val.iter().enumerate() {
        if h == 0 {
            continue;
        }
        let di = i + word_sh;
        if di < dst.len() {
            dst[di] |= h << bit_sh;
        }
        if bit_sh != 0 && di + 1 < dst.len() {
            dst[di + 1] |= h >> (64 - bit_sh);
        }
    }
}

/// Bitwise NOT of `a` into `dst`, canonical at `width`.
#[inline]
pub fn not(dst: &mut [u64], a: &[u64], width: u32) {
    assert_eq!(dst.len(), a.len());
    for i in 0..dst.len() {
        dst[i] = !a[i];
    }
    mask_in_place(dst, width);
}

/// Bitwise AND. Equal lengths required.
#[inline]
pub fn and(dst: &mut [u64], a: &[u64], b: &[u64]) {
    for i in 0..dst.len() {
        dst[i] = a[i] & b[i];
    }
}

/// Bitwise OR. Equal lengths required.
#[inline]
pub fn or(dst: &mut [u64], a: &[u64], b: &[u64]) {
    for i in 0..dst.len() {
        dst[i] = a[i] | b[i];
    }
}

/// Bitwise XOR. Equal lengths required.
#[inline]
pub fn xor(dst: &mut [u64], a: &[u64], b: &[u64]) {
    for i in 0..dst.len() {
        dst[i] = a[i] ^ b[i];
    }
}

/// AND-reduction of `a`, canonical at `width`: 1 iff all `width` bits set.
#[inline]
pub fn andr(a: &[u64], width: u32) -> bool {
    if width == 0 {
        return true; // andr of empty set is 1 by FIRRTL convention
    }
    let full = (width / 64) as usize;
    let rem = width % 64;
    for &w in &a[..full] {
        if w != u64::MAX {
            return false;
        }
    }
    if rem != 0 {
        let mask = (1u64 << rem) - 1;
        if a[full] & mask != mask {
            return false;
        }
    }
    true
}

/// OR-reduction: 1 iff any bit set.
#[inline]
pub fn orr(a: &[u64]) -> bool {
    !is_zero(a)
}

/// XOR-reduction: parity of set bits.
#[inline]
pub fn xorr(a: &[u64]) -> bool {
    let mut acc = 0u64;
    for &w in a {
        acc ^= w;
    }
    acc.count_ones() % 2 == 1
}

/// Counts set bits.
#[inline]
pub fn popcount(a: &[u64]) -> u32 {
    a.iter().map(|w| w.count_ones()).sum()
}

/// Unsigned long division: computes `q = a / b`, `r = a % b`.
///
/// All four slices must have equal length. Division by zero yields
/// `q = 0, r = a` (documented simulator semantics for an operation FIRRTL
/// leaves undefined). `q`/`r` must not alias `a`/`b`.
///
/// # Panics
///
/// Panics if slice lengths differ.
pub fn udivrem(q: &mut [u64], r: &mut [u64], a: &[u64], b: &[u64]) {
    assert_eq!(q.len(), a.len());
    assert_eq!(r.len(), a.len());
    assert_eq!(b.len(), a.len());
    q.fill(0);
    if is_zero(b) {
        copy(r, a);
        return;
    }
    // Fast path: single-word operands.
    if a.len() == 1 {
        q[0] = a[0] / b[0];
        r[0] = a[0] % b[0];
        return;
    }
    // Fast path: both values fit in 128 bits.
    if a.len() == 2 || (a[2..].iter().all(|&w| w == 0) && b[2..].iter().all(|&w| w == 0)) {
        let av = a[0] as u128 | (a.get(1).copied().unwrap_or(0) as u128) << 64;
        let bv = b[0] as u128 | (b.get(1).copied().unwrap_or(0) as u128) << 64;
        let qv = av / bv;
        let rv = av % bv;
        q[0] = qv as u64;
        if q.len() > 1 {
            q[1] = (qv >> 64) as u64;
        }
        r.fill(0);
        r[0] = rv as u64;
        if r.len() > 1 {
            r[1] = (rv >> 64) as u64;
        }
        return;
    }
    // General case: restoring bit-serial division, MSB first.
    r.fill(0);
    let nbits = (a.len() * 64) as u32;
    let top = top_bit(a).unwrap_or(0);
    let start = top.min(nbits - 1);
    // scratch-free: r = (r << 1) | bit, compare/subtract b.
    for i in (0..=start).rev() {
        // r <<= 1 in place (from the top down).
        let mut carry_in = if get_bit(a, i) { 1u64 } else { 0 };
        for w in r.iter_mut() {
            let carry_out = *w >> 63;
            *w = (*w << 1) | carry_in;
            carry_in = carry_out;
        }
        if ucmp(r, b) != Ordering::Less {
            // r -= b, in place. Safe: separate slices.
            let mut borrow = 0u64;
            for j in 0..r.len() {
                let (d1, b1) = r[j].overflowing_sub(b[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                r[j] = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
            set_bit(q, i, true);
        }
    }
}

/// Index of the highest set bit, or `None` if the value is zero.
#[inline]
pub fn top_bit(a: &[u64]) -> Option<u32> {
    for i in (0..a.len()).rev() {
        if a[i] != 0 {
            return Some(i as u32 * 64 + 63 - a[i].leading_zeros());
        }
    }
    None
}

/// Two's complement negation of `a` into `dst` (wrapping at slice length).
///
/// `dst` may alias `a`.
#[inline]
pub fn neg(dst: &mut [u64], a: &[u64]) {
    let mut carry = 1u64;
    for i in 0..dst.len() {
        let (v, c) = (!a[i]).overflowing_add(carry);
        dst[i] = v;
        carry = c as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_clears_top_bits() {
        let mut w = [u64::MAX, u64::MAX];
        mask_in_place(&mut w, 70);
        assert_eq!(w, [u64::MAX, 0x3f]);
        let mut w = [u64::MAX];
        mask_in_place(&mut w, 64);
        assert_eq!(w, [u64::MAX]);
        let mut w = [u64::MAX];
        mask_in_place(&mut w, 0);
        assert_eq!(w, [0]);
    }

    #[test]
    fn add_with_carry_across_words() {
        let a = [u64::MAX, 0];
        let b = [1, 0];
        let mut d = [0u64; 2];
        let c = add(&mut d, &a, &b);
        assert_eq!(d, [0, 1]);
        assert!(!c);
    }

    #[test]
    fn add_reports_carry_out() {
        let a = [u64::MAX, u64::MAX];
        let b = [1, 0];
        let mut d = [0u64; 2];
        assert!(add(&mut d, &a, &b));
        assert_eq!(d, [0, 0]);
    }

    #[test]
    fn sub_reports_borrow() {
        let a = [0u64, 0];
        let b = [1, 0];
        let mut d = [0u64; 2];
        assert!(sub(&mut d, &a, &b));
        assert_eq!(d, [u64::MAX, u64::MAX]);
    }

    #[test]
    fn mul_schoolbook_matches_u128() {
        let a = [0xdead_beef_1234_5678u64, 0];
        let b = [0x1_0000_0001u64, 0];
        let mut d = [0u64; 2];
        mul(&mut d, &a, &b);
        let expect = 0xdead_beef_1234_5678u128 * 0x1_0000_0001u128;
        assert_eq!(d[0], expect as u64);
        assert_eq!(d[1], (expect >> 64) as u64);
    }

    #[test]
    fn shl_across_words() {
        let a = [0x8000_0000_0000_0001u64, 0];
        let mut d = [0u64; 2];
        shl(&mut d, &a, 1);
        assert_eq!(d, [2, 1]);
        shl(&mut d, &a, 64);
        assert_eq!(d, [0, 0x8000_0000_0000_0001]);
        shl(&mut d, &a, 128);
        assert_eq!(d, [0, 0]);
    }

    #[test]
    fn lshr_across_words() {
        let a = [0x1u64, 0x8000_0000_0000_0000];
        let mut d = [0u64; 2];
        lshr(&mut d, &a, 63);
        assert_eq!(d, [0, 1]);
        lshr(&mut d, &a, 127);
        assert_eq!(d, [1, 0]);
        lshr(&mut d, &a, 128);
        assert_eq!(d, [0, 0]);
    }

    #[test]
    fn ashr_sign_fills() {
        // 8-bit value 0b1000_0000 = -128
        let a = [0x80u64];
        let mut d = [0u64];
        ashr(&mut d, &a, 3, 8);
        assert_eq!(d[0], 0b1111_0000);
        // shift by >= width saturates to all-ones for negative
        ashr(&mut d, &a, 100, 8);
        assert_eq!(d[0], 0xff);
        // positive value
        let a = [0x40u64];
        ashr(&mut d, &a, 3, 8);
        assert_eq!(d[0], 0x08);
    }

    #[test]
    fn extract_spanning_words() {
        let a = [0xffff_0000_0000_0000u64, 0x0000_0000_0000_ffff];
        let mut d = [0u64];
        extract(&mut d, &a, 48, 32);
        assert_eq!(d[0], 0xffff_ffff);
        let mut d = [0u64];
        extract(&mut d, &a, 60, 8);
        assert_eq!(d[0], 0xff);
    }

    #[test]
    fn cat_unaligned() {
        let hi = [0xabu64];
        let lo = [0x5u64];
        let mut d = [0u64];
        cat(&mut d, &hi, &lo, 3);
        assert_eq!(d[0], (0xab << 3) | 0x5);
    }

    #[test]
    fn cat_across_word_boundary() {
        let hi = [u64::MAX];
        let lo = [0u64, 0];
        let mut d = [0u64; 2];
        cat(&mut d, &hi, &lo[..1], 32);
        assert_eq!(d, [0xffff_ffff_0000_0000, 0xffff_ffff]);
    }

    #[test]
    fn reductions() {
        assert!(andr(&[u64::MAX], 64));
        assert!(andr(&[0x7f], 7));
        assert!(!andr(&[0x7f], 8));
        assert!(orr(&[0, 1]));
        assert!(!orr(&[0, 0]));
        assert!(xorr(&[0b100]));
        assert!(!xorr(&[0b101]));
        assert!(xorr(&[0b110, 0b1]));
    }

    #[test]
    fn udivrem_single_word() {
        let a = [100u64];
        let b = [7u64];
        let (mut q, mut r) = ([0u64], [0u64]);
        udivrem(&mut q, &mut r, &a, &b);
        assert_eq!((q[0], r[0]), (14, 2));
    }

    #[test]
    fn udivrem_by_zero_defined() {
        let a = [100u64, 5];
        let b = [0u64, 0];
        let (mut q, mut r) = ([1u64, 1], [0u64, 0]);
        udivrem(&mut q, &mut r, &a, &b);
        assert_eq!(q, [0, 0]);
        assert_eq!(r, a);
    }

    #[test]
    fn udivrem_multiword() {
        // (2^128 + 5) / 3 computed over 3 words
        let a = [5u64, 0, 1];
        let b = [3u64, 0, 0];
        let (mut q, mut r) = ([0u64; 3], [0u64; 3]);
        udivrem(&mut q, &mut r, &a, &b);
        // 2^128 = 3 * q0 + rem; 2^128 mod 3 = 1, so (2^128+5) mod 3 = 0
        assert_eq!(r, [0, 0, 0]);
        // verify q * 3 == a
        let mut check = [0u64; 3];
        mul(&mut check, &q, &b);
        assert_eq!(check, a);
    }

    #[test]
    fn sext_copy_extends_negative() {
        // 4-bit value 0b1010 (-6) extended to 8 bits = 0b1111_1010
        let src = [0b1010u64];
        let mut d = [0u64];
        sext_copy(&mut d, &src, 4, 8);
        assert_eq!(d[0], 0b1111_1010);
        // positive stays
        let src = [0b0010u64];
        sext_copy(&mut d, &src, 4, 8);
        assert_eq!(d[0], 0b0000_0010);
    }

    #[test]
    fn sext_copy_across_words() {
        let src = [0x8000_0000_0000_0000u64, 0];
        let mut d = [0u64; 2];
        sext_copy(&mut d, &src[..1], 64, 128);
        assert_eq!(d, [0x8000_0000_0000_0000, u64::MAX]);
    }

    #[test]
    fn neg_wraps() {
        let a = [1u64, 0];
        let mut d = [0u64; 2];
        neg(&mut d, &a);
        assert_eq!(d, [u64::MAX, u64::MAX]);
        let a = [0u64, 0];
        neg(&mut d, &a);
        assert_eq!(d, [0, 0]);
    }

    #[test]
    fn cmp_orderings() {
        assert_eq!(ucmp(&[1, 2], &[5, 1]), Ordering::Greater);
        assert_eq!(ucmp(&[5, 1], &[1, 2]), Ordering::Less);
        assert_eq!(ucmp(&[7, 7], &[7, 7]), Ordering::Equal);
        // -1 < 1 when sign-extended
        assert_eq!(scmp_extended(&[u64::MAX], &[1]), Ordering::Less);
        assert_eq!(scmp_extended(&[1], &[u64::MAX]), Ordering::Greater);
    }

    #[test]
    fn top_bit_positions() {
        assert_eq!(top_bit(&[0, 0]), None);
        assert_eq!(top_bit(&[1, 0]), Some(0));
        assert_eq!(top_bit(&[0, 1]), Some(64));
        assert_eq!(top_bit(&[0, 0x8000_0000_0000_0000]), Some(127));
    }

    #[test]
    fn popcount_counts() {
        assert_eq!(popcount(&[0b1011, 0b1]), 4);
    }
}
