//! Arbitrary-width two's-complement arithmetic for RTL simulation.
//!
//! RTL signals have arbitrary bit widths (1 to tens of thousands of bits).
//! This crate provides the numeric substrate used by every other `gsim`
//! crate:
//!
//! * [`words`] — allocation-free kernels over little-endian `u64` word
//!   slices. These are the operations the simulation engine's inner loop
//!   executes, so they avoid heap traffic entirely.
//! * [`Value`] — an owned, width-tagged bit vector used for constants,
//!   constant folding, test oracles, and anywhere convenience beats raw
//!   speed.
//! * [`ops`] — FIRRTL-semantics operations (`add`, `mul`, `bits`, `cat`,
//!   ...) over [`Value`]s, producing results at the widths mandated by the
//!   FIRRTL specification. The optimization passes use these for constant
//!   folding, and the property tests use them as the reference model for
//!   the bytecode interpreter.
//!
//! # Representation
//!
//! A value of width `w` occupies `ceil(w / 64)` words, least-significant
//! word first. The *canonical form* invariant: all bits at positions
//! `>= w` are zero, even for signed values. Signed interpretation happens
//! at the point of use (operations take a `signed` flag and sign-extend
//! internally). Keeping values zero-masked makes change detection — the
//! heart of essential-signal simulation — a plain word comparison.
//!
//! # Example
//!
//! ```
//! use gsim_value::{Value, ops};
//!
//! let a = Value::from_u64(250, 8);
//! let b = Value::from_u64(10, 8);
//! // FIRRTL add yields max(wa, wb) + 1 bits, so no overflow is lost.
//! let sum = ops::add(&a, &b, false);
//! assert_eq!(sum.width(), 9);
//! assert_eq!(sum.to_u64(), Some(260));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ops;
mod value;
pub mod words;

pub use value::{ParseValueError, Value};

/// Maximum supported signal width in bits.
///
/// FIRRTL places no bound on widths, but `dshl` width rules can produce
/// absurd widths from malformed input; real designs (including XiangShan's
/// 512-bit cache lines) stay far below this.
pub const MAX_WIDTH: u32 = 1 << 16;

/// Number of 64-bit words needed to store `width` bits.
///
/// Width 0 (a legal FIRRTL width for zero-width wires) occupies zero
/// words; such values are always zero.
#[inline]
pub const fn words_for(width: u32) -> usize {
    width.div_ceil(64) as usize
}
