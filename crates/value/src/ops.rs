//! FIRRTL-semantics operations over [`Value`]s.
//!
//! Each function implements one FIRRTL primitive operation, producing a
//! result at the width the FIRRTL specification mandates (e.g. `add`
//! widens by one bit so overflow is never lost). The `signed` flag states
//! whether the *operands* are `SInt`; FIRRTL requires both operands of a
//! binary primitive to have the same type.
//!
//! These functions are the semantic reference for the whole simulator:
//! the optimization passes fold constants with them and the property
//! tests check the bytecode interpreter against them.
//!
//! Division or remainder by zero is left undefined by FIRRTL; this
//! implementation defines `x / 0 = 0` and `x % 0 = x` (truncated to the
//! result width) so simulation is deterministic.

use crate::{words, words_for, Value, MAX_WIDTH};
use std::cmp::Ordering;

/// Result width of FIRRTL `add`/`sub`: `max(wa, wb) + 1`.
pub fn add_width(wa: u32, wb: u32) -> u32 {
    wa.max(wb) + 1
}

/// Result width of FIRRTL `mul`: `wa + wb`.
pub fn mul_width(wa: u32, wb: u32) -> u32 {
    wa + wb
}

/// Result width of FIRRTL `div`: `wa + 1` for signed, `wa` for unsigned.
pub fn div_width(wa: u32, signed: bool) -> u32 {
    wa + signed as u32
}

/// Result width of FIRRTL `rem`: `min(wa, wb)`.
pub fn rem_width(wa: u32, wb: u32) -> u32 {
    wa.min(wb)
}

/// Result width of FIRRTL `shr`: `max(wa - n, 1)`.
pub fn shr_width(wa: u32, n: u32) -> u32 {
    wa.saturating_sub(n).max(1)
}

/// Result width of FIRRTL `dshl`: `wa + 2^wb - 1`.
///
/// # Panics
///
/// Panics if the result would exceed [`MAX_WIDTH`]; the graph layer
/// validates widths before folding ever runs.
pub fn dshl_width(wa: u32, wb: u32) -> u32 {
    assert!(wb < 32, "dshl shift-amount width {wb} too large");
    let w = wa as u64 + (1u64 << wb) - 1;
    assert!(
        w <= MAX_WIDTH as u64,
        "dshl result width {w} exceeds MAX_WIDTH"
    );
    w as u32
}

fn extended(v: &Value, signed: bool, width: u32) -> Value {
    if signed {
        v.sext_or_trunc(width)
    } else {
        v.zext_or_trunc(width)
    }
}

fn bool_value(b: bool) -> Value {
    Value::from_u64(b as u64, 1)
}

/// FIRRTL `add`: exact sum at `max(wa, wb) + 1` bits.
pub fn add(a: &Value, b: &Value, signed: bool) -> Value {
    let w = add_width(a.width(), b.width());
    let ea = extended(a, signed, w);
    let eb = extended(b, signed, w);
    let mut ws = vec![0u64; words_for(w)];
    words::add(&mut ws, ea.words(), eb.words());
    Value::from_words(ws, w)
}

/// FIRRTL `sub`: exact difference at `max(wa, wb) + 1` bits
/// (two's complement; an unsigned underflow wraps at that width).
pub fn sub(a: &Value, b: &Value, signed: bool) -> Value {
    let w = add_width(a.width(), b.width());
    let ea = extended(a, signed, w);
    let eb = extended(b, signed, w);
    let mut ws = vec![0u64; words_for(w)];
    words::sub(&mut ws, ea.words(), eb.words());
    Value::from_words(ws, w)
}

/// FIRRTL `mul`: exact product at `wa + wb` bits.
pub fn mul(a: &Value, b: &Value, signed: bool) -> Value {
    let w = mul_width(a.width(), b.width());
    if w == 0 {
        return Value::zero(0);
    }
    let ea = extended(a, signed, w);
    let eb = extended(b, signed, w);
    let mut ws = vec![0u64; words_for(w)];
    words::mul(&mut ws, ea.words(), eb.words());
    Value::from_words(ws, w)
}

/// Magnitude of a signed canonical value (two's complement at its width).
fn magnitude(v: &Value) -> (bool, Value) {
    let w = v.width();
    if w == 0 || !v.bit(w - 1) {
        return (false, v.clone());
    }
    let mut ws = vec![0u64; v.words().len()];
    words::neg(&mut ws, v.words());
    (true, Value::from_words(ws, w))
}

/// FIRRTL `div` (truncating toward zero for signed operands).
pub fn div(a: &Value, b: &Value, signed: bool) -> Value {
    let w = div_width(a.width(), signed);
    let n = words_for(a.width().max(b.width())).max(1);
    let (neg_a, ma) = if signed {
        magnitude(a)
    } else {
        (false, a.clone())
    };
    let (neg_b, mb) = if signed {
        magnitude(b)
    } else {
        (false, b.clone())
    };
    let mut aw = ma.words().to_vec();
    aw.resize(n, 0);
    let mut bw = mb.words().to_vec();
    bw.resize(n, 0);
    let mut q = vec![0u64; n];
    let mut r = vec![0u64; n];
    words::udivrem(&mut q, &mut r, &aw, &bw);
    let quotient = Value::from_words(q, w.min(n as u32 * 64)).zext_or_trunc(w);
    if signed && (neg_a ^ neg_b) && !b.is_zero() {
        let mut ws = vec![0u64; quotient.words().len()];
        words::neg(&mut ws, quotient.words());
        Value::from_words(ws, w)
    } else {
        quotient
    }
}

/// FIRRTL `rem` (remainder takes the sign of the dividend).
pub fn rem(a: &Value, b: &Value, signed: bool) -> Value {
    let w = rem_width(a.width(), b.width());
    let n = words_for(a.width().max(b.width())).max(1);
    let (neg_a, ma) = if signed {
        magnitude(a)
    } else {
        (false, a.clone())
    };
    let (_, mb) = if signed {
        magnitude(b)
    } else {
        (false, b.clone())
    };
    let mut aw = ma.words().to_vec();
    aw.resize(n, 0);
    let mut bw = mb.words().to_vec();
    bw.resize(n, 0);
    let mut q = vec![0u64; n];
    let mut r = vec![0u64; n];
    words::udivrem(&mut q, &mut r, &aw, &bw);
    let remainder = Value::from_words(r, n as u32 * 64);
    if signed && neg_a && !remainder.is_zero() {
        let mut ws = vec![0u64; remainder.words().len()];
        words::neg(&mut ws, remainder.words());
        Value::from_words(ws, remainder.width()).zext_or_trunc(w)
    } else {
        remainder.zext_or_trunc(w)
    }
}

fn compare(a: &Value, b: &Value, signed: bool) -> Ordering {
    let w = a.width().max(b.width()).max(1);
    // Extend to full words so the top bit of the top word is the sign.
    let full = words_for(w) as u32 * 64;
    let ea = extended(a, signed, w).sext_if(signed, w, full);
    let eb = extended(b, signed, w).sext_if(signed, w, full);
    if signed {
        words::scmp_extended(ea.words(), eb.words())
    } else {
        words::ucmp(ea.words(), eb.words())
    }
}

impl Value {
    /// Internal helper: sign-extend from `from` to `to` when `signed`,
    /// else zero-extend.
    fn sext_if(&self, signed: bool, from: u32, to: u32) -> Value {
        let _ = from;
        if signed {
            self.sext_or_trunc(to)
        } else {
            self.zext_or_trunc(to)
        }
    }
}

/// FIRRTL `lt`.
pub fn lt(a: &Value, b: &Value, signed: bool) -> Value {
    bool_value(compare(a, b, signed) == Ordering::Less)
}

/// FIRRTL `leq`.
pub fn leq(a: &Value, b: &Value, signed: bool) -> Value {
    bool_value(compare(a, b, signed) != Ordering::Greater)
}

/// FIRRTL `gt`.
pub fn gt(a: &Value, b: &Value, signed: bool) -> Value {
    bool_value(compare(a, b, signed) == Ordering::Greater)
}

/// FIRRTL `geq`.
pub fn geq(a: &Value, b: &Value, signed: bool) -> Value {
    bool_value(compare(a, b, signed) != Ordering::Less)
}

/// FIRRTL `eq`.
pub fn eq(a: &Value, b: &Value, signed: bool) -> Value {
    bool_value(compare(a, b, signed) == Ordering::Equal)
}

/// FIRRTL `neq`.
pub fn neq(a: &Value, b: &Value, signed: bool) -> Value {
    bool_value(compare(a, b, signed) != Ordering::Equal)
}

/// FIRRTL `pad`: widen to `max(wa, n)`, sign-extending for `SInt`.
pub fn pad(a: &Value, n: u32, signed: bool) -> Value {
    let w = a.width().max(n);
    extended(a, signed, w)
}

/// FIRRTL `shl` by a constant: width `wa + n`.
pub fn shl(a: &Value, n: u32) -> Value {
    let w = a.width() + n;
    let wide = a.zext_or_trunc(w);
    let mut ws = vec![0u64; wide.words().len()];
    words::shl(&mut ws, wide.words(), n);
    Value::from_words(ws, w)
}

/// FIRRTL `shr` by a constant: width `max(wa - n, 1)`; arithmetic for
/// `SInt` operands.
pub fn shr(a: &Value, n: u32, signed: bool) -> Value {
    let w = shr_width(a.width(), n);
    if n >= a.width() {
        // All bits shifted out: 0 for UInt, sign for SInt.
        return if signed && a.width() > 0 && a.bit(a.width() - 1) {
            Value::ones(w)
        } else {
            Value::zero(w)
        };
    }
    let mut ws = vec![0u64; a.words().len()];
    if signed {
        words::ashr(&mut ws, a.words(), n, a.width());
    } else {
        words::lshr(&mut ws, a.words(), n);
    }
    Value::from_words(ws, w)
}

/// FIRRTL `dshl`: dynamic left shift, width `wa + 2^wb - 1`.
pub fn dshl(a: &Value, b: &Value) -> Value {
    let w = dshl_width(a.width(), b.width());
    let sh = b.to_u64().unwrap_or(u64::MAX).min(w as u64) as u32;
    let wide = a.zext_or_trunc(w);
    let mut ws = vec![0u64; wide.words().len()];
    words::shl(&mut ws, wide.words(), sh);
    Value::from_words(ws, w)
}

/// FIRRTL `dshr`: dynamic right shift at width `wa`; arithmetic for `SInt`.
pub fn dshr(a: &Value, b: &Value, signed: bool) -> Value {
    let w = a.width();
    let sh = b.to_u64().unwrap_or(u64::MAX).min(w as u64 + 1) as u32;
    if sh >= w {
        return if signed && w > 0 && a.bit(w - 1) {
            Value::ones(w)
        } else {
            Value::zero(w)
        };
    }
    let mut ws = vec![0u64; a.words().len()];
    if signed {
        words::ashr(&mut ws, a.words(), sh, w);
    } else {
        words::lshr(&mut ws, a.words(), sh);
    }
    Value::from_words(ws, w)
}

/// FIRRTL `cvt`: reinterpret as signed, widening unsigned values by one.
pub fn cvt(a: &Value, signed: bool) -> Value {
    if signed {
        a.clone()
    } else {
        a.zext_or_trunc(a.width() + 1)
    }
}

/// FIRRTL `neg`: arithmetic negation at `wa + 1` bits (signed result).
pub fn neg(a: &Value, signed: bool) -> Value {
    let w = a.width() + 1;
    let ea = extended(a, signed, w);
    let mut ws = vec![0u64; ea.words().len()];
    words::neg(&mut ws, ea.words());
    Value::from_words(ws, w)
}

/// FIRRTL `not`: bitwise complement at width `wa` (UInt result).
pub fn not(a: &Value) -> Value {
    let mut ws = vec![0u64; a.words().len()];
    words::not(&mut ws, a.words(), a.width());
    Value::from_words(ws, a.width())
}

/// FIRRTL `and` at width `max(wa, wb)`; `SInt` operands sign-extend.
pub fn and(a: &Value, b: &Value, signed: bool) -> Value {
    let w = a.width().max(b.width());
    let ea = extended(a, signed, w);
    let eb = extended(b, signed, w);
    let mut ws = vec![0u64; ea.words().len()];
    words::and(&mut ws, ea.words(), eb.words());
    Value::from_words(ws, w)
}

/// FIRRTL `or` at width `max(wa, wb)`; `SInt` operands sign-extend.
pub fn or(a: &Value, b: &Value, signed: bool) -> Value {
    let w = a.width().max(b.width());
    let ea = extended(a, signed, w);
    let eb = extended(b, signed, w);
    let mut ws = vec![0u64; ea.words().len()];
    words::or(&mut ws, ea.words(), eb.words());
    Value::from_words(ws, w)
}

/// FIRRTL `xor` at width `max(wa, wb)`; `SInt` operands sign-extend.
pub fn xor(a: &Value, b: &Value, signed: bool) -> Value {
    let w = a.width().max(b.width());
    let ea = extended(a, signed, w);
    let eb = extended(b, signed, w);
    let mut ws = vec![0u64; ea.words().len()];
    words::xor(&mut ws, ea.words(), eb.words());
    Value::from_words(ws, w)
}

/// FIRRTL `andr` (AND-reduce to one bit).
pub fn andr(a: &Value) -> Value {
    bool_value(words::andr(a.words(), a.width()))
}

/// FIRRTL `orr` (OR-reduce to one bit).
pub fn orr(a: &Value) -> Value {
    bool_value(words::orr(a.words()))
}

/// FIRRTL `xorr` (XOR-reduce to one bit).
pub fn xorr(a: &Value) -> Value {
    bool_value(words::xorr(a.words()))
}

/// FIRRTL `cat`: `a` in the high bits, `b` in the low bits.
pub fn cat(a: &Value, b: &Value) -> Value {
    let w = a.width() + b.width();
    let mut ws = vec![0u64; words_for(w)];
    words::cat(&mut ws, a.words(), b.words(), b.width());
    Value::from_words(ws, w)
}

/// FIRRTL `bits(a, hi, lo)`: extract an inclusive bit range.
///
/// # Panics
///
/// Panics if `hi < lo` or `hi >= wa` (the graph layer validates this).
pub fn bits(a: &Value, hi: u32, lo: u32) -> Value {
    assert!(hi >= lo, "bits: hi {hi} < lo {lo}");
    assert!(
        hi < a.width().max(1),
        "bits: hi {hi} out of range for width {}",
        a.width()
    );
    let w = hi - lo + 1;
    let mut ws = vec![0u64; words_for(w)];
    words::extract(&mut ws, a.words(), lo, w);
    Value::from_words(ws, w)
}

/// FIRRTL `head(a, n)`: the `n` most-significant bits.
pub fn head(a: &Value, n: u32) -> Value {
    assert!(
        n <= a.width() && n > 0,
        "head: bad n {n} for width {}",
        a.width()
    );
    bits(a, a.width() - 1, a.width() - n)
}

/// FIRRTL `tail(a, n)`: drop the `n` most-significant bits.
pub fn tail(a: &Value, n: u32) -> Value {
    assert!(n < a.width(), "tail: bad n {n} for width {}", a.width());
    if a.width() - n == 0 {
        return Value::zero(0);
    }
    bits(a, a.width() - n - 1, 0)
}

/// FIRRTL `mux(sel, t, f)` at width `max(wt, wf)`; narrower operand is
/// extended per signedness.
pub fn mux(sel: &Value, t: &Value, f: &Value, signed: bool) -> Value {
    let w = t.width().max(f.width());
    if sel.is_zero() {
        extended(f, signed, w)
    } else {
        extended(t, signed, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64, w: u32) -> Value {
        Value::from_u64(x, w)
    }

    fn sv(x: i64, w: u32) -> Value {
        Value::from_i64(x, w)
    }

    #[test]
    fn add_widens() {
        let r = add(&v(255, 8), &v(1, 8), false);
        assert_eq!((r.width(), r.to_u64()), (9, Some(256)));
    }

    #[test]
    fn add_signed_extends() {
        // -1 (4 bits) + 1 (8 bits) = 0 at 9 bits
        let r = add(&sv(-1, 4), &sv(1, 8), true);
        assert_eq!((r.width(), r.to_i128()), (9, Some(0)));
        let r = add(&sv(-3, 4), &sv(-5, 4), true);
        assert_eq!(r.to_i128(), Some(-8));
    }

    #[test]
    fn sub_unsigned_wraps_at_result_width() {
        let r = sub(&v(0, 8), &v(1, 8), false);
        assert_eq!((r.width(), r.to_u64()), (9, Some(0x1ff)));
        assert_eq!(r.to_i128(), Some(-1));
    }

    #[test]
    fn mul_exact() {
        let r = mul(&v(200, 8), &v(200, 8), false);
        assert_eq!((r.width(), r.to_u64()), (16, Some(40000)));
        let r = mul(&sv(-3, 8), &sv(5, 8), true);
        assert_eq!(r.to_i128(), Some(-15));
        assert_eq!(r.width(), 16);
    }

    #[test]
    fn mul_wide() {
        let a = Value::ones(100);
        let r = mul(&a, &a, false);
        assert_eq!(r.width(), 200);
        // (2^100 - 1)^2 = 2^200 - 2^101 + 1
        let expect = sub(
            &add(&shl(&v(1, 1), 200), &v(1, 1), false).zext_or_trunc(201),
            &shl(&v(1, 1), 101).zext_or_trunc(201),
            false,
        );
        assert_eq!(
            r.zext_or_trunc(201).words(),
            expect.zext_or_trunc(201).words()
        );
    }

    #[test]
    fn div_semantics() {
        assert_eq!(div(&v(100, 8), &v(7, 8), false).to_u64(), Some(14));
        assert_eq!(div(&v(100, 8), &v(0, 8), false).to_u64(), Some(0));
        // signed: truncate toward zero
        assert_eq!(div(&sv(-7, 8), &sv(2, 8), true).to_i128(), Some(-3));
        assert_eq!(div(&sv(7, 8), &sv(-2, 8), true).to_i128(), Some(-3));
        assert_eq!(div(&sv(-7, 8), &sv(-2, 8), true).to_i128(), Some(3));
        // signed width is wa+1 so -128/-1 = 128 is representable
        let r = div(&sv(-128, 8), &sv(-1, 8), true);
        assert_eq!((r.width(), r.to_i128()), (9, Some(128)));
    }

    #[test]
    fn rem_semantics() {
        assert_eq!(rem(&v(100, 8), &v(7, 8), false).to_u64(), Some(2));
        assert_eq!(rem(&sv(-7, 8), &sv(2, 8), true).to_i128(), Some(-1));
        assert_eq!(rem(&sv(7, 8), &sv(-2, 8), true).to_i128(), Some(1));
        assert_eq!(rem(&v(5, 8), &v(3, 4), false).width(), 4);
    }

    #[test]
    fn comparisons() {
        assert_eq!(lt(&v(3, 8), &v(5, 8), false).to_u64(), Some(1));
        assert_eq!(lt(&sv(-3, 8), &sv(2, 8), true).to_u64(), Some(1));
        assert_eq!(gt(&v(0xff, 8), &v(1, 8), false).to_u64(), Some(1));
        // 0xff as signed 8-bit is -1, less than 1
        assert_eq!(gt(&sv(-1, 8), &sv(1, 8), true).to_u64(), Some(0));
        assert_eq!(eq(&v(7, 8), &v(7, 4), false).to_u64(), Some(1));
        assert_eq!(neq(&v(7, 8), &v(8, 8), false).to_u64(), Some(1));
        assert_eq!(leq(&v(7, 8), &v(7, 8), false).to_u64(), Some(1));
        assert_eq!(geq(&v(7, 8), &v(8, 8), false).to_u64(), Some(0));
        // differing widths, signed: -1 (4b) == -1 (8b)
        assert_eq!(eq(&sv(-1, 4), &sv(-1, 8), true).to_u64(), Some(1));
    }

    #[test]
    fn shifts() {
        let r = shl(&v(0b101, 3), 2);
        assert_eq!((r.width(), r.to_u64()), (5, Some(0b10100)));
        let r = shr(&v(0b10100, 5), 2, false);
        assert_eq!((r.width(), r.to_u64()), (3, Some(0b101)));
        let r = shr(&v(0b111, 3), 5, false);
        assert_eq!((r.width(), r.to_u64()), (1, Some(0)));
        // SInt shr keeps sign: -4 >> 1 = -2 at width 2
        let r = shr(&sv(-4, 3), 1, true);
        assert_eq!((r.width(), r.to_i128()), (2, Some(-2)));
        // all bits out for negative yields -1
        let r = shr(&sv(-1, 3), 10, true);
        assert_eq!((r.width(), r.to_i128()), (1, Some(-1)));
    }

    #[test]
    fn dynamic_shifts() {
        let r = dshl(&v(1, 4), &v(3, 2));
        assert_eq!((r.width(), r.to_u64()), (7, Some(8)));
        let r = dshr(&v(0b1000, 4), &v(3, 2), false);
        assert_eq!((r.width(), r.to_u64()), (4, Some(1)));
        let r = dshr(&sv(-8, 4), &v(2, 2), true);
        assert_eq!(r.to_i128(), Some(-2));
    }

    #[test]
    fn cvt_neg() {
        let r = cvt(&v(0xff, 8), false);
        assert_eq!((r.width(), r.to_i128()), (9, Some(255)));
        let r = cvt(&sv(-1, 8), true);
        assert_eq!((r.width(), r.to_i128()), (8, Some(-1)));
        let r = neg(&v(255, 8), false);
        assert_eq!((r.width(), r.to_i128()), (9, Some(-255)));
        let r = neg(&sv(-128, 8), true);
        assert_eq!((r.width(), r.to_i128()), (9, Some(128)));
    }

    #[test]
    fn bitwise() {
        assert_eq!(not(&v(0b1010, 4)).to_u64(), Some(0b0101));
        assert_eq!(
            and(&v(0b1100, 4), &v(0b1010, 4), false).to_u64(),
            Some(0b1000)
        );
        assert_eq!(
            or(&v(0b1100, 4), &v(0b1010, 4), false).to_u64(),
            Some(0b1110)
        );
        assert_eq!(
            xor(&v(0b1100, 4), &v(0b1010, 4), false).to_u64(),
            Some(0b0110)
        );
        // signed operands sign-extend before the bitwise op
        let r = and(&sv(-1, 4), &v(0xf0, 8).sext_or_trunc(8), true);
        assert_eq!(r.to_u64(), Some(0xf0));
    }

    #[test]
    fn reductions_and_cat() {
        assert_eq!(andr(&v(0xf, 4)).to_u64(), Some(1));
        assert_eq!(andr(&v(0x7, 4)).to_u64(), Some(0));
        assert_eq!(orr(&v(0, 4)).to_u64(), Some(0));
        assert_eq!(xorr(&v(0b111, 4)).to_u64(), Some(1));
        let r = cat(&v(0xab, 8), &v(0xcd, 8));
        assert_eq!((r.width(), r.to_u64()), (16, Some(0xabcd)));
        let r = cat(&v(1, 1), &Value::zero(0));
        assert_eq!((r.width(), r.to_u64()), (1, Some(1)));
    }

    #[test]
    fn extraction() {
        let a = v(0xabcd, 16);
        assert_eq!(bits(&a, 15, 8).to_u64(), Some(0xab));
        assert_eq!(bits(&a, 7, 0).to_u64(), Some(0xcd));
        assert_eq!(bits(&a, 3, 3).to_u64(), Some(1));
        assert_eq!(head(&a, 4).to_u64(), Some(0xa));
        assert_eq!(tail(&a, 4).to_u64(), Some(0xbcd));
        assert_eq!(tail(&a, 4).width(), 12);
    }

    #[test]
    fn mux_extends() {
        let r = mux(&v(1, 1), &v(3, 4), &v(200, 8), false);
        assert_eq!((r.width(), r.to_u64()), (8, Some(3)));
        let r = mux(&v(0, 1), &v(3, 4), &v(200, 8), false);
        assert_eq!(r.to_u64(), Some(200));
        let r = mux(&v(1, 1), &sv(-1, 4), &sv(0, 8), true);
        assert_eq!(r.to_i128(), Some(-1));
    }

    #[test]
    fn pad_behaviour() {
        assert_eq!(pad(&v(0x80, 8), 16, false).to_u64(), Some(0x80));
        assert_eq!(pad(&sv(-128, 8), 16, true).to_i128(), Some(-128));
        // pad to smaller width is identity
        assert_eq!(pad(&v(0xff, 8), 4, false).width(), 8);
    }
}
