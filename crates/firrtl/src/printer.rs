//! Pretty-printer: AST back to FIRRTL text.
//!
//! Round-trips with the parser (`parse(print(parse(s)))` equals
//! `parse(s)`), which the property tests rely on. Also used by the
//! design generators to produce FIRRTL fixtures from builder-made ASTs.

use crate::ast::*;
use std::fmt::Write;

/// Prints a circuit as FIRRTL source text.
pub fn print_circuit(c: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "circuit {} :", c.name);
    for m in &c.modules {
        print_module(m, &mut out);
    }
    out
}

fn print_module(m: &Module, out: &mut String) {
    let _ = writeln!(out, "  module {} :", m.name);
    for p in &m.ports {
        let dir = match p.dir {
            Dir::Input => "input",
            Dir::Output => "output",
        };
        let _ = writeln!(out, "    {dir} {} : {}", p.name, type_str(p.ty));
    }
    for s in &m.body {
        print_stmt(s, 2, out);
    }
}

fn type_str(t: Type) -> String {
    match t {
        Type::UInt(w) => format!("UInt<{w}>"),
        Type::SInt(w) => format!("SInt<{w}>"),
        Type::Clock => "Clock".into(),
        Type::Reset => "Reset".into(),
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_stmt(s: &Stmt, level: usize, out: &mut String) {
    indent(out, level);
    match s {
        Stmt::Wire { name, ty } => {
            let _ = writeln!(out, "wire {name} : {}", type_str(*ty));
        }
        Stmt::Reg {
            name,
            ty,
            clock,
            reset,
        } => match reset {
            Some((cond, init)) => {
                let _ = writeln!(
                    out,
                    "reg {name} : {}, {} with : (reset => ({}, {}))",
                    type_str(*ty),
                    expr_str(clock),
                    expr_str(cond),
                    expr_str(init)
                );
            }
            None => {
                let _ = writeln!(out, "reg {name} : {}, {}", type_str(*ty), expr_str(clock));
            }
        },
        Stmt::Node { name, value } => {
            let _ = writeln!(out, "node {name} = {}", expr_str(value));
        }
        Stmt::Connect { loc, value } => {
            let _ = writeln!(out, "{} <= {}", expr_str(loc), expr_str(value));
        }
        Stmt::Invalidate { loc } => {
            let _ = writeln!(out, "{} is invalid", expr_str(loc));
        }
        Stmt::Inst { name, module } => {
            let _ = writeln!(out, "inst {name} of {module}");
        }
        Stmt::Mem(d) => {
            let _ = writeln!(out, "mem {} :", d.name);
            indent(out, level + 1);
            let _ = writeln!(out, "data-type => {}", type_str(d.data_type));
            indent(out, level + 1);
            let _ = writeln!(out, "depth => {}", d.depth);
            indent(out, level + 1);
            let _ = writeln!(out, "read-latency => {}", d.read_latency);
            indent(out, level + 1);
            let _ = writeln!(out, "write-latency => {}", d.write_latency);
            for r in &d.readers {
                indent(out, level + 1);
                let _ = writeln!(out, "reader => {r}");
            }
            for w in &d.writers {
                indent(out, level + 1);
                let _ = writeln!(out, "writer => {w}");
            }
            indent(out, level + 1);
            let _ = writeln!(out, "read-under-write => undefined");
        }
        Stmt::When {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "when {} :", expr_str(cond));
            for s in then_body {
                print_stmt(s, level + 1, out);
            }
            if !else_body.is_empty() {
                indent(out, level);
                // `else when` chains print as nested blocks for
                // simplicity; the parser accepts both forms.
                let _ = writeln!(out, "else :");
                for s in else_body {
                    print_stmt(s, level + 1, out);
                }
            }
        }
        Stmt::Stop { cond, code } => {
            let _ = writeln!(out, "stop(clock, {}, {code})", expr_str(cond));
        }
        Stmt::Printf { cond, fmt, args } => {
            let mut argstr = String::new();
            for a in args {
                let _ = write!(argstr, ", {}", expr_str(a));
            }
            let _ = writeln!(
                out,
                "printf(clock, {}, \"{}\"{argstr})",
                expr_str(cond),
                fmt.replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n")
            );
        }
        Stmt::Skip => {
            let _ = writeln!(out, "skip");
        }
    }
}

/// Prints an expression.
pub fn expr_str(e: &Expr) -> String {
    match e {
        Expr::Ref(path) => path.join("."),
        Expr::Lit { value, signed } => {
            let ty = if *signed { "SInt" } else { "UInt" };
            format!("{ty}<{}>(\"h{value:x}\")", value.width())
        }
        Expr::Prim { op, args, params } => {
            let mut parts: Vec<String> = args.iter().map(expr_str).collect();
            parts.extend(params.iter().map(|p| p.to_string()));
            format!("{op}({})", parts.join(", "))
        }
        Expr::ValidIf { cond, value } => {
            format!("validif({}, {})", expr_str(cond), expr_str(value))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = r#"
circuit Round :
  module Sub :
    input x : UInt<4>
    output y : UInt<4>
    y <= not(x)
  module Round :
    input clock : Clock
    input reset : UInt<1>
    input a : UInt<8>
    output q : UInt<8>
    wire w : UInt<8>
    node t = tail(add(a, UInt<8>("h1")), 1)
    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>("h0")))
    inst s of Sub
    s.x <= bits(a, 3, 0)
    w <= t
    when bits(a, 0, 0) :
      w <= not(a)
    else :
      skip
    r <= w
    q <= r
    mem m :
      data-type => UInt<8>
      depth => 4
      read-latency => 0
      write-latency => 1
      reader => rd
      writer => wr
    m.rd.addr <= bits(a, 1, 0)
    m.rd.en <= UInt<1>("h1")
"#;

    #[test]
    fn roundtrip_is_stable() {
        let c1 = parse(SRC).unwrap();
        let printed = print_circuit(&c1);
        let c2 = parse(&printed).unwrap();
        let printed2 = print_circuit(&c2);
        assert_eq!(printed, printed2);
        assert_eq!(c2.modules.len(), 2);
    }

    #[test]
    fn literal_prints_as_hex() {
        let c = parse(SRC).unwrap();
        let printed = print_circuit(&c);
        assert!(printed.contains("UInt<8>(\"h1\")"));
        assert!(printed.contains("UInt<8>(\"h0\")"));
    }
}
