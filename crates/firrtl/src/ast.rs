//! Abstract syntax tree for the supported FIRRTL subset.

use gsim_value::Value;

/// A whole FIRRTL circuit: a list of modules, one of which (named after
/// the circuit) is the top.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    /// Circuit (and top module) name.
    pub name: String,
    /// All modules, in source order.
    pub modules: Vec<Module>,
}

impl Circuit {
    /// The top module (the one named after the circuit).
    pub fn top(&self) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == self.name)
    }

    /// Finds a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }
}

/// A FIRRTL module.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Ports in declaration order.
    pub ports: Vec<Port>,
    /// Body statements in source order.
    pub body: Vec<Stmt>,
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// `input`
    Input,
    /// `output`
    Output,
}

/// Ground types of the LoFIRRTL subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    /// `UInt<w>`
    UInt(u32),
    /// `SInt<w>`
    SInt(u32),
    /// `Clock` (not represented in the graph; single implicit clock).
    Clock,
    /// `Reset` / `AsyncReset`, treated as `UInt<1>`.
    Reset,
}

impl Type {
    /// Width in bits (`Clock`/`Reset` are 1).
    pub fn width(self) -> u32 {
        match self {
            Type::UInt(w) | Type::SInt(w) => w,
            Type::Clock | Type::Reset => 1,
        }
    }

    /// `true` for `SInt`.
    pub fn is_signed(self) -> bool {
        matches!(self, Type::SInt(_))
    }
}

/// A module port.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: Dir,
    /// Ground type.
    pub ty: Type,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `wire name : type`
    Wire {
        /// Wire name.
        name: String,
        /// Wire type.
        ty: Type,
    },
    /// `reg name : type, clock [with : (reset => (cond, init))]`
    Reg {
        /// Register name.
        name: String,
        /// Register type.
        ty: Type,
        /// Clock expression (parsed, assumed to be the global clock).
        clock: Expr,
        /// Optional `(reset condition, init value)`.
        reset: Option<(Expr, Expr)>,
    },
    /// `node name = expr`
    Node {
        /// Node name.
        name: String,
        /// Defining expression.
        value: Expr,
    },
    /// `loc <= expr`
    Connect {
        /// Target reference (possibly dotted).
        loc: Expr,
        /// Driven value.
        value: Expr,
    },
    /// `loc is invalid` (reads as zero in this simulator).
    Invalidate {
        /// Target reference.
        loc: Expr,
    },
    /// `inst name of module`
    Inst {
        /// Instance name.
        name: String,
        /// Instantiated module name.
        module: String,
    },
    /// `mem name : <fields>`
    Mem(MemDecl),
    /// `when cond : ... [else : ...]`
    When {
        /// Condition (1-bit).
        cond: Expr,
        /// Then-branch statements.
        then_body: Vec<Stmt>,
        /// Else-branch statements (possibly another `when`).
        else_body: Vec<Stmt>,
    },
    /// `stop(clock, cond, code)` — parsed, not simulated.
    Stop {
        /// Halt condition.
        cond: Expr,
        /// Exit code.
        code: u64,
    },
    /// `printf(clock, cond, "fmt", args...)` — parsed, not simulated.
    Printf {
        /// Print condition.
        cond: Expr,
        /// Format string.
        fmt: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `skip`
    Skip,
}

/// A memory declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct MemDecl {
    /// Memory name.
    pub name: String,
    /// Element type.
    pub data_type: Type,
    /// Number of elements.
    pub depth: u64,
    /// 0 (combinational) or 1 (registered address).
    pub read_latency: u32,
    /// Always 1 in this subset.
    pub write_latency: u32,
    /// Reader port names.
    pub readers: Vec<String>,
    /// Writer port names.
    pub writers: Vec<String>,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference, possibly dotted (`inst.port`, `mem.port.field`).
    Ref(Vec<String>),
    /// `UInt<w>(lit)` or `SInt<w>(lit)`.
    Lit {
        /// Literal value (two's complement for SInt).
        value: Value,
        /// `true` for `SInt` literals.
        signed: bool,
    },
    /// Primitive operation; integer arguments (shift amounts, bit
    /// indices) are in `params`.
    Prim {
        /// FIRRTL op name (`add`, `bits`, `mux`, ...).
        op: String,
        /// Expression operands.
        args: Vec<Expr>,
        /// Integer parameters.
        params: Vec<u64>,
    },
    /// `validif(cond, value)` — this simulator passes `value` through.
    ValidIf {
        /// Validity condition (ignored at lowering).
        cond: Box<Expr>,
        /// The value.
        value: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a simple (undotted) reference.
    pub fn simple_ref(name: impl Into<String>) -> Expr {
        Expr::Ref(vec![name.into()])
    }

    /// The dotted path if this is a reference.
    pub fn as_path(&self) -> Option<&[String]> {
        match self {
            Expr::Ref(p) => Some(p),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_widths() {
        assert_eq!(Type::UInt(8).width(), 8);
        assert_eq!(Type::SInt(3).width(), 3);
        assert_eq!(Type::Clock.width(), 1);
        assert_eq!(Type::Reset.width(), 1);
        assert!(Type::SInt(3).is_signed());
        assert!(!Type::UInt(3).is_signed());
    }

    #[test]
    fn circuit_lookup() {
        let c = Circuit {
            name: "Top".into(),
            modules: vec![
                Module {
                    name: "Sub".into(),
                    ports: vec![],
                    body: vec![],
                },
                Module {
                    name: "Top".into(),
                    ports: vec![],
                    body: vec![],
                },
            ],
        };
        assert_eq!(c.top().unwrap().name, "Top");
        assert_eq!(c.module("Sub").unwrap().name, "Sub");
        assert!(c.module("Nope").is_none());
    }
}
