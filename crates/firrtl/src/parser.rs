//! Recursive-descent parser for the FIRRTL subset.

use crate::ast::*;
use crate::lexer::{lex, LexError, SpannedTok, Tok};
use gsim_value::Value;
use std::fmt;

/// Parse error with a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Explanation.
    pub msg: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            msg: e.to_string(),
            line: e.line,
        }
    }
}

/// Parses FIRRTL source text into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseError`] with a line number on malformed input.
pub fn parse(src: &str) -> Result<Circuit, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.circuit()
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos.min(self.toks.len() - 1)].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].tok.clone();
        if self.pos < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            msg: msg.into(),
            line: self.line(),
        })
    }

    fn accept(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.accept(t) {
            Ok(())
        } else {
            self.err(format!("expected {t}, found {}", self.peek()))
        }
    }

    fn expect_id(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Id(s) => Ok(s),
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn expect_int(&mut self) -> Result<u64, ParseError> {
        match self.bump() {
            Tok::Int(n) => Ok(n),
            other => self.err(format!("expected integer, found {other}")),
        }
    }

    fn accept_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Id(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.accept_keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found {}", self.peek()))
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Tok::Newline) {
            self.bump();
        }
    }

    fn circuit(&mut self) -> Result<Circuit, ParseError> {
        self.skip_newlines();
        // Optional "FIRRTL version x.y.z" header.
        if matches!(self.peek(), Tok::Id(s) if s == "FIRRTL") {
            while !matches!(self.peek(), Tok::Newline | Tok::Eof) {
                self.bump();
            }
            self.skip_newlines();
        }
        self.expect_keyword("circuit")?;
        let name = self.expect_id()?;
        self.expect(&Tok::Colon)?;
        self.expect(&Tok::Newline)?;
        self.expect(&Tok::Indent)?;
        let mut modules = Vec::new();
        loop {
            self.skip_newlines();
            match self.peek() {
                Tok::Dedent | Tok::Eof => break,
                _ => modules.push(self.module()?),
            }
        }
        Ok(Circuit { name, modules })
    }

    fn module(&mut self) -> Result<Module, ParseError> {
        self.expect_keyword("module")?;
        let name = self.expect_id()?;
        self.expect(&Tok::Colon)?;
        self.expect(&Tok::Newline)?;
        self.expect(&Tok::Indent)?;
        let mut ports = Vec::new();
        let mut body = Vec::new();
        loop {
            self.skip_newlines();
            match self.peek() {
                Tok::Dedent => {
                    self.bump();
                    break;
                }
                Tok::Eof => break,
                Tok::Id(s) if s == "input" || s == "output" => {
                    let dir = if s == "input" {
                        Dir::Input
                    } else {
                        Dir::Output
                    };
                    self.bump();
                    let pname = self.expect_id()?;
                    self.expect(&Tok::Colon)?;
                    let ty = self.ty()?;
                    ports.push(Port {
                        name: pname,
                        dir,
                        ty,
                    });
                    self.expect(&Tok::Newline)?;
                }
                _ => body.push(self.stmt()?),
            }
        }
        Ok(Module { name, ports, body })
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        let kind = self.expect_id()?;
        match kind.as_str() {
            "Clock" => Ok(Type::Clock),
            "Reset" | "AsyncReset" => Ok(Type::Reset),
            "UInt" | "SInt" => {
                if self.accept(&Tok::Lt) {
                    let w = self.expect_int()?;
                    self.expect(&Tok::Gt)?;
                    let w = u32::try_from(w).map_err(|_| ParseError {
                        msg: format!("width {w} too large"),
                        line: self.line(),
                    })?;
                    Ok(if kind == "UInt" {
                        Type::UInt(w)
                    } else {
                        Type::SInt(w)
                    })
                } else {
                    self.err(format!("{kind} requires an explicit width in this subset"))
                }
            }
            other => self.err(format!("unsupported type `{other}` (ground types only)")),
        }
    }

    /// Parses the statements of an indented block (or a single inline
    /// statement after a colon).
    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.accept(&Tok::Newline) {
            self.expect(&Tok::Indent)?;
            let mut stmts = Vec::new();
            loop {
                self.skip_newlines();
                match self.peek() {
                    Tok::Dedent => {
                        self.bump();
                        break;
                    }
                    Tok::Eof => break,
                    _ => stmts.push(self.stmt()?),
                }
            }
            Ok(stmts)
        } else {
            // single inline statement
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::Id(kw) => match kw.as_str() {
                "skip" => {
                    self.bump();
                    self.end_of_stmt()?;
                    Ok(Stmt::Skip)
                }
                "wire" => {
                    self.bump();
                    let name = self.expect_id()?;
                    self.expect(&Tok::Colon)?;
                    let ty = self.ty()?;
                    self.end_of_stmt()?;
                    Ok(Stmt::Wire { name, ty })
                }
                "node" => {
                    self.bump();
                    let name = self.expect_id()?;
                    self.expect(&Tok::Eq)?;
                    let value = self.expr()?;
                    self.end_of_stmt()?;
                    Ok(Stmt::Node { name, value })
                }
                "inst" => {
                    self.bump();
                    let name = self.expect_id()?;
                    self.expect_keyword("of")?;
                    let module = self.expect_id()?;
                    self.end_of_stmt()?;
                    Ok(Stmt::Inst { name, module })
                }
                "reg" => self.reg_stmt(),
                "regreset" => self.regreset_stmt(),
                "mem" => self.mem_stmt(),
                "when" => self.when_stmt(),
                "stop" => {
                    self.bump();
                    self.expect(&Tok::LParen)?;
                    let _clock = self.expr()?;
                    self.expect(&Tok::Comma)?;
                    let cond = self.expr()?;
                    self.expect(&Tok::Comma)?;
                    let code = self.expect_int()?;
                    self.expect(&Tok::RParen)?;
                    // optional result name `: name`
                    if self.accept(&Tok::Colon) {
                        let _ = self.expect_id()?;
                    }
                    self.end_of_stmt()?;
                    Ok(Stmt::Stop { cond, code })
                }
                "printf" => {
                    self.bump();
                    self.expect(&Tok::LParen)?;
                    let _clock = self.expr()?;
                    self.expect(&Tok::Comma)?;
                    let cond = self.expr()?;
                    self.expect(&Tok::Comma)?;
                    let fmt = match self.bump() {
                        Tok::Str(s) => s,
                        other => return self.err(format!("expected format string, found {other}")),
                    };
                    let mut args = Vec::new();
                    while self.accept(&Tok::Comma) {
                        args.push(self.expr()?);
                    }
                    self.expect(&Tok::RParen)?;
                    if self.accept(&Tok::Colon) {
                        let _ = self.expect_id()?;
                    }
                    self.end_of_stmt()?;
                    Ok(Stmt::Printf { cond, fmt, args })
                }
                _ => self.connect_like(),
            },
            _ => self.connect_like(),
        }
    }

    fn end_of_stmt(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Newline => {
                self.bump();
                Ok(())
            }
            Tok::Eof | Tok::Dedent => Ok(()),
            other => {
                let other = other.clone();
                self.err(format!("expected end of statement, found {other}"))
            }
        }
    }

    /// `ref <= expr` or `ref is invalid`.
    fn connect_like(&mut self) -> Result<Stmt, ParseError> {
        let loc = self.reference()?;
        match self.peek() {
            Tok::Connect => {
                self.bump();
                let value = self.expr()?;
                self.end_of_stmt()?;
                Ok(Stmt::Connect { loc, value })
            }
            Tok::Id(s) if s == "is" => {
                self.bump();
                self.expect_keyword("invalid")?;
                self.end_of_stmt()?;
                Ok(Stmt::Invalidate { loc })
            }
            other => {
                let other = other.clone();
                self.err(format!("expected `<=` or `is invalid`, found {other}"))
            }
        }
    }

    fn reg_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword("reg")?;
        let name = self.expect_id()?;
        self.expect(&Tok::Colon)?;
        let ty = self.ty()?;
        self.expect(&Tok::Comma)?;
        let clock = self.expr()?;
        let mut reset = None;
        if self.accept_keyword("with") {
            self.expect(&Tok::Colon)?;
            // Either `(reset => (cond, init))` inline or an indented block.
            let parenthesized = self.accept(&Tok::LParen);
            if !parenthesized {
                self.expect(&Tok::Newline)?;
                self.expect(&Tok::Indent)?;
            }
            self.expect_keyword("reset")?;
            self.expect(&Tok::FatArrow)?;
            self.expect(&Tok::LParen)?;
            let cond = self.expr()?;
            self.expect(&Tok::Comma)?;
            let init = self.expr()?;
            self.expect(&Tok::RParen)?;
            reset = Some((cond, init));
            if parenthesized {
                self.expect(&Tok::RParen)?;
                self.end_of_stmt()?;
            } else {
                self.expect(&Tok::Newline)?;
                self.expect(&Tok::Dedent)?;
            }
        } else {
            self.end_of_stmt()?;
        }
        Ok(Stmt::Reg {
            name,
            ty,
            clock,
            reset,
        })
    }

    /// FIRRTL 2.0+ `regreset name : type, clock, resetSignal, initValue`.
    fn regreset_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword("regreset")?;
        let name = self.expect_id()?;
        self.expect(&Tok::Colon)?;
        let ty = self.ty()?;
        self.expect(&Tok::Comma)?;
        let clock = self.expr()?;
        self.expect(&Tok::Comma)?;
        let cond = self.expr()?;
        self.expect(&Tok::Comma)?;
        let init = self.expr()?;
        self.end_of_stmt()?;
        Ok(Stmt::Reg {
            name,
            ty,
            clock,
            reset: Some((cond, init)),
        })
    }

    fn mem_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword("mem")?;
        let name = self.expect_id()?;
        self.expect(&Tok::Colon)?;
        self.expect(&Tok::Newline)?;
        self.expect(&Tok::Indent)?;
        let mut decl = MemDecl {
            name,
            data_type: Type::UInt(1),
            depth: 0,
            read_latency: 0,
            write_latency: 1,
            readers: Vec::new(),
            writers: Vec::new(),
        };
        loop {
            self.skip_newlines();
            match self.peek() {
                Tok::Dedent => {
                    self.bump();
                    break;
                }
                Tok::Eof => break,
                _ => {}
            }
            let field = self.expect_id()?;
            self.expect(&Tok::FatArrow)?;
            match field.as_str() {
                "data-type" => decl.data_type = self.ty()?,
                "depth" => decl.depth = self.expect_int()?,
                "read-latency" => decl.read_latency = self.expect_int()? as u32,
                "write-latency" => decl.write_latency = self.expect_int()? as u32,
                "reader" => decl.readers.push(self.expect_id()?),
                "writer" => decl.writers.push(self.expect_id()?),
                "read-under-write" => {
                    let _ = self.expect_id()?;
                }
                "readwriter" => {
                    return self.err("readwrite memory ports are not supported");
                }
                other => return self.err(format!("unknown mem field `{other}`")),
            }
            self.end_of_stmt()?;
        }
        if decl.depth == 0 {
            return self.err(format!("mem `{}` missing depth", decl.name));
        }
        if decl.write_latency != 1 {
            return self.err("write-latency must be 1");
        }
        if decl.read_latency > 1 {
            return self.err("read-latency must be 0 or 1");
        }
        Ok(Stmt::Mem(decl))
    }

    fn when_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword("when")?;
        let cond = self.expr()?;
        self.expect(&Tok::Colon)?;
        let then_body = self.block()?;
        let mut else_body = Vec::new();
        // `else` may follow at the same indentation.
        self.skip_newlines();
        if matches!(self.peek(), Tok::Id(s) if s == "else") {
            self.bump();
            if matches!(self.peek(), Tok::Id(s) if s == "when") {
                // `else when ...` chains.
                else_body.push(self.when_stmt()?);
            } else {
                self.expect(&Tok::Colon)?;
                else_body = self.block()?;
            }
        }
        Ok(Stmt::When {
            cond,
            then_body,
            else_body,
        })
    }

    fn reference(&mut self) -> Result<Expr, ParseError> {
        let first = self.expect_id()?;
        let mut path = vec![first];
        while self.accept(&Tok::Dot) {
            path.push(self.expect_id()?);
        }
        Ok(Expr::Ref(path))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Id(head) => {
                match head.as_str() {
                    "UInt" | "SInt" => {
                        // Could be a literal `UInt<8>(...)` / `UInt(...)`.
                        if matches!(self.peek2(), Tok::Lt | Tok::LParen) {
                            return self.literal(head == "SInt");
                        }
                        self.reference()
                    }
                    "mux" => {
                        self.bump();
                        self.expect(&Tok::LParen)?;
                        let sel = self.expr()?;
                        self.expect(&Tok::Comma)?;
                        let t = self.expr()?;
                        self.expect(&Tok::Comma)?;
                        let f = self.expr()?;
                        self.expect(&Tok::RParen)?;
                        Ok(Expr::Prim {
                            op: "mux".into(),
                            args: vec![sel, t, f],
                            params: vec![],
                        })
                    }
                    "validif" => {
                        self.bump();
                        self.expect(&Tok::LParen)?;
                        let cond = self.expr()?;
                        self.expect(&Tok::Comma)?;
                        let value = self.expr()?;
                        self.expect(&Tok::RParen)?;
                        Ok(Expr::ValidIf {
                            cond: Box::new(cond),
                            value: Box::new(value),
                        })
                    }
                    _ if matches!(self.peek2(), Tok::LParen) => {
                        // primitive op call
                        self.bump();
                        self.expect(&Tok::LParen)?;
                        let mut args = Vec::new();
                        let mut params = Vec::new();
                        if !self.accept(&Tok::RParen) {
                            loop {
                                match self.peek() {
                                    Tok::Int(n) => {
                                        params.push(*n);
                                        self.bump();
                                    }
                                    _ => args.push(self.expr()?),
                                }
                                if !self.accept(&Tok::Comma) {
                                    break;
                                }
                            }
                            self.expect(&Tok::RParen)?;
                        }
                        Ok(Expr::Prim {
                            op: head,
                            args,
                            params,
                        })
                    }
                    _ => self.reference(),
                }
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }

    fn literal(&mut self, signed: bool) -> Result<Expr, ParseError> {
        self.bump(); // UInt / SInt
        let mut width = None;
        if self.accept(&Tok::Lt) {
            let w = self.expect_int()?;
            self.expect(&Tok::Gt)?;
            width = Some(w as u32);
        }
        self.expect(&Tok::LParen)?;
        let line = self.line();
        let make_err = |msg: String| ParseError { msg, line };
        let value = match self.bump() {
            Tok::Int(n) => {
                let min_width = min_width_for(n as i64, signed, false);
                let w = width.unwrap_or(min_width);
                if w < min_width {
                    return Err(make_err(format!("literal {n} does not fit in {w} bits")));
                }
                Value::from_u64(n, w)
            }
            Tok::NegInt(n) => {
                if !signed {
                    return Err(make_err("negative UInt literal".into()));
                }
                let min_width = min_width_for(n, true, true);
                let w = width.unwrap_or(min_width);
                if w < min_width {
                    return Err(make_err(format!("literal {n} does not fit in {w} bits")));
                }
                Value::from_i64(n, w)
            }
            Tok::Str(s) => {
                let (radix, body) = match s.chars().next() {
                    Some('h') => (16, &s[1..]),
                    Some('o') => (8, &s[1..]),
                    Some('b') => (2, &s[1..]),
                    _ => (10, s.as_str()),
                };
                // Width defaults to the bit-length of the literal body.
                let probe = Value::from_str_radix(body, radix, gsim_value::MAX_WIDTH)
                    .map_err(|e| make_err(e.to_string()))?;
                let min_width = gsim_value::words::top_bit(probe.words()).map_or(1, |b| b + 1)
                    + (signed && !body.starts_with('-')) as u32;
                let w = width.unwrap_or(min_width);
                Value::from_str_radix(body, radix, w).map_err(|e| make_err(e.to_string()))?
            }
            other => return Err(make_err(format!("expected literal value, found {other}"))),
        };
        self.expect(&Tok::RParen)?;
        Ok(Expr::Lit { value, signed })
    }
}

/// Minimal width to represent `n` (two's complement when `signed`).
fn min_width_for(n: i64, signed: bool, negative: bool) -> u32 {
    if negative {
        // bits needed for n in two's complement
        (64 - (!(n)).leading_zeros()) + 1
    } else {
        let base = 64 - (n as u64).leading_zeros();
        base.max(1) + signed as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = r#"
circuit Top :
  module Top :
    input clock : Clock
    input reset : UInt<1>
    input a : UInt<8>
    output y : UInt<8>
    wire t : UInt<8>
    node doubled = tail(add(a, a), 1)
    t <= doubled
    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    r <= t
    y <= r
"#;

    #[test]
    fn parses_small_module() {
        let c = parse(SMALL).unwrap();
        assert_eq!(c.name, "Top");
        let m = c.top().unwrap();
        assert_eq!(m.ports.len(), 4);
        // wire, node, connect, reg, connect, connect
        assert_eq!(m.body.len(), 6);
        assert!(matches!(&m.body[1], Stmt::Node { name, .. } if name == "doubled"));
        match &m.body[3] {
            Stmt::Reg { name, reset, .. } => {
                assert_eq!(name, "r");
                assert!(reset.is_some());
            }
            other => panic!("expected reg, got {other:?}"),
        }
    }

    #[test]
    fn parses_when_else() {
        let src = r#"
circuit C :
  module C :
    input c : UInt<1>
    input a : UInt<4>
    output y : UInt<4>
    y <= a
    when c :
      y <= not(a)
    else :
      skip
"#;
        let c = parse(src).unwrap();
        let m = c.top().unwrap();
        match &m.body[1] {
            Stmt::When {
                then_body,
                else_body,
                ..
            } => {
                assert_eq!(then_body.len(), 1);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("expected when, got {other:?}"),
        }
    }

    #[test]
    fn parses_else_when_chain() {
        let src = r#"
circuit C :
  module C :
    input s : UInt<2>
    output y : UInt<2>
    y <= UInt<2>(0)
    when eq(s, UInt<2>(1)) :
      y <= UInt<2>(1)
    else when eq(s, UInt<2>(2)) :
      y <= UInt<2>(2)
    else :
      y <= UInt<2>(3)
"#;
        let c = parse(src).unwrap();
        let m = c.top().unwrap();
        match &m.body[1] {
            Stmt::When { else_body, .. } => {
                assert!(matches!(&else_body[0], Stmt::When { .. }));
            }
            other => panic!("expected when, got {other:?}"),
        }
    }

    #[test]
    fn parses_mem() {
        let src = r#"
circuit M :
  module M :
    input addr : UInt<4>
    output q : UInt<8>
    mem ram :
      data-type => UInt<8>
      depth => 16
      read-latency => 0
      write-latency => 1
      reader => r
      writer => w
      read-under-write => undefined
    ram.r.addr <= addr
    ram.r.en <= UInt<1>(1)
    q <= ram.r.data
"#;
        let c = parse(src).unwrap();
        let m = c.top().unwrap();
        match &m.body[0] {
            Stmt::Mem(decl) => {
                assert_eq!(decl.depth, 16);
                assert_eq!(decl.readers, vec!["r"]);
                assert_eq!(decl.writers, vec!["w"]);
            }
            other => panic!("expected mem, got {other:?}"),
        }
        assert!(matches!(&m.body[1], Stmt::Connect { loc: Expr::Ref(p), .. } if p.len() == 3));
    }

    #[test]
    fn parses_instances() {
        let src = r#"
circuit Top :
  module Child :
    input x : UInt<4>
    output y : UInt<4>
    y <= x
  module Top :
    input a : UInt<4>
    output b : UInt<4>
    inst c of Child
    c.x <= a
    b <= c.y
"#;
        let c = parse(src).unwrap();
        assert_eq!(c.modules.len(), 2);
        let top = c.top().unwrap();
        assert!(
            matches!(&top.body[0], Stmt::Inst { name, module } if name == "c" && module == "Child")
        );
    }

    #[test]
    fn parses_literals() {
        let src = r#"
circuit L :
  module L :
    output a : UInt<8>
    output b : SInt<4>
    output c : UInt<16>
    a <= UInt<8>("hff")
    b <= SInt<4>(-3)
    c <= UInt<16>("b1010")
"#;
        let c = parse(src).unwrap();
        let m = c.top().unwrap();
        match &m.body[0] {
            Stmt::Connect {
                value: Expr::Lit { value, .. },
                ..
            } => assert_eq!(value.to_u64(), Some(0xff)),
            other => panic!("{other:?}"),
        }
        match &m.body[1] {
            Stmt::Connect {
                value: Expr::Lit { value, signed },
                ..
            } => {
                assert!(*signed);
                assert_eq!(value.to_i128(), Some(-3));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_stop_and_printf() {
        let src = r#"
circuit S :
  module S :
    input clock : Clock
    input c : UInt<1>
    input v : UInt<8>
    stop(clock, c, 1)
    printf(clock, c, "v=%d\n", v)
"#;
        let c = parse(src).unwrap();
        let m = c.top().unwrap();
        assert!(matches!(&m.body[0], Stmt::Stop { code: 1, .. }));
        assert!(matches!(&m.body[1], Stmt::Printf { args, .. } if args.len() == 1));
    }

    #[test]
    fn parses_regreset() {
        let src = r#"
circuit R :
  module R :
    input clock : Clock
    input reset : UInt<1>
    output q : UInt<8>
    regreset r : UInt<8>, clock, reset, UInt<8>(42)
    r <= q
    q <= r
"#;
        let c = parse(src).unwrap();
        let m = c.top().unwrap();
        assert!(matches!(&m.body[0], Stmt::Reg { reset: Some(_), .. }));
    }

    #[test]
    fn parses_reg_with_block_reset() {
        let src = "circuit R :\n  module R :\n    input clock : Clock\n    input reset : UInt<1>\n    reg x : UInt<4>, clock with :\n      reset => (reset, UInt<4>(7))\n    x <= x\n";
        let c = parse(src).unwrap();
        let m = c.top().unwrap();
        assert!(matches!(&m.body[0], Stmt::Reg { reset: Some(_), .. }));
    }

    #[test]
    fn error_has_line_number() {
        let err = parse("circuit X :\n  module X :\n    wire w UInt<4>\n").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn rejects_unknown_type() {
        let err = parse("circuit X :\n  module X :\n    wire w : Analog<4>\n").unwrap_err();
        assert!(err.to_string().contains("unsupported type"));
    }

    #[test]
    fn parses_validif_and_invalidate() {
        let src = r#"
circuit V :
  module V :
    input c : UInt<1>
    input a : UInt<4>
    output y : UInt<4>
    wire w : UInt<4>
    w is invalid
    y <= validif(c, a)
"#;
        let c = parse(src).unwrap();
        let m = c.top().unwrap();
        assert!(matches!(&m.body[1], Stmt::Invalidate { .. }));
        assert!(matches!(
            &m.body[2],
            Stmt::Connect {
                value: Expr::ValidIf { .. },
                ..
            }
        ));
    }
}
