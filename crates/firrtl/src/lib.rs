//! FIRRTL front end for the GSIM RTL simulator.
//!
//! GSIM (the paper, §III-D) accepts circuits in FIRRTL, the intermediate
//! representation that Chisel designs are compiled through. This crate
//! implements the front end for the *lowered* (LoFIRRTL) subset that
//! compiled simulators consume: ground types only (`UInt`/`SInt`/
//! `Clock`/`Reset`), modules, instances, wires, nodes, registers (with
//! reset), memories, `when` blocks, and the full primitive-op set.
//!
//! Pipeline:
//!
//! ```text
//! text --lexer--> tokens --parser--> ast --lower--> gsim_graph::Graph
//!                                     ^
//!                                     `--printer--> text (round trips)
//! ```
//!
//! Semantics handled in [`mod@lower`]:
//!
//! * **Instance flattening** — the module hierarchy is inlined into one
//!   flat graph; node names keep their hierarchical path (`cpu.alu.sum`).
//! * **Last-connect + `when`** — conditional connects become mux trees
//!   following FIRRTL's last-connect-wins rule.
//! * **Registers** — `reg ... with : (reset => (sig, init))` and
//!   `regreset` produce registers with an explicit reset so GSIM's
//!   reset-handling optimization can move reset off the fast path;
//!   non-constant init values fall back to a mux in the next-value
//!   expression.
//! * **Memories** — combinational-read memories map directly to
//!   read/write port nodes; `read-latency => 1` memories get a pipelined
//!   address register.
//! * `stop`/`printf` statements are parsed and counted but not lowered
//!   (designs in this repo signal halts via output ports instead).
//!
//! # Example
//!
//! ```
//! let src = r#"
//! circuit Adder :
//!   module Adder :
//!     input a : UInt<8>
//!     input b : UInt<8>
//!     output sum : UInt<9>
//!     sum <= add(a, b)
//! "#;
//! let circuit = gsim_firrtl::parse(src).unwrap();
//! let graph = gsim_firrtl::lower(&circuit).unwrap();
//! assert_eq!(graph.inputs().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod printer;

pub use ast::{Circuit, Module};
pub use lower::{lower, LowerError};
pub use parser::{parse, ParseError};
pub use printer::print_circuit;

/// Parses FIRRTL text and lowers it to a circuit graph in one call.
///
/// # Errors
///
/// Returns a parse or lowering error as a string diagnostic.
pub fn compile(src: &str) -> Result<gsim_graph::Graph, String> {
    let circuit = parse(src).map_err(|e| e.to_string())?;
    lower(&circuit).map_err(|e| e.to_string())
}
