//! Lowering: FIRRTL AST → flat circuit graph.
//!
//! Responsibilities (per module instance, recursively):
//!
//! 1. **Declaration pass** — create graph nodes for every wire, register,
//!    node, memory port and instance port. Instance bodies are elaborated
//!    (flattened) inline during this pass, with hierarchical names like
//!    `core.alu.sum`.
//! 2. **Connect pass** — resolve FIRRTL's conditional last-connect
//!    semantics into a single driver expression per location: `when`
//!    blocks become scope overlays merged with muxes.
//! 3. **Finalize** — install drivers (undriven wires read as zero,
//!    undriven registers hold their value), attach register resets
//!    (constant init values become explicit [`gsim_graph::RegReset`]s so GSIM's reset
//!    optimization can act on them; non-constant inits fall back to a mux
//!    in the next-value expression).

use crate::ast::{self, Circuit, Dir, MemDecl, Module, Stmt, Type};
use gsim_graph::{Expr, GraphBuilder, NodeId, PrimOp};
use gsim_value::Value;
use std::collections::HashMap;
use std::fmt;

/// Error produced during lowering.
#[derive(Debug, Clone, PartialEq)]
pub enum LowerError {
    /// The circuit has no module matching its name.
    MissingTop(String),
    /// An `inst` references an unknown module.
    UnknownModule(String),
    /// The instance hierarchy is cyclic.
    RecursiveInstance(String),
    /// A reference did not resolve to a declared signal.
    UnknownRef(String),
    /// Connecting to something that is not connectable.
    NotConnectable(String),
    /// A primitive operation failed width inference.
    Width(String),
    /// Unsupported construct.
    Unsupported(String),
    /// The lowered graph failed validation (indicates a lowering bug).
    Graph(String),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::MissingTop(n) => write!(f, "no top module named `{n}`"),
            LowerError::UnknownModule(n) => write!(f, "instance of unknown module `{n}`"),
            LowerError::RecursiveInstance(n) => write!(f, "recursive instantiation of `{n}`"),
            LowerError::UnknownRef(n) => write!(f, "reference to undeclared signal `{n}`"),
            LowerError::NotConnectable(n) => write!(f, "cannot connect to `{n}`"),
            LowerError::Width(m) => write!(f, "{m}"),
            LowerError::Unsupported(m) => write!(f, "unsupported: {m}"),
            LowerError::Graph(m) => write!(f, "lowered graph invalid: {m}"),
        }
    }
}

impl std::error::Error for LowerError {}

/// Statistics from lowering (constructs parsed but not simulated).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LowerStats {
    /// Number of `stop` statements dropped.
    pub stops: usize,
    /// Number of `printf` statements dropped.
    pub printfs: usize,
}

/// Lowers a parsed circuit to a validated graph.
///
/// # Errors
///
/// See [`LowerError`].
pub fn lower(circuit: &Circuit) -> Result<gsim_graph::Graph, LowerError> {
    lower_with_stats(circuit).map(|(g, _)| g)
}

/// Lowers a circuit, also returning [`LowerStats`].
///
/// # Errors
///
/// See [`LowerError`].
pub fn lower_with_stats(circuit: &Circuit) -> Result<(gsim_graph::Graph, LowerStats), LowerError> {
    let top = circuit
        .top()
        .ok_or_else(|| LowerError::MissingTop(circuit.name.clone()))?;
    let mut ctx = Lowerer {
        circuit,
        builder: GraphBuilder::new(circuit.name.clone()),
        stats: LowerStats::default(),
        instance_stack: vec![top.name.clone()],
    };

    // Top-level ports: inputs are input nodes; outputs are pending.
    let mut env = Env::default();
    for p in &top.ports {
        let (w, s) = (p.ty.width(), p.ty.is_signed());
        let node = match p.dir {
            Dir::Input => ctx.builder.input(p.name.clone(), w, s),
            Dir::Output => ctx.builder.pending_output(p.name.clone(), w, s),
        };
        env.insert(
            p.name.clone(),
            Signal {
                node,
                width: w,
                signed: s,
                connectable: matches!(p.dir, Dir::Output),
            },
        );
    }
    ctx.elaborate(top, "", &mut env)?;

    // Any still-pending wires/outputs read as zero.
    let pending: Vec<NodeId> = ctx
        .builder
        .graph()
        .node_ids()
        .filter(|&id| {
            ctx.builder.is_pending(id)
                && !matches!(
                    ctx.builder.graph().node(id).kind,
                    gsim_graph::NodeKind::Input
                )
        })
        .collect();
    for id in pending {
        let node = ctx.builder.graph().node(id);
        if node.kind.is_reg() {
            // undriven register: holds its value
            let (w, s) = (node.width, node.signed);
            ctx.builder.set_reg_next(id, Expr::reference(id, w, s));
        } else {
            let (w, s) = (node.width, node.signed);
            let zero = const_of(w, s);
            ctx.builder.set_driver(id, zero);
        }
    }

    let stats = ctx.stats;
    let graph = ctx
        .builder
        .finish()
        .map_err(|e| LowerError::Graph(e.to_string()))?;
    Ok((graph, stats))
}

fn const_of(width: u32, signed: bool) -> Expr {
    if signed {
        Expr::constant_signed(Value::zero(width))
    } else {
        Expr::constant(Value::zero(width))
    }
}

/// A declared signal visible to references.
#[derive(Debug, Clone, Copy)]
struct Signal {
    node: NodeId,
    width: u32,
    signed: bool,
    /// `false` for things that must not be connected to (top inputs,
    /// `node` definitions).
    connectable: bool,
}

#[derive(Debug, Default)]
struct Env {
    map: HashMap<String, Signal>,
}

impl Env {
    fn insert(&mut self, name: String, sig: Signal) {
        self.map.insert(name, sig);
    }

    fn get(&self, name: &str) -> Option<Signal> {
        self.map.get(name).copied()
    }
}

struct Lowerer<'c> {
    circuit: &'c Circuit,
    builder: GraphBuilder,
    stats: LowerStats,
    instance_stack: Vec<String>,
}

impl Lowerer<'_> {
    /// Elaborates one module instance: declares everything, resolves
    /// connects, installs drivers. `prefix` is the hierarchical name
    /// prefix (`""` for top, `"core."` for instance `core`).
    fn elaborate(
        &mut self,
        module: &Module,
        prefix: &str,
        env: &mut Env,
    ) -> Result<(), LowerError> {
        // Registers needing a mux-based reset fallback: (reg, cond, init).
        let mut mux_resets: Vec<(NodeId, Expr, Expr)> = Vec::new();
        self.declare_stmts(&module.body, prefix, env, &mut mux_resets)?;

        let mut drivers: HashMap<NodeId, Expr> = HashMap::new();
        self.connect_stmts(&module.body, env, &mut Vec::new(), &mut drivers)?;

        // Install drivers for everything this module drove.
        for (node, expr) in drivers {
            let n = self.builder.graph().node(node);
            if n.kind.is_reg() {
                let (w, s) = (n.width, n.signed);
                let mut next = fit(expr, w, s)?;
                if let Some(pos) = mux_resets.iter().position(|(r, _, _)| *r == node) {
                    let (_, cond, init) = mux_resets.remove(pos);
                    let init = fit(init, w, s)?;
                    next = Expr::prim(PrimOp::Mux, vec![cond, init, next], vec![])
                        .map_err(|e| LowerError::Width(e.to_string()))?;
                }
                self.builder.set_reg_next(node, next);
            } else {
                let (w, s) = (n.width, n.signed);
                let fitted = fit(expr, w, s)?;
                self.builder.set_driver(node, fitted);
            }
        }
        // Registers with mux resets but no connect: hold value under mux.
        for (reg, cond, init) in mux_resets {
            let n = self.builder.graph().node(reg);
            let (w, s) = (n.width, n.signed);
            let hold = Expr::reference(reg, w, s);
            let init = fit(init, w, s)?;
            let next = Expr::prim(PrimOp::Mux, vec![cond, init, hold], vec![])
                .map_err(|e| LowerError::Width(e.to_string()))?;
            self.builder.set_reg_next(reg, next);
        }
        Ok(())
    }

    /// Declaration pass (recurses into `when` bodies; order matters for
    /// def-before-use of `node` expressions).
    fn declare_stmts(
        &mut self,
        stmts: &[Stmt],
        prefix: &str,
        env: &mut Env,
        mux_resets: &mut Vec<(NodeId, Expr, Expr)>,
    ) -> Result<(), LowerError> {
        for stmt in stmts {
            match stmt {
                Stmt::Wire { name, ty } => {
                    let (w, s) = (ty.width(), ty.is_signed());
                    let node = self.builder.wire(format!("{prefix}{name}"), w, s);
                    env.insert(
                        name.clone(),
                        Signal {
                            node,
                            width: w,
                            signed: s,
                            connectable: true,
                        },
                    );
                }
                Stmt::Node { name, value } => {
                    let expr = self.lower_expr(value, env)?;
                    let (w, s) = (expr.width, expr.signed);
                    let node = self.builder.comb(format!("{prefix}{name}"), expr);
                    env.insert(
                        name.clone(),
                        Signal {
                            node,
                            width: w,
                            signed: s,
                            connectable: false,
                        },
                    );
                }
                Stmt::Reg {
                    name,
                    ty,
                    clock: _,
                    reset,
                } => {
                    let (w, s) = (ty.width(), ty.is_signed());
                    let full = format!("{prefix}{name}");
                    let node = match reset {
                        None => self.builder.reg(full, w, s),
                        Some((cond, init)) => {
                            let cond_e = self.lower_expr(cond, env)?;
                            let init_e = self.lower_expr(init, env)?;
                            match init_e.as_const() {
                                Some(v) if cond_e.width == 1 => {
                                    // Constant init: explicit reset metadata.
                                    let init_v = fit_value(v, w, init_e.signed && s);
                                    let signal = self.materialize(cond_e, prefix);
                                    self.builder.reg_with_reset(full, w, s, signal, init_v)
                                }
                                _ => {
                                    let r = self.builder.reg(full, w, s);
                                    mux_resets.push((r, cond_e, init_e));
                                    r
                                }
                            }
                        }
                    };
                    env.insert(
                        name.clone(),
                        Signal {
                            node,
                            width: w,
                            signed: s,
                            connectable: true,
                        },
                    );
                }
                Stmt::Mem(decl) => self.declare_mem(decl, prefix, env)?,
                Stmt::Inst { name, module } => {
                    let child = self
                        .circuit
                        .module(module)
                        .ok_or_else(|| LowerError::UnknownModule(module.clone()))?;
                    if self.instance_stack.contains(module) {
                        return Err(LowerError::RecursiveInstance(module.clone()));
                    }
                    // Create shared port wires visible to both sides.
                    let mut child_env = Env::default();
                    for p in &child.ports {
                        let (w, s) = (p.ty.width(), p.ty.is_signed());
                        let node = self
                            .builder
                            .wire(format!("{prefix}{name}.{}", p.name), w, s);
                        let sig = Signal {
                            node,
                            width: w,
                            signed: s,
                            connectable: true,
                        };
                        env.insert(format!("{name}.{}", p.name), sig);
                        child_env.insert(p.name.clone(), sig);
                    }
                    self.instance_stack.push(module.clone());
                    self.elaborate(child, &format!("{prefix}{name}."), &mut child_env)?;
                    self.instance_stack.pop();
                }
                Stmt::When {
                    then_body,
                    else_body,
                    ..
                } => {
                    self.declare_stmts(then_body, prefix, env, mux_resets)?;
                    self.declare_stmts(else_body, prefix, env, mux_resets)?;
                }
                Stmt::Stop { .. } => self.stats.stops += 1,
                Stmt::Printf { .. } => self.stats.printfs += 1,
                Stmt::Connect { .. } | Stmt::Invalidate { .. } | Stmt::Skip => {}
            }
        }
        Ok(())
    }

    fn declare_mem(
        &mut self,
        decl: &MemDecl,
        prefix: &str,
        env: &mut Env,
    ) -> Result<(), LowerError> {
        if matches!(decl.data_type, Type::Clock) {
            return Err(LowerError::Unsupported("Clock-typed memory".into()));
        }
        let width = decl.data_type.width();
        let mem = self
            .builder
            .mem(format!("{prefix}{}", decl.name), decl.depth, width);
        let addr_width = (64 - (decl.depth.max(2) - 1).leading_zeros()).max(1);
        let field_wire = |this: &mut Self, port: &str, field: &str, w: u32, env: &mut Env| {
            let node = this
                .builder
                .wire(format!("{prefix}{}.{port}.{field}", decl.name), w, false);
            env.insert(
                format!("{}.{port}.{field}", decl.name),
                Signal {
                    node,
                    width: w,
                    signed: false,
                    connectable: true,
                },
            );
            node
        };
        for r in &decl.readers {
            let addr = field_wire(self, r, "addr", addr_width, env);
            let _en = field_wire(self, r, "en", 1, env);
            let _clk = field_wire(self, r, "clk", 1, env);
            // read-latency 1 pipelines the address through a register.
            let addr_src = if decl.read_latency == 1 {
                let pipe = self.builder.reg(
                    format!("{prefix}{}.{r}.addr_pipe", decl.name),
                    addr_width,
                    false,
                );
                self.builder
                    .set_reg_next(pipe, Expr::reference(addr, addr_width, false));
                pipe
            } else {
                addr
            };
            let data = self.builder.mem_read(
                format!("{prefix}{}.{r}.data", decl.name),
                mem,
                Expr::reference(addr_src, addr_width, false),
            );
            env.insert(
                format!("{}.{r}.data", decl.name),
                Signal {
                    node: data,
                    width,
                    signed: decl.data_type.is_signed(),
                    connectable: false,
                },
            );
        }
        for w_port in &decl.writers {
            let addr = field_wire(self, w_port, "addr", addr_width, env);
            let en = field_wire(self, w_port, "en", 1, env);
            let _clk = field_wire(self, w_port, "clk", 1, env);
            let data = field_wire(self, w_port, "data", width, env);
            let mask = field_wire(self, w_port, "mask", 1, env);
            // Ground-typed memories have a single mask bit; effective
            // enable is en AND mask. Undriven masks default to 1 so
            // mask-less FIRRTL keeps working.
            self.builder.set_driver(mask, Expr::const_u64(1, 1));
            let en_expr = Expr::prim(
                PrimOp::And,
                vec![
                    Expr::reference(en, 1, false),
                    Expr::reference(mask, 1, false),
                ],
                vec![],
            )
            .map_err(|e| LowerError::Width(e.to_string()))?;
            self.builder.mem_write(
                mem,
                Expr::reference(addr, addr_width, false),
                Expr::reference(data, width, false),
                en_expr,
            );
        }
        Ok(())
    }

    /// Connect pass with scope overlays for `when`.
    fn connect_stmts(
        &mut self,
        stmts: &[Stmt],
        env: &Env,
        scopes: &mut Vec<HashMap<NodeId, Expr>>,
        base: &mut HashMap<NodeId, Expr>,
    ) -> Result<(), LowerError> {
        for stmt in stmts {
            match stmt {
                Stmt::Connect { loc, value } => {
                    let path = loc
                        .as_path()
                        .ok_or_else(|| LowerError::NotConnectable(format!("{loc:?}")))?;
                    let key = path.join(".");
                    let sig = env
                        .get(&key)
                        .ok_or_else(|| LowerError::UnknownRef(key.clone()))?;
                    if !sig.connectable {
                        return Err(LowerError::NotConnectable(key));
                    }
                    let expr = self.lower_expr(value, env)?;
                    let fitted = fit(expr, sig.width, sig.signed)?;
                    set_current(scopes, base, sig.node, fitted);
                }
                Stmt::Invalidate { loc } => {
                    if let Some(path) = loc.as_path() {
                        let key = path.join(".");
                        if let Some(sig) = env.get(&key) {
                            if sig.connectable {
                                set_current(
                                    scopes,
                                    base,
                                    sig.node,
                                    const_of(sig.width, sig.signed),
                                );
                            }
                        }
                    }
                }
                Stmt::When {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let cond_e = self.lower_expr(cond, env)?;
                    let cond_e = fit(cond_e, 1, false)?;

                    scopes.push(HashMap::new());
                    self.connect_stmts(then_body, env, scopes, base)?;
                    let then_scope = scopes.pop().expect("pushed");

                    scopes.push(HashMap::new());
                    self.connect_stmts(else_body, env, scopes, base)?;
                    let else_scope = scopes.pop().expect("pushed");

                    let mut keys: Vec<NodeId> = then_scope
                        .keys()
                        .chain(else_scope.keys())
                        .copied()
                        .collect();
                    keys.sort_unstable();
                    keys.dedup();
                    for node in keys {
                        let fallback = current(scopes, base, node)
                            .unwrap_or_else(|| self.default_driver(node));
                        let t = then_scope
                            .get(&node)
                            .cloned()
                            .unwrap_or_else(|| fallback.clone());
                        let e = else_scope.get(&node).cloned().unwrap_or(fallback);
                        let merged = Expr::prim(PrimOp::Mux, vec![cond_e.clone(), t, e], vec![])
                            .map_err(|er| LowerError::Width(er.to_string()))?;
                        let n = self.builder.graph().node(node);
                        let merged = fit(merged, n.width, n.signed)?;
                        set_current(scopes, base, node, merged);
                    }
                }
                // Declarations were handled in the declare pass; nothing
                // to do here except recursing, which `When` covers.
                _ => {}
            }
        }
        Ok(())
    }

    /// The value a location has when never connected on a path:
    /// registers hold their value; wires/outputs read zero.
    fn default_driver(&self, node: NodeId) -> Expr {
        let n = self.builder.graph().node(node);
        if n.kind.is_reg() {
            Expr::reference(node, n.width, n.signed)
        } else {
            const_of(n.width, n.signed)
        }
    }

    /// Materializes an expression as a node (for register reset signals
    /// that must be plain node references).
    fn materialize(&mut self, e: Expr, prefix: &str) -> NodeId {
        if let Some(id) = e.as_ref_node() {
            return id;
        }
        let n = self.builder.graph().num_nodes();
        self.builder.comb(format!("{prefix}_reset_sig{n}"), e)
    }

    fn lower_expr(&mut self, e: &ast::Expr, env: &Env) -> Result<Expr, LowerError> {
        match e {
            ast::Expr::Ref(path) => {
                let key = path.join(".");
                let sig = env.get(&key).ok_or(LowerError::UnknownRef(key))?;
                Ok(Expr::reference(sig.node, sig.width, sig.signed))
            }
            ast::Expr::Lit { value, signed } => Ok(if *signed {
                Expr::constant_signed(value.clone())
            } else {
                Expr::constant(value.clone())
            }),
            ast::Expr::ValidIf { value, .. } => self.lower_expr(value, env),
            ast::Expr::Prim { op, args, params } => {
                // Clock-domain casts are identities in this subset.
                if matches!(op.as_str(), "asClock" | "asAsyncReset") {
                    let inner = self.lower_expr(&args[0], env)?;
                    return Expr::prim(PrimOp::AsUInt, vec![inner], vec![])
                        .map_err(|e| LowerError::Width(e.to_string()));
                }
                let pop = PrimOp::from_name(op)
                    .ok_or_else(|| LowerError::Unsupported(format!("primitive op `{op}`")))?;
                let mut lowered = Vec::with_capacity(args.len());
                for a in args {
                    lowered.push(self.lower_expr(a, env)?);
                }
                // FIRRTL requires matching operand signedness; Chisel
                // emits casts, but hand-written code sometimes mixes a
                // literal in — coerce constants to the other operand.
                if lowered.len() == 2 && pop != PrimOp::Dshl && pop != PrimOp::Dshr {
                    coerce_const_sign(&mut lowered);
                }
                let params: Vec<u32> = params.iter().map(|&p| p as u32).collect();
                Expr::prim(pop, lowered, params).map_err(|e| LowerError::Width(e.to_string()))
            }
        }
    }
}

/// If exactly one of two operands is a constant with mismatched
/// signedness, reinterpret the constant.
fn coerce_const_sign(args: &mut [Expr]) {
    if args[0].signed == args[1].signed {
        return;
    }
    let (c, other_signed) = if args[0].is_const() {
        (0usize, args[1].signed)
    } else if args[1].is_const() {
        (1, args[0].signed)
    } else {
        return;
    };
    args[c].signed = other_signed;
}

/// Adapts `e` to exactly (`width`, `signed`): pad/sign-extend when
/// narrower, truncate when wider, cast signedness last.
fn fit(e: Expr, width: u32, signed: bool) -> Result<Expr, LowerError> {
    let map_err = |e: gsim_graph::WidthError| LowerError::Width(e.to_string());
    let mut cur = e;
    if cur.width < width {
        cur = Expr::prim(PrimOp::Pad, vec![cur], vec![width]).map_err(map_err)?;
    } else if cur.width > width {
        // Truncation loses the sign, recover it below if needed.
        cur = Expr::prim(PrimOp::Bits, vec![cur], vec![width - 1, 0]).map_err(map_err)?;
    }
    if cur.signed != signed {
        let op = if signed {
            PrimOp::AsSInt
        } else {
            PrimOp::AsUInt
        };
        cur = Expr::prim(op, vec![cur], vec![]).map_err(map_err)?;
    }
    Ok(cur)
}

/// Adapts a constant to (`width`, `signed`).
fn fit_value(v: &Value, width: u32, signed: bool) -> Value {
    if signed {
        v.sext_or_trunc(width)
    } else {
        v.zext_or_trunc(width)
    }
}

fn set_current(
    scopes: &mut [HashMap<NodeId, Expr>],
    base: &mut HashMap<NodeId, Expr>,
    node: NodeId,
    expr: Expr,
) {
    match scopes.last_mut() {
        Some(top) => {
            top.insert(node, expr);
        }
        None => {
            base.insert(node, expr);
        }
    }
}

fn current(
    scopes: &[HashMap<NodeId, Expr>],
    base: &HashMap<NodeId, Expr>,
    node: NodeId,
) -> Option<Expr> {
    for scope in scopes.iter().rev() {
        if let Some(e) = scope.get(&node) {
            return Some(e.clone());
        }
    }
    base.get(&node).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use gsim_graph::interp::RefInterp;

    fn compile(src: &str) -> gsim_graph::Graph {
        lower(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn lowers_counter_with_reset() {
        let g = compile(
            r#"
circuit Counter :
  module Counter :
    input clock : Clock
    input reset : UInt<1>
    output out : UInt<8>
    reg count : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    count <= tail(add(count, UInt<8>(1)), 1)
    out <= count
"#,
        );
        let mut sim = RefInterp::new(&g).unwrap();
        sim.run(10);
        assert_eq!(sim.peek_u64("out"), Some(9));
        sim.poke_u64("reset", 1).unwrap();
        sim.run(2);
        sim.poke_u64("reset", 0).unwrap();
        sim.step();
        assert_eq!(sim.peek_u64("out"), Some(0));
    }

    #[test]
    fn when_last_connect_semantics() {
        let g = compile(
            r#"
circuit W :
  module W :
    input s : UInt<1>
    input a : UInt<4>
    input b : UInt<4>
    output y : UInt<4>
    y <= a
    when s :
      y <= b
"#,
        );
        let mut sim = RefInterp::new(&g).unwrap();
        sim.poke_u64("a", 3).unwrap();
        sim.poke_u64("b", 9).unwrap();
        sim.poke_u64("s", 0).unwrap();
        sim.step();
        assert_eq!(sim.peek_u64("y"), Some(3));
        sim.poke_u64("s", 1).unwrap();
        sim.step();
        assert_eq!(sim.peek_u64("y"), Some(9));
    }

    #[test]
    fn nested_when_with_else_chain() {
        let g = compile(
            r#"
circuit N :
  module N :
    input s : UInt<2>
    output y : UInt<4>
    y <= UInt<4>(0)
    when eq(s, UInt<2>(1)) :
      y <= UInt<4>(10)
    else when eq(s, UInt<2>(2)) :
      y <= UInt<4>(11)
    else :
      y <= UInt<4>(12)
"#,
        );
        let mut sim = RefInterp::new(&g).unwrap();
        for (s, want) in [(0u64, 12u64), (1, 10), (2, 11), (3, 12)] {
            sim.poke_u64("s", s).unwrap();
            sim.step();
            assert_eq!(sim.peek_u64("y"), Some(want), "selector {s}");
        }
    }

    #[test]
    fn register_holds_when_unconnected_in_branch() {
        let g = compile(
            r#"
circuit H :
  module H :
    input clock : Clock
    input en : UInt<1>
    input d : UInt<8>
    output q : UInt<8>
    reg r : UInt<8>, clock
    when en :
      r <= d
    q <= r
"#,
        );
        let mut sim = RefInterp::new(&g).unwrap();
        sim.poke_u64("en", 1).unwrap();
        sim.poke_u64("d", 42).unwrap();
        sim.step();
        sim.poke_u64("en", 0).unwrap();
        sim.poke_u64("d", 99).unwrap();
        sim.run(5);
        assert_eq!(sim.peek_u64("q"), Some(42));
    }

    #[test]
    fn instances_flatten_with_hierarchy() {
        let g = compile(
            r#"
circuit Top :
  module Inv :
    input x : UInt<4>
    output y : UInt<4>
    y <= not(x)
  module Top :
    input a : UInt<4>
    output b : UInt<4>
    inst i0 of Inv
    inst i1 of Inv
    i0.x <= a
    i1.x <= i0.y
    b <= i1.y
"#,
        );
        assert!(g.node_by_name("i0.x").is_some());
        assert!(g.node_by_name("i1.y").is_some());
        let mut sim = RefInterp::new(&g).unwrap();
        sim.poke_u64("a", 0b1010).unwrap();
        sim.step();
        assert_eq!(sim.peek_u64("b"), Some(0b1010)); // double inversion
        assert_eq!(sim.peek_u64("i0.y"), Some(0b0101));
    }

    #[test]
    fn memory_with_latency_one() {
        let g = compile(
            r#"
circuit M :
  module M :
    input clock : Clock
    input addr : UInt<2>
    output q : UInt<8>
    mem ram :
      data-type => UInt<8>
      depth => 4
      read-latency => 1
      write-latency => 1
      reader => r
      writer => w
    ram.r.addr <= addr
    ram.r.en <= UInt<1>(1)
    ram.w.addr <= addr
    ram.w.data <= UInt<8>(7)
    ram.w.en <= UInt<1>(0)
    q <= ram.r.data
"#,
        );
        // The pipeline register for the read address must exist.
        assert!(g.node_by_name("ram.r.addr_pipe").is_some());
        let mut sim = RefInterp::new(&g).unwrap();
        sim.run(2);
        assert_eq!(sim.peek_u64("q"), Some(0));
    }

    #[test]
    fn memory_write_then_read() {
        let g = compile(
            r#"
circuit M :
  module M :
    input clock : Clock
    input waddr : UInt<2>
    input wdata : UInt<8>
    input wen : UInt<1>
    input raddr : UInt<2>
    output q : UInt<8>
    mem ram :
      data-type => UInt<8>
      depth => 4
      read-latency => 0
      write-latency => 1
      reader => r
      writer => w
    ram.r.addr <= raddr
    ram.r.en <= UInt<1>(1)
    ram.w.addr <= waddr
    ram.w.data <= wdata
    ram.w.en <= wen
    ram.w.mask <= UInt<1>(1)
    q <= ram.r.data
"#,
        );
        let mut sim = RefInterp::new(&g).unwrap();
        sim.poke_u64("waddr", 2).unwrap();
        sim.poke_u64("wdata", 0x5a).unwrap();
        sim.poke_u64("wen", 1).unwrap();
        sim.step();
        sim.poke_u64("wen", 0).unwrap();
        sim.poke_u64("raddr", 2).unwrap();
        sim.step();
        assert_eq!(sim.peek_u64("q"), Some(0x5a));
    }

    #[test]
    fn undriven_wire_reads_zero() {
        let g = compile(
            r#"
circuit U :
  module U :
    output y : UInt<8>
    wire w : UInt<8>
    w is invalid
    y <= w
"#,
        );
        let mut sim = RefInterp::new(&g).unwrap();
        sim.step();
        assert_eq!(sim.peek_u64("y"), Some(0));
    }

    #[test]
    fn connect_truncates_and_pads() {
        let g = compile(
            r#"
circuit F :
  module F :
    input a : UInt<8>
    output narrow : UInt<4>
    output wide : UInt<12>
    narrow <= a
    wide <= a
"#,
        );
        let mut sim = RefInterp::new(&g).unwrap();
        sim.poke_u64("a", 0xAB).unwrap();
        sim.step();
        assert_eq!(sim.peek_u64("narrow"), Some(0xB));
        assert_eq!(sim.peek_u64("wide"), Some(0xAB));
    }

    #[test]
    fn signed_arithmetic_flows_through() {
        let g = compile(
            r#"
circuit S :
  module S :
    input a : SInt<8>
    input b : SInt<8>
    output y : SInt<9>
    output neg : UInt<1>
    y <= add(a, b)
    neg <= lt(a, SInt<8>(0))
"#,
        );
        let mut sim = RefInterp::new(&g).unwrap();
        sim.poke("a", Value::from_i64(-5, 8)).unwrap();
        sim.poke("b", Value::from_i64(3, 8)).unwrap();
        sim.step();
        assert_eq!(sim.peek("y").unwrap().to_i128(), Some(-2));
        assert_eq!(sim.peek_u64("neg"), Some(1));
    }

    #[test]
    fn unknown_ref_is_reported() {
        let err = lower(
            &parse(
                r#"
circuit E :
  module E :
    output y : UInt<1>
    y <= nonexistent
"#,
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, LowerError::UnknownRef(n) if n == "nonexistent"));
    }

    #[test]
    fn recursive_instance_is_reported() {
        let err = lower(
            &parse(
                r#"
circuit R :
  module R :
    input a : UInt<1>
    inst r of R
    r.a <= a
"#,
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, LowerError::RecursiveInstance(_)));
    }

    #[test]
    fn stats_count_dropped_statements() {
        let (_, stats) = lower_with_stats(
            &parse(
                r#"
circuit P :
  module P :
    input clock : Clock
    input c : UInt<1>
    stop(clock, c, 1)
    printf(clock, c, "hi")
    printf(clock, c, "x=%d", c)
"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(stats.stops, 1);
        assert_eq!(stats.printfs, 2);
    }

    #[test]
    fn non_constant_reset_falls_back_to_mux() {
        let g = compile(
            r#"
circuit V :
  module V :
    input clock : Clock
    input reset : UInt<1>
    input base : UInt<8>
    output q : UInt<8>
    reg r : UInt<8>, clock with : (reset => (reset, base))
    r <= tail(add(r, UInt<8>(1)), 1)
    q <= r
"#,
        );
        let mut sim = RefInterp::new(&g).unwrap();
        sim.poke_u64("base", 100).unwrap();
        sim.poke_u64("reset", 1).unwrap();
        sim.step();
        sim.poke_u64("reset", 0).unwrap();
        sim.step();
        assert_eq!(sim.peek_u64("q"), Some(100));
        sim.step();
        assert_eq!(sim.peek_u64("q"), Some(101));
    }
}
