//! Indentation-aware FIRRTL lexer.
//!
//! FIRRTL delimits blocks by indentation (like Python). The lexer turns
//! source text into a token stream with explicit [`Tok::Indent`] /
//! [`Tok::Dedent`] pairs, strips comments (`;` to end of line) and
//! source locators (`@[...]`), and classifies identifiers, integers,
//! and string literals.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (FIRRTL keywords are context-sensitive).
    Id(String),
    /// Unsigned integer literal (decimal in source).
    Int(u64),
    /// Negative integer literal (e.g. `-3` in `SInt<4>(-3)`).
    NegInt(i64),
    /// Double-quoted string literal, unescaped.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Connect,
    /// `=>`
    FatArrow,
    /// `=`
    Eq,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// Increase of indentation (block start).
    Indent,
    /// Decrease of indentation (block end).
    Dedent,
    /// End of a logical line.
    Newline,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Id(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::NegInt(i) => write!(f, "{i}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::Lt => f.write_str("<"),
            Tok::Gt => f.write_str(">"),
            Tok::Connect => f.write_str("<="),
            Tok::FatArrow => f.write_str("=>"),
            Tok::Eq => f.write_str("="),
            Tok::Colon => f.write_str(":"),
            Tok::Comma => f.write_str(","),
            Tok::Dot => f.write_str("."),
            Tok::Indent => f.write_str("<indent>"),
            Tok::Dedent => f.write_str("<dedent>"),
            Tok::Newline => f.write_str("<newline>"),
            Tok::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token plus its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Error produced by the lexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Explanation.
    pub msg: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

fn is_id_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_id_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '$'
}

/// Tokenizes FIRRTL source.
///
/// # Errors
///
/// Returns [`LexError`] on malformed input (bad characters, unterminated
/// strings, inconsistent dedents, integer overflow).
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LexError> {
    let mut out: Vec<SpannedTok> = Vec::new();
    let mut indents: Vec<usize> = vec![0];
    for (line_idx, raw_line) in src.lines().enumerate() {
        let line_no = line_idx as u32 + 1;
        // Strip comments before measuring content (but not inside strings).
        let line = strip_comment(raw_line);
        if line.trim().is_empty() {
            continue;
        }
        let indent = line.len() - line.trim_start().len();
        let cur = *indents.last().expect("indent stack nonempty");
        if indent > cur {
            indents.push(indent);
            out.push(SpannedTok {
                tok: Tok::Indent,
                line: line_no,
            });
        } else if indent < cur {
            while *indents.last().expect("stack") > indent {
                indents.pop();
                out.push(SpannedTok {
                    tok: Tok::Dedent,
                    line: line_no,
                });
            }
            if *indents.last().expect("stack") != indent {
                return Err(LexError {
                    msg: format!("inconsistent indentation of {indent} columns"),
                    line: line_no,
                });
            }
        }
        lex_line(line.trim_start(), line_no, &mut out)?;
        out.push(SpannedTok {
            tok: Tok::Newline,
            line: line_no,
        });
    }
    let last = src.lines().count() as u32;
    while indents.len() > 1 {
        indents.pop();
        out.push(SpannedTok {
            tok: Tok::Dedent,
            line: last,
        });
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        line: last,
    });
    Ok(out)
}

/// Removes a `;` comment, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            ';' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn lex_line(s: &str, line: u32, out: &mut Vec<SpannedTok>) -> Result<(), LexError> {
    let mut chars = s.char_indices().peekable();
    let push = |out: &mut Vec<SpannedTok>, tok: Tok| out.push(SpannedTok { tok, line });
    while let Some(&(i, c)) = chars.peek() {
        match c {
            ' ' | '\t' => {
                chars.next();
            }
            '@' => {
                // Source locator `@[...]` — skip to closing bracket.
                for (_, c2) in chars.by_ref() {
                    if c2 == ']' {
                        break;
                    }
                }
            }
            '(' => {
                chars.next();
                push(out, Tok::LParen);
            }
            ')' => {
                chars.next();
                push(out, Tok::RParen);
            }
            ',' => {
                chars.next();
                push(out, Tok::Comma);
            }
            '.' => {
                chars.next();
                push(out, Tok::Dot);
            }
            ':' => {
                chars.next();
                push(out, Tok::Colon);
            }
            '>' => {
                chars.next();
                push(out, Tok::Gt);
            }
            '<' => {
                chars.next();
                if matches!(chars.peek(), Some((_, '='))) {
                    chars.next();
                    push(out, Tok::Connect);
                } else if matches!(chars.peek(), Some((_, '-'))) {
                    // `<-` partial connect: treat as connect.
                    chars.next();
                    push(out, Tok::Connect);
                } else {
                    push(out, Tok::Lt);
                }
            }
            '=' => {
                chars.next();
                if matches!(chars.peek(), Some((_, '>'))) {
                    chars.next();
                    push(out, Tok::FatArrow);
                } else {
                    push(out, Tok::Eq);
                }
            }
            '"' => {
                chars.next();
                let mut text = String::new();
                let mut closed = false;
                while let Some((_, c2)) = chars.next() {
                    match c2 {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => {
                            let esc = chars.next().map(|(_, e)| e).unwrap_or('\\');
                            text.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                other => other,
                            });
                        }
                        other => text.push(other),
                    }
                }
                if !closed {
                    return Err(LexError {
                        msg: "unterminated string literal".into(),
                        line,
                    });
                }
                push(out, Tok::Str(text));
            }
            '-' => {
                chars.next();
                let start = chars.peek().map(|&(j, _)| j).unwrap_or(s.len());
                let mut end = start;
                while let Some(&(j, c2)) = chars.peek() {
                    if c2.is_ascii_digit() {
                        end = j + 1;
                        chars.next();
                    } else {
                        break;
                    }
                }
                if end == start {
                    return Err(LexError {
                        msg: "dangling '-'".into(),
                        line,
                    });
                }
                let n: i64 = s[start..end].parse().map_err(|_| LexError {
                    msg: format!("integer {} out of range", &s[start..end]),
                    line,
                })?;
                push(out, Tok::NegInt(-n));
            }
            d if d.is_ascii_digit() => {
                let start = i;
                let mut end = i;
                while let Some(&(j, c2)) = chars.peek() {
                    if c2.is_ascii_digit() {
                        end = j + 1;
                        chars.next();
                    } else {
                        break;
                    }
                }
                let n: u64 = s[start..end].parse().map_err(|_| LexError {
                    msg: format!("integer {} out of range", &s[start..end]),
                    line,
                })?;
                push(out, Tok::Int(n));
            }
            c if is_id_start(c) => {
                let start = i;
                let mut end = i;
                while let Some(&(j, c2)) = chars.peek() {
                    if is_id_char(c2) {
                        end = j + c2.len_utf8();
                        chars.next();
                    } else if c2 == '-' {
                        // Hyphenated keywords (`data-type`, `read-latency`):
                        // consume the hyphen only when a letter follows.
                        let mut ahead = chars.clone();
                        ahead.next();
                        if matches!(ahead.peek(), Some(&(_, c3)) if c3.is_ascii_alphabetic()) {
                            end = j + 1;
                            chars.next();
                        } else {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                push(out, Tok::Id(s[start..end].to_string()));
            }
            other => {
                return Err(LexError {
                    msg: format!("unexpected character {other:?}"),
                    line,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        let t = toks("node x = add(a, UInt<8>(255))");
        assert_eq!(
            t,
            vec![
                Tok::Id("node".into()),
                Tok::Id("x".into()),
                Tok::Eq,
                Tok::Id("add".into()),
                Tok::LParen,
                Tok::Id("a".into()),
                Tok::Comma,
                Tok::Id("UInt".into()),
                Tok::Lt,
                Tok::Int(8),
                Tok::Gt,
                Tok::LParen,
                Tok::Int(255),
                Tok::RParen,
                Tok::RParen,
                Tok::Newline,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn indentation_blocks() {
        let t = toks("circuit A :\n  module A :\n    skip\n  module B :\n    skip\n");
        let indents = t.iter().filter(|t| **t == Tok::Indent).count();
        let dedents = t.iter().filter(|t| **t == Tok::Dedent).count();
        assert_eq!(indents, 3); // circuit body, module A body, module B body
        assert_eq!(dedents, 3);
    }

    #[test]
    fn comments_and_locators_stripped() {
        let t = toks("node x = a ; a comment\nnode y = b @[file.scala 10:4]\n");
        assert!(!t.iter().any(|t| matches!(t, Tok::Str(_))));
        assert_eq!(t.iter().filter(|t| **t == Tok::Eq).count(), 2);
    }

    #[test]
    fn connect_vs_lt() {
        let t = toks("x <= y\na < b");
        assert!(t.contains(&Tok::Connect));
        assert!(t.contains(&Tok::Lt));
    }

    #[test]
    fn string_escapes() {
        let t = toks(r#"printf(clock, c, "v=%d\n", x)"#);
        assert!(t.contains(&Tok::Str("v=%d\n".into())));
    }

    #[test]
    fn negative_int() {
        let t = toks("SInt<4>(-3)");
        assert!(t.contains(&Tok::NegInt(-3)));
    }

    #[test]
    fn semicolon_inside_string_kept() {
        let t = toks(r#"printf(clock, c, "a;b")"#);
        assert!(t.contains(&Tok::Str("a;b".into())));
    }

    #[test]
    fn inconsistent_dedent_rejected() {
        let err = lex("a :\n    b\n  c\n").unwrap_err();
        assert!(err.to_string().contains("indentation"));
    }

    #[test]
    fn blank_lines_ignored() {
        let t = toks("a\n\n\nb\n");
        assert_eq!(t.iter().filter(|t| **t == Tok::Newline).count(), 2);
    }
}
