//! A minimal JSON reader for the bench-regression gate.
//!
//! The vendored dependency set has no serde; `BENCH_interp.json` is
//! small and flat, so a ~150-line recursive-descent parser covers the
//! gate's needs (key lookup, number/string extraction) without pulling
//! anything in. Parsing is strict enough to reject truncated files but
//! deliberately does not implement the full spec (no `\uXXXX` escapes
//! beyond pass-through, no exponent edge-cases past `f64::parse`).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (kept as `f64`; the gate compares counters through
    /// ratios, so 53 bits of mantissa are plenty).
    Num(f64),
    /// A string (escapes resolved for the common cases).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order normalized).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let b = text.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.i,
            msg: msg.into(),
        }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {s}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let v = self.value()?;
            m.insert(k, v);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        other => {
                            return Err(self.err(&format!("unsupported escape {other:?}")));
                        }
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.b[self.i..];
                    let ch_len = std::str::from_utf8(rest)
                        .ok()
                        .and_then(|t| t.chars().next())
                        .map(|c| c.len_utf8())
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    s.push_str(std::str::from_utf8(&rest[..ch_len]).unwrap());
                    self.i += ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_schema_shape() {
        let doc = r#"{
  "schema": "gsim-bench-interp/1",
  "scale": 0.02, "cycles": 2000, "smoke": false,
  "threads": [ {"engine": "Essential", "threads": 1, "hz": 1.5e4, "speedup": 1.0} ],
  "dispatch": [], "note": "a\"b", "null": null
}"#;
        let j = parse(doc).unwrap();
        assert_eq!(
            j.get("schema").unwrap().as_str(),
            Some("gsim-bench-interp/1")
        );
        assert_eq!(j.get("cycles").unwrap().as_num(), Some(2000.0));
        assert_eq!(j.get("smoke"), Some(&Json::Bool(false)));
        let t = j.get("threads").unwrap().as_arr().unwrap();
        assert_eq!(t[0].get("hz").unwrap().as_num(), Some(1.5e4));
        assert_eq!(j.get("note").unwrap().as_str(), Some("a\"b"));
        assert_eq!(j.get("null"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1} x", "\"unterminated"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parses_committed_bench_file() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_interp.json");
        let text = std::fs::read_to_string(path).unwrap();
        let j = parse(&text).unwrap();
        assert!(j.get("dispatch").unwrap().as_arr().unwrap().len() >= 4);
    }
}
