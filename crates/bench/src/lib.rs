//! Benchmark harness regenerating every table and figure of the GSIM
//! paper's evaluation (§IV).
//!
//! Each experiment is a library function returning plain data, consumed
//! by the `repro` binary (which prints paper-style tables) and by the
//! Criterion benches. Absolute numbers differ from the paper's host
//! (and our substrate is a bytecode interpreter, not compiled C++), but
//! the *shape* — who wins, by what factor, where crossovers fall — is
//! the reproduction target; see EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod json;

pub use harness::{measure_preset, RunStats, WorkloadKind};
