//! `ablate` — per-technique ablation on a Rocket-class core: prints
//! speed and cost counters for GSIM variants with one feature removed.
use gsim::{OptOptions, SupernodeChoice};
use gsim_bench::harness::{measure_options, WorkloadKind};
use gsim_workloads::Profile;

fn main() {
    let params = gsim_designs::SynthParams::for_target("Rocket", 2348);
    let graph = gsim_designs::synth_core(&params);
    let wl = WorkloadKind::Stimulus(Profile::coremark());
    let cycles = 20_000;
    let mut variants: Vec<(&str, OptOptions)> = Vec::new();
    variants.push(("full-gsim", OptOptions::all()));
    let mut v = OptOptions::all();
    v.bit_split = false;
    variants.push(("no-bitsplit", v));
    let mut v = OptOptions::all();
    v.node_extract = false;
    variants.push(("no-extract", v));
    let mut v = OptOptions::all();
    v.node_inline = false;
    variants.push(("no-inline", v));
    let mut v = OptOptions::all();
    v.activation_cost_model = false;
    variants.push(("no-actmodel", v));
    let mut v = OptOptions::all();
    v.check_multiple_bits = false;
    variants.push(("no-wordskip", v));
    let mut v = OptOptions::all();
    v.supernode = SupernodeChoice::Mffc;
    variants.push(("gsim+mffc", v));
    let mut v = OptOptions::all();
    v.expression_simplify = false;
    v.redundant_elim = false;
    v.node_inline = false;
    v.node_extract = false;
    v.bit_split = false;
    variants.push(("no-passes", v));
    // essent preset equivalent
    let mut v = OptOptions::none();
    v.redundant_elim = true;
    v.supernode = SupernodeChoice::Mffc;
    variants.push(("essent-like", v));
    for (name, opts) in variants {
        let s = measure_options(&graph, opts, &wl, cycles);
        let c = s.counters;
        println!(
            "{:<12} hz={:>10.0} nodes={}->{} instr/cyc={:>7.0} evals/cyc={:>6.1} aexam/cyc={:>7.1} actops/cyc={:>6.1} sn={}",
            name, s.hz, s.report.nodes_before, s.report.nodes_after,
            c.instrs_executed as f64 / c.cycles as f64,
            c.node_evals as f64 / c.cycles as f64,
            c.aexam_checks as f64 / c.cycles as f64,
            c.activation_ops as f64 / c.cycles as f64,
            s.report.supernodes,
        );
    }
}
