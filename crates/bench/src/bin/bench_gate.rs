//! `bench_gate` — the CI bench-regression gate.
//!
//! ```text
//! bench_gate --baseline BENCH_interp.json --fresh smoke.json [--fresh2 smoke2.json]
//! ```
//!
//! Checks that a fresh `repro --json` output still carries the full
//! `BENCH_interp.json` schema — every required key, every dispatch
//! label the committed baseline has — and, when a second fresh run is
//! supplied, that the deterministic semantic counters agree between
//! the two runs within a 2× drift bound (they are pinned exactly equal
//! by the test suite; the gate's looser bound keeps it robust to
//! intentional counter-definition changes landing with their own
//! baseline update). Absolute `hz` numbers of fresh runs are *not*
//! gated — CI runners are too noisy — only schema and counter shape
//! are. The *committed baseline*, however, is a reviewed document:
//! its threaded-backend block must back the perf claim (jit speedup
//! ≥ 3× the interpreter with a sub-100 ms lowering pass), and every
//! fused dispatch row must execute no more instructions than its
//! no-fuse twin. Those are deterministic properties of a correct
//! measurement — a baseline violating them was measured wrong (e.g.
//! the cold-first-config inversion that warmup cycles now prevent)
//! and must not be committed.
//!
//! Exit code 0 = gate passed; 1 = failures (listed on stderr);
//! 2 = usage/IO error.

use gsim_bench::json::{self, Json};

const TOP_KEYS: &[&str] = &[
    "schema",
    "scale",
    "cycles",
    "smoke",
    "design",
    "nodes",
    "host_cores",
    "threads_note",
    "threads",
    "dispatch",
    "threaded",
    "aot",
    "session",
    "service",
    "recovery",
    "explore",
    "wave",
];
const THREAD_ROW_KEYS: &[&str] = &["engine", "threads", "hz", "speedup"];
const DISPATCH_ROW_KEYS: &[&str] = &[
    "label",
    "engine",
    "threads",
    "fusion",
    "hz",
    "instrs_per_cycle",
    "fused_fraction",
    "static_fused_pairs",
    "counters",
];
const THREADED_ROW_KEYS: &[&str] = &["label", "hz", "speedup", "lowering_ms", "counters"];
const COUNTER_KEYS: &[&str] = &[
    "cycles",
    "node_evals",
    "supernode_evals",
    "aexam_checks",
    "activation_ops",
    "activations",
    "value_changes",
    "reset_checks",
    "instrs_executed",
    "fused_executed",
];
const AOT_ROW_KEYS: &[&str] = &[
    "design",
    "emit_s",
    "rustc_s",
    "code_bytes",
    "binary_bytes",
    "data_bytes",
    "aot_hz",
    "interp_hz",
    "speedup",
];
const SESSION_ROW_KEYS: &[&str] = &[
    "design",
    "steps",
    "persistent_s",
    "persistent_hz",
    "respawn_s",
    "respawn_hz",
    "interp_hz",
    "speedup",
];

const SERVICE_ROW_KEYS: &[&str] = &[
    "design",
    "clients",
    "steps",
    "cold_open_s",
    "warm_open_s",
    "warm_speedup",
    "sessions_per_sec",
    "p50_step_us",
    "p99_step_us",
    "hits",
    "misses",
    "compiles",
    "evictions",
];

const RECOVERY_ROW_KEYS: &[&str] = &[
    "design",
    "cycles",
    "kill_at",
    "detect_s",
    "respawn_s",
    "restore_s",
    "replay_s",
    "replayed_cycles",
    "total_s",
    "recoveries",
    "bit_identical",
];

const EXPLORE_ROW_KEYS: &[&str] = &[
    "design",
    "backend",
    "branches",
    "cycles",
    "warmup",
    "explore_s",
    "branches_per_s",
    "branch_s",
    "cold_open_s",
    "speedup_vs_cold",
    "compiles",
    "workers",
    "forks",
    "recoveries",
    "retries",
    "bit_identical",
    "snapshot_owned_bytes",
    "snapshot_deep_bytes",
];

const WAVE_ROW_KEYS: &[&str] = &[
    "design",
    "mode",
    "signals",
    "cycles",
    "hz",
    "relative",
    "vcd_bytes",
    "bytes_per_cycle",
];

/// Maximum allowed ratio between the two fresh runs' counters.
const MAX_COUNTER_DRIFT: f64 = 2.0;

/// The threaded backend's perf claim, enforced on the committed
/// baseline: at least this speedup over the interpreter. Measured
/// band on the XiangShan dispatch workload is 1.2–1.4x: lowering
/// cuts indirect dispatches ~3x (fusion) and erases decode, but the
/// whole-cycle number is Amdahl-capped by the shared store/activate
/// epilogue, sweep loop, and commit (~10 us of the ~30 us interp
/// cycle), so the floor sits below the band to absorb host noise.
const MIN_THREADED_SPEEDUP: f64 = 1.10;
/// …with a lowering pass cheaper than this (milliseconds) — the whole
/// point is a cold start with no compile in it.
const MAX_LOWERING_MS: f64 = 100.0;

/// The fault-tolerance claim, enforced on the committed baseline's
/// `recovery` rows: killing the AoT child mid-run must be detected,
/// respawned, restored, and replayed within this many seconds. The
/// measured end-to-end recovery sits well under a second (dominated
/// by the child process respawn); the bound absorbs slow hosts while
/// still catching a recovery path that degenerated into a recompile
/// or a full rerun.
const MAX_RECOVERY_TOTAL_S: f64 = 5.0;

/// The scenario-exploration claim, enforced on the committed
/// baseline's `explore` aot row: forking a warmed compiled session
/// must beat opening a cold session per branch by at least this
/// factor. The cold path pays emit + `rustc -O` + spawn + warmup
/// (seconds); a forked branch pays an export/import round trip plus
/// the branch run (milliseconds), so the real ratio is in the
/// hundreds — 10x is the floor that still catches the pool quietly
/// recompiling per branch.
const MIN_EXPLORE_SPEEDUP_VS_COLD: f64 = 10.0;

/// The waveform subsystem's zero-cost-when-off claim, enforced on the
/// committed baseline: with no trace active, the wave experiment's
/// `off` row must run at least this fraction of the dispatch
/// experiment's untraced "GSIM" speed on the same design and
/// workload. Tracing is gated at lowering time, so the true ratio is
/// ~1.0; the floor absorbs run-to-run noise between the two
/// experiments.
const MIN_WAVE_OFF_RATIO: f64 = 0.95;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline: Option<String> = None;
    let mut fresh: Option<String> = None;
    let mut fresh2: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline = it.next().cloned(),
            "--fresh" => fresh = it.next().cloned(),
            "--fresh2" => fresh2 = it.next().cloned(),
            "--help" | "-h" => {
                usage();
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    let baseline = baseline.unwrap_or_else(|| die("--baseline is required"));
    let fresh = fresh.unwrap_or_else(|| die("--fresh is required"));

    let base = load(&baseline);
    let new = load(&fresh);
    let mut failures: Vec<String> = Vec::new();

    check_schema(&new, &fresh, &mut failures);
    check_labels(&base, &new, &mut failures);
    check_baseline_claims(&base, &baseline, &mut failures);
    check_fusion_sanity(&base, &baseline, &mut failures);
    check_fusion_sanity(&new, &fresh, &mut failures);

    if let Some(fresh2) = fresh2 {
        let new2 = load(&fresh2);
        check_schema(&new2, &fresh2, &mut failures);
        check_counter_drift(&new, &new2, &mut failures);
    }

    if failures.is_empty() {
        println!("bench gate: OK ({fresh} matches the {baseline} schema)");
    } else {
        for f in &failures {
            eprintln!("bench gate FAIL: {f}");
        }
        std::process::exit(1);
    }
}

fn load(path: &str) -> Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    json::parse(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")))
}

/// Every required key present, with the right container shapes.
fn check_schema(doc: &Json, path: &str, failures: &mut Vec<String>) {
    for &k in TOP_KEYS {
        if doc.get(k).is_none() {
            failures.push(format!("{path}: missing top-level key {k:?}"));
        }
    }
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s.starts_with("gsim-bench-interp/") => {}
        other => failures.push(format!("{path}: unexpected schema tag {other:?}")),
    }
    for (arr_key, row_keys) in [
        ("threads", THREAD_ROW_KEYS),
        ("dispatch", DISPATCH_ROW_KEYS),
        ("threaded", THREADED_ROW_KEYS),
        ("aot", AOT_ROW_KEYS),
        ("session", SESSION_ROW_KEYS),
        ("service", SERVICE_ROW_KEYS),
        ("recovery", RECOVERY_ROW_KEYS),
        ("explore", EXPLORE_ROW_KEYS),
        ("wave", WAVE_ROW_KEYS),
    ] {
        let Some(rows) = doc.get(arr_key).and_then(Json::as_arr) else {
            failures.push(format!("{path}: {arr_key:?} is not an array"));
            continue;
        };
        // The AoT-backed blocks may legitimately be empty on a
        // rustc-less host; `check_labels` still catches them
        // *vanishing* relative to a baseline that has them.
        // (`explore` is not in this list: its interp and jit rows
        // need no rustc, so the block must never be empty.)
        let aot_backed = matches!(arr_key, "aot" | "session" | "service" | "recovery");
        if !aot_backed && rows.is_empty() {
            failures.push(format!("{path}: {arr_key:?} is empty"));
        }
        for (i, row) in rows.iter().enumerate() {
            for &k in row_keys {
                if row.get(k).is_none() {
                    failures.push(format!("{path}: {arr_key}[{i}] missing key {k:?}"));
                }
            }
            if matches!(arr_key, "dispatch" | "threaded") {
                if let Some(c) = row.get("counters") {
                    for &k in COUNTER_KEYS {
                        if c.get(k).is_none() {
                            failures.push(format!("{path}: {arr_key}[{i}].counters missing {k:?}"));
                        }
                    }
                }
            }
        }
    }
}

/// Every dispatch label of the committed baseline must still be
/// produced by a fresh run, and an AoT block present in the baseline
/// cannot silently become empty (configurations cannot vanish).
fn check_labels(base: &Json, new: &Json, failures: &mut Vec<String>) {
    let arr_len =
        |doc: &Json, key: &str| doc.get(key).and_then(Json::as_arr).map_or(0, <[Json]>::len);
    for key in ["aot", "session", "service", "recovery", "explore"] {
        if arr_len(base, key) > 0 && arr_len(new, key) == 0 {
            failures.push(format!(
                "fresh run recorded no {key:?} rows although the baseline has them \
                 (rustc missing on the runner, or the AoT build broke)"
            ));
        }
    }
    let labels = |doc: &Json, key: &str| -> Vec<String> {
        doc.get(key)
            .and_then(Json::as_arr)
            .map(|rows| {
                rows.iter()
                    .filter_map(|r| r.get("label").and_then(Json::as_str).map(str::to_string))
                    .collect()
            })
            .unwrap_or_default()
    };
    for key in ["dispatch", "threaded"] {
        let new_labels = labels(new, key);
        for l in labels(base, key) {
            if !new_labels.contains(&l) {
                failures.push(format!(
                    "fresh run lost the {key} configuration {l:?} present in the baseline"
                ));
            }
        }
    }
}

/// The committed baseline must back the threaded backend's perf
/// claim. Fresh CI runs are exempt (noisy runners), but the document
/// the README cites has to hold up.
fn check_baseline_claims(base: &Json, path: &str, failures: &mut Vec<String>) {
    let Some(rows) = base.get("threaded").and_then(Json::as_arr) else {
        return; // missing block already reported by check_schema
    };
    let Some(jit) = rows
        .iter()
        .find(|r| r.get("label").and_then(Json::as_str) == Some("GSIM-JIT"))
    else {
        failures.push(format!("{path}: threaded block has no \"GSIM-JIT\" row"));
        return;
    };
    // NaN (a missing or non-numeric field) must fail both claims.
    let num = |k: &str| jit.get(k).and_then(Json::as_num).unwrap_or(f64::NAN);
    use std::cmp::Ordering::Less;
    let speedup = num("speedup");
    if matches!(
        speedup.partial_cmp(&MIN_THREADED_SPEEDUP),
        None | Some(Less)
    ) {
        failures.push(format!(
            "{path}: committed GSIM-JIT speedup {speedup:.2}x is below the claimed \
             {MIN_THREADED_SPEEDUP}x over the interpreter"
        ));
    }
    let lowering = num("lowering_ms");
    if lowering.partial_cmp(&MAX_LOWERING_MS) != Some(Less) {
        failures.push(format!(
            "{path}: committed GSIM-JIT lowering pass took {lowering:.1} ms \
             (claim: under {MAX_LOWERING_MS} ms)"
        ));
    }
    check_recovery_claims(base, path, failures);
    check_explore_claims(base, path, failures);
    check_wave_claims(base, path, failures);
}

/// The committed baseline's `wave` rows must back the waveform
/// subsystem's claims. Zero-cost-when-off: the off row's speed must
/// be at least [`MIN_WAVE_OFF_RATIO`] of the dispatch experiment's
/// untraced "GSIM" row (same design, same workload, no tracer
/// anywhere) — a lower number means tracing leaked a per-store cost
/// into the hot loop even when no trace is active. Measured-when-on:
/// the traced rows must actually have produced VCD bytes (a full
/// trace that wrote nothing was measured wrong).
fn check_wave_claims(base: &Json, path: &str, failures: &mut Vec<String>) {
    use std::cmp::Ordering::{Greater, Less};
    let Some(rows) = base.get("wave").and_then(Json::as_arr) else {
        return; // missing block already reported by check_schema
    };
    let row = |mode: &str| {
        rows.iter()
            .find(|r| r.get("mode").and_then(Json::as_str) == Some(mode))
    };
    let num = |r: &Json, k: &str| r.get(k).and_then(Json::as_num).unwrap_or(f64::NAN);
    let Some(off) = row("off") else {
        failures.push(format!("{path}: wave block has no \"off\" row"));
        return;
    };
    let dispatch_hz = base
        .get("dispatch")
        .and_then(Json::as_arr)
        .and_then(|rows| {
            rows.iter()
                .find(|r| r.get("label").and_then(Json::as_str) == Some("GSIM"))
        })
        .map_or(f64::NAN, |r| num(r, "hz"));
    let off_hz = num(off, "hz");
    let floor = MIN_WAVE_OFF_RATIO * dispatch_hz;
    if matches!(off_hz.partial_cmp(&floor), None | Some(Less)) {
        failures.push(format!(
            "{path}: wave off row runs at {off_hz:.0} cyc/s vs the dispatch GSIM row's \
             {dispatch_hz:.0} — below the {MIN_WAVE_OFF_RATIO}x zero-cost-when-off floor"
        ));
    }
    for mode in ["subset", "full"] {
        match row(mode) {
            None => failures.push(format!("{path}: wave block has no {mode:?} row")),
            Some(r) => {
                if !matches!(num(r, "vcd_bytes").partial_cmp(&0.0), Some(Greater)) {
                    failures.push(format!(
                        "{path}: wave {mode} row emitted no VCD bytes — the trace was not live"
                    ));
                }
            }
        }
    }
}

/// The committed baseline's `explore` rows must back the
/// snapshot-fork claims: every branch bit-identical to the sequential
/// reference replay on every backend, no fatal-error retries, and on
/// the aot row exactly one host-compiler invocation with a per-branch
/// speedup of at least [`MIN_EXPLORE_SPEEDUP_VS_COLD`] over a cold
/// session per branch.
fn check_explore_claims(base: &Json, path: &str, failures: &mut Vec<String>) {
    use std::cmp::Ordering::Less;
    let Some(rows) = base.get("explore").and_then(Json::as_arr) else {
        return; // missing block already reported by check_schema
    };
    for row in rows {
        let backend = row
            .get("backend")
            .and_then(Json::as_str)
            .unwrap_or("<unnamed>");
        if row.get("bit_identical") != Some(&Json::Bool(true)) {
            failures.push(format!(
                "{path}: explore row {backend:?} is not bit-identical to the \
                 sequential reference replay — forked branches are diverging wrong"
            ));
        }
        let num = |k: &str| row.get(k).and_then(Json::as_num).unwrap_or(f64::NAN);
        if num("retries") != 0.0 {
            failures.push(format!(
                "{path}: explore row {backend:?} needed {} fatal-error retries \
                 on an uninjected run",
                num("retries")
            ));
        }
        if backend == "aot" {
            if num("compiles") != 1.0 {
                failures.push(format!(
                    "{path}: explore aot row recorded {} compiles — the pool must \
                     fork siblings of one compiled binary (expected exactly 1)",
                    num("compiles")
                ));
            }
            let speedup = num("speedup_vs_cold");
            if matches!(
                speedup.partial_cmp(&MIN_EXPLORE_SPEEDUP_VS_COLD),
                None | Some(Less)
            ) {
                failures.push(format!(
                    "{path}: explore aot row's speedup vs a cold session per branch \
                     is {speedup:.1}x (claim: at least {MIN_EXPLORE_SPEEDUP_VS_COLD}x)"
                ));
            }
        }
    }
}

/// The committed baseline's `recovery` rows must back the
/// fault-tolerance claims: recovery is bit-identical to an
/// uninterrupted run and bounded in time. (An empty block is legal —
/// a rustc-less measurement host — and caught by `check_labels` when
/// it *vanishes* relative to a baseline that had rows.)
fn check_recovery_claims(base: &Json, path: &str, failures: &mut Vec<String>) {
    use std::cmp::Ordering::Less;
    let Some(rows) = base.get("recovery").and_then(Json::as_arr) else {
        return; // missing block already reported by check_schema
    };
    for row in rows {
        let design = row
            .get("design")
            .and_then(Json::as_str)
            .unwrap_or("<unnamed>");
        if row.get("bit_identical") != Some(&Json::Bool(true)) {
            failures.push(format!(
                "{path}: recovery row {design:?} is not bit-identical to the \
                 uninterrupted run — replay-based recovery is broken"
            ));
        }
        let total = row
            .get("total_s")
            .and_then(Json::as_num)
            .unwrap_or(f64::NAN);
        if total.partial_cmp(&MAX_RECOVERY_TOTAL_S) != Some(Less) {
            failures.push(format!(
                "{path}: recovery row {design:?} took {total:.2} s end to end \
                 (claim: under {MAX_RECOVERY_TOTAL_S} s)"
            ));
        }
        let recoveries = row
            .get("recoveries")
            .and_then(Json::as_num)
            .unwrap_or(f64::NAN);
        if recoveries != 1.0 {
            failures.push(format!(
                "{path}: recovery row {design:?} recorded {recoveries} recoveries \
                 for one injected kill (expected exactly 1)"
            ));
        }
    }
}

/// Superinstruction fusion can only shrink the executed stream, so a
/// fused dispatch row executing *more* instructions than its no-fuse
/// twin means the measurement itself is broken. This holds
/// deterministically, so it is checked on fresh runs too.
fn check_fusion_sanity(doc: &Json, path: &str, failures: &mut Vec<String>) {
    let Some(rows) = doc.get("dispatch").and_then(Json::as_arr) else {
        return;
    };
    let executed = |row: &Json| {
        row.get("counters")
            .and_then(|c| c.get("instrs_executed"))
            .and_then(Json::as_num)
    };
    for row in rows {
        let Some(label) = row.get("label").and_then(Json::as_str) else {
            continue;
        };
        let twin_label = format!("{label} no-fuse");
        let Some(twin) = rows
            .iter()
            .find(|r| r.get("label").and_then(Json::as_str) == Some(twin_label.as_str()))
        else {
            continue;
        };
        if let (Some(on), Some(off)) = (executed(row), executed(twin)) {
            if on > off {
                failures.push(format!(
                    "{path}: {label:?} executed {on} instructions with fusion on but {off} \
                     with it off — fusion cannot grow the stream; the measurement is broken"
                ));
            }
        }
    }
}

/// The semantic counters of two fresh runs over the same smoke
/// configuration must agree within [`MAX_COUNTER_DRIFT`].
fn check_counter_drift(a: &Json, b: &Json, failures: &mut Vec<String>) {
    let rows = |doc: &Json| -> Vec<(String, Json)> {
        doc.get("dispatch")
            .and_then(Json::as_arr)
            .map(|rows| {
                rows.iter()
                    .filter_map(|r| {
                        Some((
                            r.get("label")?.as_str()?.to_string(),
                            r.get("counters")?.clone(),
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let rb = rows(b);
    for (label, ca) in rows(a) {
        let Some((_, cb)) = rb.iter().find(|(l, _)| *l == label) else {
            failures.push(format!("second run lost dispatch configuration {label:?}"));
            continue;
        };
        for &k in COUNTER_KEYS {
            let (va, vb) = (
                ca.get(k).and_then(Json::as_num).unwrap_or(f64::NAN),
                cb.get(k).and_then(Json::as_num).unwrap_or(f64::NAN),
            );
            if va == 0.0 && vb == 0.0 {
                continue;
            }
            let ratio = if va <= 0.0 || vb <= 0.0 {
                f64::INFINITY
            } else {
                (va / vb).max(vb / va)
            };
            if ratio.is_nan() || ratio > MAX_COUNTER_DRIFT {
                failures.push(format!(
                    "{label:?}: counter {k} drifted {ratio:.2}x between runs ({va} vs {vb}, bound {MAX_COUNTER_DRIFT}x)"
                ));
            }
        }
    }
}

fn usage() {
    println!("bench_gate --baseline BENCH_interp.json --fresh smoke.json [--fresh2 smoke2.json]");
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    usage();
    std::process::exit(2);
}
