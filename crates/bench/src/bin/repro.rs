//! `repro` — regenerates the GSIM paper's tables and figures.
//!
//! ```text
//! repro [all|table1|threads|fig6|fig7|fig8|fig9|table3|table4|factors]
//!       [--scale F] [--cycles N]
//! ```
//!
//! `--scale` sizes the synthetic designs relative to the paper's node
//! counts (default 0.02; 1.0 regenerates paper-size designs, including
//! a ~6.2M-node XiangShan stand-in — expect long compile times).

use gsim_bench::experiments as exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut cfg = exp::Config::default();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                cfg.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--cycles" => {
                cfg.cycles = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--cycles needs a number"));
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other if !other.starts_with('-') => which.push(other.to_string()),
            other => die(&format!("unknown flag {other}")),
        }
    }
    if which.is_empty() {
        which.push("all".into());
    }
    let all = which.iter().any(|w| w == "all");
    let wants = |name: &str| all || which.iter().any(|w| w == name);

    eprintln!(
        "# building design suite (scale {}, {} cycles per run)...",
        cfg.scale, cfg.cycles
    );
    let suite = exp::build_suite(&cfg);
    for d in &suite {
        eprintln!(
            "#   {:<10} {:>8} nodes {:>9} edges (paper: {} nodes)",
            d.name,
            d.graph.num_nodes(),
            d.graph.num_edges(),
            d.paper_nodes
        );
    }

    if wants("table1") {
        section("Table I");
        exp::print_table1(&exp::table1(&suite, &cfg));
    }
    if wants("threads") {
        section("Table I (thread scaling)");
        let d = suite
            .iter()
            .find(|d| d.name == "XiangShan")
            .expect("suite contains XiangShan");
        exp::print_table1_threads(d.name, &exp::table1_threads(d, &cfg));
    }
    if wants("fig6") {
        section("Figure 6");
        exp::print_fig6(&exp::fig6(&suite, &cfg));
    }
    if wants("fig7") {
        section("Figure 7");
        exp::print_fig7(&exp::fig7(&suite, &cfg));
    }
    if wants("fig8") {
        section("Figure 8");
        exp::print_fig8(&exp::fig8(&suite, &cfg));
    }
    if wants("fig9") {
        section("Figure 9");
        exp::print_fig9(&exp::fig9(&suite, &cfg));
    }
    if wants("table3") {
        section("Table III");
        exp::print_table3(&exp::table3(&suite, &cfg));
    }
    if wants("table4") {
        section("Table IV");
        exp::print_table4(&exp::table4(&suite));
    }
    if wants("factors") {
        section("Cost-model factors");
        exp::print_factors(&exp::factors(&suite, &cfg));
    }
}

fn section(name: &str) {
    println!("\n{}", "=".repeat(64));
    println!("== {name}");
    println!("{}", "=".repeat(64));
}

fn usage() {
    println!(
        "repro [all|table1|threads|fig6|fig7|fig8|fig9|table3|table4|factors] \
         [--scale F] [--cycles N]"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    usage();
    std::process::exit(2);
}
