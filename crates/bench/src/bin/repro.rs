//! `repro` — regenerates the GSIM paper's tables and figures.
//!
//! ```text
//! repro [all|table1|threads|dispatch|threaded|aot|session|service|recovery|explore|wave|fig6|fig7|fig8|fig9|table3|table4|factors]
//!       [--scale F] [--cycles N] [--json [PATH]]
//! ```
//!
//! `--scale` sizes the synthetic designs relative to the paper's node
//! counts (default 0.02; 1.0 regenerates paper-size designs, including
//! a ~6.2M-node XiangShan stand-in — expect long compile times).
//!
//! `--json` additionally runs the thread-scaling, dispatch-breakdown,
//! threaded-backend, AoT, persistent-session, simulation-service,
//! crash-recovery, scenario-exploration, and waveform-capture
//! experiments and writes their
//! cycles/sec + counter breakdowns (plus `host_cores`, the AoT
//! emit/rustc/size/speed rows, and the session-amortization rows) to
//! `BENCH_interp.json` (or the given path) so CI can track the
//! simulator's performance trajectory. With `GSIM_BENCH_SMOKE=1`
//! the suite shrinks to tiny designs and short runs, unless
//! `--scale` / `--cycles` are given explicitly.

use gsim_bench::experiments as exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut cfg = exp::Config::default();
    let mut explicit_size = false;
    let mut json_path: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                cfg.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
                explicit_size = true;
            }
            "--cycles" => {
                cfg.cycles = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--cycles needs a number"));
                explicit_size = true;
            }
            "--json" => {
                // Optional path operand.
                let path = match it.peek() {
                    Some(p) if p.ends_with(".json") => it.next().cloned(),
                    _ => None,
                };
                json_path = Some(path.unwrap_or_else(|| "BENCH_interp.json".into()));
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other if !other.starts_with('-') => which.push(other.to_string()),
            other => die(&format!("unknown flag {other}")),
        }
    }
    let smoke = std::env::var_os("GSIM_BENCH_SMOKE").is_some();
    if smoke && !explicit_size {
        cfg.scale = 0.002;
        cfg.cycles = 256;
    }
    if which.is_empty() && json_path.is_none() {
        which.push("all".into());
    }
    let all = which.iter().any(|w| w == "all");
    let wants = |name: &str| all || which.iter().any(|w| w == name);
    let json = json_path.is_some();

    eprintln!(
        "# building design suite (scale {}, {} cycles per run{})...",
        cfg.scale,
        cfg.cycles,
        if smoke { ", smoke" } else { "" }
    );
    let suite = exp::build_suite(&cfg);
    for d in &suite {
        eprintln!(
            "#   {:<10} {:>8} nodes {:>9} edges (paper: {} nodes)",
            d.name,
            d.graph.num_nodes(),
            d.graph.num_edges(),
            d.paper_nodes
        );
    }
    let xiangshan = || {
        suite
            .iter()
            .find(|d| d.name == "XiangShan")
            .expect("suite contains XiangShan")
    };

    if wants("table1") {
        section("Table I");
        exp::print_table1(&exp::table1(&suite, &cfg));
    }
    // The JSON perf record always carries the thread-scaling and
    // dispatch-breakdown numbers, whether or not they print.
    let mut threads_rows = None;
    if wants("threads") || json {
        threads_rows = Some(exp::table1_threads(xiangshan(), &cfg));
    }
    if wants("threads") {
        section("Table I (thread scaling)");
        exp::print_table1_threads(xiangshan().name, threads_rows.as_ref().unwrap());
    }
    let mut dispatch_rows = None;
    if wants("dispatch") || json {
        dispatch_rows = Some(exp::dispatch_breakdown(xiangshan(), &cfg));
    }
    if wants("dispatch") {
        section("Dispatch breakdown");
        exp::print_dispatch(xiangshan().name, dispatch_rows.as_ref().unwrap());
    }
    let mut threaded_rows = None;
    if wants("threaded") || json {
        threaded_rows = Some(exp::threaded(xiangshan(), &cfg));
    }
    if wants("threaded") {
        section("Threaded-code backend");
        exp::print_threaded(xiangshan().name, threaded_rows.as_ref().unwrap());
    }
    let mut aot_rows = None;
    if wants("aot") || json {
        aot_rows = Some(exp::aot(&suite, &cfg));
    }
    if wants("aot") {
        section("AoT backend");
        exp::print_aot(aot_rows.as_ref().unwrap());
    }
    let mut session_rows = None;
    if wants("session") || json {
        session_rows = Some(exp::session_amortization(&suite, &cfg));
    }
    if wants("session") {
        section("Persistent session");
        exp::print_session(session_rows.as_ref().unwrap());
    }
    let mut service_rows = None;
    if wants("service") || json {
        service_rows = Some(exp::service(&cfg));
    }
    if wants("service") {
        section("Simulation service");
        exp::print_service(service_rows.as_ref().unwrap());
    }
    let mut recovery_rows = None;
    if wants("recovery") || json {
        recovery_rows = Some(exp::recovery(&suite, &cfg));
    }
    if wants("recovery") {
        section("Crash recovery");
        exp::print_recovery(recovery_rows.as_ref().unwrap());
    }
    let mut explore_rows = None;
    if wants("explore") || json {
        explore_rows = Some(exp::explore(&suite, &cfg));
    }
    if wants("explore") {
        section("Scenario exploration");
        exp::print_explore(explore_rows.as_ref().unwrap());
    }
    let mut wave_rows = None;
    if wants("wave") || json {
        wave_rows = Some(exp::wave(xiangshan(), &cfg));
    }
    if wants("wave") {
        section("Waveform capture");
        exp::print_wave(xiangshan().name, wave_rows.as_ref().unwrap());
    }
    if wants("fig6") {
        section("Figure 6");
        exp::print_fig6(&exp::fig6(&suite, &cfg));
    }
    if wants("fig7") {
        section("Figure 7");
        exp::print_fig7(&exp::fig7(&suite, &cfg));
    }
    if wants("fig8") {
        section("Figure 8");
        exp::print_fig8(&exp::fig8(&suite, &cfg));
    }
    if wants("fig9") {
        section("Figure 9");
        exp::print_fig9(&exp::fig9(&suite, &cfg));
    }
    if wants("table3") {
        section("Table III");
        exp::print_table3(&exp::table3(&suite, &cfg));
    }
    if wants("table4") {
        section("Table IV");
        exp::print_table4(&exp::table4(&suite));
    }
    if wants("factors") {
        section("Cost-model factors");
        exp::print_factors(&exp::factors(&suite, &cfg));
    }

    if let Some(path) = json_path {
        let d = xiangshan();
        let body = render_json(
            &cfg,
            smoke,
            d.name,
            d.graph.num_nodes(),
            threads_rows.as_deref().unwrap_or(&[]),
            dispatch_rows.as_deref().unwrap_or(&[]),
            threaded_rows.as_deref().unwrap_or(&[]),
            aot_rows.as_deref().unwrap_or(&[]),
            session_rows.as_deref().unwrap_or(&[]),
            service_rows.as_deref().unwrap_or(&[]),
            recovery_rows.as_deref().unwrap_or(&[]),
            explore_rows.as_deref().unwrap_or(&[]),
            wave_rows.as_deref().unwrap_or(&[]),
        );
        std::fs::write(&path, body).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        eprintln!("# wrote {path}");
    }
}

/// Hand-rolled JSON: the vendored dependency set has no serde, and the
/// schema is small and flat.
#[allow(clippy::too_many_arguments)]
fn render_json(
    cfg: &exp::Config,
    smoke: bool,
    design: &str,
    nodes: usize,
    threads: &[exp::ThreadScalingRow],
    dispatch: &[exp::DispatchRow],
    threaded: &[exp::ThreadedRow],
    aot: &[exp::AotRow],
    session: &[exp::SessionRow],
    service: &[exp::ServiceRow],
    recovery: &[exp::RecoveryRow],
    explore: &[exp::ExploreRow],
    wave: &[exp::WaveRow],
) -> String {
    let host_cores = exp::host_cores();
    let max_threads = threads.iter().map(|r| r.threads).max().unwrap_or(1);
    let threads_note = if host_cores < max_threads {
        format!(
            "measured on a {host_cores}-core host: EssentialMt rows above {host_cores} \
             worker(s) serialize on the level barriers and measure barrier overhead, \
             not engine scaling"
        )
    } else {
        format!("measured on a {host_cores}-core host; thread counts up to {max_threads} have real cores")
    };
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"gsim-bench-interp/8\",\n");
    s.push_str(&format!(
        "  \"scale\": {}, \"cycles\": {}, \"smoke\": {},\n",
        cfg.scale, cfg.cycles, smoke
    ));
    s.push_str(&format!(
        "  \"design\": \"{design}\", \"nodes\": {nodes},\n"
    ));
    s.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    s.push_str(&format!("  \"threads_note\": \"{threads_note}\",\n"));
    s.push_str("  \"threads\": [\n");
    for (i, r) in threads.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"engine\": \"{}\", \"threads\": {}, \"hz\": {:.1}, \"speedup\": {:.4}}}{}\n",
            r.engine,
            r.threads,
            r.hz,
            r.speedup,
            comma(i, threads.len())
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"aot\": [\n");
    for (i, r) in aot.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"design\": \"{}\", \"emit_s\": {:.4}, \"rustc_s\": {:.3}, \
             \"code_bytes\": {}, \"binary_bytes\": {}, \"data_bytes\": {}, \
             \"aot_hz\": {:.1}, \"interp_hz\": {:.1}, \"speedup\": {:.2}}}{}\n",
            r.design,
            r.emit_s,
            r.rustc_s,
            r.code_bytes,
            r.binary_bytes,
            r.data_bytes,
            r.aot_hz,
            r.interp_hz,
            r.speedup,
            comma(i, aot.len())
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"session\": [\n");
    for (i, r) in session.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"design\": \"{}\", \"steps\": {}, \"persistent_s\": {:.4}, \
             \"persistent_hz\": {:.1}, \"respawn_s\": {:.4}, \"respawn_hz\": {:.1}, \
             \"interp_hz\": {:.1}, \"speedup\": {:.2}}}{}\n",
            r.design,
            r.steps,
            r.persistent_s,
            r.persistent_hz,
            r.respawn_s,
            r.respawn_hz,
            r.interp_hz,
            r.speedup,
            comma(i, session.len())
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"service\": [\n");
    for (i, r) in service.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"design\": \"{}\", \"clients\": {}, \"steps\": {},              \"cold_open_s\": {:.4}, \"warm_open_s\": {:.4}, \"warm_speedup\": {:.1},              \"sessions_per_sec\": {:.2}, \"p50_step_us\": {:.1}, \"p99_step_us\": {:.1},              \"hits\": {}, \"misses\": {}, \"compiles\": {}, \"evictions\": {}}}{}\n",
            r.design,
            r.clients,
            r.steps,
            r.cold_open_s,
            r.warm_open_s,
            r.warm_speedup,
            r.sessions_per_sec,
            r.p50_step_us,
            r.p99_step_us,
            r.hits,
            r.misses,
            r.compiles,
            r.evictions,
            comma(i, service.len())
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"recovery\": [\n");
    for (i, r) in recovery.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"design\": \"{}\", \"cycles\": {}, \"kill_at\": {}, \
             \"detect_s\": {:.4}, \"respawn_s\": {:.4}, \"restore_s\": {:.4}, \
             \"replay_s\": {:.4}, \"replayed_cycles\": {}, \"total_s\": {:.4}, \
             \"recoveries\": {}, \"bit_identical\": {}}}{}\n",
            r.design,
            r.cycles,
            r.kill_at,
            r.detect_s,
            r.respawn_s,
            r.restore_s,
            r.replay_s,
            r.replayed_cycles,
            r.total_s,
            r.recoveries,
            r.bit_identical,
            comma(i, recovery.len())
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"explore\": [\n");
    for (i, r) in explore.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"design\": \"{}\", \"backend\": \"{}\", \"branches\": {}, \
             \"cycles\": {}, \"warmup\": {}, \"explore_s\": {:.4}, \
             \"branches_per_s\": {:.2}, \"branch_s\": {:.5}, \"cold_open_s\": {:.4}, \
             \"speedup_vs_cold\": {:.2}, \"compiles\": {}, \"workers\": {}, \
             \"forks\": {}, \"recoveries\": {}, \"retries\": {}, \
             \"bit_identical\": {}, \"snapshot_owned_bytes\": {}, \
             \"snapshot_deep_bytes\": {}}}{}\n",
            r.design,
            r.backend,
            r.branches,
            r.cycles,
            r.warmup,
            r.explore_s,
            r.branches_per_s,
            r.branch_s,
            r.cold_open_s,
            r.speedup_vs_cold,
            r.compiles,
            r.workers,
            r.forks,
            r.recoveries,
            r.retries,
            r.bit_identical,
            r.snapshot_owned_bytes,
            r.snapshot_deep_bytes,
            comma(i, explore.len())
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"wave\": [\n");
    for (i, r) in wave.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"design\": \"{}\", \"mode\": \"{}\", \"signals\": {}, \
             \"cycles\": {}, \"hz\": {:.1}, \"relative\": {:.4}, \
             \"vcd_bytes\": {}, \"bytes_per_cycle\": {:.2}}}{}\n",
            r.design,
            r.mode,
            r.signals,
            r.cycles,
            r.hz,
            r.relative,
            r.vcd_bytes,
            r.bytes_per_cycle,
            comma(i, wave.len())
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"threaded\": [\n");
    for (i, r) in threaded.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"label\": \"{}\", \"hz\": {:.1}, \"speedup\": {:.3}, \
             \"lowering_ms\": {:.3}, \"counters\": {}}}{}\n",
            r.label,
            r.hz,
            r.speedup,
            r.lowering_ms,
            counters_json(&r.counters),
            comma(i, threaded.len())
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"dispatch\": [\n");
    for (i, r) in dispatch.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"label\": \"{}\", \"engine\": \"{}\", \"threads\": {}, \"fusion\": {}, \
             \"hz\": {:.1}, \"instrs_per_cycle\": {:.3}, \"fused_fraction\": {:.4}, \
             \"static_fused_pairs\": {}, \"counters\": {}}}{}\n",
            r.label,
            r.engine,
            r.threads,
            r.fusion,
            r.hz,
            r.instrs_per_cycle,
            r.fused_fraction,
            r.static_fused_pairs,
            counters_json(&r.counters),
            comma(i, dispatch.len())
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

fn counters_json(c: &gsim::Counters) -> String {
    format!(
        "{{\"cycles\": {}, \"node_evals\": {}, \"supernode_evals\": {}, \"aexam_checks\": {}, \
         \"activation_ops\": {}, \"activations\": {}, \"value_changes\": {}, \
         \"reset_checks\": {}, \"instrs_executed\": {}, \"fused_executed\": {}}}",
        c.cycles,
        c.node_evals,
        c.supernode_evals,
        c.aexam_checks,
        c.activation_ops,
        c.activations,
        c.value_changes,
        c.reset_checks,
        c.instrs_executed,
        c.fused_executed
    )
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

fn section(name: &str) {
    println!("\n{}", "=".repeat(64));
    println!("== {name}");
    println!("{}", "=".repeat(64));
}

fn usage() {
    println!(
        "repro [all|table1|threads|dispatch|threaded|aot|session|service|recovery|explore|wave|fig6|fig7|fig8|fig9|table3|table4|factors] \
         [--scale F] [--cycles N] [--json [PATH]]"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    usage();
    std::process::exit(2);
}
