//! Shared measurement machinery: build a simulator for a (design,
//! preset) pair, drive a workload, and report simulation speed plus the
//! architecture-independent counters.

use gsim::{CompileReport, Compiler, OptOptions, Preset, Simulator};
use gsim_graph::Graph;
use gsim_workloads::programs::Program;
use gsim_workloads::Profile;
use std::time::Instant;

/// What drives the design's inputs.
#[derive(Debug, Clone)]
pub enum WorkloadKind {
    /// A real program on stuCore (runs until `halt` or the budget).
    Program(Program),
    /// A stimulus profile on a synthetic core (runs a fixed cycle
    /// count).
    Stimulus(Profile),
}

impl WorkloadKind {
    /// Display name.
    pub fn name(&self) -> &str {
        match self {
            WorkloadKind::Program(p) => p.name,
            WorkloadKind::Stimulus(p) => p.name,
        }
    }
}

/// One measured run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Simulation speed in Hz.
    pub hz: f64,
    /// Engine counters accumulated over the run.
    pub counters: gsim::Counters,
    /// Compilation report.
    pub report: CompileReport,
    /// For programs: the architectural result (`a0`), for checking.
    pub result: Option<u64>,
}

/// Compiles `graph` with `opts` and drives `workload` for `cycles`
/// (programs may halt earlier; their budget wins over `cycles`).
///
/// # Panics
///
/// Panics if compilation fails or a program produces a wrong
/// architectural result — a measurement of an incorrect simulator would
/// be meaningless.
pub fn measure_options(
    graph: &Graph,
    opts: OptOptions,
    workload: &WorkloadKind,
    cycles: u64,
) -> RunStats {
    let (mut sim, report) = Compiler::new(graph)
        .options(opts)
        .build()
        .expect("compiles");
    drive(&mut sim, report, workload, cycles)
}

/// Preset-based variant of [`measure_options`].
///
/// # Panics
///
/// See [`measure_options`].
pub fn measure_preset(
    graph: &Graph,
    preset: Preset,
    workload: &WorkloadKind,
    cycles: u64,
) -> RunStats {
    let (mut sim, report) = Compiler::new(graph)
        .preset(preset)
        .build()
        .expect("compiles");
    drive(&mut sim, report, workload, cycles)
}

fn drive(
    sim: &mut Simulator,
    report: CompileReport,
    workload: &WorkloadKind,
    cycles: u64,
) -> RunStats {
    match workload {
        WorkloadKind::Program(p) => {
            sim.load_mem("imem", &p.image).expect("stuCore has imem");
            // Reset pulse.
            sim.poke_u64("reset", 1).unwrap();
            sim.run(2);
            sim.poke_u64("reset", 0).unwrap();
            sim.reset_counters();
            let budget = p.max_cycles.max(cycles.min(p.max_cycles * 4));
            let start = Instant::now();
            let mut ran = 0;
            // Chunked halt polling keeps the poll overhead negligible.
            while ran < budget && sim.peek_u64("halt") != Some(1) {
                let chunk = 64.min(budget - ran);
                sim.run(chunk);
                ran += chunk;
            }
            let seconds = start.elapsed().as_secs_f64();
            assert_eq!(
                sim.peek_u64("halt"),
                Some(1),
                "{} did not halt within {budget} cycles",
                p.name
            );
            let result = sim.peek_u64("result");
            assert_eq!(
                result,
                Some(p.expected_result),
                "{} wrong architectural result",
                p.name
            );
            RunStats {
                cycles: ran,
                seconds,
                hz: ran as f64 / seconds.max(1e-12),
                counters: *sim.counters(),
                report,
                result,
            }
        }
        WorkloadKind::Stimulus(profile) => {
            let handles: Vec<_> = (0..64)
                .map_while(|l| sim.input_handle(&format!("op_in_{l}")))
                .collect();
            let mut stim = profile.stimulus(handles.len().max(1), 0xDEC0DE);
            // settle out of reset
            sim.poke_u64("reset", 1).ok();
            sim.run(2);
            sim.poke_u64("reset", 0).ok();
            // Warm up before timing: the first configuration measured
            // in a sweep otherwise pays first-touch page faults and a
            // cold branch predictor that none of its siblings pay,
            // which once inverted a fusion-on/off comparison on a
            // 1-core host. Counters are reset after the warmup so they
            // describe exactly the timed cycles.
            sim.run_driven(WARMUP_CYCLES.min(cycles), |_, frame| {
                let ops = stim.next_cycle();
                for (h, &op) in handles.iter().zip(&ops) {
                    frame.set(*h, op);
                }
            });
            sim.reset_counters();
            let start = Instant::now();
            // Per-cycle stimulus through the driven-run API, which
            // keeps the multithreaded engines' worker teams alive
            // across cycles instead of respawning them per step.
            sim.run_driven(cycles, |_, frame| {
                let ops = stim.next_cycle();
                for (h, &op) in handles.iter().zip(&ops) {
                    frame.set(*h, op);
                }
            });
            let seconds = start.elapsed().as_secs_f64();
            RunStats {
                cycles,
                seconds,
                hz: cycles as f64 / seconds.max(1e-12),
                counters: *sim.counters(),
                report,
                result: None,
            }
        }
    }
}

/// The standard thread counts of Figure 6.
pub const MT_THREADS: [usize; 4] = [2, 4, 8, 16];

/// Untimed cycles driven before every stimulus measurement (capped by
/// the run's cycle budget).
pub const WARMUP_CYCLES: u64 = 256;

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_workloads::programs;

    #[test]
    fn program_measurement_checks_result() {
        let g = gsim_designs::stu_core();
        let stats = measure_preset(
            &g,
            Preset::Gsim,
            &WorkloadKind::Program(programs::fib(10)),
            10_000,
        );
        assert_eq!(stats.result, Some(55));
        assert!(stats.hz > 0.0);
        assert!(stats.cycles > 10);
    }

    #[test]
    fn stimulus_measurement_runs_fixed_cycles() {
        let p = gsim_designs::SynthParams::for_target("Rocket", 2_000);
        let g = gsim_designs::synth_core(&p);
        let stats = measure_preset(
            &g,
            Preset::Gsim,
            &WorkloadKind::Stimulus(Profile::coremark()),
            200,
        );
        assert_eq!(stats.cycles, 200);
        assert!(stats.counters.node_evals > 0);
    }
}
