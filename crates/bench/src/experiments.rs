//! The paper's experiments (§IV), one function per table/figure.
//!
//! Every function returns plain data rows; `print_*` helpers render
//! paper-style tables. The `repro` binary wires them to the command
//! line. EXPERIMENTS.md records a full paper-vs-measured comparison.

use crate::harness::{measure_options, measure_preset, RunStats, WorkloadKind, MT_THREADS};
use gsim::{Compiler, EngineChoice, OptOptions, Preset, Session, SupernodeChoice};
use gsim_designs::{paper_suite, SuiteDesign};
use gsim_graph::Graph;
use gsim_workloads::{programs, spec_profiles, Profile};

/// Shared experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Design scale relative to the paper's node counts (1.0 = paper
    /// size; default keeps runs tractable).
    pub scale: f64,
    /// Cycles per measurement for stimulus-driven designs.
    pub cycles: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: 0.02,
            cycles: 2_000,
        }
    }
}

/// Builds the four-design suite once.
pub fn build_suite(cfg: &Config) -> Vec<SuiteDesign> {
    paper_suite(cfg.scale)
}

/// The two main software workloads for a given design (Figure 6's
/// columns): stuCore runs real programs; synthetic cores run stimulus
/// profiles.
pub fn main_workloads(design: &SuiteDesign) -> Vec<WorkloadKind> {
    if design.name == "stuCore" {
        vec![
            WorkloadKind::Program(programs::linux_boot_mini(1_500)),
            WorkloadKind::Program(programs::coremark_mini(40)),
        ]
    } else {
        vec![
            WorkloadKind::Stimulus(Profile::linux()),
            WorkloadKind::Stimulus(Profile::coremark()),
        ]
    }
}

// ---------------------------------------------------------------- Table I

/// One row of Table I.
#[derive(Debug)]
pub struct Table1Row {
    /// Design name.
    pub name: &'static str,
    /// IR nodes.
    pub nodes: usize,
    /// IR edges.
    pub edges: usize,
    /// Verilator-preset speed in Hz (Linux-like workload).
    pub hz: f64,
}

/// Table I: baseline (Verilator-like) speed across design scales.
pub fn table1(suite: &[SuiteDesign], cfg: &Config) -> Vec<Table1Row> {
    suite
        .iter()
        .map(|d| {
            let wl = &main_workloads(d)[0];
            let stats = measure_preset(&d.graph, Preset::Verilator, wl, cfg.cycles);
            Table1Row {
                name: d.name,
                nodes: d.graph.num_nodes(),
                edges: d.graph.num_edges(),
                hz: stats.hz,
            }
        })
        .collect()
}

/// Prints Table I.
pub fn print_table1(rows: &[Table1Row]) {
    println!("Table I: Verilator-like (single thread) simulation speed");
    println!(
        "{:<12} {:>10} {:>10} {:>14}",
        "Name", "IR node", "IR edge", "Speed"
    );
    for r in rows {
        println!(
            "{:<12} {:>10} {:>10} {:>12}",
            r.name,
            r.nodes,
            r.edges,
            format_hz(r.hz)
        );
    }
}

// ------------------------------------------- Table I (thread scaling)

/// Thread counts of the essential-engine scaling experiment.
pub const ESSENTIAL_MT_THREADS: [usize; 3] = [1, 2, 4];

/// One row of the thread-scaling extension of Table I.
#[derive(Debug)]
pub struct ThreadScalingRow {
    /// Engine label.
    pub engine: String,
    /// Worker threads (1 for the sequential essential engine).
    pub threads: usize,
    /// Simulation speed in cycles per second.
    pub hz: f64,
    /// Speedup over the sequential essential engine.
    pub speedup: f64,
}

/// A stimulus personality with a low activity factor — the regime where
/// essential-signal simulation shines and barrier overhead is most
/// visible.
pub fn low_activity_profile() -> Profile {
    Profile {
        name: "low-activity",
        activity: 0.15,
        hot_set: 64,
        fu_spread: 0.3,
    }
}

fn measure_threads(graph: &Graph, engine: EngineChoice, profile: &Profile, cycles: u64) -> f64 {
    let opts = OptOptions {
        engine,
        ..OptOptions::all()
    };
    let (mut sim, _) = Compiler::new(graph)
        .options(opts)
        .build()
        .expect("compiles");
    // Per-cycle stimulus through the driven-run API: the worker team
    // stays alive for the whole measurement.
    let handles: Vec<_> = (0..64)
        .map_while(|l| sim.input_handle(&format!("op_in_{l}")))
        .collect();
    let mut stim = profile.stimulus(handles.len().max(1), 0xBEEF);
    sim.poke_u64("reset", 1).ok();
    sim.run(2);
    sim.poke_u64("reset", 0).ok();
    // Settle, then warm up untimed (see `harness::WARMUP_CYCLES`).
    sim.run(8);
    sim.run_driven(crate::harness::WARMUP_CYCLES.min(cycles), |_, frame| {
        let ops = stim.next_cycle();
        for (h, &op) in handles.iter().zip(&ops) {
            frame.set(*h, op);
        }
    });
    let start = std::time::Instant::now();
    sim.run_driven(cycles, |_, frame| {
        let ops = stim.next_cycle();
        for (h, &op) in handles.iter().zip(&ops) {
            frame.set(*h, op);
        }
    });
    cycles as f64 / start.elapsed().as_secs_f64().max(1e-12)
}

/// Table I extension: thread scaling of the essential engines on a
/// low-activity workload. Row 0 is the sequential [`Preset::Gsim`]
/// configuration; the rest run `EssentialMt` at
/// [`ESSENTIAL_MT_THREADS`]. Scaling past 1.0x requires at least as
/// many host cores as worker threads.
pub fn table1_threads(design: &SuiteDesign, cfg: &Config) -> Vec<ThreadScalingRow> {
    let profile = low_activity_profile();
    let base = measure_threads(&design.graph, EngineChoice::Essential, &profile, cfg.cycles);
    let mut rows = vec![ThreadScalingRow {
        engine: "Essential".into(),
        threads: 1,
        hz: base,
        speedup: 1.0,
    }];
    for t in ESSENTIAL_MT_THREADS {
        let hz = measure_threads(
            &design.graph,
            EngineChoice::EssentialMt(t),
            &profile,
            cfg.cycles,
        );
        rows.push(ThreadScalingRow {
            engine: format!("EssentialMt-{t}T"),
            threads: t,
            hz,
            speedup: hz / base.max(1e-12),
        });
    }
    rows
}

/// Prints the thread-scaling extension (speeds are cycles per second).
pub fn print_table1_threads(design: &str, rows: &[ThreadScalingRow]) {
    println!("Table I (ext): essential-engine thread scaling on {design}, low-activity workload");
    println!(
        "{:<18} {:>8} {:>18} {:>9}",
        "Engine", "Threads", "Speed (cycles/s)", "Speedup"
    );
    for r in rows {
        println!(
            "{:<18} {:>8} {:>18} {:>8.2}x",
            r.engine,
            r.threads,
            format!("{:.0}", r.hz),
            r.speedup
        );
    }
}

// ------------------------------------------- dispatch breakdown (image)

/// One configuration of the dispatch-breakdown experiment: how the flat
/// execution image's interpreter spends its time, with and without
/// superinstruction fusion.
#[derive(Debug)]
pub struct DispatchRow {
    /// Configuration label (engine + ablation).
    pub label: String,
    /// Engine family name.
    pub engine: &'static str,
    /// Worker threads.
    pub threads: usize,
    /// Superinstruction fusion enabled.
    pub fusion: bool,
    /// Simulation speed in cycles per second.
    pub hz: f64,
    /// Executed instructions per simulated cycle.
    pub instrs_per_cycle: f64,
    /// Fraction of executed instructions that were fused
    /// superinstructions.
    pub fused_fraction: f64,
    /// Adjacent pairs the fusion pass collapsed at compile time.
    pub static_fused_pairs: u32,
    /// Full counter breakdown for the run.
    pub counters: gsim::Counters,
}

/// Dispatch breakdown on the low-activity workload: the GSIM preset's
/// sequential and parallel essential engines plus the full-cycle
/// baseline, each with fusion on and off (the `--no-fuse` ablation).
/// Reports cycles/sec, instrs/cycle and the fused fraction — the
/// before/after evidence for the flat-image optimization.
pub fn dispatch_breakdown(design: &SuiteDesign, cfg: &Config) -> Vec<DispatchRow> {
    let wl = WorkloadKind::Stimulus(low_activity_profile());
    let configs: [(&'static str, EngineChoice, usize); 3] = [
        ("GSIM", EngineChoice::Essential, 1),
        ("GSIM-2T", EngineChoice::EssentialMt(2), 2),
        ("FullCycle", EngineChoice::FullCycle, 1),
    ];
    let mut rows = Vec::new();
    for (engine, choice, threads) in configs {
        for fusion in [true, false] {
            let opts = OptOptions {
                engine: choice,
                superinstruction_fusion: fusion,
                ..OptOptions::all()
            };
            let stats = measure_options(&design.graph, opts, &wl, cfg.cycles);
            rows.push(DispatchRow {
                label: format!("{engine}{}", if fusion { "" } else { " no-fuse" }),
                engine,
                threads,
                fusion,
                hz: stats.hz,
                instrs_per_cycle: stats.counters.instrs_per_cycle(),
                fused_fraction: stats.counters.fused_fraction(),
                static_fused_pairs: stats.report.fusion.fused_pairs(),
                counters: stats.counters,
            });
        }
    }
    rows
}

/// Prints the dispatch breakdown.
pub fn print_dispatch(design: &str, rows: &[DispatchRow]) {
    println!("Dispatch breakdown on {design} (low-activity workload): flat-image interpreter");
    println!(
        "{:<18} {:>16} {:>12} {:>8} {:>14}",
        "config", "speed (cyc/s)", "instrs/cyc", "fused%", "pairs (static)"
    );
    for r in rows {
        println!(
            "{:<18} {:>16} {:>12.1} {:>7.1}% {:>14}",
            r.label,
            format!("{:.0}", r.hz),
            r.instrs_per_cycle,
            r.fused_fraction * 100.0,
            r.static_fused_pairs
        );
    }
}

// --------------------------------------------- threaded-code backend

/// One configuration of the threaded-dispatch experiment: the
/// in-process threaded-code backend against the interpreter it lowers
/// from, plus its `--no-threaded` ablation.
#[derive(Debug)]
pub struct ThreadedRow {
    /// Configuration label.
    pub label: String,
    /// Simulation speed in cycles per second.
    pub hz: f64,
    /// Speedup over the interpreter row (row 0 is 1.0 by definition).
    pub speedup: f64,
    /// Time the compile-time lowering pass took, milliseconds (zero
    /// for the interpreter and the ablation, which never lower).
    pub lowering_ms: f64,
    /// Full counter breakdown — identical across all three rows by the
    /// bit-invisibility contract.
    pub counters: gsim::Counters,
}

/// Measures one engine configuration on the dispatch workload,
/// reporting speed, counters and the threaded lowering time.
fn measure_threaded_config(
    graph: &Graph,
    opts: OptOptions,
    cycles: u64,
) -> (f64, gsim::Counters, f64) {
    let (mut sim, _) = Compiler::new(graph)
        .options(opts)
        .build()
        .expect("compiles");
    let lowering_ms = sim.lowering_time().as_secs_f64() * 1e3;
    let handles: Vec<_> = (0..64)
        .map_while(|l| sim.input_handle(&format!("op_in_{l}")))
        .collect();
    let mut stim = low_activity_profile().stimulus(handles.len().max(1), 0xDEC0DE);
    sim.poke_u64("reset", 1).ok();
    sim.run(2);
    sim.poke_u64("reset", 0).ok();
    sim.run_driven(crate::harness::WARMUP_CYCLES.min(cycles), |_, frame| {
        let ops = stim.next_cycle();
        for (h, &op) in handles.iter().zip(&ops) {
            frame.set(*h, op);
        }
    });
    sim.reset_counters();
    let start = std::time::Instant::now();
    sim.run_driven(cycles, |_, frame| {
        let ops = stim.next_cycle();
        for (h, &op) in handles.iter().zip(&ops) {
            frame.set(*h, op);
        }
    });
    let hz = cycles as f64 / start.elapsed().as_secs_f64().max(1e-12);
    (hz, *sim.counters(), lowering_ms)
}

/// The threaded-code backend on the dispatch workload: the GSIM
/// interpreter, the GSIM-JIT threaded backend, and the `--no-threaded`
/// ablation (threaded engine falling back to interpreter dispatch).
/// The speedup column is the backend's whole claim; the lowering time
/// is its whole cold-start cost (no rustc anywhere).
pub fn threaded(design: &SuiteDesign, cfg: &Config) -> Vec<ThreadedRow> {
    let configs: [(&str, EngineChoice, bool); 3] = [
        ("GSIM interp", EngineChoice::Essential, true),
        ("GSIM-JIT", EngineChoice::Threaded, true),
        ("GSIM-JIT no-dispatch", EngineChoice::Threaded, false),
    ];
    let mut rows: Vec<ThreadedRow> = Vec::new();
    let mut interp_hz = 0.0;
    for (label, engine, dispatch) in configs {
        let opts = OptOptions {
            engine,
            threaded_dispatch: dispatch,
            ..OptOptions::all()
        };
        let (hz, counters, lowering_ms) = measure_threaded_config(&design.graph, opts, cfg.cycles);
        if rows.is_empty() {
            interp_hz = hz;
        }
        rows.push(ThreadedRow {
            label: label.to_string(),
            hz,
            speedup: hz / interp_hz.max(1e-12),
            lowering_ms,
            counters,
        });
    }
    rows
}

/// Prints the threaded-backend rows.
pub fn print_threaded(design: &str, rows: &[ThreadedRow]) {
    println!("Threaded-code backend on {design} (dispatch workload): speed and cold start");
    println!(
        "{:<22} {:>16} {:>9} {:>12} {:>14}",
        "config", "speed (cyc/s)", "speedup", "instrs/cyc", "lowering (ms)"
    );
    for r in rows {
        println!(
            "{:<22} {:>16} {:>8.2}x {:>12.1} {:>14.2}",
            r.label,
            format!("{:.0}", r.hz),
            r.speedup,
            r.counters.instrs_per_cycle(),
            r.lowering_ms
        );
    }
}

// ------------------------------------------------------- AoT backend

/// One design's ahead-of-time compilation + execution measurement
/// (paper Table IV shape: emission/compile resources, plus compiled
/// vs interpreted cycles/s).
#[derive(Debug)]
pub struct AotRow {
    /// Design name.
    pub design: &'static str,
    /// Rust-source emission time (seconds).
    pub emit_s: f64,
    /// `rustc -O` time (seconds).
    pub rustc_s: f64,
    /// Emitted source bytes.
    pub code_bytes: usize,
    /// Native binary bytes.
    pub binary_bytes: u64,
    /// Simulated-state bytes (shared layout with the C++ emitter).
    pub data_bytes: usize,
    /// Compiled-binary speed (cycles/s, self-reported cycle loop).
    pub aot_hz: f64,
    /// Interpreter (GSIM preset) speed on the same stimulus.
    pub interp_hz: f64,
    /// `aot_hz / interp_hz`.
    pub speedup: f64,
}

/// Per-cycle stimulus frames for the AoT/interpreter comparison:
/// a reset pulse, then the low-activity profile on the `op_in_*`
/// lanes (synthetic cores) or held-zero inputs (stuCore, whose work
/// comes from the loaded program).
fn aot_frames(graph: &gsim_graph::Graph, cycles: u64) -> Vec<Vec<(String, u64)>> {
    let lanes: Vec<String> = graph
        .inputs()
        .iter()
        .map(|&i| graph.node(i).name.clone())
        .filter(|n| n.starts_with("op_in_"))
        .collect();
    let mut stim = low_activity_profile().stimulus(lanes.len().max(1), 0xBEEF);
    (0..cycles)
        .map(|c| {
            let mut frame: Vec<(String, u64)> = vec![("reset".into(), u64::from(c < 2))];
            let ops = stim.next_cycle();
            for (name, &v) in lanes.iter().zip(&ops) {
                frame.push((name.clone(), v));
            }
            frame
        })
        .collect()
}

/// AoT backend measurement on `designs` (emit → `rustc -O` → run vs
/// the interpreter on identical stimulus). Returns an empty vector
/// when the host has no `rustc`.
pub fn aot(suite: &[SuiteDesign], cfg: &Config) -> Vec<AotRow> {
    if !gsim_codegen::rustc_available() {
        eprintln!("# aot: rustc unavailable on this host, skipping");
        return Vec::new();
    }
    // stuCore (real CPU running a real program) plus the smallest
    // synthetic core — rustc -O on the larger stand-ins would dominate
    // the whole repro run.
    let picks: Vec<&SuiteDesign> = suite
        .iter()
        .filter(|d| d.name == "stuCore" || d.name == "Rocket")
        .collect();
    let mut rows = Vec::new();
    for d in picks {
        let cycles = cfg.cycles;
        let frames = aot_frames(&d.graph, cycles);
        let loads: Vec<(String, Vec<u64>)> = if d.name == "stuCore" {
            vec![("imem".into(), programs::coremark_mini(20).image)]
        } else {
            Vec::new()
        };
        // Compiled binary.
        let (aot_sim, report) = match Compiler::new(&d.graph).preset(Preset::Gsim).build_aot() {
            Ok(x) => x,
            Err(e) => {
                eprintln!("# aot: {} failed to build: {e}", d.name);
                continue;
            }
        };
        let stim = gsim::Scenario {
            loads: loads.clone(),
            frames: frames.clone(),
        };
        let run = match aot_sim.run(cycles, &stim, false) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("# aot: {} failed to run: {e}", d.name);
                continue;
            }
        };
        let aot_hz = cycles as f64 / run.run_seconds.max(1e-12);
        // Interpreter on the same stimulus, through the same facade.
        let (mut interp, _) = Compiler::new(&d.graph)
            .preset(Preset::Gsim)
            .build()
            .expect("interpreter compiles");
        for (mem, image) in &loads {
            interp.load_mem(mem, image).expect("mem loads");
        }
        let handles: Vec<(usize, gsim::InputHandle)> = frames
            .first()
            .map(|f| {
                f.iter()
                    .enumerate()
                    .filter_map(|(i, (name, _))| interp.input_handle(name).map(|h| (i, h)))
                    .collect()
            })
            .unwrap_or_default();
        let start = std::time::Instant::now();
        interp.run_driven(cycles, |c, frame| {
            if let Some(row) = frames.get(c as usize) {
                for &(i, h) in &handles {
                    frame.set(h, row[i].1);
                }
            }
        });
        let interp_hz = cycles as f64 / start.elapsed().as_secs_f64().max(1e-12);
        rows.push(AotRow {
            design: d.name,
            emit_s: report.emit_time.as_secs_f64(),
            rustc_s: report.rustc_time.as_secs_f64(),
            code_bytes: report.code_bytes,
            binary_bytes: report.binary_bytes,
            data_bytes: report.data_bytes,
            aot_hz,
            interp_hz,
            speedup: aot_hz / interp_hz.max(1e-12),
        });
    }
    rows
}

/// Prints the AoT rows.
pub fn print_aot(rows: &[AotRow]) {
    println!("AoT backend: emit -> rustc -O -> run, vs the interpreter (GSIM preset)");
    if rows.is_empty() {
        println!("  (skipped: rustc unavailable)");
        return;
    }
    println!(
        "{:<10} {:>9} {:>9} {:>10} {:>10} {:>10} {:>14} {:>14} {:>9}",
        "Design",
        "emit (s)",
        "rustc (s)",
        "code",
        "binary",
        "data",
        "aot (cyc/s)",
        "interp",
        "speedup"
    );
    for r in rows {
        println!(
            "{:<10} {:>9.3} {:>9.2} {:>10} {:>10} {:>10} {:>14} {:>14} {:>8.2}x",
            r.design,
            r.emit_s,
            r.rustc_s,
            format_bytes(r.code_bytes),
            format_bytes(r.binary_bytes as usize),
            format_bytes(r.data_bytes),
            format!("{:.0}", r.aot_hz),
            format!("{:.0}", r.interp_hz),
            r.speedup
        );
    }
}

// ------------------------------------------------- persistent session

/// One design's persistent-session amortization measurement: the same
/// interactive poke/step workload through (a) one resident compiled
/// process speaking the `Session` wire protocol, (b) one
/// `AotSim::run` process respawn per step — the only way the batch
/// API could serve reactive stimulus — and (c) the interpreter
/// session, all through the same `&mut dyn Session` trait where
/// applicable.
#[derive(Debug)]
pub struct SessionRow {
    /// Design name.
    pub design: &'static str,
    /// Poke/step iterations in the workload.
    pub steps: u64,
    /// Wall-clock seconds for the persistent AoT session.
    pub persistent_s: f64,
    /// Steps/second through the persistent session.
    pub persistent_hz: f64,
    /// Wall-clock seconds for one process respawn per step. This is a
    /// *lower bound* on the real batch-API cost: each respawned run
    /// restarts from cycle 0, so faithfully reproducing step `i`'s
    /// state would additionally replay `i` cycles (quadratic).
    pub respawn_s: f64,
    /// Steps/second under per-step respawn.
    pub respawn_hz: f64,
    /// Steps/second through the interpreter (GSIM preset) session on
    /// the identical workload, for scale.
    pub interp_hz: f64,
    /// `persistent_hz / respawn_hz` — what keeping the process
    /// resident buys.
    pub speedup: f64,
}

/// Runs the interactive poke/step workload against one session.
fn drive_session_workload(s: &mut dyn gsim::Session, steps: u64) {
    for i in 0..steps {
        s.poke_u64("reset", u64::from(i < 2)).expect("poke reset");
        s.step(1).expect("step");
    }
    let _ = s.peek_u64("halt");
}

/// Persistent-session amortization on stuCore: a 1k-step (capped by
/// `--cycles`) interactive poke/step workload, persistent session vs
/// per-step process respawn. Returns an empty vector when the host
/// has no `rustc`.
pub fn session_amortization(suite: &[SuiteDesign], cfg: &Config) -> Vec<SessionRow> {
    if !gsim_codegen::rustc_available() {
        eprintln!("# session: rustc unavailable on this host, skipping");
        return Vec::new();
    }
    let Some(d) = suite.iter().find(|d| d.name == "stuCore") else {
        return Vec::new();
    };
    let steps = cfg.cycles.clamp(16, 1_000);
    let image = programs::coremark_mini(20).image;
    let loads = vec![("imem".to_string(), image.clone())];
    let (aot_sim, _) = match Compiler::new(&d.graph).preset(Preset::Gsim).build_aot() {
        Ok(x) => x,
        Err(e) => {
            eprintln!("# session: {} failed to build: {e}", d.name);
            return Vec::new();
        }
    };
    // (a) One resident compiled process for the whole workload.
    let mut session = aot_sim.session().expect("spawn server");
    session.load_mem("imem", &image).expect("load imem");
    let t0 = std::time::Instant::now();
    drive_session_workload(&mut session, steps);
    let persistent_s = t0.elapsed().as_secs_f64();
    drop(session);
    // (b) The pre-session way: one `AotSim::run` per step, each a
    // fresh process + stimulus file + report parse.
    let t1 = std::time::Instant::now();
    for i in 0..steps {
        let stim = gsim::Scenario {
            loads: loads.clone(),
            frames: vec![vec![("reset".to_string(), u64::from(i < 2))]],
        };
        aot_sim.run(1, &stim, false).expect("respawned run");
    }
    let respawn_s = t1.elapsed().as_secs_f64();
    // (c) The interpreter session on the identical workload.
    let mut interp = Compiler::new(&d.graph)
        .preset(Preset::Gsim)
        .build_session(EngineChoice::Essential)
        .expect("interpreter session");
    interp.load_mem("imem", &image).expect("load imem");
    let t2 = std::time::Instant::now();
    drive_session_workload(interp.as_mut(), steps);
    let interp_s = t2.elapsed().as_secs_f64();
    let hz = |s: f64| steps as f64 / s.max(1e-12);
    vec![SessionRow {
        design: d.name,
        steps,
        persistent_s,
        persistent_hz: hz(persistent_s),
        respawn_s,
        respawn_hz: hz(respawn_s),
        interp_hz: hz(interp_s),
        speedup: respawn_s.max(1e-12) / persistent_s.max(1e-12),
    }]
}

/// Prints the session-amortization rows.
pub fn print_session(rows: &[SessionRow]) {
    println!("Persistent AoT session vs per-step process respawn (interactive poke/step workload)");
    if rows.is_empty() {
        println!("  (skipped: rustc unavailable)");
        return;
    }
    println!(
        "{:<10} {:>7} {:>14} {:>14} {:>14} {:>9}",
        "Design", "steps", "persist (st/s)", "respawn (st/s)", "interp (st/s)", "speedup"
    );
    for r in rows {
        println!(
            "{:<10} {:>7} {:>14} {:>14} {:>14} {:>8.1}x",
            r.design,
            r.steps,
            format!("{:.0}", r.persistent_hz),
            format!("{:.0}", r.respawn_hz),
            format!("{:.0}", r.interp_hz),
            r.speedup
        );
    }
}

// ------------------------------------------------- simulation service

/// The multi-tenant service measurement: cold-vs-warm cache session
/// startup, sessions/sec, and step-latency percentiles at
/// [`ServiceRow::clients`] concurrent remote sessions.
#[derive(Debug)]
pub struct ServiceRow {
    /// Design name (the service bench's synthetic pipeline).
    pub design: &'static str,
    /// Concurrent client sessions in the throughput phase.
    pub clients: usize,
    /// Cycles each client steps its session.
    pub steps: u64,
    /// First-session startup: `design` upload → `ready`, paying
    /// `rustc` through the artifact cache (a cache miss).
    pub cold_open_s: f64,
    /// Warm startup: the same design again — a cache hit, no `rustc`.
    pub warm_open_s: f64,
    /// `cold_open_s / warm_open_s` — what the artifact cache buys.
    pub warm_speedup: f64,
    /// Complete session lifecycles (connect → design → run → close)
    /// per second with all clients concurrent on the warm cache.
    pub sessions_per_sec: f64,
    /// Median single-`step` round-trip latency, microseconds.
    pub p50_step_us: f64,
    /// 99th-percentile single-`step` round-trip latency, microseconds.
    pub p99_step_us: f64,
    /// Artifact-cache hits over the whole measurement.
    pub hits: u64,
    /// Artifact-cache misses.
    pub misses: u64,
    /// Actual `rustc` invocations (the tentpole claim: 1).
    pub compiles: u64,
    /// LRU evictions (0 at this working-set size).
    pub evictions: u64,
}

/// The service bench's design, as FIRRTL *text* (the wire protocol's
/// `design` payload): a 16-stage 32-bit accumulate pipeline — small
/// enough to compile in seconds, deep enough that a `step` does real
/// work.
fn service_design() -> String {
    let stages = 16;
    let mut s = String::new();
    s.push_str("circuit SvcPipe :\n  module SvcPipe :\n");
    s.push_str("    input clock : Clock\n    input reset : UInt<1>\n");
    s.push_str("    input din : UInt<32>\n    output out : UInt<32>\n");
    for i in 0..stages {
        s.push_str(&format!(
            "    reg r{i} : UInt<32>, clock with : (reset => (reset, UInt<32>(0)))\n"
        ));
    }
    s.push_str("    r0 <= tail(add(din, UInt<32>(1)), 1)\n");
    for i in 1..stages {
        s.push_str(&format!(
            "    r{i} <= tail(add(r{}, UInt<32>({i})), 1)\n",
            i - 1
        ));
    }
    s.push_str(&format!("    out <= r{}\n", stages - 1));
    s
}

/// The `service` experiment: start a real [`gsim::Server`] on a
/// loopback socket, measure cold-vs-warm session startup through the
/// artifact cache, step-latency percentiles, and concurrent-session
/// throughput at 16 clients. Returns an empty vector when the host
/// has no `rustc`.
pub fn service(cfg: &Config) -> Vec<ServiceRow> {
    use gsim::{ClientSession, Endpoint, Server, ServerConfig};
    if !gsim_codegen::rustc_available() {
        eprintln!("# service: rustc unavailable on this host, skipping");
        return Vec::new();
    }
    let clients = 16usize;
    let steps = cfg.cycles.clamp(16, 512);
    let cache_dir = std::env::temp_dir().join(format!("gsim_svc_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let mut server = match Server::start(ServerConfig::new(
        Endpoint::Tcp("127.0.0.1:0".into()),
        &cache_dir,
    )) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("# service: cannot start server: {e}");
            return Vec::new();
        }
    };
    let ep = server.endpoint().clone();
    let src = service_design();

    // Cold startup: the first session for this design pays rustc.
    let t0 = std::time::Instant::now();
    let mut cold = ClientSession::connect(&ep).expect("connect");
    let info = cold.open_design(&src, "aot").expect("cold open");
    let cold_open_s = t0.elapsed().as_secs_f64();
    assert_eq!(info.status, "miss", "first open must compile");
    drop(cold);

    // Warm startup: same design, published artifact, no rustc.
    let t1 = std::time::Instant::now();
    let mut warm = ClientSession::connect(&ep).expect("connect");
    let info = warm.open_design(&src, "aot").expect("warm open");
    let warm_open_s = t1.elapsed().as_secs_f64();
    assert_eq!(info.status, "hit", "second open must hit the cache");

    // Per-step round-trip latency through the warm session.
    let mut lat_us: Vec<f64> = (0..steps)
        .map(|_| {
            let t = std::time::Instant::now();
            warm.step(1).expect("step");
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    lat_us.sort_by(f64::total_cmp);
    let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
    let (p50_step_us, p99_step_us) = (pct(0.50), pct(0.99));
    drop(warm);

    // Concurrent warm lifecycles: connect → design → run → close.
    let t2 = std::time::Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                let mut c = ClientSession::connect(&ep).expect("connect");
                let info = c.open_design(&src, "aot").expect("open");
                assert_eq!(info.status, "hit", "concurrent opens ride the cache");
                c.step(steps).expect("run");
                c.peek("out").expect("peek");
            });
        }
    });
    let concurrent_s = t2.elapsed().as_secs_f64();

    let stats = server.stats();
    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
    vec![ServiceRow {
        design: "SvcPipe",
        clients,
        steps,
        cold_open_s,
        warm_open_s,
        warm_speedup: cold_open_s / warm_open_s.max(1e-9),
        sessions_per_sec: clients as f64 / concurrent_s.max(1e-12),
        p50_step_us,
        p99_step_us,
        hits: stats.cache.hits,
        misses: stats.cache.misses,
        compiles: stats.cache.compiles,
        evictions: stats.cache.evictions,
    }]
}

/// Prints the service rows.
pub fn print_service(rows: &[ServiceRow]) {
    println!("Simulation service: cold vs warm session startup, concurrent throughput");
    if rows.is_empty() {
        println!("  (skipped: rustc unavailable)");
        return;
    }
    println!(
        "{:<8} {:>7} {:>10} {:>10} {:>9} {:>10} {:>9} {:>9} {:>16}",
        "Design",
        "clients",
        "cold (s)",
        "warm (s)",
        "speedup",
        "sess/s",
        "p50 (us)",
        "p99 (us)",
        "hit/miss/compile"
    );
    for r in rows {
        println!(
            "{:<8} {:>7} {:>10.3} {:>10.4} {:>8.0}x {:>10.1} {:>9.1} {:>9.1} {:>16}",
            r.design,
            r.clients,
            r.cold_open_s,
            r.warm_open_s,
            r.warm_speedup,
            r.sessions_per_sec,
            r.p50_step_us,
            r.p99_step_us,
            format!("{}/{}/{}", r.hits, r.misses, r.compiles)
        );
    }
}

// ------------------------------------------------- crash recovery

/// The fault-tolerance measurement: kill the AoT child mid-run under
/// a [`gsim::SupervisedSession`], and record how long detection,
/// respawn, checkpoint restore, and journal replay took — plus
/// whether the recovered run ended bit-identical to an uninterrupted
/// one (the property the chaos tests pin; here it is *measured* so a
/// regression shows up in the committed baseline).
#[derive(Debug)]
pub struct RecoveryRow {
    /// Design name.
    pub design: &'static str,
    /// Cycles driven end to end.
    pub cycles: u64,
    /// Cycle after which the child was killed (injected fault).
    pub kill_at: u64,
    /// Seconds from the kill to the supervisor noticing (the failed
    /// operation's latency).
    pub detect_s: f64,
    /// Seconds to respawn the compiled child process.
    pub respawn_s: f64,
    /// Seconds to import the last checkpoint into the fresh child.
    pub restore_s: f64,
    /// Seconds to replay the journaled commands since the checkpoint.
    pub replay_s: f64,
    /// Cycles re-executed during replay (bounded by the checkpoint
    /// cadence).
    pub replayed_cycles: u64,
    /// Detect + respawn + restore + replay.
    pub total_s: f64,
    /// Recoveries performed (1 for this experiment's single kill).
    pub recoveries: u64,
    /// `true` when every signal and every semantic counter of the
    /// recovered run matched the uninterrupted reference exactly.
    pub bit_identical: bool,
}

/// The recovery workload: reset for two cycles, then free-run (inputs
/// hold their last driven values).
fn recovery_scenario() -> gsim::Scenario {
    gsim::Scenario::new()
        .frame(&[("reset", 1)])
        .repeat(1)
        .frame(&[("reset", 0)])
}

/// The `recovery` experiment: run stuCore's AoT session once clean
/// and once under a [`gsim::SupervisedSession`] with the child killed
/// mid-run, and compare the end states. Returns an empty vector when
/// the host has no `rustc`.
pub fn recovery(suite: &[SuiteDesign], cfg: &Config) -> Vec<RecoveryRow> {
    use gsim::{FaultPlan, SessionFactory, SuperviseOptions, SupervisedSession};
    if !gsim_codegen::rustc_available() {
        eprintln!("# recovery: rustc unavailable on this host, skipping");
        return Vec::new();
    }
    let Some(d) = suite.iter().find(|d| d.name == "stuCore") else {
        return Vec::new();
    };
    let cycles = cfg.cycles.clamp(64, 1_000);
    // Off the checkpoint cadence (64) on purpose, so the journal-replay
    // leg of recovery is actually exercised and measured.
    let kill_at = cycles / 2 + 29;
    let image = programs::coremark_mini(20).image;
    let (aot_sim, _) = match Compiler::new(&d.graph).preset(Preset::Gsim).build_aot() {
        Ok(x) => x,
        Err(e) => {
            eprintln!("# recovery: {} failed to build: {e}", d.name);
            return Vec::new();
        }
    };

    // Uninterrupted reference run.
    let mut clean = aot_sim.session().expect("spawn reference session");
    clean.load_mem("imem", &image).expect("load imem");
    recovery_scenario()
        .run_for(&mut clean, cycles)
        .expect("reference run");
    let signals = clean.signals().expect("list signals");
    let reference: Vec<(String, String)> = signals
        .iter()
        .map(|s| {
            let v = clean.peek(&s.name).expect("reference peek");
            (s.name.clone(), format!("{v:x}"))
        })
        .collect();
    let reference_counters = clean.counters().expect("reference counters");
    drop(clean);

    // Supervised run with the child killed after `kill_at` cycles.
    // The fault applies to the first spawn only, so the respawned
    // child survives to the end.
    let plan = FaultPlan {
        kill_child_at_cycle: Some(kill_at),
        ..FaultPlan::default()
    };
    let mut first_spawn = true;
    let factory: SessionFactory = Box::new(move || {
        let p = if first_spawn {
            plan.clone()
        } else {
            FaultPlan::default()
        };
        first_spawn = false;
        let sess = aot_sim.session_with(None, &p)?;
        Ok(Box::new(sess) as Box<dyn Session>)
    });
    let opts = SuperviseOptions {
        checkpoint_every: 64,
        max_recoveries: 3,
    };
    let mut sup = SupervisedSession::new(factory, opts).expect("supervised session");
    sup.load_mem("imem", &image).expect("load imem");
    // Drive in 16-cycle bursts (the interactive pattern): completed
    // bursts accumulate in the journal between checkpoints, so the
    // mid-burst kill exercises checkpoint import *and* journal replay.
    let mut left = cycles;
    let mut first_burst = true;
    while left > 0 {
        let burst = left.min(16);
        // The reset frames land in the first burst; later bursts run
        // with inputs held, which is what the closure drove too.
        let stim = if first_burst {
            recovery_scenario()
        } else {
            gsim::Scenario::new()
        };
        first_burst = false;
        stim.run_for(&mut sup, burst)
            .expect("supervised run must recover");
        left -= burst;
    }
    let recoveries = u64::from(sup.recoveries());
    let stats = sup
        .last_recovery()
        .expect("the injected kill must have triggered a recovery")
        .clone();
    let mut bit_identical = sup.counters().expect("recovered counters") == reference_counters;
    for (name, want) in &reference {
        let got = format!("{:x}", sup.peek(name).expect("recovered peek"));
        if got != *want {
            bit_identical = false;
        }
    }

    vec![RecoveryRow {
        design: d.name,
        cycles,
        kill_at,
        detect_s: stats.detect_s,
        respawn_s: stats.respawn_s,
        restore_s: stats.restore_s,
        replay_s: stats.replay_s,
        replayed_cycles: stats.replayed_cycles,
        total_s: stats.detect_s + stats.total_s(),
        recoveries,
        bit_identical,
    }]
}

/// Prints the recovery rows.
pub fn print_recovery(rows: &[RecoveryRow]) {
    println!("Crash recovery: kill the AoT child mid-run, respawn + replay under supervision");
    if rows.is_empty() {
        println!("  (skipped: rustc unavailable)");
        return;
    }
    println!(
        "{:<10} {:>7} {:>8} {:>10} {:>10} {:>10} {:>10} {:>8} {:>10} {:>10}",
        "Design",
        "cycles",
        "kill@",
        "detect(s)",
        "respawn(s)",
        "restore(s)",
        "replay(s)",
        "replayed",
        "total(s)",
        "identical"
    );
    for r in rows {
        println!(
            "{:<10} {:>7} {:>8} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>8} {:>10.4} {:>10}",
            r.design,
            r.cycles,
            r.kill_at,
            r.detect_s,
            r.respawn_s,
            r.restore_s,
            r.replay_s,
            r.replayed_cycles,
            r.total_s,
            r.bit_identical
        );
    }
}

// ------------------------------------------- scenario exploration

/// One backend's scenario-exploration measurement: `branches`
/// perturbed variants of one stimulus fanned out from a single warmed
/// snapshot, against the cost of opening a cold session per branch.
#[derive(Debug)]
pub struct ExploreRow {
    /// Design name.
    pub design: &'static str,
    /// Backend explored (`interp`, `jit`, or `aot`).
    pub backend: &'static str,
    /// Branches explored.
    pub branches: usize,
    /// Cycles each branch ran past the fork point.
    pub cycles: u64,
    /// Warm-up cycles before the shared snapshot.
    pub warmup: u64,
    /// Wall seconds for the whole exploration.
    pub explore_s: f64,
    /// Branches completed per second.
    pub branches_per_s: f64,
    /// Average seconds per branch (`explore_s / branches`).
    pub branch_s: f64,
    /// Seconds to open + warm a cold session of this backend — what
    /// every branch would pay without fork (includes the one `rustc`
    /// on the aot row).
    pub cold_open_s: f64,
    /// `(cold_open_s + branch_s) / branch_s`: per-branch speedup over
    /// the open-a-cold-session-per-branch alternative.
    pub speedup_vs_cold: f64,
    /// Host-compiler (`rustc`) invocations the whole exploration
    /// needed: 1 on the aot row (the pool is forked siblings of one
    /// compiled binary), 0 on the in-process rows.
    pub compiles: u64,
    /// Worker threads the explorer used.
    pub workers: usize,
    /// Pool sessions obtained by forking the warmed core.
    pub forks: usize,
    /// Pool sessions obtained from the recovery factory.
    pub recoveries: usize,
    /// Fatal-error branch retries (normally 0).
    pub retries: u64,
    /// `true` when every branch's end-state peeks matched a
    /// sequential replay on the reference interpreter exactly.
    pub bit_identical: bool,
    /// Memory-arena bytes the interp core's snapshot privately owned
    /// after the run (copy-on-write; 0 until something writes a
    /// shared arena). Interp row only.
    pub snapshot_owned_bytes: usize,
    /// Memory-arena bytes an eager deep-copy snapshot would have
    /// duplicated. Interp row only.
    pub snapshot_deep_bytes: usize,
}

/// The `explore` experiment: on stuCore (a real CPU with a loaded
/// program image), measure snapshot-fork exploration on every backend
/// and check each branch against a sequential replay on the reference
/// interpreter. Backends that need `rustc` are skipped when the host
/// has none.
pub fn explore(suite: &[SuiteDesign], cfg: &Config) -> Vec<ExploreRow> {
    let Some(d) = suite.iter().find(|d| d.name == "stuCore") else {
        return Vec::new();
    };
    let branches = 8usize;
    let cycles = cfg.cycles.clamp(16, 256);
    let warmup = 8u64;
    let image = programs::coremark_mini(20).image;
    let warm = gsim::Scenario::new()
        .frame(&[("reset", 1)])
        .repeat(1)
        .frame(&[("reset", 0)]);
    let base = gsim::Scenario {
        loads: Vec::new(),
        frames: aot_frames(&d.graph, cycles),
    };
    let watch: Vec<String> = d
        .graph
        .outputs()
        .iter()
        .map(|&o| d.graph.display_name(o))
        .collect();

    // The bit-identity oracle: branch i replayed sequentially on a
    // cold reference interpreter (unoptimized full-cycle preset).
    let reference: Vec<Vec<(String, gsim::Value)>> = (0..branches)
        .map(|i| {
            let (mut r, _) = Compiler::new(&d.graph)
                .preset(Preset::Verilator)
                .build()
                .expect("reference interpreter compiles");
            r.load_mem("imem", &image).expect("load imem");
            warm.run_for(&mut r, warmup).expect("reference warmup");
            base.perturb(i as u64)
                .run_for(&mut r, cycles)
                .expect("reference branch");
            watch
                .iter()
                .map(|n| (n.clone(), Session::peek(&mut r, n).expect("reference peek")))
                .collect()
        })
        .collect();

    let mut rows = Vec::new();
    for (backend, engine) in [
        ("interp", EngineChoice::Essential),
        ("jit", EngineChoice::Threaded),
        ("aot", EngineChoice::Aot),
    ] {
        if engine == EngineChoice::Aot && !gsim_codegen::rustc_available() {
            eprintln!("# explore: rustc unavailable on this host, skipping aot");
            continue;
        }
        // Cold open: build + load + warm — the per-branch price of
        // not forking (the aot row pays its single rustc here).
        let t0 = std::time::Instant::now();
        let mut session = match Compiler::new(&d.graph)
            .preset(Preset::Gsim)
            .build_session(engine)
        {
            Ok(s) => s,
            Err(e) => {
                eprintln!("# explore: {backend} failed to build: {e}");
                continue;
            }
        };
        session.load_mem("imem", &image).expect("load imem");
        warm.run_for(session.as_mut(), warmup).expect("warmup");
        let cold_open_s = t0.elapsed().as_secs_f64();

        let opts = gsim::ExploreOptions {
            watch: watch.clone(),
            ..gsim::ExploreOptions::default()
        };
        let t1 = std::time::Instant::now();
        let report = gsim::Explorer::new(session.as_mut())
            .options(opts)
            .run(&base, branches, None)
            .expect("exploration succeeds");
        let explore_s = t1.elapsed().as_secs_f64();
        let branch_s = explore_s / branches as f64;

        let mut bit_identical = report.branches.len() == branches;
        for b in &report.branches {
            if b.cycle != warmup + cycles || b.peeks != reference[b.index] {
                bit_identical = false;
            }
        }

        // Copy-on-write accounting, on a concrete interpreter core:
        // snapshot, write-heavy run, then ask what the snapshot
        // privately owns vs what a deep clone would have copied.
        let (snapshot_owned_bytes, snapshot_deep_bytes) = if backend == "interp" {
            let (mut sim, _) = Compiler::new(&d.graph)
                .preset(Preset::Gsim)
                .build()
                .expect("interp core compiles");
            sim.load_mem("imem", &image).expect("load imem");
            warm.run_for(&mut sim, warmup).expect("warmup");
            sim.take_snapshot();
            base.run_for(&mut sim, cycles).expect("post-snapshot run");
            sim.snapshot_mem_bytes()
        } else {
            (0, 0)
        };

        rows.push(ExploreRow {
            design: d.name,
            backend,
            branches: report.branches.len(),
            cycles,
            warmup,
            explore_s,
            branches_per_s: report.branches.len() as f64 / explore_s.max(1e-12),
            branch_s,
            cold_open_s,
            speedup_vs_cold: (cold_open_s + branch_s) / branch_s.max(1e-12),
            compiles: u64::from(engine == EngineChoice::Aot),
            workers: report.workers,
            forks: report.forks,
            recoveries: report.recoveries,
            retries: report.total_retries(),
            bit_identical,
            snapshot_owned_bytes,
            snapshot_deep_bytes,
        });
    }
    rows
}

/// Prints the exploration rows.
pub fn print_explore(rows: &[ExploreRow]) {
    println!("Scenario exploration: N branches from one warmed snapshot vs a cold session each");
    if rows.is_empty() {
        println!("  (skipped: suite has no stuCore)");
        return;
    }
    println!(
        "{:<10} {:<7} {:>8} {:>7} {:>10} {:>12} {:>9} {:>8} {:>6} {:>6} {:>8} {:>10}",
        "Design",
        "backend",
        "branches",
        "cycles",
        "branch(s)",
        "cold-open(s)",
        "speedup",
        "compiles",
        "forks",
        "recov",
        "retries",
        "identical"
    );
    for r in rows {
        println!(
            "{:<10} {:<7} {:>8} {:>7} {:>10.4} {:>12.4} {:>8.1}x {:>8} {:>6} {:>6} {:>8} {:>10}",
            r.design,
            r.backend,
            r.branches,
            r.cycles,
            r.branch_s,
            r.cold_open_s,
            r.speedup_vs_cold,
            r.compiles,
            r.forks,
            r.recoveries,
            r.retries,
            r.bit_identical
        );
        if r.backend == "interp" {
            println!(
                "  snapshot mem arenas: {} B owned (copy-on-write) of {} B a deep clone would copy",
                r.snapshot_owned_bytes, r.snapshot_deep_bytes
            );
        }
    }
}

// ------------------------------------------------- waveform capture

/// One tracing configuration of the waveform-overhead experiment:
/// the same design and stimulus with tracing off, tracing a signal
/// subset (the design's outputs), and tracing everything.
#[derive(Debug)]
pub struct WaveRow {
    /// Design name.
    pub design: &'static str,
    /// Tracing mode: `off`, `subset`, or `full`.
    pub mode: &'static str,
    /// Signals captured by the tracer (0 when off).
    pub signals: usize,
    /// Cycles measured.
    pub cycles: u64,
    /// Simulation speed in cycles per second.
    pub hz: f64,
    /// `hz / off_hz` — the fraction of untraced speed this mode
    /// keeps (1.0 on the off row by definition).
    pub relative: f64,
    /// VCD bytes emitted over the measured cycles (0 when off).
    pub vcd_bytes: u64,
    /// `vcd_bytes / cycles`.
    pub bytes_per_cycle: f64,
}

/// Measures one tracing mode: the dispatch workload with an optional
/// change-driven VCD capture into a byte-counting sink (the bytes are
/// counted, not kept, so the sink cost is the stream-encoding cost,
/// not an allocator benchmark).
fn measure_wave_mode(
    graph: &Graph,
    cycles: u64,
    select: Option<&[String]>,
    traced: bool,
) -> (f64, u64, usize) {
    let (mut sim, _) = Compiler::new(graph)
        .preset(Preset::Gsim)
        .build()
        .expect("compiles");
    let handles: Vec<_> = (0..64)
        .map_while(|l| sim.input_handle(&format!("op_in_{l}")))
        .collect();
    let mut stim = low_activity_profile().stimulus(handles.len().max(1), 0xDEC0DE);
    sim.poke_u64("reset", 1).ok();
    sim.run(2);
    sim.poke_u64("reset", 0).ok();
    sim.run_driven(crate::harness::WARMUP_CYCLES.min(cycles), |_, frame| {
        let ops = stim.next_cycle();
        for (h, &op) in handles.iter().zip(&ops) {
            frame.set(*h, op);
        }
    });
    let counter = gsim_wave::CountingWriter::new();
    let mut signals = 0;
    if traced {
        sim.trace_start(select, Box::new(gsim_wave::VcdWriter::new(counter.clone())))
            .expect("trace_start");
        signals = match select {
            Some(names) => names.len(),
            None => Session::signals(&mut sim)
                .expect("signals")
                .iter()
                .filter(|s| s.width > 0)
                .count(),
        };
    }
    let start = std::time::Instant::now();
    sim.run_driven(cycles, |_, frame| {
        let ops = stim.next_cycle();
        for (h, &op) in handles.iter().zip(&ops) {
            frame.set(*h, op);
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    if traced {
        Session::trace_stop(&mut sim).expect("trace_stop");
    }
    (cycles as f64 / seconds.max(1e-12), counter.bytes(), signals)
}

/// The `wave` experiment: tracing overhead on the dispatch workload —
/// off (the zero-cost-when-off claim: the tracer is compiled out of
/// the hot loop, so this row must track the dispatch experiment's
/// untraced speed), the design's outputs only, and a full trace of
/// every named signal, each with VCD bytes per cycle.
pub fn wave(design: &SuiteDesign, cfg: &Config) -> Vec<WaveRow> {
    let outputs: Vec<String> = design
        .graph
        .outputs()
        .iter()
        .map(|&o| design.graph.display_name(o))
        .collect();
    let modes: [(&'static str, Option<&[String]>, bool); 3] = [
        ("off", None, false),
        ("subset", Some(&outputs), true),
        ("full", None, true),
    ];
    let mut rows: Vec<WaveRow> = Vec::new();
    let mut off_hz = 0.0;
    for (mode, select, traced) in modes {
        let (hz, vcd_bytes, signals) = measure_wave_mode(&design.graph, cfg.cycles, select, traced);
        if rows.is_empty() {
            off_hz = hz;
        }
        rows.push(WaveRow {
            design: design.name,
            mode,
            signals,
            cycles: cfg.cycles,
            hz,
            relative: hz / off_hz.max(1e-12),
            vcd_bytes,
            bytes_per_cycle: vcd_bytes as f64 / cfg.cycles.max(1) as f64,
        });
    }
    rows
}

/// Prints the waveform-overhead rows.
pub fn print_wave(design: &str, rows: &[WaveRow]) {
    println!("Waveform capture on {design} (dispatch workload): change-driven VCD overhead");
    println!(
        "{:<8} {:>8} {:>16} {:>9} {:>12} {:>12}",
        "mode", "signals", "speed (cyc/s)", "relative", "VCD bytes", "bytes/cyc"
    );
    for r in rows {
        println!(
            "{:<8} {:>8} {:>16} {:>9} {:>12} {:>12.1}",
            r.mode,
            r.signals,
            format!("{:.0}", r.hz),
            format!("{:.2}x", r.relative),
            r.vcd_bytes,
            r.bytes_per_cycle
        );
    }
}

/// Logical cores of the measurement host — recorded into
/// `BENCH_interp.json` so thread-scaling rows can be judged (an
/// `EssentialMt` "slowdown" on a 1-core host measures barrier
/// overhead, not the engine).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

// --------------------------------------------------------------- Figure 6

/// One cell of Figure 6: a simulator's speedup on a design/workload.
#[derive(Debug)]
pub struct Fig6Row {
    /// Design name.
    pub design: &'static str,
    /// Workload name.
    pub workload: String,
    /// (simulator label, speedup vs Verilator-1T) pairs.
    pub speedups: Vec<(String, f64)>,
}

/// Figure 6: overall performance of every simulator vs Verilator-1T.
pub fn fig6(suite: &[SuiteDesign], cfg: &Config) -> Vec<Fig6Row> {
    let mut rows = Vec::new();
    for d in suite {
        for wl in main_workloads(d) {
            let base = measure_preset(&d.graph, Preset::Verilator, &wl, cfg.cycles);
            let mut speedups = Vec::new();
            for t in MT_THREADS {
                let s = measure_preset(&d.graph, Preset::VerilatorMt(t), &wl, cfg.cycles);
                speedups.push((format!("Verilator-{t}T"), s.hz / base.hz));
            }
            for preset in [Preset::Essent, Preset::Arcilator, Preset::Gsim] {
                let s = measure_preset(&d.graph, preset, &wl, cfg.cycles);
                speedups.push((preset.name(), s.hz / base.hz));
            }
            rows.push(Fig6Row {
                design: d.name,
                workload: wl.name().to_string(),
                speedups,
            });
        }
    }
    rows
}

/// Prints Figure 6.
pub fn print_fig6(rows: &[Fig6Row]) {
    println!("Figure 6: speedup over single-threaded Verilator-like baseline");
    for r in rows {
        println!("\n[{} / {}]", r.design, r.workload);
        for (sim, x) in &r.speedups {
            println!("  {sim:<16} {x:>7.2}x  {}", bar(*x, 4.0));
        }
    }
}

// --------------------------------------------------------------- Figure 7

/// One SPEC checkpoint's result.
#[derive(Debug)]
pub struct Fig7Row {
    /// Checkpoint name.
    pub checkpoint: String,
    /// Verilator-4T speedup.
    pub v4: f64,
    /// Verilator-8T speedup.
    pub v8: f64,
    /// GSIM speedup.
    pub gsim: f64,
}

/// Figure 7: SPEC CPU2006 checkpoints on the XiangShan-like core.
pub fn fig7(suite: &[SuiteDesign], cfg: &Config) -> Vec<Fig7Row> {
    let xs = suite
        .iter()
        .find(|d| d.name == "XiangShan")
        .expect("suite contains XiangShan");
    let mut rows = Vec::new();
    for profile in spec_profiles() {
        let wl = WorkloadKind::Stimulus(profile.clone());
        let base = measure_preset(&xs.graph, Preset::Verilator, &wl, cfg.cycles);
        let v4 = measure_preset(&xs.graph, Preset::VerilatorMt(4), &wl, cfg.cycles);
        let v8 = measure_preset(&xs.graph, Preset::VerilatorMt(8), &wl, cfg.cycles);
        let gs = measure_preset(&xs.graph, Preset::Gsim, &wl, cfg.cycles);
        rows.push(Fig7Row {
            checkpoint: profile.name.to_string(),
            v4: v4.hz / base.hz,
            v8: v8.hz / base.hz,
            gsim: gs.hz / base.hz,
        });
    }
    rows
}

/// Geometric mean over the checkpoints of one column.
pub fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut logsum, mut n) = (0.0, 0usize);
    for v in values {
        logsum += v.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (logsum / n as f64).exp()
}

/// Prints Figure 7.
pub fn print_fig7(rows: &[Fig7Row]) {
    println!("Figure 7: SPEC CPU2006 checkpoints on XiangShan-like core");
    println!(
        "{:<22} {:>12} {:>12} {:>8}",
        "checkpoint", "Verilator-4T", "Verilator-8T", "GSIM"
    );
    for r in rows {
        println!(
            "{:<22} {:>12.2} {:>12.2} {:>8.2}",
            r.checkpoint, r.v4, r.v8, r.gsim
        );
    }
    println!(
        "{:<22} {:>12.2} {:>12.2} {:>8.2}",
        "geometric mean",
        geomean(rows.iter().map(|r| r.v4)),
        geomean(rows.iter().map(|r| r.v8)),
        geomean(rows.iter().map(|r| r.gsim)),
    );
}

// --------------------------------------------------------------- Figure 8

/// One design's per-technique breakdown.
#[derive(Debug)]
pub struct Fig8Row {
    /// Design name.
    pub design: &'static str,
    /// (technique, log10 speedup over the previous step) — entry 0 is
    /// the baseline with absolute Hz in the second field instead.
    pub steps: Vec<(String, f64)>,
    /// Baseline speed (Hz).
    pub baseline_hz: f64,
    /// Final speed (Hz).
    pub final_hz: f64,
}

/// Figure 8: incremental per-technique performance breakdown
/// (CoreMark-like workload, as in the paper's §IV-F methodology).
pub fn fig8(suite: &[SuiteDesign], cfg: &Config) -> Vec<Fig8Row> {
    let mut rows = Vec::new();
    for d in suite {
        let wl = main_workloads(d).remove(1); // CoreMark-like
        let mut prev_hz: Option<f64> = None;
        let mut baseline = 0.0;
        let mut steps = Vec::new();
        let mut last = 0.0;
        for (name, opts) in OptOptions::staircase() {
            let stats = measure_options(&d.graph, opts, &wl, cfg.cycles);
            match prev_hz {
                None => baseline = stats.hz,
                Some(p) => steps.push((name.to_string(), (stats.hz / p).log10())),
            }
            prev_hz = Some(stats.hz);
            last = stats.hz;
        }
        rows.push(Fig8Row {
            design: d.name,
            steps,
            baseline_hz: baseline,
            final_hz: last,
        });
    }
    rows
}

/// Prints Figure 8.
pub fn print_fig8(rows: &[Fig8Row]) {
    println!("Figure 8: per-technique breakdown, log10 incremental speedup");
    for r in rows {
        println!(
            "\n[{}]  baseline {}  ->  full GSIM {}  (total {:.2}x)",
            r.design,
            format_hz(r.baseline_hz),
            format_hz(r.final_hz),
            r.final_hz / r.baseline_hz
        );
        for (name, log) in &r.steps {
            println!("  {name:<34} {log:>+7.3}  {}", bar(log.max(0.0), 0.5));
        }
    }
}

// --------------------------------------------------------------- Figure 9

/// Speed vs maximum supernode size for one design.
#[derive(Debug)]
pub struct Fig9Row {
    /// Design name.
    pub design: &'static str,
    /// (max size, speedup normalized to size 100) pairs.
    pub points: Vec<(usize, f64)>,
}

/// The supernode sizes swept (the paper sweeps 0–400).
pub const FIG9_SIZES: [usize; 11] = [1, 5, 10, 20, 30, 40, 50, 100, 200, 300, 400];

/// Figure 9: performance vs maximum supernode size, everything else
/// enabled. Normalized to size 100 (mid-sweep reference).
pub fn fig9(suite: &[SuiteDesign], cfg: &Config) -> Vec<Fig9Row> {
    let mut rows = Vec::new();
    for d in suite {
        let wl = main_workloads(d).remove(1);
        let hz: Vec<(usize, f64)> = FIG9_SIZES
            .iter()
            .map(|&size| {
                let mut opts = OptOptions::all();
                opts.max_supernode_size = size;
                (size, measure_options(&d.graph, opts, &wl, cfg.cycles).hz)
            })
            .collect();
        let reference = hz
            .iter()
            .find(|(s, _)| *s == 100)
            .map(|(_, h)| *h)
            .unwrap_or(hz[0].1);
        rows.push(Fig9Row {
            design: d.name,
            points: hz.into_iter().map(|(s, h)| (s, h / reference)).collect(),
        });
    }
    rows
}

/// Prints Figure 9.
pub fn print_fig9(rows: &[Fig9Row]) {
    println!("Figure 9: speed vs maximum supernode size (normalized to size 100)");
    print!("{:<12}", "max size");
    for s in FIG9_SIZES {
        print!("{s:>7}");
    }
    println!();
    for r in rows {
        print!("{:<12}", r.design);
        for (_, v) in &r.points {
            print!("{v:>7.2}");
        }
        println!();
    }
}

// --------------------------------------------------------------- Table III

/// One partitioning algorithm's row.
#[derive(Debug)]
pub struct Table3Row {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Partition build time (seconds).
    pub partition_s: f64,
    /// Number of supernodes.
    pub supernodes: usize,
    /// Successor activations per cycle (`Asucc` traffic).
    pub activation_per_cycle: f64,
    /// Nodes evaluated per cycle (`E` traffic).
    pub active_per_cycle: f64,
    /// Simulation speed (Hz).
    pub hz: f64,
}

/// Table III: partitioning algorithms on the BOOM-like core running the
/// CoreMark-like workload, with all other optimizations disabled (the
/// paper's §IV-F methodology).
pub fn table3(suite: &[SuiteDesign], cfg: &Config) -> Vec<Table3Row> {
    let boom = suite
        .iter()
        .find(|d| d.name == "BOOM")
        .expect("suite contains BOOM");
    let wl = WorkloadKind::Stimulus(Profile::coremark());
    [
        ("None", SupernodeChoice::None),
        ("Kernighan", SupernodeChoice::Kernighan),
        ("MFFC-based", SupernodeChoice::Mffc),
        ("GSIM", SupernodeChoice::Gsim),
    ]
    .into_iter()
    .map(|(name, choice)| {
        let mut opts = OptOptions::none();
        opts.supernode = choice;
        let stats = measure_options(&boom.graph, opts, &wl, cfg.cycles);
        let c = stats.counters;
        Table3Row {
            algorithm: name,
            partition_s: stats.report.partition_time.as_secs_f64(),
            supernodes: stats.report.supernodes,
            activation_per_cycle: c.activations as f64 / c.cycles.max(1) as f64,
            active_per_cycle: c.node_evals as f64 / c.cycles.max(1) as f64,
            hz: stats.hz,
        }
    })
    .collect()
}

/// Prints Table III.
pub fn print_table3(rows: &[Table3Row]) {
    println!("Table III: partitioning algorithms (BOOM-like, CoreMark-like)");
    println!(
        "{:<12} {:>12} {:>11} {:>16} {:>13} {:>12}",
        "partition", "time (s)", "supernode", "activation/cyc", "active/cyc", "speed"
    );
    for r in rows {
        println!(
            "{:<12} {:>12.3} {:>11} {:>16.1} {:>13.1} {:>12}",
            r.algorithm,
            r.partition_s,
            r.supernodes,
            r.activation_per_cycle,
            r.active_per_cycle,
            format_hz(r.hz)
        );
    }
}

// --------------------------------------------------------------- Table IV

/// One (design, simulator) resource row.
#[derive(Debug)]
pub struct Table4Row {
    /// Design name.
    pub design: &'static str,
    /// Simulator name.
    pub simulator: String,
    /// Emission time (seconds): pass pipeline + C++ emission.
    pub emission_s: f64,
    /// Emitted code size (bytes of C++ source).
    pub code_bytes: usize,
    /// Data size (bytes of simulated state, memories excluded).
    pub data_bytes: usize,
}

/// Table IV: emission time / code size / data size per simulator.
pub fn table4(suite: &[SuiteDesign]) -> Vec<Table4Row> {
    use gsim_codegen::Style;
    let presets = [
        (Preset::Verilator, Style::FullCycle),
        (Preset::Essent, Style::Essential),
        (Preset::Arcilator, Style::FullCycle),
        (Preset::Gsim, Style::Essential),
    ];
    let mut rows = Vec::new();
    for d in suite {
        for (preset, style) in presets {
            let start = std::time::Instant::now();
            let opts = preset.options();
            let pass_opts = gsim_passes::PassOptions {
                expression_simplify: opts.expression_simplify,
                redundant_elim: opts.redundant_elim,
                node_inline: opts.node_inline,
                node_extract: opts.node_extract,
                bit_split: opts.bit_split,
                reset_slow_path: opts.reset_slow_path,
            };
            let (optimized, _) = gsim_passes::run(d.graph.clone(), &pass_opts);
            let partition = gsim_partition::PartitionOptions {
                algorithm: match opts.supernode {
                    SupernodeChoice::None => gsim_partition::Algorithm::None,
                    SupernodeChoice::Kernighan => gsim_partition::Algorithm::Kernighan,
                    SupernodeChoice::Mffc => gsim_partition::Algorithm::MffcBased,
                    SupernodeChoice::Gsim => gsim_partition::Algorithm::Gsim,
                },
                max_size: opts.max_supernode_size,
            };
            let out = gsim_codegen::emit(&optimized, style, &partition);
            rows.push(Table4Row {
                design: d.name,
                simulator: preset.name(),
                emission_s: start.elapsed().as_secs_f64(),
                code_bytes: out.code_bytes,
                data_bytes: out.data_bytes,
            });
        }
    }
    rows
}

/// Prints Table IV.
pub fn print_table4(rows: &[Table4Row]) {
    println!("Table IV: resource usage");
    println!(
        "{:<12} {:<14} {:>14} {:>12} {:>12}",
        "Design", "Simulator", "Emission (s)", "Code size", "Data size"
    );
    for r in rows {
        println!(
            "{:<12} {:<14} {:>14.3} {:>12} {:>12}",
            r.design,
            r.simulator,
            r.emission_s,
            format_bytes(r.code_bytes),
            format_bytes(r.data_bytes)
        );
    }
}

// ------------------------------------------------------------ §II factors

/// The §II-B measurements: activity factor and examination share.
#[derive(Debug)]
pub struct Factors {
    /// Activity factor (paper: ≈4.61% for CoreMark on XiangShan).
    pub activity_factor: f64,
    /// Share of active-bit examinations among counted work items
    /// (paper: 82.26% of executed branches) — measured on the
    /// *unoptimized* essential baseline, where the paper's analysis
    /// applies.
    pub exam_share: f64,
}

/// Measures the §II-B cost-model factors on the XiangShan-like core.
pub fn factors(suite: &[SuiteDesign], cfg: &Config) -> Factors {
    let xs = suite
        .iter()
        .find(|d| d.name == "XiangShan")
        .expect("suite contains XiangShan");
    let wl = WorkloadKind::Stimulus(Profile::coremark());
    // af under the full GSIM configuration; exam share on the
    // unoptimized per-node baseline (Listing 2).
    let gsim = measure_options(&xs.graph, OptOptions::all(), &wl, cfg.cycles);
    let baseline = measure_options(&xs.graph, OptOptions::none(), &wl, cfg.cycles);
    Factors {
        activity_factor: gsim.counters.activity_factor(xs.graph.num_nodes()),
        exam_share: baseline.counters.exam_share(),
    }
}

/// Prints the factors.
pub fn print_factors(f: &Factors) {
    println!("Cost-model factors (paper §II-B):");
    println!(
        "  activity factor af         = {:.2}%   (paper: ~4.61% CoreMark/XiangShan)",
        f.activity_factor * 100.0
    );
    println!(
        "  active-bit examination share = {:.2}%  (paper: 82.26% of branches)",
        f.exam_share * 100.0
    );
}

// ------------------------------------------------------------------ misc

pub(crate) fn format_hz(hz: f64) -> String {
    if hz >= 1e6 {
        format!("{:.2} MHz", hz / 1e6)
    } else if hz >= 1e3 {
        format!("{:.1} kHz", hz / 1e3)
    } else {
        format!("{hz:.0} Hz")
    }
}

pub(crate) fn format_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1}M", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}K", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

fn bar(value: f64, full_scale: f64) -> String {
    let n = ((value / full_scale) * 40.0).clamp(0.0, 60.0) as usize;
    "#".repeat(n)
}

/// Accumulated totals for RunStats vectors (test helper).
pub fn total_cycles(stats: &[RunStats]) -> u64 {
    stats.iter().map(|s| s.cycles).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Config {
        Config {
            scale: 0.002,
            cycles: 60,
        }
    }

    #[test]
    fn table1_and_fig6_shapes() {
        let cfg = tiny_cfg();
        let suite = build_suite(&cfg);
        let t1 = table1(&suite, &cfg);
        assert_eq!(t1.len(), 4);
        // Bigger designs simulate slower on the full-cycle baseline.
        assert!(t1[0].hz > t1[3].hz, "stuCore should outpace XiangShan-like");
    }

    #[test]
    fn threaded_rows_cover_backend_and_ablation() {
        let cfg = tiny_cfg();
        let suite = build_suite(&cfg);
        let xs = suite.iter().find(|d| d.name == "XiangShan").unwrap();
        let rows = threaded(xs, &cfg);
        assert_eq!(rows.len(), 3, "interp, jit, jit ablated");
        assert!((rows[0].speedup - 1.0).abs() < 1e-9, "interp is the unit");
        assert_eq!(rows[0].lowering_ms, 0.0, "interp never lowers");
        assert!(rows[1].lowering_ms > 0.0, "jit records its lowering pass");
        assert_eq!(rows[2].lowering_ms, 0.0, "the ablation never lowers");
        // Bit-invisibility extends to the workload counters.
        for r in &rows[1..] {
            assert_eq!(r.counters.value_changes, rows[0].counters.value_changes);
            assert_eq!(r.counters.node_evals, rows[0].counters.node_evals);
        }
    }

    #[test]
    fn dispatch_breakdown_covers_fusion_ablation() {
        let cfg = tiny_cfg();
        let suite = build_suite(&cfg);
        let xs = suite.iter().find(|d| d.name == "XiangShan").unwrap();
        let rows = dispatch_breakdown(xs, &cfg);
        assert_eq!(rows.len(), 6, "3 engines × fusion on/off");
        for pair in rows.chunks(2) {
            let (on, off) = (&pair[0], &pair[1]);
            assert!(on.fusion && !off.fusion);
            // Fusion must shrink the executed stream and leave the
            // semantic counters untouched.
            assert!(on.instrs_per_cycle <= off.instrs_per_cycle);
            assert!(on.fused_fraction > 0.0, "{}", on.label);
            assert_eq!(off.fused_fraction, 0.0);
            assert_eq!(on.counters.node_evals, off.counters.node_evals);
            assert_eq!(on.counters.activations, off.counters.activations);
            assert!(on.static_fused_pairs > 0 && off.static_fused_pairs == 0);
        }
    }

    #[test]
    fn aot_rows_cover_both_design_classes() {
        if !gsim_codegen::rustc_available() {
            eprintln!("skipping: rustc not available");
            return;
        }
        let cfg = tiny_cfg();
        let suite = build_suite(&cfg);
        let rows = aot(&suite, &cfg);
        assert_eq!(rows.len(), 2, "stuCore + Rocket");
        for r in &rows {
            assert!(r.code_bytes > 0 && r.binary_bytes > 0 && r.data_bytes > 0);
            assert!(r.rustc_s > 0.0);
            assert!(r.aot_hz > 0.0 && r.interp_hz > 0.0);
        }
        assert!(host_cores() >= 1);
    }

    #[test]
    fn fig7_uses_all_checkpoints() {
        let cfg = tiny_cfg();
        let suite = build_suite(&cfg);
        let rows = fig7(&suite, &cfg);
        assert_eq!(rows.len(), 12);
        assert!(geomean(rows.iter().map(|r| r.gsim)) > 0.0);
    }

    #[test]
    fn table3_rows_cover_algorithms() {
        let cfg = tiny_cfg();
        let suite = build_suite(&cfg);
        let rows = table3(&suite, &cfg);
        assert_eq!(rows.len(), 4);
        let none = &rows[0];
        let gsim = &rows[3];
        assert!(gsim.supernodes < none.supernodes);
    }

    #[test]
    fn table4_emits_for_all() {
        let cfg = tiny_cfg();
        let suite = build_suite(&cfg);
        let rows = table4(&suite);
        assert_eq!(rows.len(), 16);
        assert!(rows.iter().all(|r| r.code_bytes > 0));
    }

    #[test]
    fn geomean_math() {
        assert!((geomean([2.0, 8.0].into_iter()) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }
}
