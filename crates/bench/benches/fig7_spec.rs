//! Figure 7: GSIM throughput across SPEC-checkpoint stimulus profiles.

use criterion::{criterion_group, criterion_main, Criterion};
use gsim::{Compiler, Preset};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_spec");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    let params = gsim_designs::SynthParams::for_target("XiangShan", 8_000);
    let graph = gsim_designs::synth_core(&params);
    let (mut sim, _) = Compiler::new(&graph).preset(Preset::Gsim).build().unwrap();
    for profile in gsim_workloads::spec_profiles().into_iter().take(4) {
        let mut stim = profile.stimulus(6, 3);
        group.bench_function(profile.name, |b| {
            b.iter(|| {
                let ops = stim.next_cycle();
                for (l, &op) in ops.iter().enumerate() {
                    let _ = sim.poke_u64(&format!("op_in_{l}"), op);
                }
                sim.run(4);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
