//! Table III: partition construction cost per algorithm.

use criterion::{criterion_group, criterion_main, Criterion};
use gsim_partition::{build, Algorithm, PartitionOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_partition");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    let params = gsim_designs::SynthParams::for_target("BOOM", 8_000);
    let graph = gsim_designs::synth_core(&params);
    for alg in [
        Algorithm::None,
        Algorithm::Kernighan,
        Algorithm::MffcBased,
        Algorithm::Gsim,
    ] {
        group.bench_function(alg.name(), |b| {
            b.iter(|| {
                build(
                    &graph,
                    &PartitionOptions {
                        algorithm: alg,
                        max_size: 30,
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
