//! Figure 6: per-simulator cycle throughput on one mid-size design.

use criterion::{criterion_group, criterion_main, Criterion};
use gsim::{Compiler, Preset};
use gsim_workloads::Profile;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_overall");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    let params = gsim_designs::SynthParams::for_target("Rocket", 4_000);
    let graph = gsim_designs::synth_core(&params);
    for preset in [
        Preset::Verilator,
        Preset::VerilatorMt(4),
        Preset::Essent,
        Preset::Arcilator,
        Preset::Gsim,
    ] {
        let (mut sim, _) = Compiler::new(&graph).preset(preset).build().unwrap();
        let mut stim = Profile::coremark().stimulus(1, 7);
        group.bench_function(preset.name(), |b| {
            b.iter(|| {
                let ops = stim.next_cycle();
                let _ = sim.poke_u64("op_in_0", ops[0]);
                sim.run(8);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
