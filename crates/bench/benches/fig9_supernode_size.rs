//! Figure 9: throughput vs maximum supernode size.

use criterion::{criterion_group, criterion_main, Criterion};
use gsim::{Compiler, OptOptions};
use gsim_workloads::Profile;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_supernode_size");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    let params = gsim_designs::SynthParams::for_target("Rocket", 5_000);
    let graph = gsim_designs::synth_core(&params);
    for size in [1usize, 10, 30, 100, 400] {
        let mut opts = OptOptions::all();
        opts.max_supernode_size = size;
        let (mut sim, _) = Compiler::new(&graph).options(opts).build().unwrap();
        let mut stim = Profile::coremark().stimulus(1, 13);
        group.bench_function(format!("max_size_{size}"), |b| {
            b.iter(|| {
                let ops = stim.next_cycle();
                let _ = sim.poke_u64("op_in_0", ops[0]);
                sim.run(4);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
