//! Table I: baseline full-cycle simulation speed vs design scale.

use criterion::{criterion_group, criterion_main, Criterion};
use gsim::{Compiler, Preset};
use gsim_bench::WorkloadKind;
use gsim_workloads::Profile;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_scaling");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    for design in gsim_designs::paper_suite(0.005) {
        let (mut sim, _) = Compiler::new(&design.graph)
            .preset(Preset::Verilator)
            .build()
            .unwrap();
        let wl = WorkloadKind::Stimulus(Profile::linux());
        let mut stim = match &wl {
            WorkloadKind::Stimulus(p) => p.stimulus(8, 1),
            _ => unreachable!(),
        };
        group.bench_function(design.name, |b| {
            b.iter(|| {
                let ops = stim.next_cycle();
                for (l, &op) in ops.iter().enumerate() {
                    let _ = sim.poke_u64(&format!("op_in_{l}"), op);
                }
                sim.run(8);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
