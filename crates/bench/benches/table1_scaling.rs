//! Table I: baseline full-cycle simulation speed vs design scale, plus
//! the thread-scaling extension for the essential engines.
//!
//! Setting `GSIM_BENCH_SMOKE=1` shrinks the run to one tiny design and
//! a few hundred cycles so CI can execute the multithreaded path in
//! seconds (the full run takes minutes).

use criterion::{criterion_group, criterion_main, Criterion};
use gsim::{Compiler, Preset};
use gsim_bench::experiments::{self, Config};
use gsim_bench::WorkloadKind;
use gsim_designs::{SuiteDesign, SynthParams};
use gsim_workloads::Profile;

fn smoke() -> bool {
    std::env::var_os("GSIM_BENCH_SMOKE").is_some()
}

fn bench_scaling(c: &mut Criterion) {
    if smoke() {
        return; // the thread-scaling group below covers the smoke run
    }
    let mut group = c.benchmark_group("table1_scaling");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    for design in gsim_designs::paper_suite(0.005) {
        let (mut sim, _) = Compiler::new(&design.graph)
            .preset(Preset::Verilator)
            .build()
            .unwrap();
        let wl = WorkloadKind::Stimulus(Profile::linux());
        let mut stim = match &wl {
            WorkloadKind::Stimulus(p) => p.stimulus(8, 1),
            _ => unreachable!(),
        };
        group.bench_function(design.name, |b| {
            b.iter(|| {
                let ops = stim.next_cycle();
                for (l, &op) in ops.iter().enumerate() {
                    let _ = sim.poke_u64(&format!("op_in_{l}"), op);
                }
                sim.run(8);
            })
        });
    }
    group.finish();
}

fn bench_threads(_c: &mut Criterion) {
    // The thread-scaling rows come from the shared experiment so the
    // bench and the `repro` binary report identical numbers
    // (cycles/sec per thread count, low-activity workload).
    let (target, cycles) = if smoke() {
        (2_000, 256)
    } else {
        (60_000, 2_000)
    };
    let params = SynthParams::for_target("XiangShan", target);
    let design = SuiteDesign {
        name: "XiangShan",
        graph: gsim_designs::synth_core(&params),
        paper_nodes: target,
    };
    eprintln!(
        "\n== table1_threads == ({} nodes, {} cycles{})",
        design.graph.num_nodes(),
        cycles,
        if smoke() { ", smoke" } else { "" }
    );
    let cfg = Config {
        cycles,
        ..Config::default()
    };
    let rows = experiments::table1_threads(&design, &cfg);
    experiments::print_table1_threads(design.name, &rows);
}

criterion_group!(benches, bench_scaling, bench_threads);
criterion_main!(benches);
