//! Table IV: code emission cost per simulator style.

use criterion::{criterion_group, criterion_main, Criterion};
use gsim_codegen::{emit, Style};
use gsim_partition::PartitionOptions;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_resources");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    let params = gsim_designs::SynthParams::for_target("Rocket", 5_000);
    let graph = gsim_designs::synth_core(&params);
    group.bench_function("emit_full_cycle", |b| {
        b.iter(|| emit(&graph, Style::FullCycle, &PartitionOptions::default()))
    });
    group.bench_function("emit_essential", |b| {
        b.iter(|| emit(&graph, Style::Essential, &PartitionOptions::default()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
