//! Figure 8: throughput at each step of the optimization staircase.

use criterion::{criterion_group, criterion_main, Criterion};
use gsim::{Compiler, OptOptions};
use gsim_workloads::Profile;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_breakdown");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    let params = gsim_designs::SynthParams::for_target("BOOM", 5_000);
    let graph = gsim_designs::synth_core(&params);
    for (name, opts) in OptOptions::staircase() {
        let (mut sim, _) = Compiler::new(&graph).options(opts).build().unwrap();
        let mut stim = Profile::coremark().stimulus(3, 11);
        group.bench_function(name, |b| {
            b.iter(|| {
                let ops = stim.next_cycle();
                for (l, &op) in ops.iter().enumerate() {
                    let _ = sim.poke_u64(&format!("op_in_{l}"), op);
                }
                sim.run(4);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
