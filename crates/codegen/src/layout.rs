//! Shared state-layout computation for the C++ and Rust emitters.
//!
//! Table IV's "data size" is the size of the simulated-state struct the
//! generated code declares. Both emitters — the C++ one used for the
//! resource-usage experiment and the AoT Rust one whose struct actually
//! compiles and runs — derive their field list **and** the reported
//! byte count from this one module, so the number in the table can
//! never diverge from the struct the compiled simulator really uses.
//!
//! The layout is locality-ordered, mirroring the interpreter's
//! locality-aware slot layout: top-level inputs first, then register
//! current/shadow *pairs* (the commit phase walks adjacent fields),
//! then the remaining combinational values in schedule (sweep) order.

use gsim_graph::{Graph, NodeId, NodeKind};
use gsim_partition::Partition;

/// One field of the generated state struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutEntry {
    /// The node stored in this field.
    pub node: NodeId,
    /// Value width in bits.
    pub width: u32,
    /// Bytes of storage for the current value.
    pub bytes: usize,
    /// `true` for registers, which get an adjacent `__next` shadow
    /// field of the same size.
    pub is_reg: bool,
}

/// The computed state layout: field order plus the Table IV byte count.
#[derive(Debug, Clone)]
pub struct StateLayout {
    /// Fields in declaration order (inputs, register pairs, then
    /// combinational values in sweep order).
    pub entries: Vec<LayoutEntry>,
    /// Total bytes of simulated state, registers counted twice
    /// (current + shadow), memories excluded — the paper's `sizeof`
    /// metric.
    pub data_bytes: usize,
}

/// Bytes of storage for one value of `width` bits, matching `sizeof`
/// of the narrowest natural C/Rust integer type that holds it
/// (`u8`/`u16`/`u32`/`u64`/`u128`, then whole 64-bit words).
pub fn storage_bytes(width: u32) -> usize {
    match width {
        0 => 0,
        1..=8 => 1,
        9..=16 => 2,
        17..=32 => 4,
        33..=64 => 8,
        _ => gsim_value::words_for(width) * 8,
    }
}

/// Computes the locality-ordered state layout for `graph` scheduled by
/// `partition`. Zero-width nodes and pure sinks (write ports) get no
/// storage and are omitted.
pub fn state_layout(graph: &Graph, partition: &Partition) -> StateLayout {
    let mut entries = Vec::with_capacity(graph.num_nodes());
    let mut placed = vec![false; graph.num_nodes()];
    let push = |entries: &mut Vec<LayoutEntry>, placed: &mut Vec<bool>, id: NodeId| {
        if placed[id.index()] {
            return;
        }
        placed[id.index()] = true;
        let node = graph.node(id);
        if node.width == 0 || matches!(node.kind, NodeKind::MemWrite { .. }) {
            return;
        }
        entries.push(LayoutEntry {
            node: id,
            width: node.width,
            bytes: storage_bytes(node.width),
            is_reg: node.kind.is_reg(),
        });
    };
    // 1. Inputs, in declaration order.
    for &id in graph.inputs() {
        push(&mut entries, &mut placed, id);
    }
    // 2. Registers, in schedule order (current/shadow pairs are
    //    implied by `is_reg`).
    for members in &partition.supernodes {
        for &id in members {
            if graph.node(id).kind.is_reg() {
                push(&mut entries, &mut placed, id);
            }
        }
    }
    // 3. Combinational values in sweep (schedule) order.
    for members in &partition.supernodes {
        for &id in members {
            push(&mut entries, &mut placed, id);
        }
    }
    // 4. Anything the partition did not cover (defensive; partitions
    //    cover every node today).
    for id in graph.node_ids() {
        push(&mut entries, &mut placed, id);
    }
    let data_bytes = entries
        .iter()
        .map(|e| e.bytes * if e.is_reg { 2 } else { 1 })
        .sum();
    StateLayout {
        entries,
        data_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_partition::PartitionOptions;

    #[test]
    fn layout_orders_inputs_regs_comb_and_counts_bytes() {
        let g = gsim_firrtl::compile(
            r#"
circuit D :
  module D :
    input clock : Clock
    input a : UInt<32>
    output y : UInt<32>
    reg r : UInt<32>, clock
    r <= a
    y <= r
"#,
        )
        .unwrap();
        let p = gsim_partition::build(&g, &PartitionOptions::default());
        let l = state_layout(&g, &p);
        // clock (1) + a (4) + r (4 + 4 shadow) + y (4) = 17
        assert_eq!(l.data_bytes, 17);
        // Inputs first, then the register, then combinational values.
        let kinds: Vec<bool> = l.entries.iter().map(|e| e.is_reg).collect();
        let first_reg = kinds.iter().position(|&r| r).unwrap();
        assert!(l.entries[..first_reg]
            .iter()
            .all(|e| matches!(g.node(e.node).kind, NodeKind::Input)));
    }

    #[test]
    fn storage_bytes_tiers() {
        assert_eq!(storage_bytes(0), 0);
        assert_eq!(storage_bytes(1), 1);
        assert_eq!(storage_bytes(8), 1);
        assert_eq!(storage_bytes(9), 2);
        assert_eq!(storage_bytes(32), 4);
        assert_eq!(storage_bytes(33), 8);
        assert_eq!(storage_bytes(65), 16);
        assert_eq!(storage_bytes(129), 24);
    }
}
