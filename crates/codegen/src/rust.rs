//! The ahead-of-time Rust emitter: lowers a post-optimization circuit
//! graph into a **complete, standalone Rust program** that simulates
//! the design — GSIM's actual product (§III-D), realized for this
//! repository's substrate.
//!
//! The emitted simulator mirrors the essential-signal engine's
//! architecture, with all interpretation cost moved to compile time:
//!
//! * one function per supernode, evaluating its member nodes as native
//!   Rust expressions (the interpreter's fused superinstructions are
//!   subsumed — whole expression trees compile to straight-line code);
//! * a word-scanned active-bit dispatch loop (paper Listing 4): a
//!   supernode only runs when an operand changed;
//! * a locality-ordered state struct shared with the C++ emitter's
//!   Table IV "data size" accounting ([`crate::layout`]): inputs,
//!   register current/shadow pairs, then combinational values in sweep
//!   order, each stored in the narrowest natural integer type;
//! * a `main` that reads an `rt::parse_stimulus`-format stimulus
//!   stream, steps the design, and reports peeks + counters (plus a
//!   JSON summary line) on stdout — or, with `--serve`, stays
//!   resident and speaks the line-oriented session protocol
//!   (documented on `gsim_sim::Session`) over stdin/stdout.
//!
//! Values up to 128 bits compute on native `u64`/`u128` arithmetic;
//! wider signals go through the embedded `rt` word kernels, whose
//! semantics are pinned against `gsim_value::ops` by this crate's
//! tests. Emission is deterministic: the same graph always produces
//! the same source text.

use crate::layout::{self, StateLayout};
use gsim_graph::{Expr, ExprKind, Graph, NodeId, NodeKind, PrimOp};
use gsim_partition::{Partition, PartitionOptions};
use gsim_value::Value;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Widest supported signal in the AoT backend (bounded by the embedded
/// runtime's scratch buffers).
pub const MAX_AOT_WIDTH: u32 = 64 * 64;

/// Result of emitting a design as a standalone Rust simulator.
#[derive(Debug, Clone)]
pub struct RustOutput {
    /// The generated program (a complete `main.rs`).
    pub code: String,
    /// Bytes of generated source ("code size").
    pub code_bytes: usize,
    /// Bytes of simulated state in the emitted struct, memories
    /// excluded ("data size"; shared with the C++ emitter via
    /// [`crate::layout`]).
    pub data_bytes: usize,
    /// Wall-clock emission time.
    pub emit_time: Duration,
    /// Supernodes in the emitted schedule.
    pub supernodes: usize,
}

/// Error from the AoT emitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmitError {
    /// A node or intermediate expression exceeds [`MAX_AOT_WIDTH`].
    WidthTooLarge {
        /// The offending node.
        node: NodeId,
        /// Its width.
        width: u32,
    },
    /// The partition's schedule is not topologically ordered (a node
    /// precedes one of its combinational operands).
    ScheduleOrder {
        /// The node evaluated too early.
        node: NodeId,
        /// The operand scheduled after it.
        dep: NodeId,
    },
}

impl std::fmt::Display for EmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmitError::WidthTooLarge { node, width } => write!(
                f,
                "node {node} is {width} bits wide; the AoT backend supports at most {MAX_AOT_WIDTH}"
            ),
            EmitError::ScheduleOrder { node, dep } => write!(
                f,
                "schedule evaluates {node} before its combinational operand {dep}"
            ),
        }
    }
}

impl std::error::Error for EmitError {}

/// How a value is stored in the emitted state struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Repr {
    /// `u8`/`u16`/`u32`/`u64` (field bit size given).
    Small(u32),
    /// `u128`.
    U128,
    /// `[u64; N]`.
    Wide(usize),
}

impl Repr {
    fn for_width(w: u32) -> Repr {
        match w {
            0 => unreachable!("zero-width values have no storage"),
            1..=8 => Repr::Small(8),
            9..=16 => Repr::Small(16),
            17..=32 => Repr::Small(32),
            33..=64 => Repr::Small(64),
            65..=128 => Repr::U128,
            _ => Repr::Wide(gsim_value::words_for(w)),
        }
    }

    fn ty(&self) -> String {
        match self {
            Repr::Small(b) => format!("u{b}"),
            Repr::U128 => "u128".into(),
            Repr::Wide(n) => format!("[u64; {n}]"),
        }
    }
}

/// An evaluated operand inside a generated function body.
#[derive(Debug, Clone)]
enum Operand {
    /// A `u128`-valued Rust expression, canonical at `width`.
    N {
        expr: String,
        width: u32,
        signed: bool,
    },
    /// A `[u64; _]`-valued place expression (temp or field), canonical
    /// at `width`.
    W {
        expr: String,
        width: u32,
        signed: bool,
    },
}

impl Operand {
    fn width(&self) -> u32 {
        match self {
            Operand::N { width, .. } | Operand::W { width, .. } => *width,
        }
    }
}

struct Emitter<'g> {
    graph: &'g Graph,
    partition: Partition,
    layout: StateLayout,
    /// Node index → state-field repr (`None` for zero-width / sinks).
    repr: Vec<Option<Repr>>,
    /// Supernode activation masks per producer node: readers of the
    /// node grouped as `(act word, bit mask)` pairs, excluding the
    /// producer's own supernode.
    succ_masks: Vec<Vec<(usize, u64)>>,
    /// Same, including the producer's own supernode (register commit).
    succ_masks_self: Vec<Vec<(usize, u64)>>,
    /// Readers of each memory (supernodes holding its read ports).
    mem_reader_masks: Vec<Vec<(usize, u64)>>,
    /// Hoisted wide constants.
    wide_consts: Vec<Vec<u64>>,
    tmp: u32,
}

fn field(id: NodeId) -> String {
    format!("self.n{}", id.index())
}

fn mask_literal(w: u32) -> String {
    if w == 0 {
        "0u128".into()
    } else if w >= 128 {
        "u128::MAX".into()
    } else {
        format!("0x{:x}u128", (1u128 << w) - 1)
    }
}

fn group_masks(sns: &[u32]) -> Vec<(usize, u64)> {
    let mut out: Vec<(usize, u64)> = Vec::new();
    for &sn in sns {
        let w = (sn >> 6) as usize;
        let bit = 1u64 << (sn & 63);
        match out.iter_mut().find(|(ow, _)| *ow == w) {
            Some((_, m)) => *m |= bit,
            None => out.push((w, bit)),
        }
    }
    out.sort_unstable_by_key(|&(w, _)| w);
    out
}

/// Emits a complete standalone Rust simulator for `graph`, partitioned
/// with `popts`.
///
/// # Errors
///
/// Returns [`EmitError`] for designs wider than [`MAX_AOT_WIDTH`] or a
/// partition whose schedule is not topologically ordered.
pub fn emit_rust(graph: &Graph, popts: &PartitionOptions) -> Result<RustOutput, EmitError> {
    let start = Instant::now();
    let partition = gsim_partition::build(graph, popts);
    let lay = layout::state_layout(graph, &partition);

    // Width validation (node widths and every intermediate expression).
    for (id, node) in graph.iter() {
        let mut too_wide = None;
        let mut check = |e: &Expr| {
            if e.width > MAX_AOT_WIDTH && too_wide.is_none() {
                too_wide = Some(e.width);
            }
        };
        if node.width > MAX_AOT_WIDTH {
            return Err(EmitError::WidthTooLarge {
                node: id,
                width: node.width,
            });
        }
        if let Some(e) = &node.expr {
            e.visit(&mut check);
        }
        if let Some(w) = &node.write {
            w.addr.visit(&mut check);
            w.data.visit(&mut check);
            w.en.visit(&mut check);
        }
        if let Some(width) = too_wide {
            return Err(EmitError::WidthTooLarge { node: id, width });
        }
    }

    let n_nodes = graph.num_nodes();
    let mut sn_of = vec![0u32; n_nodes];
    let mut pos_of = vec![0u32; n_nodes];
    for (sn, members) in partition.supernodes.iter().enumerate() {
        for (pos, &id) in members.iter().enumerate() {
            sn_of[id.index()] = sn as u32;
            pos_of[id.index()] = pos as u32;
        }
    }

    // Schedule validation: a node's combinational operands must be
    // scheduled strictly before it.
    for (id, node) in graph.iter() {
        if matches!(node.kind, NodeKind::MemWrite { .. }) {
            continue; // evaluated in the commit phase, after the sweep
        }
        for dep in node.dep_refs() {
            if !graph.node(dep).kind.is_comb_like() {
                continue; // registers/inputs are read pre-edge
            }
            let before = (sn_of[dep.index()], pos_of[dep.index()]);
            let here = (sn_of[id.index()], pos_of[id.index()]);
            if before >= here {
                return Err(EmitError::ScheduleOrder { node: id, dep });
            }
        }
    }

    // Successor supernodes per producer node (sweep-time activation
    // excludes the producer's own supernode; commit-time activation
    // includes it).
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n_nodes];
    for (id, node) in graph.iter() {
        if matches!(node.kind, NodeKind::MemWrite { .. }) {
            continue; // write operands are evaluated live at commit
        }
        for dep in node.dep_refs() {
            succs[dep.index()].push(sn_of[id.index()]);
        }
    }
    for s in &mut succs {
        s.sort_unstable();
        s.dedup();
    }
    let succ_masks: Vec<Vec<(usize, u64)>> = succs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let own = sn_of[i];
            let filtered: Vec<u32> = s.iter().copied().filter(|&sn| sn != own).collect();
            group_masks(&filtered)
        })
        .collect();
    let succ_masks_self: Vec<Vec<(usize, u64)>> = succs.iter().map(|s| group_masks(s)).collect();
    let mem_reader_masks: Vec<Vec<(usize, u64)>> = (0..graph.mems().len())
        .map(|m| {
            let mut sns: Vec<u32> = graph
                .iter()
                .filter(|(_, n)| matches!(n.kind, NodeKind::MemRead { mem } if mem.index() == m))
                .map(|(id, _)| sn_of[id.index()])
                .collect();
            sns.sort_unstable();
            sns.dedup();
            group_masks(&sns)
        })
        .collect();

    let mut repr = vec![None; n_nodes];
    for e in &lay.entries {
        repr[e.node.index()] = Some(Repr::for_width(e.width));
    }

    let mut em = Emitter {
        graph,
        partition,
        layout: lay,
        repr,
        succ_masks,
        succ_masks_self,
        mem_reader_masks,
        wide_consts: Vec::new(),
        tmp: 0,
    };
    let code = em.emit();
    Ok(RustOutput {
        code_bytes: code.len(),
        data_bytes: em.layout.data_bytes,
        supernodes: em.partition.len(),
        emit_time: start.elapsed(),
        code,
    })
}

impl Emitter<'_> {
    fn fresh(&mut self) -> String {
        self.tmp += 1;
        format!("t{}", self.tmp)
    }

    fn wide_const(&mut self, words: &[u64]) -> String {
        let idx = match self.wide_consts.iter().position(|c| c == words) {
            Some(i) => i,
            None => {
                self.wide_consts.push(words.to_vec());
                self.wide_consts.len() - 1
            }
        };
        format!("C{idx}")
    }

    fn act_lines(&self, masks: &[(usize, u64)], out: &mut String, indent: &str) {
        for &(w, m) in masks {
            let _ = writeln!(out, "{indent}self.act[{w}] |= 0x{m:x};");
        }
    }

    /// Loads node `id`'s current value as an operand.
    fn node_operand(&self, id: NodeId) -> Operand {
        let node = self.graph.node(id);
        match self.repr[id.index()] {
            None => Operand::N {
                expr: "0u128".into(),
                width: 0,
                signed: node.signed,
            },
            Some(Repr::Small(_)) => Operand::N {
                expr: format!("({} as u128)", field(id)),
                width: node.width,
                signed: node.signed,
            },
            Some(Repr::U128) => Operand::N {
                expr: field(id),
                width: node.width,
                signed: node.signed,
            },
            Some(Repr::Wide(_)) => Operand::W {
                expr: field(id),
                width: node.width,
                signed: node.signed,
            },
        }
    }

    /// Materializes an operand as a word-slice place expression,
    /// emitting a conversion temp for narrow values.
    fn as_slice(&mut self, op: &Operand, out: &mut String, indent: &str) -> String {
        match op {
            Operand::W { expr, .. } => expr.clone(),
            Operand::N { expr, width, .. } => {
                let k = gsim_value::words_for(*width).max(1);
                let t = self.fresh();
                if k == 1 {
                    let _ = writeln!(out, "{indent}let {t}: [u64; 1] = [({expr}) as u64];");
                } else {
                    let _ = writeln!(
                        out,
                        "{indent}let {t}: [u64; 2] = [({expr}) as u64, (({expr}) >> 64) as u64];"
                    );
                }
                t
            }
        }
    }

    /// Emits evaluation of `e`, appending statements to `out`, and
    /// returns the operand holding the result.
    fn gen_expr(&mut self, e: &Expr, out: &mut String, indent: &str) -> Operand {
        match &e.kind {
            ExprKind::Const(v) => {
                if e.width == 0 {
                    Operand::N {
                        expr: "0u128".into(),
                        width: 0,
                        signed: e.signed,
                    }
                } else if e.width <= 128 {
                    Operand::N {
                        expr: format!("0x{:x}u128", v.to_u128().expect("width <= 128")),
                        width: e.width,
                        signed: e.signed,
                    }
                } else {
                    let name = self.wide_const(v.words());
                    Operand::W {
                        expr: name,
                        width: e.width,
                        signed: e.signed,
                    }
                }
            }
            ExprKind::Ref(id) => {
                let mut op = self.node_operand(*id);
                // References carry their own (validated) width/sign.
                match &mut op {
                    Operand::N { width, signed, .. } | Operand::W { width, signed, .. } => {
                        *width = e.width;
                        *signed = e.signed;
                    }
                }
                op
            }
            ExprKind::Prim(op, args, params) => {
                let operands: Vec<Operand> =
                    args.iter().map(|a| self.gen_expr(a, out, indent)).collect();
                self.gen_prim(*op, e, &operands, params, out, indent)
            }
        }
    }

    /// Binds a `u128` formula to a fresh temp and returns it as an
    /// operand (keeps generated expressions flat and share-safe).
    fn bind_n(
        &mut self,
        formula: String,
        width: u32,
        signed: bool,
        out: &mut String,
        indent: &str,
    ) -> Operand {
        let t = self.fresh();
        let _ = writeln!(out, "{indent}let {t}: u128 = {formula};");
        Operand::N {
            expr: t,
            width,
            signed,
        }
    }

    #[allow(clippy::too_many_lines)]
    fn gen_prim(
        &mut self,
        op: PrimOp,
        e: &Expr,
        operands: &[Operand],
        params: &[u32],
        out: &mut String,
        indent: &str,
    ) -> Operand {
        use PrimOp::*;
        let w = e.width;
        // The reference semantics take the operand signedness from the
        // first argument (`Expr::eval`), and the mux arm signedness
        // from the true arm (`eval_prim`).
        let signed = match operands.first() {
            Some(Operand::N { signed, .. } | Operand::W { signed, .. }) => *signed,
            None => false,
        };

        // Identity ops: value and canonical form unchanged, only the
        // declared type differs.
        match op {
            AsUInt | AsSInt => {
                let mut r = operands[0].clone();
                match &mut r {
                    Operand::N { width, signed, .. } | Operand::W { width, signed, .. } => {
                        *width = w;
                        *signed = matches!(op, AsSInt);
                    }
                }
                return r;
            }
            Cvt if signed => {
                let mut r = operands[0].clone();
                match &mut r {
                    Operand::N { signed, .. } | Operand::W { signed, .. } => *signed = true,
                }
                return r;
            }
            _ => {}
        }

        let narrow = w <= 128 && operands.iter().all(|o| matches!(o, Operand::N { .. }));
        if narrow {
            let n = |i: usize| -> (String, u32) {
                match &operands[i] {
                    Operand::N { expr, width, .. } => (expr.clone(), *width),
                    Operand::W { .. } => unreachable!("narrow path has narrow operands"),
                }
            };
            let sx = |i: usize| -> String {
                let (x, wx) = n(i);
                format!("rt::sx128({x}, {wx})")
            };
            let formula = match op {
                Add | Sub => {
                    let f = if matches!(op, Add) {
                        "wrapping_add"
                    } else {
                        "wrapping_sub"
                    };
                    if signed {
                        format!("rt::mask128(({}.{f}({})) as u128, {w})", sx(0), sx(1))
                    } else {
                        format!("rt::mask128({}.{f}({}), {w})", n(0).0, n(1).0)
                    }
                }
                Mul => {
                    if signed {
                        format!(
                            "rt::mask128(({}.wrapping_mul({})) as u128, {w})",
                            sx(0),
                            sx(1)
                        )
                    } else {
                        format!("rt::mask128({}.wrapping_mul({}), {w})", n(0).0, n(1).0)
                    }
                }
                Div => {
                    if signed {
                        format!(
                            "rt::mask128((if {sb} == 0 {{ 0 }} else {{ {sa}.wrapping_div({sb}) }}) as u128, {w})",
                            sa = sx(0),
                            sb = sx(1)
                        )
                    } else {
                        format!(
                            "rt::mask128(if {b} == 0 {{ 0 }} else {{ {a} / {b} }}, {w})",
                            a = n(0).0,
                            b = n(1).0
                        )
                    }
                }
                Rem => {
                    if signed {
                        format!(
                            "rt::mask128((if {sb} == 0 {{ {sa} }} else {{ {sa}.wrapping_rem({sb}) }}) as u128, {w})",
                            sa = sx(0),
                            sb = sx(1)
                        )
                    } else {
                        format!(
                            "rt::mask128(if {b} == 0 {{ {a} }} else {{ {a} % {b} }}, {w})",
                            a = n(0).0,
                            b = n(1).0
                        )
                    }
                }
                Lt | Leq | Gt | Geq | Eq | Neq => {
                    let cmp = match op {
                        Lt => "<",
                        Leq => "<=",
                        Gt => ">",
                        Geq => ">=",
                        Eq => "==",
                        _ => "!=",
                    };
                    if signed {
                        format!("(({} {cmp} {}) as u128)", sx(0), sx(1))
                    } else {
                        format!("(({} {cmp} {}) as u128)", n(0).0, n(1).0)
                    }
                }
                Pad => {
                    let (x, wx) = n(0);
                    if signed && w > wx {
                        format!("rt::mask128(rt::sx128({x}, {wx}) as u128, {w})")
                    } else {
                        x
                    }
                }
                Cvt => n(0).0, // unsigned cvt: canonical value unchanged
                Shl => {
                    let (x, _) = n(0);
                    let sh = params[0];
                    if sh >= 128 {
                        "0u128".into()
                    } else {
                        format!("rt::mask128({x} << {sh}, {w})")
                    }
                }
                Shr => {
                    let (x, wx) = n(0);
                    let sh = params[0];
                    if signed {
                        format!(
                            "rt::mask128((rt::sx128({x}, {wx}) >> {sh}u32) as u128, {w})",
                            sh = sh.min(127)
                        )
                    } else if sh >= 128 {
                        "0u128".into()
                    } else {
                        format!("rt::mask128({x} >> {sh}, {w})")
                    }
                }
                Dshl => {
                    let (a, _) = n(0);
                    let (b, _) = n(1);
                    let t = self.fresh();
                    let _ = writeln!(
                        out,
                        "{indent}let {t}: u64 = rt::sat64_128({b}).min({w} as u64);"
                    );
                    format!("rt::mask128(if {t} >= 128 {{ 0 }} else {{ {a} << {t} }}, {w})")
                }
                Dshr => {
                    let (a, wa) = n(0);
                    let (b, _) = n(1);
                    let t = self.fresh();
                    let _ = writeln!(
                        out,
                        "{indent}let {t}: u64 = rt::sat64_128({b}).min({wa}u64 + 1);"
                    );
                    if signed {
                        format!(
                            "rt::mask128((rt::sx128({a}, {wa}) >> (if {t} > 127 {{ 127u64 }} else {{ {t} }})) as u128, {w})"
                        )
                    } else {
                        format!("rt::mask128(if {t} >= 128 {{ 0 }} else {{ {a} >> {t} }}, {w})")
                    }
                }
                Neg => {
                    if signed {
                        format!("rt::mask128({}.wrapping_neg() as u128, {w})", sx(0))
                    } else {
                        format!("rt::mask128({}.wrapping_neg(), {w})", n(0).0)
                    }
                }
                Not => format!("rt::mask128(!{}, {w})", n(0).0),
                And | Or | Xor => {
                    let o = match op {
                        And => "&",
                        Or => "|",
                        _ => "^",
                    };
                    if signed {
                        format!(
                            "rt::mask128((rt::sx128({a}, {wa}) as u128) {o} (rt::sx128({b}, {wb}) as u128), {w})",
                            a = n(0).0,
                            wa = n(0).1,
                            b = n(1).0,
                            wb = n(1).1
                        )
                    } else {
                        format!("({} {o} {})", n(0).0, n(1).0)
                    }
                }
                Andr => {
                    let (x, wx) = n(0);
                    if wx == 0 {
                        "1u128".into()
                    } else {
                        format!("(({x} == {}) as u128)", mask_literal(wx))
                    }
                }
                Orr => format!("(({} != 0) as u128)", n(0).0),
                Xorr => format!("(({}.count_ones() & 1) as u128)", n(0).0),
                Cat => {
                    let (a, wa) = n(0);
                    let (b, wb) = n(1);
                    if wa == 0 {
                        b
                    } else if wb == 0 {
                        a
                    } else {
                        format!("(({a} << {wb}) | {b})")
                    }
                }
                Bits => {
                    let (x, _) = n(0);
                    let (hi, lo) = (params[0], params[1]);
                    format!("rt::mask128({x} >> {lo}, {})", hi - lo + 1)
                }
                Head => {
                    let (x, wx) = n(0);
                    format!("rt::mask128({x} >> {}, {})", wx - params[0], params[0])
                }
                Tail => {
                    let (x, wx) = n(0);
                    format!("rt::mask128({x}, {})", wx - params[0])
                }
                Mux => {
                    let (s, _) = n(0);
                    let arm_signed = match &operands[1] {
                        Operand::N { signed, .. } | Operand::W { signed, .. } => *signed,
                    };
                    let arm = |i: usize| -> String {
                        let (x, wx) = n(i);
                        if wx == w || !arm_signed {
                            x
                        } else {
                            format!("rt::mask128(rt::sx128({x}, {wx}) as u128, {w})")
                        }
                    };
                    format!(
                        "if {s} != 0 {{ {t} }} else {{ {f} }}",
                        t = arm(1),
                        f = arm(2)
                    )
                }
                AsUInt | AsSInt => unreachable!("handled above"),
            };
            return self.bind_n(formula, w, e.signed, out, indent);
        }

        // ---- wide path: compute through the rt word kernels ----
        let slices: Vec<(String, u32)> = operands
            .iter()
            .map(|o| (self.as_slice(o, out, indent), o.width()))
            .collect();
        let k = gsim_value::words_for(w).max(1);
        let t = self.fresh();
        let a = |i: usize| -> String { format!("&{}", slices[i].0) };
        let wa = |i: usize| -> u32 { slices[i].1 };
        match op {
            Add | Sub | Mul | Div | Rem => {
                let f = match op {
                    Add => "add",
                    Sub => "sub",
                    Mul => "mul",
                    Div => "div",
                    _ => "rem",
                };
                let _ = writeln!(out, "{indent}let mut {t} = [0u64; {k}];");
                let _ = writeln!(
                    out,
                    "{indent}rt::{f}(&mut {t}, {w}, {}, {}, {}, {}, {signed});",
                    a(0),
                    wa(0),
                    a(1),
                    wa(1)
                );
            }
            Lt | Leq | Gt | Geq | Eq | Neq => {
                let test = match op {
                    Lt => "== std::cmp::Ordering::Less",
                    Leq => "!= std::cmp::Ordering::Greater",
                    Gt => "== std::cmp::Ordering::Greater",
                    Geq => "!= std::cmp::Ordering::Less",
                    Eq => "== std::cmp::Ordering::Equal",
                    _ => "!= std::cmp::Ordering::Equal",
                };
                let f = format!(
                    "((rt::cmp({}, {}, {}, {}, {signed}) {test}) as u128)",
                    a(0),
                    wa(0),
                    a(1),
                    wa(1)
                );
                return self.bind_n(f, 1, false, out, indent);
            }
            And | Or | Xor => {
                let which = match op {
                    And => 0,
                    Or => 1,
                    _ => 2,
                };
                let _ = writeln!(out, "{indent}let mut {t} = [0u64; {k}];");
                let _ = writeln!(
                    out,
                    "{indent}rt::bitwise(&mut {t}, {w}, {}, {}, {}, {}, {signed}, {which});",
                    a(0),
                    wa(0),
                    a(1),
                    wa(1)
                );
            }
            Not => {
                let _ = writeln!(out, "{indent}let mut {t} = [0u64; {k}];");
                let _ = writeln!(out, "{indent}rt::not(&mut {t}, {}, {w});", a(0));
            }
            Andr | Orr | Xorr => {
                let f = match op {
                    Andr => format!("((rt::andr({}, {})) as u128)", a(0), wa(0)),
                    Orr => format!("((rt::orr({})) as u128)", a(0)),
                    _ => format!("((rt::xorr({})) as u128)", a(0)),
                };
                return self.bind_n(f, 1, false, out, indent);
            }
            Cat => {
                let _ = writeln!(out, "{indent}let mut {t} = [0u64; {k}];");
                let _ = writeln!(
                    out,
                    "{indent}rt::cat(&mut {t}, {}, {}, {});",
                    a(0),
                    a(1),
                    wa(1)
                );
            }
            Bits | Head | Tail => {
                let lo = match op {
                    Bits => params[1],
                    Head => wa(0) - params[0],
                    _ => 0,
                };
                let _ = writeln!(out, "{indent}let mut {t} = [0u64; {k}];");
                let _ = writeln!(out, "{indent}rt::extract(&mut {t}, {}, {lo}, {w});", a(0));
            }
            Shl => {
                let _ = writeln!(out, "{indent}let mut {t} = [0u64; {k}];");
                let _ = writeln!(
                    out,
                    "{indent}rt::shl(&mut {t}, {w}, {}, {});",
                    a(0),
                    params[0]
                );
            }
            Shr => {
                let _ = writeln!(out, "{indent}let mut {t} = [0u64; {k}];");
                let _ = writeln!(
                    out,
                    "{indent}rt::shr(&mut {t}, {w}, {}, {}, {}, {signed});",
                    a(0),
                    wa(0),
                    params[0]
                );
            }
            Dshl => {
                let _ = writeln!(out, "{indent}let mut {t} = [0u64; {k}];");
                let _ = writeln!(out, "{indent}rt::dshl(&mut {t}, {w}, {}, {});", a(0), a(1));
            }
            Dshr => {
                let _ = writeln!(out, "{indent}let mut {t} = [0u64; {k}];");
                let _ = writeln!(
                    out,
                    "{indent}rt::dshr(&mut {t}, {}, {}, {}, {signed});",
                    a(0),
                    wa(0),
                    a(1)
                );
            }
            Pad | Cvt => {
                let _ = writeln!(out, "{indent}let mut {t} = [0u64; {k}];");
                let _ = writeln!(
                    out,
                    "{indent}rt::ext(&mut {t}, {}, {}, {w}, {signed});",
                    a(0),
                    wa(0)
                );
            }
            Neg => {
                let _ = writeln!(out, "{indent}let mut {t} = [0u64; {k}];");
                let _ = writeln!(
                    out,
                    "{indent}rt::neg(&mut {t}, {w}, {}, {}, {signed});",
                    a(0),
                    wa(0)
                );
            }
            Mux => {
                let arm_signed = match &operands[1] {
                    Operand::N { signed, .. } | Operand::W { signed, .. } => *signed,
                };
                let sel_nonzero = match &operands[0] {
                    Operand::N { expr, .. } => format!("{expr} != 0"),
                    Operand::W { expr, .. } => format!("rt::orr(&{expr})"),
                };
                let _ = writeln!(out, "{indent}let mut {t} = [0u64; {k}];");
                let _ = writeln!(
                    out,
                    "{indent}if {sel_nonzero} {{ rt::ext(&mut {t}, {}, {}, {w}, {arm_signed}); }} else {{ rt::ext(&mut {t}, {}, {}, {w}, {arm_signed}); }}",
                    a(1),
                    wa(1),
                    a(2),
                    wa(2)
                );
            }
            AsUInt | AsSInt => unreachable!("handled above"),
        }
        if w <= 128 {
            // Result fits the narrow tier: convert back so stores and
            // downstream narrow ops stay on native arithmetic.
            self.bind_n(format!("rt::to_u128(&{t})"), w, e.signed, out, indent)
        } else {
            Operand::W {
                expr: t,
                width: w,
                signed: e.signed,
            }
        }
    }

    /// Converts an operand of exactly the target node's width into the
    /// node's storage type.
    fn store_value(&mut self, op: &Operand, repr: Repr, out: &mut String, indent: &str) -> String {
        match (op, repr) {
            (Operand::N { expr, .. }, Repr::Small(b)) => format!("(({expr}) as u{b})"),
            (Operand::N { expr, .. }, Repr::U128) => expr.clone(),
            (Operand::W { expr, .. }, Repr::Wide(_)) => expr.clone(),
            (Operand::N { expr, width, .. }, Repr::Wide(k)) => {
                // A narrow value stored wide (cannot happen today —
                // widths above 128 always take the wide path — but keep
                // the conversion total).
                let t = self.fresh();
                let _ = writeln!(
                    out,
                    "{indent}let {t}: [u64; {k}] = {{ let mut z = [0u64; {k}]; rt::store128(&mut z, {expr}); let _ = {width}; z }};"
                );
                t
            }
            (Operand::W { expr, .. }, Repr::Small(b)) => format!("({expr}[0] as u{b})"),
            (Operand::W { expr, .. }, Repr::U128) => format!("rt::to_u128(&{expr})"),
        }
    }

    /// Emits the body evaluating one supernode member node.
    fn gen_member(&mut self, id: NodeId, out: &mut String) {
        let node = self.graph.node(id);
        let ind = "        ";
        let name = self.graph.display_name(id);
        let _ = writeln!(
            out,
            "        // {name} ({}, {} bits)",
            kind_tag(node),
            node.width
        );
        match &node.kind {
            NodeKind::Input | NodeKind::MemWrite { .. } => {}
            NodeKind::Reg { .. } => {
                let e = node.expr.as_ref().expect("reg next");
                let op = self.gen_expr(e, out, ind);
                if let Some(repr) = self.repr[id.index()] {
                    let v = self.store_value(&op, repr, out, ind);
                    let shadow = format!("self.n{}_next", id.index());
                    // Unconditional, uncounted: the interpreter's Reg
                    // task writes the shadow the same way; value
                    // changes are counted once, at commit.
                    let _ = writeln!(out, "{ind}{shadow} = {v};");
                }
            }
            NodeKind::MemRead { mem } => {
                let addr_e = node.expr.as_ref().expect("read address");
                let addr_op = self.gen_expr(addr_e, out, ind);
                let addr = match &addr_op {
                    Operand::N { expr, .. } => format!("rt::sat64_128({expr})"),
                    Operand::W { expr, .. } => format!("rt::sat64(&{expr})"),
                };
                let m = mem.index();
                let mdef = &self.graph.mems()[m];
                let depth = mdef.depth;
                let stride = gsim_value::words_for(mdef.width).max(1);
                let _ = writeln!(out, "{ind}let a: u64 = {addr};");
                if let Some(repr) = self.repr[id.index()] {
                    let read = match repr {
                        Repr::Small(b) => format!(
                            "if a < {depth} {{ self.m{m}[a as usize] as u{b} }} else {{ 0 }}"
                        ),
                        Repr::U128 => format!(
                            "if a < {depth} {{ let b = a as usize * 2; (self.m{m}[b] as u128) | ((self.m{m}[b + 1] as u128) << 64) }} else {{ 0 }}"
                        ),
                        Repr::Wide(k) => format!(
                            "if a < {depth} {{ let b = a as usize * {stride}; let mut z = [0u64; {k}]; z.copy_from_slice(&self.m{m}[b..b + {stride}]); z }} else {{ [0u64; {k}] }}"
                        ),
                    };
                    let _ = writeln!(out, "{ind}let v: {} = {read};", repr.ty());
                    self.emit_comb_store(id, out);
                }
            }
            NodeKind::Comb | NodeKind::Output => {
                let e = node.expr.as_ref().expect("driver");
                let op = self.gen_expr(e, out, ind);
                if let Some(repr) = self.repr[id.index()] {
                    let v = self.store_value(&op, repr, out, ind);
                    let _ = writeln!(out, "{ind}let v = {v};");
                    self.emit_comb_store(id, out);
                }
            }
        }
    }

    /// Change-detected store with successor activation for a
    /// combinational value already bound to `v`.
    fn emit_comb_store(&mut self, id: NodeId, out: &mut String) {
        let ind = "        ";
        let f = field(id);
        let _ = writeln!(out, "{ind}if {f} != v {{");
        let _ = writeln!(out, "{ind}    {f} = v;");
        let _ = writeln!(out, "{ind}    self.value_changes += 1;");
        let masks = self.succ_masks[id.index()].clone();
        self.act_lines(&masks, out, &format!("{ind}    "));
        let _ = writeln!(out, "{ind}}}");
    }

    fn emit(&mut self) -> String {
        let mut body = String::with_capacity(1 << 20);
        let g = self.graph;
        let num_sn = self.partition.len();
        let act_words = num_sn.div_ceil(64).max(1);

        // ---- supernode functions ----
        let mut sn_fns = String::new();
        let supernodes = self.partition.supernodes.clone();
        for (sn, members) in supernodes.iter().enumerate() {
            let evald = members
                .iter()
                .filter(|&&id| {
                    !matches!(g.node(id).kind, NodeKind::Input | NodeKind::MemWrite { .. })
                })
                .count();
            let _ = writeln!(sn_fns, "    fn sn{sn}(&mut self) {{");
            let _ = writeln!(sn_fns, "        self.supernode_evals += 1;");
            if evald > 0 {
                let _ = writeln!(sn_fns, "        self.node_evals += {evald};");
            }
            for &id in members {
                self.gen_member(id, &mut sn_fns);
            }
            let _ = writeln!(sn_fns, "    }}");
            let _ = writeln!(sn_fns);
        }

        // ---- commit ----
        let mut commit = String::new();
        let _ = writeln!(commit, "    fn commit(&mut self) {{");
        // Commit begins by latching every distinct reset signal: a
        // reset signal may itself be a register (the reset-synchronizer
        // pattern), and the registers below commit one by one in node
        // order, so reading a signal live mid-commit could observe its
        // *post-edge* value and apply reset one cycle early. RefInterp
        // computes everything from pre-edge values before committing
        // anything; these locals pin the same semantics.
        let regs: Vec<NodeId> = g
            .iter()
            .filter(|(_, n)| n.kind.is_reg())
            .map(|(id, _)| id)
            .collect();
        let mut reset_sigs: Vec<NodeId> = Vec::new();
        for &id in &regs {
            if self.repr[id.index()].is_none() {
                continue;
            }
            if let NodeKind::Reg { reset: Some(r) } = &g.node(id).kind {
                if !reset_sigs.contains(&r.signal) {
                    reset_sigs.push(r.signal);
                }
            }
        }
        for &sig in &reset_sigs {
            let op = self.node_operand(sig);
            let nz = match &op {
                Operand::N { expr, .. } => format!("{expr} != 0"),
                Operand::W { expr, .. } => format!("rt::orr(&{expr})"),
            };
            let _ = writeln!(commit, "        let rst_n{}: bool = {nz};", sig.index());
        }
        // Memory write ports, in node order (last write wins), using
        // pre-edge values — then register commit.
        let mems_with_writes: Vec<usize> = (0..g.mems().len())
            .filter(|&m| {
                g.iter()
                    .any(|(_, n)| matches!(n.kind, NodeKind::MemWrite { mem } if mem.index() == m))
            })
            .collect();
        for &m in &mems_with_writes {
            let _ = writeln!(commit, "        let mut dirty_m{m} = false;");
        }
        let write_nodes: Vec<NodeId> = g
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::MemWrite { .. }))
            .map(|(id, _)| id)
            .collect();
        for id in write_nodes {
            let node = g.node(id).clone();
            let NodeKind::MemWrite { mem } = node.kind else {
                unreachable!()
            };
            let wops = node.mem_write_operands().expect("write operands").clone();
            let m = mem.index();
            let mdef = &g.mems()[m];
            let (depth, width) = (mdef.depth, mdef.width);
            let stride = gsim_value::words_for(width).max(1);
            let ind = "        ";
            let _ = writeln!(commit, "{ind}// write port on {}", mdef.name);
            let _ = writeln!(commit, "{ind}{{");
            let ind2 = "            ";
            let en = self.gen_expr(&wops.en, &mut commit, ind2);
            let en_test = match &en {
                Operand::N { expr, .. } => format!("{expr} != 0"),
                Operand::W { expr, .. } => format!("rt::orr(&{expr})"),
            };
            let _ = writeln!(commit, "{ind2}if {en_test} {{");
            let ind3 = "                ";
            let addr = self.gen_expr(&wops.addr, &mut commit, ind3);
            let addr_s = match &addr {
                Operand::N { expr, .. } => format!("rt::sat64_128({expr})"),
                Operand::W { expr, .. } => format!("rt::sat64(&{expr})"),
            };
            let _ = writeln!(commit, "{ind3}let a: u64 = {addr_s};");
            let _ = writeln!(commit, "{ind3}if a < {depth} {{");
            let ind4 = "                    ";
            let data = self.gen_expr(&wops.data, &mut commit, ind4);
            let data_s = self.as_slice(&data, &mut commit, ind4);
            let _ = writeln!(
                commit,
                "{ind4}rt::store_entry(&mut self.m{m}, a as usize * {stride}, {stride}, &{data_s}, {width});"
            );
            let _ = writeln!(commit, "{ind4}dirty_m{m} = true;");
            let _ = writeln!(commit, "{ind3}}}");
            let _ = writeln!(commit, "{ind2}}}");
            let _ = writeln!(commit, "{ind}}}");
        }
        for &m in &mems_with_writes {
            let masks = self.mem_reader_masks[m].clone();
            if masks.is_empty() {
                let _ = writeln!(commit, "        let _ = dirty_m{m};");
                continue;
            }
            let _ = writeln!(commit, "        if dirty_m{m} {{");
            self.act_lines(&masks, &mut commit, "            ");
            let _ = writeln!(commit, "        }}");
        }
        // Registers, in node order, muxing on the pre-edge reset
        // snapshots taken above.
        for id in regs {
            let node = g.node(id).clone();
            let Some(repr) = self.repr[id.index()] else {
                continue;
            };
            let NodeKind::Reg { reset } = &node.kind else {
                unreachable!()
            };
            let ind = "        ";
            let cur = field(id);
            let shadow = format!("self.n{}_next", id.index());
            let next = match reset {
                Some(r) => format!(
                    "if rst_n{} {{ {} }} else {{ {shadow} }}",
                    r.signal.index(),
                    self.value_literal(&r.init, repr)
                ),
                None => shadow.clone(),
            };
            let _ = writeln!(commit, "{ind}// register {}", g.display_name(id));
            let _ = writeln!(commit, "{ind}{{");
            let _ = writeln!(commit, "{ind}    let v: {} = {next};", repr.ty());
            let _ = writeln!(commit, "{ind}    if {cur} != v {{");
            let _ = writeln!(commit, "{ind}        {cur} = v;");
            let _ = writeln!(commit, "{ind}        self.value_changes += 1;");
            let masks = self.succ_masks_self[id.index()].clone();
            self.act_lines(&masks, &mut commit, &format!("{ind}        "));
            let _ = writeln!(commit, "{ind}    }}");
            let _ = writeln!(commit, "{ind}}}");
        }
        let _ = writeln!(commit, "    }}");

        // ---- struct fields ----
        let mut fields = String::new();
        for e in &self.layout.entries.clone() {
            let repr = Repr::for_width(e.width);
            let name = g.display_name(e.node);
            let _ = writeln!(
                fields,
                "    n{}: {}, // {} ({} bits)",
                e.node.index(),
                repr.ty(),
                name,
                e.width
            );
            if e.is_reg {
                let _ = writeln!(
                    fields,
                    "    n{}_next: {}, // {} (shadow)",
                    e.node.index(),
                    repr.ty(),
                    name
                );
            }
        }
        for (m, mem) in g.mems().iter().enumerate() {
            let stride = gsim_value::words_for(mem.width).max(1);
            let _ = writeln!(
                fields,
                "    m{m}: Vec<u64>, // memory {} ({} x {} bits, {} words/entry)",
                mem.name, mem.depth, mem.width, stride
            );
        }

        // ---- constructor ----
        let mut ctor = String::new();
        let _ = writeln!(ctor, "    fn new() -> Sim {{");
        let _ = writeln!(ctor, "        Sim {{");
        for e in &self.layout.entries {
            let repr = Repr::for_width(e.width);
            let zero = match repr {
                Repr::Small(b) => format!("0u{b}"),
                Repr::U128 => "0u128".into(),
                Repr::Wide(k) => format!("[0u64; {k}]"),
            };
            let _ = writeln!(ctor, "            n{}: {zero},", e.node.index());
            if e.is_reg {
                let _ = writeln!(ctor, "            n{}_next: {zero},", e.node.index());
            }
        }
        for (m, mem) in g.mems().iter().enumerate() {
            let stride = gsim_value::words_for(mem.width).max(1);
            let _ = writeln!(
                ctor,
                "            m{m}: vec![0u64; {}],",
                mem.depth as usize * stride
            );
        }
        // Everything starts active: the first cycle evaluates the
        // whole design (same convention as the interpreter engines).
        let mut init_words = Vec::with_capacity(act_words);
        for i in 0..act_words {
            let base = i * 64;
            let valid = num_sn.saturating_sub(base).min(64);
            init_words.push(if valid == 64 {
                u64::MAX
            } else if valid == 0 {
                0
            } else {
                (1u64 << valid) - 1
            });
        }
        let init_list: Vec<String> = init_words.iter().map(|w| format!("0x{w:x}")).collect();
        let _ = writeln!(ctor, "            act: vec![{}],", init_list.join(", "));
        let _ = writeln!(ctor, "            cycles: 0,");
        let _ = writeln!(ctor, "            supernode_evals: 0,");
        let _ = writeln!(ctor, "            node_evals: 0,");
        let _ = writeln!(ctor, "            value_changes: 0,");
        let _ = writeln!(ctor, "        }}");
        let _ = writeln!(ctor, "    }}");

        // ---- dispatch ----
        let mut dispatch = String::new();
        let _ = writeln!(dispatch, "    fn dispatch(&mut self, sn: usize) {{");
        let _ = writeln!(dispatch, "        match sn {{");
        for sn in 0..num_sn {
            let _ = writeln!(dispatch, "            {sn} => self.sn{sn}(),");
        }
        let _ = writeln!(dispatch, "            _ => {{}}");
        let _ = writeln!(dispatch, "        }}");
        let _ = writeln!(dispatch, "    }}");

        // ---- poke ----
        let mut poke = String::new();
        let _ = writeln!(
            poke,
            "    fn poke(&mut self, name: &str, val: &[u64]) -> bool {{"
        );
        let _ = writeln!(poke, "        match name {{");
        for &id in g.inputs() {
            let node = g.node(id);
            if node.name.is_empty() {
                continue;
            }
            let Some(repr) = self.repr[id.index()] else {
                // Zero-width input: accept and ignore.
                let _ = writeln!(poke, "            {:?} => true,", node.name);
                continue;
            };
            let w = node.width;
            let conv = match repr {
                Repr::Small(b) => {
                    let m = if w >= 64 {
                        "u64::MAX".into()
                    } else {
                        format!("0x{:x}u64", (1u64 << w) - 1)
                    };
                    format!("(val.first().copied().unwrap_or(0) & {m}) as u{b}")
                }
                Repr::U128 => format!("rt::mask128(rt::to_u128(val), {w})"),
                Repr::Wide(k) => format!(
                    "{{ let mut z = [0u64; {k}]; rt::copy(&mut z, val); rt::mask(&mut z, {w}); z }}"
                ),
            };
            let _ = writeln!(poke, "            {:?} => {{", node.name);
            let _ = writeln!(poke, "                let v: {} = {conv};", repr.ty());
            let f = field(id);
            let _ = writeln!(poke, "                if {f} != v {{");
            let _ = writeln!(poke, "                    {f} = v;");
            let masks = self.succ_masks_self[id.index()].clone();
            self.act_lines(&masks, &mut poke, "                    ");
            let _ = writeln!(poke, "                }}");
            let _ = writeln!(poke, "                true");
            let _ = writeln!(poke, "            }}");
        }
        let _ = writeln!(poke, "            _ => false,");
        let _ = writeln!(poke, "        }}");
        let _ = writeln!(poke, "    }}");

        // ---- load_mem ----
        let mut load = String::new();
        let _ = writeln!(
            load,
            "    fn load_mem(&mut self, name: &str, image: &[u64]) -> bool {{"
        );
        let _ = writeln!(load, "        match name {{");
        for (m, mem) in g.mems().iter().enumerate() {
            let stride = gsim_value::words_for(mem.width).max(1);
            let _ = writeln!(load, "            {:?} => {{", mem.name);
            let _ = writeln!(
                load,
                "                if image.len() > {} {{ return false; }}",
                mem.depth
            );
            let _ = writeln!(
                load,
                "                for (i, &x) in image.iter().enumerate() {{"
            );
            let _ = writeln!(
                load,
                "                    rt::store_entry(&mut self.m{m}, i * {stride}, {stride}, &[x], {});",
                mem.width
            );
            let _ = writeln!(load, "                }}");
            let _ = writeln!(load, "                true");
            let _ = writeln!(load, "            }}");
        }
        let _ = writeln!(load, "            _ => false,");
        let _ = writeln!(load, "        }}");
        let _ = writeln!(load, "    }}");

        // ---- state externalization (crash recovery) ----
        // `save_state` serializes every state element — signal values
        // and register shadows in layout order, then memories, the
        // activation words, and the counters — as one `.`-separated
        // hex token. `load_state` is its strict inverse; feeding a
        // blob to a *fresh* process of the same artifact reproduces
        // the source simulation bit for bit (the supervisor's
        // checkpoint/restore primitive, wire commands `state` /
        // `loadstate`).
        let mut state_fns = String::new();
        let _ = writeln!(state_fns, "    fn save_state(&self) -> String {{");
        let _ = writeln!(
            state_fns,
            "        let mut s = String::with_capacity({});",
            (self.layout.data_bytes * 2 + 64).next_power_of_two()
        );
        for e in &self.layout.entries {
            let repr = Repr::for_width(e.width);
            let mut emit_field = |name: String| {
                let _ = match repr {
                    Repr::Small(_) => {
                        writeln!(state_fns, "        rt::push_hex(&mut s, {name} as u128);")
                    }
                    Repr::U128 => writeln!(state_fns, "        rt::push_hex(&mut s, {name});"),
                    Repr::Wide(_) => {
                        writeln!(state_fns, "        rt::push_hex_words(&mut s, &{name});")
                    }
                };
            };
            emit_field(format!("self.n{}", e.node.index()));
            if e.is_reg {
                emit_field(format!("self.n{}_next", e.node.index()));
            }
        }
        for m in 0..g.mems().len() {
            let _ = writeln!(state_fns, "        rt::push_hex_words(&mut s, &self.m{m});");
        }
        let _ = writeln!(state_fns, "        rt::push_hex_words(&mut s, &self.act);");
        for c in ["cycles", "supernode_evals", "node_evals", "value_changes"] {
            let _ = writeln!(state_fns, "        rt::push_hex(&mut s, self.{c} as u128);");
        }
        let _ = writeln!(state_fns, "        s");
        let _ = writeln!(state_fns, "    }}");
        let _ = writeln!(state_fns);
        let _ = writeln!(
            state_fns,
            "    fn load_state(&mut self, blob: &str) -> bool {{"
        );
        let _ = writeln!(state_fns, "        let mut it = rt::HexStream::new(blob);");
        for e in &self.layout.entries {
            let repr = Repr::for_width(e.width);
            let mut emit_field = |name: String| {
                let _ = match repr {
                    Repr::Small(b) => writeln!(
                        state_fns,
                        "        self.{name} = match it.next_u64().and_then(|v| u{b}::try_from(v).ok()) {{ Some(v) => v, None => return false }};"
                    ),
                    Repr::U128 => writeln!(
                        state_fns,
                        "        self.{name} = match it.next_u128() {{ Some(v) => v, None => return false }};"
                    ),
                    Repr::Wide(_) => writeln!(
                        state_fns,
                        "        if !it.fill_words(&mut self.{name}) {{ return false; }}"
                    ),
                };
            };
            emit_field(format!("n{}", e.node.index()));
            if e.is_reg {
                emit_field(format!("n{}_next", e.node.index()));
            }
        }
        for m in 0..g.mems().len() {
            let _ = writeln!(
                state_fns,
                "        if !it.fill_words(&mut self.m{m}) {{ return false; }}"
            );
        }
        let _ = writeln!(
            state_fns,
            "        if !it.fill_words(&mut self.act) {{ return false; }}"
        );
        for c in ["cycles", "supernode_evals", "node_evals", "value_changes"] {
            let _ = writeln!(
                state_fns,
                "        self.{c} = match it.next_u64() {{ Some(v) => v, None => return false }};"
            );
        }
        let _ = writeln!(state_fns, "        it.at_end()");
        let _ = writeln!(state_fns, "    }}");

        // ---- outputs + by-name signal lookup ----
        let hex_of = |repr: Option<Repr>, id: NodeId| -> String {
            match repr {
                None => "String::from(\"0\")".into(),
                Some(Repr::Small(_)) | Some(Repr::U128) => {
                    format!("format!(\"{{:x}}\", {})", field(id))
                }
                Some(Repr::Wide(_)) => format!("rt::to_hex(&{})", field(id)),
            }
        };
        let mut outputs = String::new();
        let _ = writeln!(
            outputs,
            "    fn outputs(&self) -> Vec<(&'static str, u32, String)> {{"
        );
        let _ = writeln!(outputs, "        vec![");
        for &id in g.outputs() {
            let node = g.node(id);
            if node.name.is_empty() {
                continue;
            }
            let hex = hex_of(self.repr[id.index()], id);
            let _ = writeln!(
                outputs,
                "            ({:?}, {}, {hex}),",
                node.name, node.width
            );
        }
        let _ = writeln!(outputs, "        ]");
        let _ = writeln!(outputs, "    }}");
        let _ = writeln!(outputs);
        // `signal` resolves the `peek <name>` protocol command: named
        // outputs and inputs, as `(width, canonical hex)`.
        let _ = writeln!(
            outputs,
            "    fn signal(&self, name: &str) -> Option<(u32, String)> {{"
        );
        let _ = writeln!(outputs, "        match name {{");
        let mut seen: Vec<&str> = Vec::new();
        for &id in g.outputs().iter().chain(g.inputs()) {
            let node = g.node(id);
            if node.name.is_empty() || seen.contains(&node.name.as_str()) {
                continue;
            }
            seen.push(node.name.as_str());
            let hex = hex_of(self.repr[id.index()], id);
            let _ = writeln!(
                outputs,
                "            {:?} => Some(({}, {hex})),",
                node.name, node.width
            );
        }
        let _ = writeln!(outputs, "            _ => None,");
        let _ = writeln!(outputs, "        }}");
        let _ = writeln!(outputs, "    }}");

        // ---- assemble the program ----
        let _ = writeln!(
            body,
            "// Generated by gsim-codegen's AoT backend for design {:?}.",
            g.name()
        );
        let _ = writeln!(
            body,
            "// {} nodes, {} supernodes, {} bytes of state. Do not edit.",
            g.num_nodes(),
            num_sn,
            self.layout.data_bytes
        );
        let _ = writeln!(
            body,
            "#![allow(unused_parens, unused_variables, unused_mut, dead_code)]"
        );
        let _ = writeln!(body);
        let _ = writeln!(body, "mod rt {{");
        let _ = writeln!(body, "{}", include_str!("rt.rs"));
        let _ = writeln!(body, "}}");
        let _ = writeln!(body);
        for (i, c) in self.wide_consts.iter().enumerate() {
            let words: Vec<String> = c.iter().map(|w| format!("0x{w:x}")).collect();
            let _ = writeln!(
                body,
                "const C{i}: [u64; {}] = [{}];",
                c.len(),
                words.join(", ")
            );
        }
        // The design's memories (name, depth, width), so the server
        // mode can tell an unknown memory from an oversized image,
        // report the real bounds on the wire, and answer `list`.
        let mem_names: Vec<String> = g
            .mems()
            .iter()
            .map(|m| format!("({:?}, {}, {})", m.name, m.depth, m.width))
            .collect();
        let _ = writeln!(
            body,
            "const KNOWN_MEMS: &[(&str, u64, u32)] = &[{}];",
            mem_names.join(", ")
        );
        // Introspection tables backing the `list` protocol command:
        // inputs in declaration order; the peekable signal surface as
        // outputs-then-inputs, deduplicated — the same order the
        // interpreter backend reports, so `list` responses are
        // backend-identical.
        let input_meta: Vec<String> = g
            .inputs()
            .iter()
            .map(|&id| g.node(id))
            .filter(|n| !n.name.is_empty())
            .map(|n| format!("({:?}, {})", n.name, n.width))
            .collect();
        let _ = writeln!(
            body,
            "const INPUTS_META: &[(&str, u32)] = &[{}];",
            input_meta.join(", ")
        );
        let mut sig_seen: Vec<&str> = Vec::new();
        let mut sig_meta: Vec<String> = Vec::new();
        for &id in g.outputs().iter().chain(g.inputs()) {
            let node = g.node(id);
            if node.name.is_empty() || sig_seen.contains(&node.name.as_str()) {
                continue;
            }
            sig_seen.push(node.name.as_str());
            sig_meta.push(format!("({:?}, {})", node.name, node.width));
        }
        let _ = writeln!(
            body,
            "const SIGNALS_META: &[(&str, u32)] = &[{}];",
            sig_meta.join(", ")
        );
        let _ = writeln!(body);
        // Clone backs the server mode's snapshot/restore commands.
        let _ = writeln!(body, "#[derive(Clone)]");
        let _ = writeln!(body, "struct Sim {{");
        body.push_str(&fields);
        let _ = writeln!(body, "    act: Vec<u64>,");
        let _ = writeln!(body, "    cycles: u64,");
        let _ = writeln!(body, "    supernode_evals: u64,");
        let _ = writeln!(body, "    node_evals: u64,");
        let _ = writeln!(body, "    value_changes: u64,");
        let _ = writeln!(body, "}}");
        let _ = writeln!(body);
        let _ = writeln!(body, "impl Sim {{");
        body.push_str(&ctor);
        let _ = writeln!(body);
        body.push_str(&sn_fns);
        body.push_str(&dispatch);
        let _ = writeln!(body);
        body.push_str(&commit);
        let _ = writeln!(body);
        // The cycle loop mirrors the interpreter's word-skip sweep
        // (Listing 4): always take the lowest *fresh* set bit so
        // evaluation stays in strict supernode-topo order even when a
        // supernode activates another one in the same word.
        let _ = writeln!(body, "    fn cycle(&mut self) {{");
        let _ = writeln!(body, "        for w in 0..{act_words} {{");
        let _ = writeln!(body, "            loop {{");
        let _ = writeln!(body, "                let bits = self.act[w];");
        let _ = writeln!(body, "                if bits == 0 {{ break; }}");
        let _ = writeln!(body, "                let t = bits.trailing_zeros();");
        let _ = writeln!(body, "                self.act[w] &= !(1u64 << t);");
        let _ = writeln!(body, "                self.dispatch(w * 64 + t as usize);");
        let _ = writeln!(body, "            }}");
        let _ = writeln!(body, "        }}");
        let _ = writeln!(body, "        self.commit();");
        let _ = writeln!(body, "        self.cycles += 1;");
        let _ = writeln!(body, "    }}");
        let _ = writeln!(body);
        body.push_str(&poke);
        let _ = writeln!(body);
        body.push_str(&load);
        let _ = writeln!(body);
        body.push_str(&state_fns);
        let _ = writeln!(body);
        body.push_str(&outputs);
        let _ = writeln!(body, "}}");
        let _ = writeln!(body);
        body.push_str(&main_template(g.name()));
        body
    }

    fn value_literal(&mut self, v: &Value, repr: Repr) -> String {
        match repr {
            Repr::Small(b) => format!("0x{:x}u{b}", v.to_u64().unwrap_or(0)),
            Repr::U128 => format!("0x{:x}u128", v.to_u128().unwrap_or(0)),
            Repr::Wide(_) => self.wide_const(v.words()),
        }
    }
}

fn kind_tag(node: &gsim_graph::Node) -> &'static str {
    match node.kind {
        NodeKind::Input => "input",
        NodeKind::Output => "output",
        NodeKind::Comb => "comb",
        NodeKind::Reg { .. } => "reg",
        NodeKind::MemRead { .. } => "memread",
        NodeKind::MemWrite { .. } => "memwrite",
    }
}

fn main_template(design: &str) -> String {
    // Kept as a literal (with a token replace for the design name) so
    // the emitted Rust below is exactly what you read here — no
    // format-escape indirection.
    const T: &str = r#"fn main() {
    let mut cycles: u64 = 0;
    let mut trace = false;
    let mut serve_mode = false;
    let mut stim_path: Option<String> = None;
    let mut vcd_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cycles" => {
                cycles = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--cycles needs a number"));
            }
            "--trace" => trace = true,
            "--serve" => serve_mode = true,
            "--stimulus" => stim_path = it.next().cloned(),
            "--vcd" => vcd_path = it.next().cloned(),
            "--help" | "-h" => {
                println!(
                    "usage: sim [--cycles N] [--trace] [--serve] [--stimulus FILE|-] [--vcd FILE]"
                );
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    let stim = match stim_path.as_deref() {
        None => rt::StimulusFile { loads: Vec::new(), frames: Vec::new() },
        Some(p) => {
            let text = if p == "-" {
                use std::io::Read as _;
                let mut s = String::new();
                std::io::stdin()
                    .read_to_string(&mut s)
                    .unwrap_or_else(|e| die(&format!("cannot read stdin: {e}")));
                s
            } else {
                std::fs::read_to_string(p)
                    .unwrap_or_else(|e| die(&format!("cannot read {p}: {e}")))
            };
            rt::parse_stimulus(&text).unwrap_or_else(|e| die(&e))
        }
    };
    let mut sim = Sim::new();
    for (mem, image) in &stim.loads {
        if !sim.load_mem(mem, image) {
            die(&format!("cannot load memory {mem:?}"));
        }
    }
    if serve_mode {
        serve(sim);
        return;
    }
    use std::io::Write as _;
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    // Change-driven VCD capture over the full portable signal surface:
    // baseline at time 0, then one record per post-cycle value change,
    // detected against a hex shadow (the same canonical rendering the
    // wire protocol and `peek` use, so every backend's VCD
    // canonicalizes identically under `gsim wavediff`).
    let mut vcd = vcd_path.as_deref().map(|p| {
        let f = std::fs::File::create(p)
            .unwrap_or_else(|e| die(&format!("cannot create {p}: {e}")));
        let sigs: Vec<(&str, u32)> = SIGNALS_META
            .iter()
            .copied()
            .filter(|&(_, w)| w > 0)
            .collect();
        let shadow: Vec<String> = sigs
            .iter()
            .map(|&(n, _)| sim.signal(n).map_or_else(|| String::from("0"), |(_, h)| h))
            .collect();
        let mut w = rt::Vcd::new(std::io::BufWriter::new(f), "top", &sigs);
        w.baseline(sim.cycles, &shadow);
        (w, sigs, shadow)
    });
    let t0 = std::time::Instant::now();
    for c in 0..cycles {
        if let Some(frame) = stim.frames.get(c as usize) {
            for (name, val) in frame {
                if !sim.poke(name, val) {
                    die(&format!("unknown input {name:?}"));
                }
            }
        }
        sim.cycle();
        if let Some((w, sigs, shadow)) = vcd.as_mut() {
            for (i, &(n, _)) in sigs.iter().enumerate() {
                if let Some((_, h)) = sim.signal(n) {
                    if h != shadow[i] {
                        w.change(sim.cycles, i, &h);
                        shadow[i] = h;
                    }
                }
            }
        }
        if trace {
            let _ = write!(out, "trace {c}");
            for (n, _w, v) in sim.outputs() {
                let _ = write!(out, " {n}={v}");
            }
            let _ = writeln!(out);
        }
    }
    if let Some((mut w, _, _)) = vcd.take() {
        if !w.finish() {
            die("vcd write failed");
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    for (n, w, v) in sim.outputs() {
        let _ = writeln!(out, "peek {n} {w} {v}");
    }
    let _ = writeln!(out, "counter cycles {}", sim.cycles);
    let _ = writeln!(out, "counter supernode_evals {}", sim.supernode_evals);
    let _ = writeln!(out, "counter node_evals {}", sim.node_evals);
    let _ = writeln!(out, "counter value_changes {}", sim.value_changes);
    let _ = writeln!(out, "timing run_seconds {secs:.9}");
    let peeks: Vec<String> = sim
        .outputs()
        .iter()
        .map(|(n, _w, v)| format!("\"{n}\":\"{v}\""))
        .collect();
    let _ = writeln!(
        out,
        "json {{\"design\":\"__DESIGN__\",\"cycles\":{},\"outputs\":{{{}}},\"counters\":{{\"cycles\":{},\"supernode_evals\":{},\"node_evals\":{},\"value_changes\":{}}},\"run_seconds\":{secs:.9}}}",
        sim.cycles,
        peeks.join(","),
        sim.cycles,
        sim.supernode_evals,
        sim.node_evals,
        sim.value_changes
    );
}

/// The persistent server mode: a line-oriented command loop over
/// stdin/stdout so one compiled process serves a whole interactive
/// session (see the `Session` trait's "AoT server wire protocol"
/// rustdoc in `gsim_sim`). Mutating commands are silent on success so
/// drivers can pipeline them; `err <class> ...` lines are queued in
/// command order and flushed by the next responding command. Query
/// commands flush their single response line immediately.
fn serve(mut sim: Sim) {
    use std::io::{BufRead as _, Write as _};
    // Deterministic fault injection for the chaos suite: the spawner
    // plants GSIM_CHILD_FAULT (`exit_at_cycle=N` / `stall_at_cycle=N`)
    // and this process misbehaves at exactly that cycle — an abort
    // with no goodbye (crash / OOM-kill stand-in) or an alive-but-
    // silent stall (deadline-path stand-in).
    let mut exit_at_cycle: Option<u64> = None;
    let mut stall_at_cycle: Option<u64> = None;
    if let Ok(spec) = std::env::var("GSIM_CHILD_FAULT") {
        for part in spec.split(',') {
            if let Some(v) = part.trim().strip_prefix("exit_at_cycle=") {
                exit_at_cycle = v.parse().ok();
            } else if let Some(v) = part.trim().strip_prefix("stall_at_cycle=") {
                stall_at_cycle = v.parse().ok();
            }
        }
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut snaps: Vec<Sim> = Vec::new();
    // Active trace subscription: indices into SIGNALS_META plus the
    // hex shadow change detection compares against. Empty when off —
    // the per-cycle cost is then one `is_empty` test.
    let mut traced: Vec<usize> = Vec::new();
    let mut trace_shadow: Vec<String> = Vec::new();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let mut it = line.split_whitespace();
        match it.next() {
            None => {}
            Some("poke") => match (it.next(), it.next()) {
                (Some(name), Some(hex)) => match rt::parse_hex(hex) {
                    Some(words) => {
                        if !sim.poke(name, &words) {
                            let _ = writeln!(out, "err unknown-input {name}");
                        }
                    }
                    None => {
                        let _ = writeln!(out, "err protocol bad hex {hex:?}");
                    }
                },
                _ => {
                    let _ = writeln!(out, "err protocol poke needs <name> <hex>");
                }
            },
            Some("step") => {
                let n: u64 = it.next().and_then(|v| v.parse().ok()).unwrap_or(1);
                for _ in 0..n {
                    sim.cycle();
                    if exit_at_cycle == Some(sim.cycles) {
                        std::process::abort();
                    }
                    if stall_at_cycle == Some(sim.cycles) {
                        loop {
                            std::thread::sleep(std::time::Duration::from_secs(3600));
                        }
                    }
                    if !traced.is_empty() {
                        stream_changes(&sim, &mut out, &traced, &mut trace_shadow);
                    }
                }
            }
            Some("load") => match it.next() {
                Some(name) => {
                    let mut image = Vec::new();
                    let mut ok = true;
                    for tok in it {
                        match rt::parse_hex(tok) {
                            Some(words) if words[1..].iter().all(|&w| w == 0) => {
                                image.push(words[0]);
                            }
                            _ => {
                                let _ = writeln!(out, "err protocol bad image word {tok:?}");
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok && !sim.load_mem(name, &image) {
                        // The emitted load_mem also fails on oversized
                        // images; the memory table is known statically.
                        match KNOWN_MEMS.iter().find(|(n, _, _)| *n == name) {
                            Some((_, depth, _)) => {
                                let _ = writeln!(
                                    out,
                                    "err mem-too-large {name} {depth} {}",
                                    image.len()
                                );
                            }
                            None => {
                                let _ = writeln!(out, "err unknown-memory {name}");
                            }
                        }
                    }
                }
                None => {
                    let _ = writeln!(out, "err protocol load needs <mem> <hex>...");
                }
            },
            Some("peek") => {
                match it.next() {
                    Some(name) => match sim.signal(name) {
                        Some((w, hex)) => {
                            let _ = writeln!(out, "val {w} {hex}");
                        }
                        None => {
                            let _ = writeln!(out, "err unknown-signal {name}");
                        }
                    },
                    None => {
                        let _ = writeln!(out, "err protocol peek needs <name>");
                    }
                }
                let _ = out.flush();
            }
            Some("counters") => {
                let _ = writeln!(
                    out,
                    "counters {} {} {} {}",
                    sim.cycles, sim.supernode_evals, sim.node_evals, sim.value_changes
                );
                let _ = out.flush();
            }
            Some("list") => {
                // Exactly three response lines: inputs, signals, mems.
                let _ = write!(out, "inputs");
                for (n, w) in INPUTS_META {
                    let _ = write!(out, " {n}:{w}");
                }
                let _ = writeln!(out);
                let _ = write!(out, "signals");
                for (n, w) in SIGNALS_META {
                    let _ = write!(out, " {n}:{w}");
                }
                let _ = writeln!(out);
                let _ = write!(out, "mems");
                for (n, d, w) in KNOWN_MEMS {
                    let _ = write!(out, " {n}:{d}:{w}");
                }
                let _ = writeln!(out);
                let _ = out.flush();
            }
            Some("snapshot") => {
                snaps.push(sim.clone());
                let _ = writeln!(out, "snap {}", snaps.len() - 1);
                let _ = out.flush();
            }
            Some("restore") => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(id) if id < snaps.len() => {
                    sim = snaps[id].clone();
                    // The state jumped: stream whatever moved so the
                    // subscriber's view stays change-complete.
                    if !traced.is_empty() {
                        stream_changes(&sim, &mut out, &traced, &mut trace_shadow);
                    }
                }
                Some(id) => {
                    let _ = writeln!(out, "err unknown-snapshot {id}");
                }
                None => {
                    let _ = writeln!(out, "err protocol restore needs <id>");
                }
            },
            Some("state") => {
                let _ = writeln!(out, "state {} {}", sim.cycles, sim.save_state());
                let _ = out.flush();
            }
            Some("loadstate") => match it.next() {
                Some(blob) => {
                    // Parse into a scratch copy so a bad blob cannot
                    // leave the live simulation half-overwritten.
                    let mut fresh = sim.clone();
                    if fresh.load_state(blob) {
                        sim = fresh;
                        if !traced.is_empty() {
                            stream_changes(&sim, &mut out, &traced, &mut trace_shadow);
                        }
                    } else {
                        let _ = writeln!(out, "err protocol state blob does not match this design");
                    }
                }
                None => {
                    let _ = writeln!(out, "err protocol loadstate needs <blob>");
                }
            },
            Some("trace") => match it.next() {
                Some("on") => {
                    let names: Vec<&str> = it.collect();
                    let mut sel: Vec<usize> = Vec::new();
                    let mut ok = true;
                    if names.is_empty() {
                        sel.extend((0..SIGNALS_META.len()).filter(|&i| SIGNALS_META[i].1 > 0));
                    } else {
                        for n in names {
                            match SIGNALS_META.iter().position(|&(s, _)| s == n) {
                                // Zero-width signals carry no values;
                                // they are silently excluded, exactly
                                // as the in-process tracer does.
                                Some(i) if SIGNALS_META[i].1 > 0 => sel.push(i),
                                Some(_) => {}
                                None => {
                                    let _ = writeln!(out, "err unknown-signal {n}");
                                    ok = false;
                                    break;
                                }
                            }
                        }
                    }
                    if ok {
                        traced = sel;
                        trace_shadow = traced
                            .iter()
                            .map(|&i| {
                                sim.signal(SIGNALS_META[i].0)
                                    .map_or_else(|| String::from("0"), |(_, h)| h)
                            })
                            .collect();
                        // Baseline burst: one record per traced
                        // signal at the current cycle, so the
                        // subscriber can reconstruct absolute values.
                        for (k, &i) in traced.iter().enumerate() {
                            let _ = writeln!(
                                out,
                                "chg {} {} {}",
                                sim.cycles, SIGNALS_META[i].0, trace_shadow[k]
                            );
                        }
                        let _ = out.flush();
                    }
                }
                Some("off") => {
                    traced.clear();
                    trace_shadow.clear();
                }
                _ => {
                    let _ = writeln!(out, "err protocol trace needs on|off");
                }
            },
            Some("sync") => {
                let _ = writeln!(out, "ok {}", sim.cycles);
                let _ = out.flush();
            }
            Some("exit") => break,
            Some(other) => {
                let _ = writeln!(out, "err protocol unknown command {other:?}");
            }
        }
    }
}

/// Streams `chg <cycle> <name> <hex>` records for every traced signal
/// whose value moved since the shadow copy (unsolicited records — the
/// protocol guarantees they precede any command response that
/// observes the post-change state).
fn stream_changes(
    sim: &Sim,
    out: &mut impl std::io::Write,
    traced: &[usize],
    shadow: &mut [String],
) {
    for (k, &i) in traced.iter().enumerate() {
        let name = SIGNALS_META[i].0;
        if let Some((_, h)) = sim.signal(name) {
            if h != shadow[k] {
                let _ = writeln!(out, "chg {} {name} {h}", sim.cycles);
                shadow[k] = h;
            }
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}
"#;
    T.replace("__DESIGN__", design)
}
