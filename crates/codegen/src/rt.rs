// AoT simulator runtime: allocation-light kernels over little-endian
// `u64` word slices plus `u128` fast-path helpers.
//
// This file is compiled twice:
//
// 1. as a private module of `gsim_codegen`, where its semantics are
//    pinned against `gsim_value::ops` by the `rt_semantics` tests, and
// 2. verbatim (via `include_str!`) as `mod rt` inside every Rust
//    simulator the AoT backend emits, so the generated program is fully
//    standalone — it must therefore depend on nothing but `std`.
//
// All slice values are *canonical*: little-endian words with every bit
// at position `>= width` zero. Each op mirrors the corresponding
// function in `crates/value/src/ops.rs` bit for bit; the emitted
// simulator stays bit-identical to the reference interpreter because
// it computes through these kernels (or through the `u128` fast path,
// whose equivalence the same tests pin).

use std::cmp::Ordering;

/// Scratch capacity in words; bounds the widest supported signal
/// (64 × 64 = 4096 bits). The emitter rejects wider designs.
pub const SCRATCH_WORDS: usize = 64;

/// Words needed to store `w` bits.
pub const fn words_for(w: u32) -> usize {
    w.div_ceil(64) as usize
}

// ------------------------------------------------------------ u128 tier

/// Masks `x` to its low `w` bits (`w >= 128` is the identity).
#[inline]
pub fn mask128(x: u128, w: u32) -> u128 {
    if w >= 128 {
        x
    } else if w == 0 {
        0
    } else {
        x & ((1u128 << w) - 1)
    }
}

/// Sign-extends a canonical `w`-bit value to a full `i128`.
#[inline]
pub fn sx128(x: u128, w: u32) -> i128 {
    if w == 0 {
        return 0;
    }
    if w >= 128 {
        return x as i128;
    }
    let sh = 128 - w;
    ((x << sh) as i128) >> sh
}

/// The value as `u64`, saturating to `u64::MAX` when it does not fit
/// (the reference interpreter's `to_u64().unwrap_or(u64::MAX)` idiom
/// for memory addresses and shift amounts).
#[inline]
pub fn sat64_128(x: u128) -> u64 {
    if x > u64::MAX as u128 {
        u64::MAX
    } else {
        x as u64
    }
}

// ------------------------------------------------------- word kernels

/// Canonicalizes: zeroes bits at positions `>= width`.
pub fn mask(w: &mut [u64], width: u32) {
    let full = (width / 64) as usize;
    let rem = width % 64;
    if rem != 0 {
        w[full] &= (1u64 << rem) - 1;
        for word in &mut w[full + 1..] {
            *word = 0;
        }
    } else {
        for word in &mut w[full..] {
            *word = 0;
        }
    }
}

/// `true` if every word is zero.
pub fn is_zero(w: &[u64]) -> bool {
    w.iter().all(|&x| x == 0)
}

/// Bit `i`, reading beyond the slice as zero.
pub fn get_bit(w: &[u64], i: u32) -> bool {
    let word = (i / 64) as usize;
    if word >= w.len() {
        return false;
    }
    (w[word] >> (i % 64)) & 1 == 1
}

fn set_bit(w: &mut [u64], i: u32, v: bool) {
    let word = (i / 64) as usize;
    let m = 1u64 << (i % 64);
    if v {
        w[word] |= m;
    } else {
        w[word] &= !m;
    }
}

/// Copies `src` into `dst`, zero-extending or truncating.
pub fn copy(dst: &mut [u64], src: &[u64]) {
    let n = dst.len().min(src.len());
    dst[..n].copy_from_slice(&src[..n]);
    for w in &mut dst[n..] {
        *w = 0;
    }
}

/// Extends `src` (canonical at `src_w`) into `dst`, sign- or
/// zero-extending per `signed`, canonical at `dst_w`.
pub fn ext(dst: &mut [u64], src: &[u64], src_w: u32, dst_w: u32, signed: bool) {
    copy(dst, src);
    if signed && src_w > 0 && src_w < dst_w && get_bit(src, src_w - 1) {
        let lo_word = (src_w / 64) as usize;
        let lo_rem = src_w % 64;
        if lo_rem != 0 {
            dst[lo_word] |= !((1u64 << lo_rem) - 1);
        } else if lo_word < dst.len() {
            dst[lo_word] = u64::MAX;
        }
        for w in dst.iter_mut().skip(lo_word + 1) {
            *w = u64::MAX;
        }
    }
    mask(dst, dst_w);
}

/// Stores a canonical `u128` into a (long enough) word slice.
pub fn store128(dst: &mut [u64], x: u128) {
    dst[0] = x as u64;
    if dst.len() > 1 {
        dst[1] = (x >> 64) as u64;
        for w in &mut dst[2..] {
            *w = 0;
        }
    }
}

/// Reads the low 128 bits of a slice (caller guarantees the value is
/// canonical within 128 bits).
pub fn to_u128(a: &[u64]) -> u128 {
    let lo = a.first().copied().unwrap_or(0) as u128;
    let hi = a.get(1).copied().unwrap_or(0) as u128;
    lo | hi << 64
}

/// The value as `u64`, saturating when any higher word is set.
pub fn sat64(a: &[u64]) -> u64 {
    if a.len() > 1 && a[1..].iter().any(|&w| w != 0) {
        u64::MAX
    } else {
        a.first().copied().unwrap_or(0)
    }
}

fn add_words(dst: &mut [u64], a: &[u64], b: &[u64]) {
    let mut carry = 0u64;
    for i in 0..dst.len() {
        let (s1, c1) = a[i].overflowing_add(b[i]);
        let (s2, c2) = s1.overflowing_add(carry);
        dst[i] = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
}

fn sub_words(dst: &mut [u64], a: &[u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..dst.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        dst[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
}

fn mul_words(dst: &mut [u64], a: &[u64], b: &[u64]) {
    dst.fill(0);
    let n = dst.len();
    for i in 0..n {
        if a[i] == 0 {
            continue;
        }
        let mut carry = 0u128;
        for j in 0..n - i {
            let t = a[i] as u128 * b[j] as u128 + dst[i + j] as u128 + carry;
            dst[i + j] = t as u64;
            carry = t >> 64;
        }
    }
}

fn neg_words(dst: &mut [u64], a: &[u64]) {
    let mut carry = 1u64;
    for i in 0..dst.len() {
        let (v, c) = (!a[i]).overflowing_add(carry);
        dst[i] = v;
        carry = c as u64;
    }
}

fn ucmp(a: &[u64], b: &[u64]) -> Ordering {
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

fn scmp_extended(a: &[u64], b: &[u64]) -> Ordering {
    if a.is_empty() {
        return Ordering::Equal;
    }
    let top = a.len() - 1;
    let sa = (a[top] as i64) < 0;
    let sb = (b[top] as i64) < 0;
    match (sa, sb) {
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        _ => ucmp(a, b),
    }
}

fn top_bit(a: &[u64]) -> Option<u32> {
    for i in (0..a.len()).rev() {
        if a[i] != 0 {
            return Some(i as u32 * 64 + 63 - a[i].leading_zeros());
        }
    }
    None
}

fn shl_words(dst: &mut [u64], a: &[u64], sh: u32) {
    let n = dst.len();
    let word_sh = (sh / 64) as usize;
    let bit_sh = sh % 64;
    if word_sh >= n {
        dst.fill(0);
        return;
    }
    if bit_sh == 0 {
        for i in (word_sh..n).rev() {
            dst[i] = a[i - word_sh];
        }
    } else {
        for i in (word_sh..n).rev() {
            let hi = a[i - word_sh] << bit_sh;
            let lo = if i - word_sh > 0 {
                a[i - word_sh - 1] >> (64 - bit_sh)
            } else {
                0
            };
            dst[i] = hi | lo;
        }
    }
    for w in &mut dst[..word_sh] {
        *w = 0;
    }
}

fn lshr_words(dst: &mut [u64], a: &[u64], sh: u32) {
    let n = dst.len();
    let word_sh = (sh / 64) as usize;
    let bit_sh = sh % 64;
    if word_sh >= n {
        dst.fill(0);
        return;
    }
    if bit_sh == 0 {
        dst[..n - word_sh].copy_from_slice(&a[word_sh..n]);
    } else {
        for i in 0..n - word_sh {
            let lo = a[i + word_sh] >> bit_sh;
            let hi = if i + word_sh + 1 < n {
                a[i + word_sh + 1] << (64 - bit_sh)
            } else {
                0
            };
            dst[i] = lo | hi;
        }
    }
    for w in &mut dst[n - word_sh..] {
        *w = 0;
    }
}

fn ashr_words(dst: &mut [u64], a: &[u64], sh: u32, width: u32) {
    if width == 0 {
        dst.fill(0);
        return;
    }
    let negv = get_bit(a, width - 1);
    let sh = sh.min(width);
    lshr_words(dst, a, sh);
    if negv {
        for i in width - sh..width {
            set_bit(dst, i, true);
        }
    }
}

fn udivrem(q: &mut [u64], r: &mut [u64], a: &[u64], b: &[u64]) {
    q.fill(0);
    if is_zero(b) {
        copy(r, a);
        return;
    }
    if a.len() == 1 {
        q[0] = a[0] / b[0];
        r[0] = a[0] % b[0];
        return;
    }
    if a.len() == 2 || (a[2..].iter().all(|&w| w == 0) && b[2..].iter().all(|&w| w == 0)) {
        let av = to_u128(a);
        let bv = to_u128(b);
        let qv = av / bv;
        let rv = av % bv;
        store128(q, qv);
        store128(r, rv);
        return;
    }
    r.fill(0);
    let nbits = (a.len() * 64) as u32;
    let start = top_bit(a).unwrap_or(0).min(nbits - 1);
    for i in (0..=start).rev() {
        let mut carry_in = if get_bit(a, i) { 1u64 } else { 0 };
        for w in r.iter_mut() {
            let carry_out = *w >> 63;
            *w = (*w << 1) | carry_in;
            carry_in = carry_out;
        }
        if ucmp(r, b) != Ordering::Less {
            let mut borrow = 0u64;
            for j in 0..r.len() {
                let (d1, b1) = r[j].overflowing_sub(b[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                r[j] = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
            set_bit(q, i, true);
        }
    }
}

// -------------------------------------------------------- op semantics
//
// Each op takes canonical operands with explicit widths and produces a
// canonical result at the FIRRTL-mandated width `w` into `out`
// (`out.len() == words_for(w)`), mirroring `gsim_value::ops`.

/// FIRRTL `add` at `w = max(wa, wb) + 1`.
pub fn add(out: &mut [u64], w: u32, a: &[u64], wa: u32, b: &[u64], wb: u32, signed: bool) {
    let mut ea = [0u64; SCRATCH_WORDS];
    let mut eb = [0u64; SCRATCH_WORDS];
    let n = out.len();
    ext(&mut ea[..n], a, wa, w, signed);
    ext(&mut eb[..n], b, wb, w, signed);
    add_words(out, &ea[..n], &eb[..n]);
    mask(out, w);
}

/// FIRRTL `sub` at `w = max(wa, wb) + 1`.
pub fn sub(out: &mut [u64], w: u32, a: &[u64], wa: u32, b: &[u64], wb: u32, signed: bool) {
    let mut ea = [0u64; SCRATCH_WORDS];
    let mut eb = [0u64; SCRATCH_WORDS];
    let n = out.len();
    ext(&mut ea[..n], a, wa, w, signed);
    ext(&mut eb[..n], b, wb, w, signed);
    sub_words(out, &ea[..n], &eb[..n]);
    mask(out, w);
}

/// FIRRTL `mul` at `w = wa + wb`.
pub fn mul(out: &mut [u64], w: u32, a: &[u64], wa: u32, b: &[u64], wb: u32, signed: bool) {
    let mut ea = [0u64; SCRATCH_WORDS];
    let mut eb = [0u64; SCRATCH_WORDS];
    let n = out.len();
    ext(&mut ea[..n], a, wa, w, signed);
    ext(&mut eb[..n], b, wb, w, signed);
    mul_words(out, &ea[..n], &eb[..n]);
    mask(out, w);
}

/// Magnitude of a canonical two's-complement value; returns the sign.
fn magnitude(dst: &mut [u64], a: &[u64], wa: u32, signed: bool) -> bool {
    let n = words_for(wa);
    if !signed || wa == 0 || !get_bit(a, wa - 1) {
        copy(dst, a);
        return false;
    }
    neg_words(&mut dst[..n], &a[..n]);
    mask(&mut dst[..n], wa);
    for w in &mut dst[n..] {
        *w = 0;
    }
    true
}

/// FIRRTL `div` at `w = wa + signed` (`x / 0 = 0`).
pub fn div(out: &mut [u64], w: u32, a: &[u64], wa: u32, b: &[u64], wb: u32, signed: bool) {
    let n = words_for(wa.max(wb)).max(1);
    let mut ma = [0u64; SCRATCH_WORDS];
    let mut mb = [0u64; SCRATCH_WORDS];
    let neg_a = magnitude(&mut ma[..n], a, wa, signed);
    let neg_b = magnitude(&mut mb[..n], b, wb, signed);
    let mut q = [0u64; SCRATCH_WORDS];
    let mut r = [0u64; SCRATCH_WORDS];
    udivrem(&mut q[..n], &mut r[..n], &ma[..n], &mb[..n]);
    mask(&mut q[..n], w.min(n as u32 * 64));
    copy(out, &q[..n]);
    mask(out, w);
    if signed && (neg_a ^ neg_b) && !is_zero(b) {
        let copy_out: [u64; SCRATCH_WORDS] = {
            let mut t = [0u64; SCRATCH_WORDS];
            t[..out.len()].copy_from_slice(out);
            t
        };
        neg_words(out, &copy_out[..out.len()]);
        mask(out, w);
    }
}

/// FIRRTL `rem` at `w = min(wa, wb)` (`x % 0 = x`, truncated).
pub fn rem(out: &mut [u64], w: u32, a: &[u64], wa: u32, b: &[u64], wb: u32, signed: bool) {
    let n = words_for(wa.max(wb)).max(1);
    let mut ma = [0u64; SCRATCH_WORDS];
    let mut mb = [0u64; SCRATCH_WORDS];
    let neg_a = magnitude(&mut ma[..n], a, wa, signed);
    magnitude(&mut mb[..n], b, wb, signed);
    let mut q = [0u64; SCRATCH_WORDS];
    let mut r = [0u64; SCRATCH_WORDS];
    udivrem(&mut q[..n], &mut r[..n], &ma[..n], &mb[..n]);
    if signed && neg_a && !is_zero(&r[..n]) {
        let rc = r;
        neg_words(&mut r[..n], &rc[..n]);
    }
    copy(out, &r[..n]);
    mask(out, w);
}

/// Three-way comparison at `max(wa, wb)` bits (shared by lt/leq/gt/geq/
/// eq/neq).
pub fn cmp(a: &[u64], wa: u32, b: &[u64], wb: u32, signed: bool) -> Ordering {
    let w = wa.max(wb).max(1);
    let n = words_for(w);
    let full = n as u32 * 64;
    let mut ea = [0u64; SCRATCH_WORDS];
    let mut eb = [0u64; SCRATCH_WORDS];
    ext(&mut ea[..n], a, wa, full, signed);
    ext(&mut eb[..n], b, wb, full, signed);
    if signed {
        scmp_extended(&ea[..n], &eb[..n])
    } else {
        ucmp(&ea[..n], &eb[..n])
    }
}

/// FIRRTL `and`/`or`/`xor` at `w = max(wa, wb)` (`which`: 0/1/2).
// Flat kernel ABI: emitted call sites pass each operand as an
// explicit (words, width) pair, which costs one parameter over the
// lint's limit.
#[allow(clippy::too_many_arguments)]
pub fn bitwise(
    out: &mut [u64],
    w: u32,
    a: &[u64],
    wa: u32,
    b: &[u64],
    wb: u32,
    signed: bool,
    which: u8,
) {
    let mut ea = [0u64; SCRATCH_WORDS];
    let mut eb = [0u64; SCRATCH_WORDS];
    let n = out.len();
    ext(&mut ea[..n], a, wa, w, signed);
    ext(&mut eb[..n], b, wb, w, signed);
    for i in 0..n {
        out[i] = match which {
            0 => ea[i] & eb[i],
            1 => ea[i] | eb[i],
            _ => ea[i] ^ eb[i],
        };
    }
    mask(out, w);
}

/// FIRRTL `not` at width `wa`.
pub fn not(out: &mut [u64], a: &[u64], wa: u32) {
    for i in 0..out.len() {
        out[i] = !a[i];
    }
    mask(out, wa);
}

/// FIRRTL `andr`: 1 iff all `w` bits are set (vacuously true at `w = 0`).
pub fn andr(a: &[u64], w: u32) -> bool {
    if w == 0 {
        return true;
    }
    let full = (w / 64) as usize;
    let rem = w % 64;
    for &word in &a[..full] {
        if word != u64::MAX {
            return false;
        }
    }
    if rem != 0 {
        let m = (1u64 << rem) - 1;
        if a[full] & m != m {
            return false;
        }
    }
    true
}

/// FIRRTL `orr`.
pub fn orr(a: &[u64]) -> bool {
    !is_zero(a)
}

/// FIRRTL `xorr`.
pub fn xorr(a: &[u64]) -> bool {
    let mut acc = 0u64;
    for &w in a {
        acc ^= w;
    }
    acc.count_ones() % 2 == 1
}

/// FIRRTL `cat`: `a` high, `b` low (`b` occupies `wb` bits).
pub fn cat(out: &mut [u64], a: &[u64], b: &[u64], wb: u32) {
    copy(out, b);
    let word_sh = (wb / 64) as usize;
    let bit_sh = wb % 64;
    for (i, &h) in a.iter().enumerate() {
        if h == 0 {
            continue;
        }
        let di = i + word_sh;
        if di < out.len() {
            out[di] |= h << bit_sh;
        }
        if bit_sh != 0 && di + 1 < out.len() {
            out[di + 1] |= h >> (64 - bit_sh);
        }
    }
}

/// Bit extraction `[lo, lo + w)` (FIRRTL `bits`/`head`/`tail`).
pub fn extract(out: &mut [u64], a: &[u64], lo: u32, w: u32) {
    let word_sh = (lo / 64) as usize;
    let bit_sh = lo % 64;
    for (i, d) in out.iter_mut().enumerate() {
        let src_i = i + word_sh;
        let lo_part = if src_i < a.len() {
            a[src_i] >> bit_sh
        } else {
            0
        };
        let hi_part = if bit_sh != 0 && src_i + 1 < a.len() {
            a[src_i + 1] << (64 - bit_sh)
        } else {
            0
        };
        *d = lo_part | hi_part;
    }
    mask(out, w);
}

/// FIRRTL `shl` by a constant: `w = wa + sh`.
pub fn shl(out: &mut [u64], w: u32, a: &[u64], sh: u32) {
    let mut ea = [0u64; SCRATCH_WORDS];
    let n = out.len();
    copy(&mut ea[..n], a);
    shl_words(out, &ea[..n], sh);
    mask(out, w);
}

/// FIRRTL `shr` by a constant: `w = max(wa - sh, 1)`, arithmetic for
/// signed operands.
pub fn shr(out: &mut [u64], w: u32, a: &[u64], wa: u32, sh: u32, signed: bool) {
    if sh >= wa {
        if signed && wa > 0 && get_bit(a, wa - 1) {
            out.fill(u64::MAX);
            mask(out, w);
        } else {
            out.fill(0);
        }
        return;
    }
    let n = words_for(wa);
    let mut t = [0u64; SCRATCH_WORDS];
    if signed {
        ashr_words(&mut t[..n], &a[..n], sh, wa);
    } else {
        lshr_words(&mut t[..n], &a[..n], sh);
    }
    copy(out, &t[..n]);
    mask(out, w);
}

/// FIRRTL `dshl`: dynamic left shift, `w = wa + 2^wb - 1`.
pub fn dshl(out: &mut [u64], w: u32, a: &[u64], b: &[u64]) {
    let sh = sat64(b).min(w as u64) as u32;
    let mut ea = [0u64; SCRATCH_WORDS];
    let n = out.len();
    copy(&mut ea[..n], a);
    shl_words(out, &ea[..n], sh);
    mask(out, w);
}

/// FIRRTL `dshr`: dynamic right shift at width `wa`.
pub fn dshr(out: &mut [u64], a: &[u64], wa: u32, b: &[u64], signed: bool) {
    let sh = sat64(b).min(wa as u64 + 1) as u32;
    if sh >= wa {
        if signed && wa > 0 && get_bit(a, wa - 1) {
            out.fill(u64::MAX);
            mask(out, wa);
        } else {
            out.fill(0);
        }
        return;
    }
    let n = words_for(wa);
    let mut t = [0u64; SCRATCH_WORDS];
    if signed {
        ashr_words(&mut t[..n], &a[..n], sh, wa);
    } else {
        lshr_words(&mut t[..n], &a[..n], sh);
    }
    copy(out, &t[..n]);
    mask(out, wa);
}

/// FIRRTL `neg` at `w = wa + 1`.
pub fn neg(out: &mut [u64], w: u32, a: &[u64], wa: u32, signed: bool) {
    let mut ea = [0u64; SCRATCH_WORDS];
    let n = out.len();
    ext(&mut ea[..n], a, wa, w, signed);
    neg_words(out, &ea[..n]);
    mask(out, w);
}

/// Stores `data` (canonical words, zero-extended) into memory entry
/// words `[base, base + words)`, masked to the entry width `w`.
pub fn store_entry(mem: &mut [u64], base: usize, words: usize, data: &[u64], w: u32) {
    for i in 0..words {
        mem[base + i] = data.get(i).copied().unwrap_or(0);
    }
    mask(&mut mem[base..base + words], w);
}

// ------------------------------------------------------------- text IO

/// Formats canonical words as lowercase hex without leading zeros
/// (matches the reference `Value`'s `{:x}` rendering).
pub fn to_hex(words: &[u64]) -> String {
    let mut s = String::new();
    let mut started = false;
    for i in (0..words.len()).rev() {
        if started {
            s.push_str(&format!("{:016x}", words[i]));
        } else if words[i] != 0 || i == 0 {
            s.push_str(&format!("{:x}", words[i]));
            started = true;
        }
    }
    if !started {
        s.push('0');
    }
    s
}

/// Parses lowercase/uppercase hex into little-endian words (at least
/// one word). Returns `None` on invalid digits.
pub fn parse_hex(s: &str) -> Option<Vec<u64>> {
    if s.is_empty() {
        return None;
    }
    let digits: Vec<u32> = s
        .chars()
        .map(|c| c.to_digit(16))
        .collect::<Option<Vec<_>>>()?;
    let nwords = (digits.len() * 4).div_ceil(64).max(1);
    let mut out = vec![0u64; nwords];
    for (k, &d) in digits.iter().rev().enumerate() {
        let bit = k * 4;
        out[bit / 64] |= (d as u64) << (bit % 64);
    }
    Some(out)
}

/// One parsed stimulus file: memory images plus per-cycle input frames.
pub struct StimulusFile {
    /// `!load <mem> <hex>...` directives, one image word per entry.
    pub loads: Vec<(String, Vec<u64>)>,
    /// Per-cycle pokes: `(input name, canonical words)` pairs. Cycles
    /// beyond the last frame run with inputs held.
    pub frames: Vec<Vec<(String, Vec<u64>)>>,
}

/// Parses the AoT stimulus text format:
///
/// ```text
/// # comment
/// !load imem 13 00000513
/// rst=1 in0=ff
/// rst=0
/// ```
///
/// Every non-directive line (including an empty one) is one cycle's
/// frame of `name=hex` pokes.
pub fn parse_stimulus(text: &str) -> Result<StimulusFile, String> {
    let mut loads = Vec::new();
    let mut frames = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("!load ") {
            let mut it = rest.split_whitespace();
            let mem = it
                .next()
                .ok_or_else(|| format!("line {}: !load needs a memory name", ln + 1))?;
            let mut image = Vec::new();
            for tok in it {
                let words =
                    parse_hex(tok).ok_or_else(|| format!("line {}: bad hex {tok:?}", ln + 1))?;
                if words[1..].iter().any(|&w| w != 0) {
                    return Err(format!(
                        "line {}: image word {tok:?} exceeds 64 bits",
                        ln + 1
                    ));
                }
                image.push(words[0]);
            }
            loads.push((mem.to_string(), image));
            continue;
        }
        let mut frame = Vec::new();
        for tok in line.split_whitespace() {
            let (name, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected name=hex, got {tok:?}", ln + 1))?;
            let words =
                parse_hex(val).ok_or_else(|| format!("line {}: bad hex {val:?}", ln + 1))?;
            frame.push((name.to_string(), words));
        }
        frames.push(frame);
    }
    Ok(StimulusFile { loads, frames })
}

// -------------------------------------------------- state serialization

/// Appends `v` to a state blob as lowercase hex followed by a `.`
/// separator. The blob stays one whitespace-free ASCII token, so it
/// travels verbatim on the line-oriented wire protocols.
pub fn push_hex(s: &mut String, v: u128) {
    use std::fmt::Write as _;
    let _ = write!(s, "{v:x}.");
}

/// Appends a word slice to a state blob, one `.`-terminated hex token
/// per word (little-endian word order, same as the in-memory layout).
pub fn push_hex_words(s: &mut String, words: &[u64]) {
    for &w in words {
        push_hex(s, w as u128);
    }
}

/// Streaming parser for the `.`-separated hex blobs `push_hex`
/// produces; the consuming side of `save_state`/`load_state` in the
/// emitted simulator. Parsing is strict: a malformed or missing token
/// yields `None` and the caller rejects the whole blob.
pub struct HexStream<'a> {
    it: std::str::Split<'a, char>,
}

impl<'a> HexStream<'a> {
    /// Starts reading `blob` from the first token.
    pub fn new(blob: &'a str) -> HexStream<'a> {
        HexStream {
            it: blob.split('.'),
        }
    }

    /// The next token as a `u128`, or `None` on exhaustion/bad hex.
    pub fn next_u128(&mut self) -> Option<u128> {
        let tok = self.it.next()?;
        if tok.is_empty() || tok.len() > 32 {
            return None;
        }
        u128::from_str_radix(tok, 16).ok()
    }

    /// The next token as a `u64`, or `None` on exhaustion/overflow.
    pub fn next_u64(&mut self) -> Option<u64> {
        u64::try_from(self.next_u128()?).ok()
    }

    /// Fills `out` from the next `out.len()` tokens; `false` on any
    /// missing or bad token.
    pub fn fill_words(&mut self, out: &mut [u64]) -> bool {
        for w in out {
            match self.next_u64() {
                Some(v) => *w = v,
                None => return false,
            }
        }
        true
    }

    /// `true` once every token has been consumed (the trailing `.`
    /// leaves one final empty fragment).
    pub fn at_end(&mut self) -> bool {
        matches!(self.it.next(), None | Some(""))
    }
}

// ----------------------------------------------------------- VCD output

/// IEEE-1364 VCD identifier codes: bijective base-94 over the
/// printable range `!`..`~` (mirrors `gsim_wave::id_code`, so the two
/// writers assign identical codes for identical signal indices).
pub fn vcd_id(mut n: usize) -> String {
    let mut buf = Vec::new();
    loop {
        buf.push(b'!' + (n % 94) as u8);
        n /= 94;
        if n == 0 {
            break;
        }
        n -= 1;
    }
    buf.reverse();
    String::from_utf8(buf).expect("printable ASCII")
}

/// Converts a canonical lowercase-hex value (the wire/peek rendering)
/// to VCD binary digits: no leading zeros, `"0"` for zero.
pub fn hex_to_vcd_bin(hex: &str) -> String {
    let mut s = String::with_capacity(hex.len() * 4);
    for c in hex.chars() {
        let d = c.to_digit(16).unwrap_or(0);
        for b in (0..4).rev() {
            let bit = (d >> b) & 1;
            if s.is_empty() && bit == 0 {
                continue;
            }
            s.push(if bit == 1 { '1' } else { '0' });
        }
    }
    if s.is_empty() {
        s.push('0');
    }
    s
}

/// A minimal change-driven VCD writer over hex-rendered values: the
/// emitted simulator's `--vcd` mode. Produces the same dialect
/// `gsim_wave` writes and parses (single module scope, `#` time
/// stamps only when time advances, `b<bin>` vectors / scalar digits),
/// so `gsim wavediff` canonicalizes both identically. Write errors
/// are latched and reported by [`Vcd::finish`].
pub struct Vcd<W: std::io::Write> {
    out: W,
    widths: Vec<u32>,
    cur_time: Option<u64>,
    failed: bool,
}

impl<W: std::io::Write> Vcd<W> {
    /// Writes the declaration header for `signals` under one module
    /// scope named `top`. Zero-width signals must be excluded by the
    /// caller.
    pub fn new(mut out: W, top: &str, signals: &[(&str, u32)]) -> Vcd<W> {
        let mut failed = writeln!(out, "$timescale 1ns $end").is_err()
            || writeln!(out, "$scope module {top} $end").is_err();
        for (i, (name, width)) in signals.iter().enumerate() {
            failed |= writeln!(out, "$var wire {width} {} {name} $end", vcd_id(i)).is_err();
        }
        failed |= writeln!(out, "$upscope $end").is_err()
            || writeln!(out, "$enddefinitions $end").is_err();
        Vcd {
            out,
            widths: signals.iter().map(|&(_, w)| w).collect(),
            cur_time: None,
            failed,
        }
    }

    fn stamp(&mut self, time: u64) {
        if self.cur_time != Some(time) {
            self.failed |= writeln!(self.out, "#{time}").is_err();
            self.cur_time = Some(time);
        }
    }

    fn value(&mut self, signal: usize, hex: &str) {
        let id = vcd_id(signal);
        if self.widths[signal] == 1 {
            let bit = if hex == "0" { '0' } else { '1' };
            self.failed |= writeln!(self.out, "{bit}{id}").is_err();
        } else {
            self.failed |= writeln!(self.out, "b{} {id}", hex_to_vcd_bin(hex)).is_err();
        }
    }

    /// Emits the `$dumpvars` baseline: every signal's value at `time`.
    pub fn baseline(&mut self, time: u64, values: &[String]) {
        self.stamp(time);
        self.failed |= writeln!(self.out, "$dumpvars").is_err();
        for (i, hex) in values.iter().enumerate() {
            self.value(i, hex);
        }
        self.failed |= writeln!(self.out, "$end").is_err();
    }

    /// Records one value change at `time` (times must be monotonic).
    pub fn change(&mut self, time: u64, signal: usize, hex: &str) {
        self.stamp(time);
        self.value(signal, hex);
    }

    /// Flushes; `false` if any write failed along the way.
    pub fn finish(&mut self) -> bool {
        self.failed |= self.out.flush().is_err();
        !self.failed
    }
}
