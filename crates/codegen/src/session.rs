//! The persistent AoT session: one compiled simulator process, kept
//! resident for a whole interactive run.
//!
//! [`AotSession`] spawns the `rustc`-built binary in its `--serve`
//! mode and speaks the line-oriented wire protocol documented on
//! [`gsim_sim::Session`]: mutating commands (`poke`, `step`, `load`,
//! `restore`) are pipelined without per-command round trips and
//! fenced with `sync`; query commands (`peek`, `counters`,
//! `snapshot`) are one request/response pair each. This is what makes
//! the AoT backend usable for *reactive* testbenches — stimulus that
//! depends on previous outputs — and amortizes the one-time `rustc`
//! cost to zero per step: where [`AotSim::run`] spawns a fresh process
//! (and re-parses stimulus) per invocation, a session pays one spawn
//! for arbitrarily many poke/step/peek interactions.

use crate::build::{AotError, AotSim, ScratchDir};
use gsim_sim::{Counters, GsimError, Session, SessionFrame, SnapshotId};
use gsim_value::Value;
use std::io::{BufRead as _, BufReader, Write as _};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::Arc;

impl From<AotError> for GsimError {
    fn from(e: AotError) -> Self {
        GsimError::Backend(e.to_string())
    }
}

impl From<crate::rust::EmitError> for GsimError {
    fn from(e: crate::rust::EmitError) -> Self {
        GsimError::Backend(e.to_string())
    }
}

/// How many pipelined cycles [`Session::run_driven`] lets accumulate
/// before fencing with a `sync`: bounds the unread `err` lines a
/// misbehaving stimulus could queue in the child's stdout pipe (well
/// under the kernel pipe capacity) while keeping the per-cycle wire
/// cost at roughly one buffered write.
const SYNC_CHUNK: u64 = 128;

/// A live connection to a compiled simulator process in server mode.
///
/// Created by [`AotSim::session`]; implements the backend-agnostic
/// [`Session`] trait, so harnesses drive it exactly like the
/// interpreter engines. The child process exits when the session is
/// dropped (its stdin closes); the scratch directory holding the
/// binary stays alive as long as either the session or its `AotSim`
/// does.
#[derive(Debug)]
pub struct AotSession {
    child: Child,
    stdin: Option<ChildStdin>,
    stdout: BufReader<ChildStdout>,
    cycle: u64,
    /// Cycles stepped since the last `sync` fence.
    unsynced: u64,
    _dir: Arc<ScratchDir>,
}

impl AotSim {
    /// Spawns the compiled binary in `--serve` mode and returns the
    /// persistent session speaking its wire protocol.
    ///
    /// # Errors
    ///
    /// Returns [`AotError::RunFailed`] when the process cannot be
    /// spawned or its pipes cannot be set up.
    pub fn session(&self) -> Result<AotSession, AotError> {
        let mut child = Command::new(&self.binary_path)
            .arg("--serve")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| AotError::RunFailed(format!("cannot spawn server: {e}")))?;
        let stdin = child
            .stdin
            .take()
            .ok_or_else(|| AotError::RunFailed("no stdin pipe".into()))?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| AotError::RunFailed("no stdout pipe".into()))?;
        Ok(AotSession {
            child,
            stdin: Some(stdin),
            stdout: BufReader::new(stdout),
            cycle: 0,
            unsynced: 0,
            _dir: self.dir_handle(),
        })
    }
}

impl Drop for AotSession {
    fn drop(&mut self) {
        // Closing stdin ends the server's command loop; reap the child
        // so no zombie outlives the session.
        drop(self.stdin.take());
        let _ = self.child.wait();
    }
}

impl AotSession {
    fn writer(&mut self) -> Result<&mut ChildStdin, GsimError> {
        self.stdin
            .as_mut()
            .ok_or_else(|| GsimError::Backend("server stdin closed".into()))
    }

    fn send(&mut self, line: &str) -> Result<(), GsimError> {
        let w = self.writer()?;
        writeln!(w, "{line}").map_err(|e| GsimError::Backend(format!("server write: {e}")))
    }

    fn flush(&mut self) -> Result<(), GsimError> {
        self.writer()?
            .flush()
            .map_err(|e| GsimError::Backend(format!("server flush: {e}")))
    }

    fn read_line(&mut self) -> Result<String, GsimError> {
        let mut line = String::new();
        let n = self
            .stdout
            .read_line(&mut line)
            .map_err(|e| GsimError::Backend(format!("server read: {e}")))?;
        if n == 0 {
            return Err(GsimError::Backend("server process exited".into()));
        }
        Ok(line.trim_end().to_string())
    }

    /// Maps a protocol `err <class> ...` line onto the typed error.
    fn decode_err(line: &str) -> GsimError {
        let rest = line.strip_prefix("err ").unwrap_or(line);
        let mut it = rest.split_whitespace();
        let class = it.next().unwrap_or("");
        let arg = it.next().unwrap_or("").to_string();
        match class {
            // The compiled poke table only knows inputs, so every bad
            // poke target reports as NotAnInput.
            "unknown-input" => GsimError::NotAnInput(arg),
            "unknown-signal" => GsimError::UnknownSignal(arg),
            "unknown-memory" => GsimError::UnknownMemory(arg),
            // `err mem-too-large <mem> <depth> <len>` carries the real
            // bounds, so the typed error matches the interpreter's.
            "mem-too-large" => GsimError::MemImageTooLarge {
                name: arg,
                depth: it.next().and_then(|v| v.parse().ok()).unwrap_or(0),
                len: it.next().and_then(|v| v.parse().ok()).unwrap_or(0),
            },
            "unknown-snapshot" => GsimError::UnknownSnapshot(arg.parse().unwrap_or(0)),
            _ => GsimError::Backend(format!("server error: {rest}")),
        }
    }

    /// Fences the pipeline: sends `sync`, then drains queued `err`
    /// lines (in command order) until the matching `ok`. Returns the
    /// first queued error if any, else the server's cycle count —
    /// which also resynchronizes the local mirror after `restore`.
    fn sync(&mut self) -> Result<u64, GsimError> {
        self.send("sync")?;
        self.flush()?;
        self.unsynced = 0;
        let mut first_err = None;
        let server_cycle;
        loop {
            let line = self.read_line()?;
            if let Some(rest) = line.strip_prefix("ok") {
                server_cycle = rest.trim().parse().unwrap_or(self.cycle);
                break;
            }
            if line.starts_with("err ") && first_err.is_none() {
                first_err = Some(Self::decode_err(&line));
            }
        }
        self.cycle = server_cycle;
        match first_err {
            Some(e) => Err(e),
            None => Ok(server_cycle),
        }
    }

    /// One query round trip (the stream must be fenced, which every
    /// public method maintains as an invariant).
    fn query(&mut self, req: &str) -> Result<String, GsimError> {
        self.send(req)?;
        self.flush()?;
        let line = self.read_line()?;
        if line.starts_with("err ") {
            return Err(Self::decode_err(&line));
        }
        Ok(line)
    }
}

impl Session for AotSession {
    fn backend(&self) -> &'static str {
        "aot"
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn poke(&mut self, name: &str, v: Value) -> Result<(), GsimError> {
        self.send(&format!("poke {name} {v:x}"))?;
        self.sync().map(|_| ())
    }

    fn peek(&mut self, name: &str) -> Result<Value, GsimError> {
        let line = self.query(&format!("peek {name}"))?;
        let mut it = line.split_whitespace();
        let (Some("val"), Some(w), Some(hex)) = (it.next(), it.next(), it.next()) else {
            return Err(GsimError::Backend(format!("bad peek response: {line}")));
        };
        let width: u32 = w
            .parse()
            .map_err(|_| GsimError::Backend(format!("bad peek width: {line}")))?;
        Value::from_str_radix(hex, 16, width)
            .map_err(|e| GsimError::Backend(format!("bad peek value {hex:?}: {e}")))
    }

    fn load_mem(&mut self, name: &str, image: &[u64]) -> Result<(), GsimError> {
        let mut line = String::with_capacity(6 + name.len() + image.len() * 9);
        line.push_str("load ");
        line.push_str(name);
        for w in image {
            line.push_str(&format!(" {w:x}"));
        }
        self.send(&line)?;
        self.sync().map(|_| ())
    }

    fn step(&mut self, n: u64) -> Result<(), GsimError> {
        self.send(&format!("step {n}"))?;
        self.sync().map(|_| ())
    }

    fn run_driven(
        &mut self,
        n: u64,
        drive: &mut dyn FnMut(u64, &mut SessionFrame),
    ) -> Result<(), GsimError> {
        let mut frame = SessionFrame::default();
        // Local cycle mirror: `self.cycle` is only authoritative at
        // fences, but `drive` needs the number of the cycle being
        // staged inside a pipelined chunk.
        let end = self.cycle + n;
        let mut at = self.cycle;
        // Stimulus errors do not cut the run short: as on the
        // interpreter backend, the session still completes all `n`
        // cycles, stimulus stops being driven, and the first error is
        // reported at the end. (Within the chunk already in flight
        // when the fence surfaces the error, later frames' valid
        // pokes were applied — the pipelining trade-off the trait
        // documents.) Only transport failures (`send` errors) abort.
        let mut first_err: Option<GsimError> = None;
        while at < end {
            if first_err.is_none() {
                frame.clear();
                drive(at, &mut frame);
                for (name, v) in frame.pokes() {
                    self.send(&format!("poke {name} {v:x}"))?;
                }
            }
            self.send("step 1")?;
            at += 1;
            self.unsynced += 1;
            if self.unsynced >= SYNC_CHUNK || at == end {
                if let Err(e) = self.sync() {
                    if matches!(e, GsimError::Backend(_)) {
                        return Err(e);
                    }
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn counters(&mut self) -> Result<Counters, GsimError> {
        let line = self.query("counters")?;
        let mut it = line.split_whitespace();
        if it.next() != Some("counters") {
            return Err(GsimError::Backend(format!("bad counters response: {line}")));
        }
        let mut next = || -> Result<u64, GsimError> {
            it.next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| GsimError::Backend(format!("bad counters response: {line}")))
        };
        Ok(Counters {
            cycles: next()?,
            supernode_evals: next()?,
            node_evals: next()?,
            value_changes: next()?,
            ..Counters::default()
        })
    }

    fn snapshot(&mut self) -> Result<SnapshotId, GsimError> {
        let line = self.query("snapshot")?;
        let mut it = line.split_whitespace();
        let (Some("snap"), Some(id)) = (it.next(), it.next()) else {
            return Err(GsimError::Backend(format!("bad snapshot response: {line}")));
        };
        let raw: u64 = id
            .parse()
            .map_err(|_| GsimError::Backend(format!("bad snapshot id: {line}")))?;
        Ok(SnapshotId::from_raw(raw))
    }

    fn restore(&mut self, id: SnapshotId) -> Result<(), GsimError> {
        self.send(&format!("restore {}", id.raw()))?;
        // The fence also resynchronizes `cycle()` with the rolled-back
        // server state.
        self.sync().map(|_| ())
    }
}
