//! The persistent AoT session: one compiled simulator process, kept
//! resident for a whole interactive run.
//!
//! [`AotSession`] spawns the `rustc`-built binary in its `--serve`
//! mode and speaks the line-oriented wire protocol documented on
//! [`gsim_sim::Session`]: mutating commands (`poke`, `step`, `load`,
//! `restore`) are pipelined without per-command round trips and
//! fenced with `sync`; query commands (`peek`, `counters`,
//! `snapshot`) are one request/response pair each. This is what makes
//! the AoT backend usable for *reactive* testbenches — stimulus that
//! depends on previous outputs — and amortizes the one-time `rustc`
//! cost to zero per step: where [`AotSim::run`] spawns a fresh process
//! (and re-parses stimulus) per invocation, a session pays one spawn
//! for arbitrarily many poke/step/peek interactions.

use crate::build::{AotError, AotSim, ArtifactDir};
use gsim_sim::{
    Counters, FaultPlan, GsimError, MemoryInfo, Session, SessionFrame, SignalInfo, SnapshotId,
};
use gsim_value::Value;
use std::io::{BufRead as _, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::{mpsc, Arc};
use std::time::Duration;

impl From<AotError> for GsimError {
    fn from(e: AotError) -> Self {
        GsimError::Backend(e.to_string())
    }
}

impl From<crate::rust::EmitError> for GsimError {
    fn from(e: crate::rust::EmitError) -> Self {
        GsimError::Backend(e.to_string())
    }
}

/// How many pipelined cycles [`Session::run_driven`] lets accumulate
/// before fencing with a `sync`: bounds the unread `err` lines a
/// misbehaving stimulus could queue in the child's stdout pipe (well
/// under the kernel pipe capacity) while keeping the per-cycle wire
/// cost at roughly one buffered write.
const SYNC_CHUNK: u64 = 128;

/// Default per-operation response deadline: generous enough for a
/// heavyweight design stepping a full pipeline chunk, short enough
/// that a wedged child surfaces as [`GsimError::Timeout`] instead of
/// hanging the driver forever. Override with
/// [`AotSession::set_deadline`].
pub const DEFAULT_OP_DEADLINE: Duration = Duration::from_secs(30);

/// A live connection to a compiled simulator process in server mode.
///
/// Created by [`AotSim::session`]; implements the backend-agnostic
/// [`Session`] trait, so harnesses drive it exactly like the
/// interpreter engines. The child process exits when the session is
/// dropped (its stdin closes); the scratch directory holding the
/// binary stays alive as long as either the session or its `AotSim`
/// does.
///
/// # Supervision
///
/// The session is *supervised*: responses are read on a dedicated
/// thread, so every protocol turn carries a deadline
/// ([`GsimError::Timeout`] when the child stops responding) and child
/// death is detected — EOF on the pipe, a failed write, or a
/// `try_wait` liveness check at each fence — and surfaced as a typed
/// [`GsimError::SessionLost`] carrying the exit status, instead of a
/// hang or a bare broken-pipe error. After either failure the session
/// is **poisoned**: every subsequent call fails fast with
/// [`GsimError::SessionLost`], and dropping it kills the child
/// outright rather than waiting for a graceful exit. Wrap sessions in
/// [`gsim_sim::SupervisedSession`] to recover automatically
/// (respawn + checkpoint import + journal replay) instead of
/// propagating the loss.
#[derive(Debug)]
pub struct AotSession {
    child: Child,
    stdin: Option<ChildStdin>,
    /// Response lines, fed by the reader thread; `recv_timeout` on
    /// this channel is what gives every read a deadline.
    lines: mpsc::Receiver<std::io::Result<String>>,
    reader: Option<std::thread::JoinHandle<()>>,
    deadline: Duration,
    /// Set on the first transport failure; fail-fast from then on.
    poisoned: bool,
    cycle: u64,
    /// Cycles stepped since the last `sync` fence.
    unsynced: u64,
    /// The compiled binary this session's child runs — retained so
    /// [`Session::clone_at_snapshot`] can spawn a sibling process from
    /// the same artifact (no `rustc` involved in a fork).
    binary: PathBuf,
    /// Working directory forks inherit (see [`AotSim::session_in`]).
    cwd: Option<PathBuf>,
    /// Reassembles unsolicited `chg` records into the caller's
    /// [`gsim_wave::WaveSink`] while a trace subscription is active;
    /// `None` when tracing is off.
    router: Option<gsim_wave::ChgRouter>,
    _dir: Arc<ArtifactDir>,
}

impl AotSim {
    /// Spawns the compiled binary in `--serve` mode and returns the
    /// persistent session speaking its wire protocol.
    ///
    /// # Errors
    ///
    /// Returns [`AotError::RunFailed`] when the process cannot be
    /// spawned or its pipes cannot be set up.
    pub fn session(&self) -> Result<AotSession, AotError> {
        self.session_in(None)
    }

    /// Like [`AotSim::session`], but runs the child process with the
    /// given working directory — the server uses this to isolate each
    /// client session's scratch files from the shared cached artifact.
    ///
    /// # Errors
    ///
    /// Returns [`AotError::RunFailed`] when the process cannot be
    /// spawned or its pipes cannot be set up.
    pub fn session_in(&self, cwd: Option<&Path>) -> Result<AotSession, AotError> {
        self.session_with(cwd, &FaultPlan::default())
    }

    /// Like [`AotSim::session_in`], with a [`FaultPlan`] applied to
    /// the child: its child-fault knobs travel in the
    /// `GSIM_CHILD_FAULT` environment variable. An empty plan
    /// *removes* the variable, so a supervisor respawning after an
    /// injected crash gets a healthy child rather than re-inheriting
    /// the fault.
    ///
    /// # Errors
    ///
    /// Returns [`AotError::RunFailed`] when the process cannot be
    /// spawned or its pipes cannot be set up.
    pub fn session_with(
        &self,
        cwd: Option<&Path>,
        faults: &FaultPlan,
    ) -> Result<AotSession, AotError> {
        spawn_serve(&self.binary_path, cwd, faults, self.dir_handle())
    }
}

/// Spawns `binary --serve` and wires up the session plumbing (pipes,
/// deadline reader thread). Factored out of [`AotSim::session_with`]
/// so a live session can fork a sibling process from the same binary
/// without holding an `AotSim` handle.
fn spawn_serve(
    binary: &Path,
    cwd: Option<&Path>,
    faults: &FaultPlan,
    dir: Arc<ArtifactDir>,
) -> Result<AotSession, AotError> {
    let mut cmd = Command::new(binary);
    cmd.arg("--serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    match faults.child_env() {
        Some(spec) => {
            cmd.env("GSIM_CHILD_FAULT", spec);
        }
        None => {
            cmd.env_remove("GSIM_CHILD_FAULT");
        }
    }
    if let Some(d) = cwd {
        cmd.current_dir(d);
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| AotError::RunFailed(format!("cannot spawn server: {e}")))?;
    let stdin = child
        .stdin
        .take()
        .ok_or_else(|| AotError::RunFailed("no stdin pipe".into()))?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| AotError::RunFailed("no stdout pipe".into()))?;
    // All reads happen on a dedicated thread so the session can
    // bound every response wait with `recv_timeout` — a blocking
    // `read_line` on the pipe itself could hang forever on a
    // stalled child.
    let (tx, lines) = mpsc::channel();
    let reader = std::thread::spawn(move || {
        let mut reader = BufReader::new(stdout);
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    let trimmed = line.trim_end().len();
                    line.truncate(trimmed);
                    if tx.send(Ok(line)).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    let _ = tx.send(Err(e));
                    break;
                }
            }
        }
    });
    Ok(AotSession {
        child,
        stdin: Some(stdin),
        lines,
        reader: Some(reader),
        deadline: DEFAULT_OP_DEADLINE,
        poisoned: false,
        cycle: 0,
        unsynced: 0,
        binary: binary.to_path_buf(),
        cwd: cwd.map(Path::to_path_buf),
        router: None,
        _dir: dir,
    })
}

impl Drop for AotSession {
    fn drop(&mut self) {
        // Closing stdin ends the server's command loop; reap the child
        // so no zombie outlives the session. A poisoned child gets no
        // goodbye — it may be wedged and would never exit on its own.
        drop(self.stdin.take());
        if self.poisoned {
            let _ = self.child.kill();
        }
        let _ = self.child.wait();
        // The child's stdout is closed now, so the reader thread sees
        // EOF and exits promptly.
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }
}

impl AotSession {
    /// Overrides the per-operation response deadline (default
    /// [`DEFAULT_OP_DEADLINE`]). Chaos tests shorten it to surface
    /// injected stalls quickly.
    pub fn set_deadline(&mut self, deadline: Duration) {
        self.deadline = deadline;
    }

    /// The compiled simulator's process id (for tests that kill the
    /// child out from under the session).
    pub fn child_id(&self) -> u32 {
        self.child.id()
    }

    /// Poisons the session and classifies the transport failure: if
    /// the child is observably dead (`try_wait`), the error carries
    /// its exit status.
    fn lost(&mut self, context: &str) -> GsimError {
        self.poisoned = true;
        match self.child.try_wait() {
            Ok(Some(status)) => {
                GsimError::SessionLost(format!("compiled simulator exited ({status}); {context}"))
            }
            _ => GsimError::SessionLost(context.to_string()),
        }
    }

    /// Fail-fast gate plus a cheap liveness probe, run on every fence
    /// and query turn: a child that died since the last turn is
    /// reported as [`GsimError::SessionLost`] before any pipe traffic.
    fn check_alive(&mut self) -> Result<(), GsimError> {
        if self.poisoned {
            return Err(GsimError::SessionLost(
                "session poisoned by an earlier transport failure".into(),
            ));
        }
        if let Ok(Some(status)) = self.child.try_wait() {
            self.poisoned = true;
            return Err(GsimError::SessionLost(format!(
                "compiled simulator exited ({status})"
            )));
        }
        Ok(())
    }

    fn send(&mut self, line: &str) -> Result<(), GsimError> {
        if self.poisoned {
            return Err(GsimError::SessionLost(
                "session poisoned by an earlier transport failure".into(),
            ));
        }
        let Some(w) = self.stdin.as_mut() else {
            return Err(GsimError::Io("server stdin closed".into()));
        };
        match writeln!(w, "{line}") {
            Ok(()) => Ok(()),
            // A write failure almost always means the child is gone
            // (EPIPE); classify it with the exit status.
            Err(e) => Err(self.lost(&format!("server write: {e}"))),
        }
    }

    fn flush(&mut self) -> Result<(), GsimError> {
        let Some(w) = self.stdin.as_mut() else {
            return Err(GsimError::Io("server stdin closed".into()));
        };
        match w.flush() {
            Ok(()) => Ok(()),
            Err(e) => Err(self.lost(&format!("server flush: {e}"))),
        }
    }

    fn read_line(&mut self) -> Result<String, GsimError> {
        match self.lines.recv_timeout(self.deadline) {
            Ok(Ok(line)) => Ok(line),
            Ok(Err(e)) => Err(self.lost(&format!("server read: {e}"))),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(self.lost("server closed its output")),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.poisoned = true;
                Err(GsimError::Timeout(format!(
                    "no response from the compiled simulator within {:?} (cycle {})",
                    self.deadline, self.cycle
                )))
            }
        }
    }

    /// Reads the next *response* line: unsolicited `chg` trace records
    /// are routed into the active wave subscription (or dropped when
    /// none is active — a defensive guard, the server only streams
    /// after `trace on`) so protocol readers see exactly the line
    /// counts the command grammar promises.
    fn next_line(&mut self) -> Result<String, GsimError> {
        loop {
            let line = self.read_line()?;
            if line.starts_with("chg ") {
                if let Some(router) = self.router.as_mut() {
                    router.feed(&line);
                }
                continue;
            }
            return Ok(line);
        }
    }

    /// Fences the pipeline: sends `sync`, then drains queued `err`
    /// lines (in command order) until the matching `ok`. Returns the
    /// first queued error if any, else the server's cycle count —
    /// which also resynchronizes the local mirror after `restore`.
    fn sync(&mut self) -> Result<u64, GsimError> {
        self.check_alive()?;
        self.send("sync")?;
        self.flush()?;
        self.unsynced = 0;
        let mut first_err = None;
        let server_cycle;
        loop {
            let line = self.next_line()?;
            if let Some(rest) = line.strip_prefix("ok") {
                server_cycle = rest.trim().parse().unwrap_or(self.cycle);
                break;
            }
            if line.starts_with("err ") && first_err.is_none() {
                first_err = Some(GsimError::from_wire(&line));
            }
        }
        self.cycle = server_cycle;
        match first_err {
            Some(e) => Err(e),
            None => Ok(server_cycle),
        }
    }

    /// One query round trip (the stream must be fenced, which every
    /// public method maintains as an invariant).
    fn query(&mut self, req: &str) -> Result<String, GsimError> {
        self.check_alive()?;
        self.send(req)?;
        self.flush()?;
        let line = self.next_line()?;
        if line.starts_with("err ") {
            return Err(GsimError::from_wire(&line));
        }
        Ok(line)
    }

    /// Sends `list` and reads its fixed three-line response
    /// (`inputs …` / `signals …` / `mems …`), returning the payload of
    /// the requested line.
    fn list_line(&mut self, want: &str) -> Result<String, GsimError> {
        self.send("list")?;
        self.flush()?;
        let mut found = None;
        for expect in ["inputs", "signals", "mems"] {
            let line = self.next_line()?;
            if line.starts_with("err ") {
                return Err(GsimError::from_wire(&line));
            }
            let Some(rest) = line.strip_prefix(expect) else {
                return Err(GsimError::Protocol(format!("bad list response: {line}")));
            };
            if expect == want {
                found = Some(rest.trim().to_string());
            }
        }
        found.ok_or_else(|| GsimError::Protocol("list response incomplete".into()))
    }

    fn parse_signal_list(payload: &str) -> Result<Vec<SignalInfo>, GsimError> {
        payload
            .split_whitespace()
            .map(|tok| {
                let (name, width) = tok
                    .rsplit_once(':')
                    .ok_or_else(|| GsimError::Protocol(format!("bad list entry: {tok}")))?;
                let width = width
                    .parse()
                    .map_err(|_| GsimError::Protocol(format!("bad list width: {tok}")))?;
                Ok(SignalInfo {
                    name: name.to_string(),
                    width,
                })
            })
            .collect()
    }
}

impl Session for AotSession {
    fn backend(&self) -> &'static str {
        "aot"
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn poke(&mut self, name: &str, v: Value) -> Result<(), GsimError> {
        self.send(&format!("poke {name} {v:x}"))?;
        self.sync().map(|_| ())
    }

    fn peek(&mut self, name: &str) -> Result<Value, GsimError> {
        let line = self.query(&format!("peek {name}"))?;
        let mut it = line.split_whitespace();
        let (Some("val"), Some(w), Some(hex)) = (it.next(), it.next(), it.next()) else {
            return Err(GsimError::Protocol(format!("bad peek response: {line}")));
        };
        let width: u32 = w
            .parse()
            .map_err(|_| GsimError::Protocol(format!("bad peek width: {line}")))?;
        Value::from_str_radix(hex, 16, width)
            .map_err(|e| GsimError::Protocol(format!("bad peek value {hex:?}: {e}")))
    }

    fn load_mem(&mut self, name: &str, image: &[u64]) -> Result<(), GsimError> {
        let mut line = String::with_capacity(6 + name.len() + image.len() * 9);
        line.push_str("load ");
        line.push_str(name);
        for w in image {
            line.push_str(&format!(" {w:x}"));
        }
        self.send(&line)?;
        self.sync().map(|_| ())
    }

    fn step(&mut self, n: u64) -> Result<(), GsimError> {
        self.send(&format!("step {n}"))?;
        self.sync().map(|_| ())
    }

    #[allow(deprecated)] // the pipelined wire override must shadow the shim
    fn run_driven(
        &mut self,
        n: u64,
        drive: &mut dyn FnMut(u64, &mut SessionFrame),
    ) -> Result<(), GsimError> {
        let mut frame = SessionFrame::default();
        // Local cycle mirror: `self.cycle` is only authoritative at
        // fences, but `drive` needs the number of the cycle being
        // staged inside a pipelined chunk.
        let end = self.cycle + n;
        let mut at = self.cycle;
        // Stimulus errors do not cut the run short: as on the
        // interpreter backend, the session still completes all `n`
        // cycles, stimulus stops being driven, and the first error is
        // reported at the end. (Within the chunk already in flight
        // when the fence surfaces the error, later frames' valid
        // pokes were applied — the pipelining trade-off the trait
        // documents.) Only transport failures (`send` errors) abort.
        let mut first_err: Option<GsimError> = None;
        while at < end {
            if first_err.is_none() {
                frame.clear();
                drive(at, &mut frame);
                for (name, v) in frame.pokes() {
                    self.send(&format!("poke {name} {v:x}"))?;
                }
            }
            self.send("step 1")?;
            at += 1;
            self.unsynced += 1;
            if self.unsynced >= SYNC_CHUNK || at == end {
                if let Err(e) = self.sync() {
                    if e.is_fatal() {
                        return Err(e);
                    }
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn trace_start(
        &mut self,
        signals: Option<&[String]>,
        sink: Box<dyn gsim_wave::WaveSink>,
    ) -> Result<(), GsimError> {
        if self.router.is_some() {
            return Err(GsimError::Config(
                "a trace is already active on this session".into(),
            ));
        }
        // Resolve the traced subset client-side so a typo is a typed
        // error before any wire traffic, mirroring the in-process
        // backends. The server re-validates, but its `err` would only
        // surface at the next fence.
        let all = self.signals()?;
        let selected: Vec<SignalInfo> = match signals {
            None => all,
            Some(names) => names
                .iter()
                .map(|n| {
                    all.iter()
                        .find(|s| &s.name == n)
                        .cloned()
                        .ok_or_else(|| GsimError::UnknownSignal(n.clone()))
                })
                .collect::<Result<_, _>>()?,
        };
        let mut cmd = String::from("trace on");
        for s in &selected {
            cmd.push(' ');
            cmd.push_str(&s.name);
        }
        // The router mirrors the server's zero-width exclusion so the
        // baseline completes.
        let wave_sigs: Vec<gsim_wave::WaveSignal> = selected
            .iter()
            .filter(|s| s.width > 0)
            .map(|s| gsim_wave::WaveSignal::new(&s.name, s.width))
            .collect();
        self.router = Some(gsim_wave::ChgRouter::new("top", wave_sigs, sink));
        self.send(&cmd)?;
        // The fence pulls the baseline burst through `next_line` into
        // the router before returning.
        match self.sync() {
            Ok(_) => Ok(()),
            Err(e) => {
                self.router = None;
                Err(e)
            }
        }
    }

    fn trace_stop(&mut self) -> Result<(), GsimError> {
        if self.router.is_none() {
            return Err(GsimError::Config(
                "no trace is active on this session".into(),
            ));
        }
        // `trace off` is silent on success; the fence both confirms it
        // and pulls every record still queued in the pipe through
        // `next_line` into the router before we tear it down.
        let res = self.send("trace off").and_then(|()| self.sync());
        let router = self.router.take().expect("checked above");
        res?;
        router.finish().map_err(|e| GsimError::Io(e.to_string()))
    }

    fn counters(&mut self) -> Result<Counters, GsimError> {
        let line = self.query("counters")?;
        let mut it = line.split_whitespace();
        if it.next() != Some("counters") {
            return Err(GsimError::Protocol(format!(
                "bad counters response: {line}"
            )));
        }
        let mut next = || -> Result<u64, GsimError> {
            it.next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| GsimError::Protocol(format!("bad counters response: {line}")))
        };
        Ok(Counters {
            cycles: next()?,
            supernode_evals: next()?,
            node_evals: next()?,
            value_changes: next()?,
            ..Counters::default()
        })
    }

    fn snapshot(&mut self) -> Result<SnapshotId, GsimError> {
        let line = self.query("snapshot")?;
        let mut it = line.split_whitespace();
        let (Some("snap"), Some(id)) = (it.next(), it.next()) else {
            return Err(GsimError::Protocol(format!(
                "bad snapshot response: {line}"
            )));
        };
        let raw: u64 = id
            .parse()
            .map_err(|_| GsimError::Protocol(format!("bad snapshot id: {line}")))?;
        Ok(SnapshotId::from_raw(raw))
    }

    fn restore(&mut self, id: SnapshotId) -> Result<(), GsimError> {
        self.send(&format!("restore {}", id.raw()))?;
        // The fence also resynchronizes `cycle()` with the rolled-back
        // server state.
        self.sync().map(|_| ())
    }

    fn inputs(&mut self) -> Result<Vec<SignalInfo>, GsimError> {
        let payload = self.list_line("inputs")?;
        Self::parse_signal_list(&payload)
    }

    fn signals(&mut self) -> Result<Vec<SignalInfo>, GsimError> {
        let payload = self.list_line("signals")?;
        Self::parse_signal_list(&payload)
    }

    fn memories(&mut self) -> Result<Vec<MemoryInfo>, GsimError> {
        let payload = self.list_line("mems")?;
        payload
            .split_whitespace()
            .map(|tok| {
                let mut it = tok.rsplitn(3, ':');
                let width = it.next().and_then(|v| v.parse().ok());
                let depth = it.next().and_then(|v| v.parse().ok());
                let name = it.next();
                match (name, depth, width) {
                    (Some(n), Some(depth), Some(width)) => Ok(MemoryInfo {
                        name: n.to_string(),
                        depth,
                        width,
                    }),
                    _ => Err(GsimError::Protocol(format!("bad list entry: {tok}"))),
                }
            })
            .collect()
    }

    fn clone_at_snapshot(&mut self) -> Result<Box<dyn Session + Send>, GsimError> {
        // Forking a compiled session costs one state export plus one
        // process spawn from the *same* cached binary — `rustc` never
        // runs again. The fork always gets a healthy environment (no
        // inherited fault injection) so chaos plans apply only to the
        // session they were opened with.
        let blob = self.export_state()?.ok_or_else(|| {
            GsimError::Unsupported("compiled simulator does not export state".into())
        })?;
        let mut fork = spawn_serve(
            &self.binary,
            self.cwd.as_deref(),
            &FaultPlan::default(),
            Arc::clone(&self._dir),
        )
        .map_err(|e| GsimError::Backend(format!("cannot fork compiled session: {e}")))?;
        fork.set_deadline(self.deadline);
        fork.import_state(&blob)?;
        Ok(Box::new(fork))
    }

    fn export_state(&mut self) -> Result<Option<Vec<u8>>, GsimError> {
        let line = self.query("state")?;
        let mut it = line.split_whitespace();
        let (Some("state"), Some(_cycle), Some(blob)) = (it.next(), it.next(), it.next()) else {
            return Err(GsimError::Protocol(format!("bad state response: {line}")));
        };
        Ok(Some(blob.as_bytes().to_vec()))
    }

    fn import_state(&mut self, state: &[u8]) -> Result<(), GsimError> {
        let blob = std::str::from_utf8(state)
            .map_err(|_| GsimError::Protocol("state blob is not ASCII".into()))?;
        self.send(&format!("loadstate {blob}"))?;
        // The fence surfaces a rejected blob and resynchronizes
        // `cycle()` with the imported state.
        self.sync().map(|_| ())
    }
}
