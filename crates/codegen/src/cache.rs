//! The content-addressed compiled-artifact cache: `rustc` runs once
//! per distinct design, not once per client.
//!
//! The cache key is a stable 128-bit FNV-1a fingerprint of the
//! **emitted Rust source** ([`crate::emit_rust`] is deterministic for
//! a given post-optimization graph + partition), so it captures the
//! design, the optimization pipeline's output, *and* the emitter
//! version in one hash — any change to what would be compiled changes
//! the key. Hand-rolled (no `DefaultHasher`) so keys are stable
//! across processes and Rust releases: the cache directory is shared
//! state.
//!
//! On-disk layout, under the cache root:
//!
//! ```text
//! <root>/<32-hex-key>/sim.rs   emitted source (debugging aid)
//! <root>/<32-hex-key>/sim     compiled binary
//! <root>/<32-hex-key>/ok      publication marker: binary size in bytes
//! <root>/tmp_<pid>_<seq>/      in-progress builds (atomically renamed in)
//! ```
//!
//! Concurrency story:
//!
//! * **Hit path is lock-free**: a published entry is recognized by its
//!   `ok` marker (written last, renamed in atomically with the whole
//!   entry directory), validated by comparing the recorded binary size
//!   against the file on disk, and counted with relaxed atomics. No
//!   mutex is ever taken to *use* a cached artifact.
//! * **Compiles are deduplicated** per key with an in-process map of
//!   per-key mutexes: concurrent sessions requesting the same uncached
//!   design produce exactly one `rustc` invocation; the waiters take
//!   the hit path once the winner publishes. Across processes the
//!   atomic rename keeps the entry consistent (the loser discards its
//!   build and uses the winner's).
//! * **Eviction** is LRU over the `ok` marker mtime (touched on
//!   every hit): when the entry count exceeds the
//!   configured capacity, the stalest entries are removed. Removing an
//!   entry out from under a live session is safe on Unix — the running
//!   child keeps its inode until it exits — and a later request for
//!   the evicted design transparently recompiles.

use crate::build::{binary_name, cache_resident_sim, run_rustc, AotError, AotOptions, AotSim};
use crate::rust::emit_rust;
use gsim_graph::Graph;
use gsim_sim::FaultPlan;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Stable content hash identifying one compiled artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtifactKey(u128);

impl ArtifactKey {
    /// Fingerprints emitted source text: 128-bit FNV-1a, hand-rolled
    /// for cross-process / cross-release stability.
    pub fn fingerprint(code: &str) -> ArtifactKey {
        const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
        const PRIME: u128 = 0x0000000001000000000000000000013b;
        let mut h = OFFSET;
        for b in code.as_bytes() {
            h ^= u128::from(*b);
            h = h.wrapping_mul(PRIME);
        }
        ArtifactKey(h)
    }

    /// Parses the 32-hex-digit form produced by [`std::fmt::Display`].
    pub fn parse(s: &str) -> Option<ArtifactKey> {
        (s.len() == 32)
            .then(|| u128::from_str_radix(s, 16).ok())
            .flatten()
            .map(ArtifactKey)
    }
}

impl std::fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from a published artifact (no `rustc`).
    pub hits: u64,
    /// Requests that found no usable artifact.
    pub misses: u64,
    /// Actual `rustc` invocations (≤ misses: deduplicated waiters and
    /// cross-process races miss without compiling).
    pub compiles: u64,
    /// Entries removed by the LRU capacity bound.
    pub evictions: u64,
}

/// The on-disk compiled-artifact store. See the module docs for the
/// layout, concurrency, and eviction story.
#[derive(Debug)]
pub struct ArtifactCache {
    root: PathBuf,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
    evictions: AtomicU64,
    /// Per-key build locks: dedups concurrent compiles of one design.
    building: Mutex<HashMap<u128, Arc<Mutex<()>>>>,
    tmp_seq: AtomicU64,
    /// Deterministic fault injection for the chaos suite (empty in
    /// production use).
    faults: FaultPlan,
}

impl ArtifactCache {
    /// Default capacity (entries) when none is configured.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// Opens (creating if needed) a cache rooted at `root`, keeping at
    /// most `capacity` entries (≥ 1) before LRU eviction kicks in.
    ///
    /// # Errors
    ///
    /// Returns [`AotError::Io`] when the root cannot be created.
    pub fn new(root: impl Into<PathBuf>, capacity: usize) -> Result<ArtifactCache, AotError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(ArtifactCache {
            root,
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            building: Mutex::new(HashMap::new()),
            tmp_seq: AtomicU64::new(0),
            faults: FaultPlan::default(),
        })
    }

    /// Arms deterministic fault injection on the publish path: the
    /// cache honours [`FaultPlan::publish_io_error`] (the tmp-dir
    /// write fails as if the disk were full, leaving no half-entry)
    /// and [`FaultPlan::torn_publish`] (the compiled binary is
    /// truncated after the `ok` marker records its full size, so the
    /// next [`probe`](ArtifactCache::compile) must reject the entry).
    /// Chaos tests call this before sharing the cache; production
    /// callers leave the default empty plan.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Emits `graph`, looks the result up by content hash, and returns
    /// a cache-resident [`AotSim`] — compiling with `rustc` only when
    /// no published artifact exists. `sim.from_cache` tells the caller
    /// whether this call skipped the compile.
    ///
    /// # Errors
    ///
    /// Returns [`AotError`] when emission fails, `rustc` is
    /// unavailable, or the emitted program does not compile.
    pub fn compile(&self, graph: &Graph, opts: &AotOptions) -> Result<AotSim, AotError> {
        let emit = emit_rust(graph, &opts.partition)?;
        let key = ArtifactKey::fingerprint(&emit.code);
        let entry = self.entry_dir(key);

        // Lock-free hit path.
        if self.probe(&entry) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cache_resident_sim(emit, &entry, Duration::ZERO, true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);

        // Dedup concurrent builds of the same key.
        let gate = {
            let mut map = self.building.lock().expect("cache build map poisoned");
            Arc::clone(map.entry(key.0).or_default())
        };
        let _build = gate.lock().expect("cache build lock poisoned");

        // A concurrent winner (or another process) may have published
        // while we waited; a stale/corrupt entry is torn down here so
        // the rebuild below republishes it.
        if self.probe(&entry) {
            return cache_resident_sim(emit, &entry, Duration::ZERO, true);
        }
        let _ = std::fs::remove_dir_all(&entry);

        // Build in a private tmp dir, publish with one atomic rename.
        let tmp = self.root.join(format!(
            "tmp_{}_{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&tmp)?;
        let built = (|| -> Result<Duration, AotError> {
            let source = tmp.join("sim.rs");
            let binary = tmp.join(binary_name());
            if self.faults.publish_io_error {
                // Injected disk-full: fail before anything lands in
                // the tmp dir, like a real ENOSPC on the first write.
                return Err(AotError::Io(std::io::Error::other(
                    "injected fault: no space left on device",
                )));
            }
            std::fs::write(&source, &emit.code)?;
            let rustc_time = run_rustc(&source, &binary)?;
            let size = std::fs::metadata(&binary)?.len();
            std::fs::write(tmp.join("ok"), size.to_string())?;
            if self.faults.torn_publish {
                // Injected torn write: the `ok` marker records the
                // full size but the binary on disk is shorter, which
                // the next probe must detect and tear down.
                std::fs::File::options()
                    .write(true)
                    .open(&binary)?
                    .set_len(size / 2)?;
            }
            Ok(rustc_time)
        })();
        let rustc_time = match built {
            Ok(t) => t,
            Err(e) => {
                let _ = std::fs::remove_dir_all(&tmp);
                return Err(e);
            }
        };
        self.compiles.fetch_add(1, Ordering::Relaxed);

        if std::fs::rename(&tmp, &entry).is_err() {
            // Lost a cross-process race: the winner's entry stands.
            let _ = std::fs::remove_dir_all(&tmp);
            if !self.probe(&entry) {
                return Err(AotError::RunFailed(format!(
                    "artifact {key} vanished during publication"
                )));
            }
        }
        self.evict_over_capacity(key);
        cache_resident_sim(emit, &entry, rustc_time, false)
    }

    fn entry_dir(&self, key: ArtifactKey) -> PathBuf {
        self.root.join(key.to_string())
    }

    /// `true` when `entry` holds a valid published artifact. Also
    /// touches the `ok` marker's mtime so LRU eviction sees the use.
    /// The touch must not rewrite the marker's *content*: a truncating
    /// write would let a concurrent prober read an empty marker and
    /// tear down a perfectly valid entry.
    fn probe(&self, entry: &Path) -> bool {
        let marker = entry.join("ok");
        let Ok(recorded) = std::fs::read_to_string(&marker) else {
            return false;
        };
        let Ok(expected) = recorded.trim().parse::<u64>() else {
            return false;
        };
        let actual = std::fs::metadata(entry.join(binary_name()))
            .map(|m| m.len())
            .unwrap_or(u64::MAX);
        if actual != expected {
            return false; // truncated / corrupted artifact
        }
        // LRU touch: mtime only, content untouched.
        if let Ok(f) = std::fs::File::options().append(true).open(&marker) {
            let _ = f.set_modified(std::time::SystemTime::now());
        }
        true
    }

    /// Removes the least-recently-used entries beyond `capacity`,
    /// never evicting `keep` (the entry just used).
    fn evict_over_capacity(&self, keep: ArtifactKey) {
        let Ok(read) = std::fs::read_dir(&self.root) else {
            return;
        };
        let mut entries: Vec<(std::time::SystemTime, PathBuf)> = Vec::new();
        for ent in read.flatten() {
            let name = ent.file_name();
            let Some(key) = name.to_str().and_then(ArtifactKey::parse) else {
                continue; // tmp dirs and strangers are not entries
            };
            if key == keep {
                continue;
            }
            let stamp = std::fs::metadata(ent.path().join("ok"))
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            entries.push((stamp, ent.path()));
        }
        // `keep` occupies one slot on top of `entries`.
        let budget = self.capacity.saturating_sub(1);
        if entries.len() <= budget {
            return;
        }
        entries.sort();
        for (_, path) in entries.drain(..entries.len() - budget) {
            if std::fs::remove_dir_all(&path).is_ok() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}
