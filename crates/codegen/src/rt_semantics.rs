//! Differential property tests: the embedded AoT runtime (`rt`) must
//! agree bit-for-bit with `gsim_value::ops`, the semantic reference
//! for the whole simulator. Every emitted program computes through
//! these kernels (or through the narrow `u128` tier, which the
//! end-to-end AoT differential tests pin separately), so this module
//! is the load-bearing correctness argument for wide signals in
//! compiled simulators.

use crate::rt;
use gsim_value::{ops, words_for, Value};
use proptest::prelude::*;
use std::cmp::Ordering;

fn val(words: &[u64], w: u32) -> Value {
    Value::from_words(words.to_vec(), w)
}

fn out_for(w: u32) -> Vec<u64> {
    vec![0u64; words_for(w).max(1)]
}

/// Widths crossing the u64/u128/multi-word boundaries.
fn width() -> impl Strategy<Value = u32> {
    prop_oneof![
        0u32..=3,
        62u32..=66,
        126u32..=130,
        190u32..=194,
        Just(256u32),
    ]
}

fn operand() -> impl Strategy<Value = (u32, Vec<u64>)> {
    (width(), proptest::collection::vec(any::<u64>(), 5))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn add_sub_mul_match((aw, a) in operand(), (bw, b) in operand(), signed in any::<bool>()) {
        let (va, vb) = (val(&a, aw), val(&b, bw));
        for (name, w, rtf, opf) in [
            ("add", ops::add_width(aw, bw),
             rt::add as fn(&mut [u64], u32, &[u64], u32, &[u64], u32, bool),
             ops::add as fn(&Value, &Value, bool) -> Value),
            ("sub", ops::add_width(aw, bw), rt::sub, ops::sub),
            ("mul", ops::mul_width(aw, bw), rt::mul, ops::mul),
        ] {
            if name == "mul" && w == 0 {
                continue; // ops::mul returns width 0 directly
            }
            let mut out = vec![0u64; words_for(w)];
            rtf(&mut out, w, va.words(), aw, vb.words(), bw, signed);
            let expect = opf(&va, &vb, signed);
            prop_assert_eq!(out.as_slice(), expect.words(), "{} {}x{}", name, aw, bw);
        }
    }

    #[test]
    fn div_rem_match((aw, a) in operand(), (bw, b) in operand(), signed in any::<bool>(), zero_b in any::<bool>()) {
        let va = val(&a, aw);
        let vb = if zero_b { Value::zero(bw) } else { val(&b, bw) };
        let w = ops::div_width(aw, signed);
        let mut out = out_for(w);
        rt::div(&mut out[..words_for(w)], w, va.words(), aw, vb.words(), bw, signed);
        let expect = ops::div(&va, &vb, signed);
        prop_assert_eq!(&out[..words_for(w)], expect.words(), "div {}/{}", aw, bw);

        let w = ops::rem_width(aw, bw);
        let mut out = out_for(w);
        rt::rem(&mut out[..words_for(w)], w, va.words(), aw, vb.words(), bw, signed);
        let expect = ops::rem(&va, &vb, signed);
        prop_assert_eq!(&out[..words_for(w)], expect.words(), "rem {}%{}", aw, bw);
    }

    #[test]
    fn comparisons_match((aw, a) in operand(), (bw, b) in operand(), signed in any::<bool>(), equal in any::<bool>()) {
        let va = val(&a, aw);
        let vb = if equal && bw >= aw {
            va.zext_or_trunc(bw)
        } else {
            val(&b, bw)
        };
        let ord = rt::cmp(va.words(), aw, vb.words(), bw, signed);
        let want_lt = ops::lt(&va, &vb, signed).to_u64() == Some(1);
        let want_eq = ops::eq(&va, &vb, signed).to_u64() == Some(1);
        let want_gt = ops::gt(&va, &vb, signed).to_u64() == Some(1);
        prop_assert_eq!(ord == Ordering::Less, want_lt);
        prop_assert_eq!(ord == Ordering::Equal, want_eq);
        prop_assert_eq!(ord == Ordering::Greater, want_gt);
    }

    #[test]
    fn bitwise_and_reductions_match((aw, a) in operand(), (bw, b) in operand(), signed in any::<bool>()) {
        let (va, vb) = (val(&a, aw), val(&b, bw));
        let w = aw.max(bw);
        for (which, opf) in [
            (0u8, ops::and as fn(&Value, &Value, bool) -> Value),
            (1u8, ops::or),
            (2u8, ops::xor),
        ] {
            let mut out = out_for(w);
            rt::bitwise(&mut out[..words_for(w)], w, va.words(), aw, vb.words(), bw, signed, which);
            let expect = opf(&va, &vb, signed);
            prop_assert_eq!(&out[..words_for(w)], expect.words());
        }
        let mut out = out_for(aw);
        rt::not(&mut out[..words_for(aw)], va.words(), aw);
        let expect = ops::not(&va);
        prop_assert_eq!(&out[..words_for(aw)], expect.words());
        prop_assert_eq!(rt::andr(va.words(), aw), ops::andr(&va).to_u64() == Some(1));
        prop_assert_eq!(rt::orr(va.words()), ops::orr(&va).to_u64() == Some(1));
        prop_assert_eq!(rt::xorr(va.words()), ops::xorr(&va).to_u64() == Some(1));
    }

    #[test]
    fn cat_extract_match((aw, a) in operand(), (bw, b) in operand(), hi_f in any::<u16>(), lo_f in any::<u16>()) {
        let (va, vb) = (val(&a, aw), val(&b, bw));
        let w = aw + bw;
        let mut out = out_for(w);
        rt::cat(&mut out[..words_for(w).max(1)], va.words(), vb.words(), bw);
        let expect = ops::cat(&va, &vb);
        prop_assert_eq!(&out[..words_for(w)], expect.words());

        if aw > 0 {
            let lo = lo_f as u32 % aw;
            let hi = lo + (hi_f as u32 % (aw - lo));
            let w = hi - lo + 1;
            let mut out = out_for(w);
            rt::extract(&mut out[..words_for(w)], va.words(), lo, w);
            let expect = ops::bits(&va, hi, lo);
            prop_assert_eq!(&out[..words_for(w)], expect.words(), "bits {}..{} of {}", hi, lo, aw);
        }
    }

    #[test]
    fn shifts_match((aw, a) in operand(), (bw, b) in operand(), sh in 0u32..300, signed in any::<bool>()) {
        let va = val(&a, aw);
        // static shl
        let w = aw + sh.min(128);
        let sh_c = sh.min(128);
        let mut out = out_for(w);
        rt::shl(&mut out[..words_for(w).max(1)], w, va.words(), sh_c);
        let expect = ops::shl(&va, sh_c);
        prop_assert_eq!(&out[..words_for(w)], expect.words(), "shl");
        // static shr
        let w = ops::shr_width(aw, sh);
        let mut out = out_for(w);
        rt::shr(&mut out[..words_for(w)], w, va.words(), aw, sh, signed);
        let expect = ops::shr(&va, sh, signed);
        prop_assert_eq!(&out[..words_for(w)], expect.words(), "shr by {} of {}", sh, aw);
        // dynamic shifts: dshl widths stay modest (wb <= 6 here)
        let wb = (bw % 7).min(6);
        let vb = val(&b, wb);
        let w = ops::dshl_width(aw, wb);
        let mut out = out_for(w);
        rt::dshl(&mut out[..words_for(w).max(1)], w, va.words(), vb.words());
        let expect = ops::dshl(&va, &vb);
        prop_assert_eq!(&out[..words_for(w)], expect.words(), "dshl");
        let mut out = out_for(aw);
        rt::dshr(&mut out[..words_for(aw)], va.words(), aw, vb.words(), signed);
        let expect = ops::dshr(&va, &vb, signed);
        prop_assert_eq!(&out[..words_for(aw)], expect.words(), "dshr");
    }

    #[test]
    fn pad_neg_ext_match((aw, a) in operand(), n in 0u32..300, signed in any::<bool>()) {
        let va = val(&a, aw);
        let w = aw.max(n);
        let mut out = out_for(w);
        rt::ext(&mut out[..words_for(w).max(1)], va.words(), aw, w, signed);
        let expect = ops::pad(&va, n, signed);
        prop_assert_eq!(&out[..words_for(w)], expect.words(), "pad {} -> {}", aw, n);

        let w = aw + 1;
        let mut out = out_for(w);
        rt::neg(&mut out[..words_for(w)], w, va.words(), aw, signed);
        let expect = ops::neg(&va, signed);
        prop_assert_eq!(&out[..words_for(w)], expect.words(), "neg {}", aw);
    }

    #[test]
    fn u128_tier_helpers_match((aw, a) in operand()) {
        // mask128 / sx128 / to_u128 agree with the canonical Value view
        // on narrow widths.
        let aw = aw.min(128);
        let va = val(&a, aw);
        let x = rt::to_u128(va.words());
        prop_assert_eq!(Some(x), va.to_u128());
        prop_assert_eq!(rt::mask128(x, aw), x, "canonical values are fixed points");
        if aw <= 128 {
            prop_assert_eq!(Some(rt::sx128(x, aw)), va.to_i128());
        }
        prop_assert_eq!(rt::sat64(va.words()), va.to_u64().unwrap_or(u64::MAX));
        prop_assert_eq!(rt::sat64_128(x), va.to_u64().unwrap_or(u64::MAX));
    }

    #[test]
    fn hex_roundtrip((aw, a) in operand()) {
        let va = val(&a, aw);
        let hex = rt::to_hex(va.words());
        prop_assert_eq!(&hex, &format!("{:x}", va), "hex rendering");
        if aw > 0 {
            let parsed = rt::parse_hex(&hex).unwrap();
            let vp = Value::from_words(parsed, aw);
            prop_assert_eq!(vp, va);
        }
    }
}

#[test]
fn store_entry_masks_and_zero_extends() {
    let mut mem = vec![0xffu64; 6];
    rt::store_entry(&mut mem, 2, 2, &[u64::MAX, u64::MAX], 70);
    assert_eq!(mem[2], u64::MAX);
    assert_eq!(mem[3], 0x3f); // 70 - 64 = 6 bits survive the mask
    assert_eq!(mem[4], 0xff); // untouched
                              // Short data zero-extends across the entry.
    rt::store_entry(&mut mem, 2, 2, &[7], 70);
    assert_eq!((mem[2], mem[3]), (7, 0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    // The state-blob codec (`save_state`/`load_state` in the emitted
    // simulator): every word sequence must survive the `.`-separated
    // hex encoding exactly, and the stream must report exhaustion.
    #[test]
    fn state_blob_roundtrip(all in proptest::collection::vec(any::<u64>(), 10),
                            hi in any::<u64>(), lo in any::<u64>(), keep in 0usize..=10) {
        let words = &all[..keep];
        let scalar = (hi as u128) << 64 | lo as u128;
        let mut blob = String::new();
        rt::push_hex(&mut blob, scalar);
        rt::push_hex_words(&mut blob, words);

        let mut rd = rt::HexStream::new(&blob);
        prop_assert_eq!(rd.next_u128(), Some(scalar));
        let mut back = vec![0u64; words.len()];
        prop_assert!(rd.fill_words(&mut back), "every word token present");
        prop_assert_eq!(&back[..], words);
        prop_assert!(rd.at_end(), "no trailing tokens");
    }
}

/// Malformed blobs are rejected, not misparsed: empty tokens, junk
/// hex, overlong tokens, and u64 overflow all read as `None`/`false`.
#[test]
fn state_blob_rejects_malformed_tokens() {
    assert_eq!(rt::HexStream::new("").next_u128(), None);
    assert_eq!(rt::HexStream::new("xyz.").next_u128(), None);
    let overlong = format!("{}.", "f".repeat(33));
    assert_eq!(rt::HexStream::new(&overlong).next_u128(), None);
    // 2^64 fits a u128 token but overflows the u64 reader.
    assert_eq!(rt::HexStream::new("10000000000000000.").next_u64(), None);
    let mut short = rt::HexStream::new("a.");
    assert!(!short.fill_words(&mut [0u64; 2]), "truncated blob rejected");
    let mut trailing = rt::HexStream::new("a.b.");
    assert_eq!(trailing.next_u64(), Some(0xa));
    assert!(!trailing.at_end(), "unconsumed token detected");
}

/// The embedded VCD writer must emit the exact dialect `gsim_wave`
/// writes and parses: identical base-94 id codes, identical binary
/// rendering, and — for the same change history — a byte stream that
/// `gsim_wave::parse_vcd` canonicalizes to the same wave the
/// `gsim_wave` writer produces. This is what lets `gsim wavediff`
/// compare an emitted binary's `--vcd` output against a local
/// capture without a normalization pass.
#[test]
fn embedded_vcd_writer_matches_gsim_wave_dialect() {
    use gsim_wave::{WaveSignal, WaveSink};

    for n in [0usize, 1, 93, 94, 95, 94 * 94 - 1, 94 * 94, 123_456] {
        assert_eq!(rt::vcd_id(n), gsim_wave::id_code(n), "id code for {n}");
    }
    assert_eq!(rt::hex_to_vcd_bin("0"), "0");
    assert_eq!(rt::hex_to_vcd_bin("00"), "0");
    assert_eq!(rt::hex_to_vcd_bin("1"), "1");
    assert_eq!(rt::hex_to_vcd_bin("a5"), "10100101");
    assert_eq!(rt::hex_to_vcd_bin("0f"), "1111");

    // The same design and change history through both writers.
    let names: [(&str, u32); 3] = [("out", 8), ("halt", 1), ("wide", 96)];
    let baseline: [&[u64]; 3] = [&[0], &[0], &[0, 0]];
    let changes: [(u64, usize, &[u64]); 5] = [
        (1, 0, &[0xa5]),
        (1, 2, &[u64::MAX, 0xffff_ffff]),
        (3, 1, &[1]),
        (3, 0, &[0x42]),
        (7, 2, &[0, 0]),
    ];

    let mut emitted = Vec::new();
    let mut vcd = rt::Vcd::new(&mut emitted, "top", &names);
    let hex = |words: &[u64], w: u32| gsim_wave::words_to_hex(words, w);
    let base_hex: Vec<String> = names
        .iter()
        .zip(baseline)
        .map(|(&(_, w), v)| hex(v, w))
        .collect();
    vcd.baseline(0, &base_hex);
    for &(t, i, words) in &changes {
        vcd.change(t, i, &hex(words, names[i].1));
    }
    assert!(vcd.finish(), "embedded writer reported a write failure");

    let signals: Vec<WaveSignal> = names.iter().map(|&(n, w)| WaveSignal::new(n, w)).collect();
    let mut reference = Vec::new();
    let mut writer = gsim_wave::VcdWriter::new(&mut reference);
    writer.start("top", &signals).unwrap();
    let base_words: Vec<Vec<u64>> = baseline.iter().map(|v| v.to_vec()).collect();
    writer.dumpvars(0, &base_words).unwrap();
    for &(t, i, words) in &changes {
        writer.change(t, i, words).unwrap();
    }
    WaveSink::finish(&mut writer).unwrap();

    let a = gsim_wave::parse_vcd(std::str::from_utf8(&emitted).unwrap()).unwrap();
    let b = gsim_wave::parse_vcd(std::str::from_utf8(&reference).unwrap()).unwrap();
    let diffs = gsim_wave::diff(&a, &b);
    assert!(
        diffs.is_empty(),
        "embedded vs gsim_wave VCD diverge:\n{}",
        diffs
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
