//! The AoT build driver: emit → `rustc -O` → run.
//!
//! [`compile`] writes the [`crate::emit_rust`] output to a scratch
//! directory, invokes the host `rustc` (no cargo, no network, no
//! dependencies — the emitted program is fully standalone), and returns
//! an [`AotSim`] handle that can run the compiled binary over a
//! [`gsim_sim::Scenario`] and parse its peeks + counters report.
//!
//! The scratch directory is deleted when the [`AotSim`] is dropped
//! unless [`AotOptions::keep_dir`] is set.

use crate::rust::{emit_rust, EmitError, RustOutput};
use gsim_graph::Graph;
use gsim_partition::PartitionOptions;
use gsim_sim::Scenario;
use gsim_value::Value;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Options for the AoT build.
#[derive(Debug, Clone, Default)]
pub struct AotOptions {
    /// Supernode partitioning for the emitted schedule.
    pub partition: PartitionOptions,
    /// Keep the scratch directory (source + binary) instead of
    /// deleting it on drop — useful for debugging emitted code.
    pub keep_dir: bool,
}

/// Error from building or running an AoT simulator.
#[derive(Debug)]
pub enum AotError {
    /// The emitter rejected the design.
    Emit(EmitError),
    /// Filesystem trouble in the scratch directory.
    Io(std::io::Error),
    /// `rustc` could not be spawned (not installed / not on PATH).
    RustcMissing(std::io::Error),
    /// `rustc` rejected the emitted program (a codegen bug; the
    /// message carries the compiler diagnostics).
    RustcFailed(String),
    /// The compiled binary exited with an error.
    RunFailed(String),
    /// The binary's report could not be parsed.
    BadReport(String),
}

impl std::fmt::Display for AotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AotError::Emit(e) => write!(f, "emit: {e}"),
            AotError::Io(e) => write!(f, "io: {e}"),
            AotError::RustcMissing(e) => write!(f, "rustc not available: {e}"),
            AotError::RustcFailed(msg) => write!(f, "rustc failed:\n{msg}"),
            AotError::RunFailed(msg) => write!(f, "compiled simulator failed:\n{msg}"),
            AotError::BadReport(msg) => write!(f, "unparseable simulator report: {msg}"),
        }
    }
}

impl std::error::Error for AotError {}

impl From<EmitError> for AotError {
    fn from(e: EmitError) -> Self {
        AotError::Emit(e)
    }
}

impl From<std::io::Error> for AotError {
    fn from(e: std::io::Error) -> Self {
        AotError::Io(e)
    }
}

/// The `rustc` executable the driver invokes: `$GSIM_RUSTC`, else
/// `$RUSTC` (set by cargo for build scripts), else `rustc` from PATH.
pub fn rustc_path() -> String {
    std::env::var("GSIM_RUSTC")
        .or_else(|_| std::env::var("RUSTC"))
        .unwrap_or_else(|_| "rustc".into())
}

/// `true` if the host `rustc` can be invoked (used by tests and the
/// bench harness to skip gracefully on toolchain-less hosts).
pub fn rustc_available() -> bool {
    Command::new(rustc_path())
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

/// One run's worth of stimulus for a compiled simulator.
///
/// Deprecated alias: the typed stimulus value now lives in `gsim_sim`
/// as [`Scenario`] — one representation shared by the interpreter
/// engines, the AoT driver, the wire protocol, and the bench harness.
/// The fields and the `render()` text format are identical.
#[deprecated(since = "0.9.0", note = "use `gsim_sim::Scenario`")]
pub type Stimulus = Scenario;

/// The parsed report of one compiled-simulator run.
#[derive(Debug, Clone, Default)]
pub struct AotRun {
    /// Final `(output name, value)` peeks, parsed into typed
    /// [`Value`]s at the protocol boundary (exact declared width).
    pub peeks: Vec<(String, Value)>,
    /// Semantic counters (`cycles`, `supernode_evals`, `node_evals`,
    /// `value_changes`).
    pub counters: Vec<(String, u64)>,
    /// Seconds the binary spent in its cycle loop (self-reported, so
    /// process spawn and stimulus parsing are excluded).
    pub run_seconds: f64,
    /// Per-cycle `(output name, hex)` rows when tracing was requested.
    pub trace: Vec<Vec<(String, String)>>,
    /// The one-line JSON summary the binary printed.
    pub json: String,
}

impl AotRun {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a final peek by name.
    pub fn peek(&self, name: &str) -> Option<&Value> {
        self.peeks.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Looks up a final peek as `u64` (`None` if missing or too wide).
    pub fn peek_u64(&self, name: &str) -> Option<u64> {
        self.peek(name).and_then(Value::to_u64)
    }
}

/// The directory holding one compiled artifact (emitted source +
/// native binary), shared between the [`AotSim`] handle and any
/// persistent [`crate::AotSession`]s spawned from it.
///
/// Ownership is explicit, which is what lets a *cached* artifact
/// outlive every handle that ever pointed at it:
///
/// * `owned == true` — a private scratch build: the directory is
///   deleted when the *last* holder (sim or session) drops, unless
///   `keep` was requested. This is the pre-cache behaviour.
/// * `owned == false` — the artifact lives in an
///   [`crate::ArtifactCache`]: handles never delete it; only the
///   cache's eviction policy does. (On Unix, evicting the files while
///   a session's child process still runs them is safe — the inode
///   stays alive until the process exits.)
///
/// Run-scoped scratch files (stimulus streams) are *not* written
/// here — [`AotSim::run`] uses private temp files — so cache entries
/// stay immutable after publication.
#[derive(Debug)]
pub(crate) struct ArtifactDir {
    pub(crate) path: PathBuf,
    keep: bool,
    owned: bool,
}

impl Drop for ArtifactDir {
    fn drop(&mut self) {
        if self.owned && !self.keep {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

/// A compiled ahead-of-time simulator: the emitted source plus the
/// `rustc`-built native binary, ready to run.
#[derive(Debug)]
pub struct AotSim {
    /// The emission result (code, sizes, emit time).
    pub emit: RustOutput,
    /// Wall-clock time of the `rustc -O` invocation —
    /// [`Duration::ZERO`] when the binary came out of an
    /// [`crate::ArtifactCache`] without compiling.
    pub rustc_time: Duration,
    /// Size of the produced binary in bytes.
    pub binary_bytes: u64,
    /// Path of the emitted source file.
    pub source_path: PathBuf,
    /// Path of the compiled binary.
    pub binary_path: PathBuf,
    /// `true` when the binary was served from an
    /// [`crate::ArtifactCache`] hit (no `rustc` ran for this handle).
    pub from_cache: bool,
    dir: Arc<ArtifactDir>,
    run_counter: std::cell::Cell<u32>,
}

fn scratch_dir(design: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let tag = format!(
        "gsim_aot_{}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
        design
    );
    std::env::temp_dir().join(tag)
}

/// Emits, writes, and compiles `graph` into a native simulator binary.
///
/// # Errors
///
/// Returns [`AotError`] when emission fails, `rustc` is unavailable,
/// or the emitted program does not compile.
pub fn compile(graph: &Graph, opts: &AotOptions) -> Result<AotSim, AotError> {
    let emit = emit_rust(graph, &opts.partition)?;
    let dir = scratch_dir(graph.name());
    std::fs::create_dir_all(&dir)?;
    let result = compile_in(&dir, emit, opts);
    if result.is_err() && !opts.keep_dir {
        // Until an `AotSim` exists (whose Drop owns cleanup), error
        // paths must not leak the scratch directory.
        let _ = std::fs::remove_dir_all(&dir);
    }
    result
}

fn compile_in(dir: &Path, emit: RustOutput, opts: &AotOptions) -> Result<AotSim, AotError> {
    let source_path = dir.join("sim.rs");
    let binary_path = dir.join(binary_name());
    std::fs::write(&source_path, &emit.code)?;
    let rustc_time = run_rustc(&source_path, &binary_path)?;
    let binary_bytes = std::fs::metadata(&binary_path)?.len();
    Ok(AotSim {
        emit,
        rustc_time,
        binary_bytes,
        source_path,
        binary_path,
        from_cache: false,
        dir: Arc::new(ArtifactDir {
            path: dir.to_path_buf(),
            keep: opts.keep_dir,
            owned: true,
        }),
        run_counter: std::cell::Cell::new(0),
    })
}

/// Platform name of the compiled simulator binary inside an artifact
/// directory.
pub(crate) fn binary_name() -> &'static str {
    if cfg!(windows) {
        "sim.exe"
    } else {
        "sim"
    }
}

/// Invokes `rustc --edition 2021 -O` on `source_path`, producing
/// `binary_path`. Returns the wall-clock compile time.
pub(crate) fn run_rustc(source_path: &Path, binary_path: &Path) -> Result<Duration, AotError> {
    let start = Instant::now();
    let out = Command::new(rustc_path())
        .arg("--edition")
        .arg("2021")
        .arg("-O")
        .arg("-o")
        .arg(binary_path)
        .arg(source_path)
        .output()
        .map_err(AotError::RustcMissing)?;
    if !out.status.success() {
        let msg = String::from_utf8_lossy(&out.stderr).into_owned();
        return Err(AotError::RustcFailed(msg));
    }
    Ok(start.elapsed())
}

/// Builds an [`AotSim`] handle over an already-compiled artifact that
/// the cache owns (handles never delete it; see [`ArtifactDir`]).
pub(crate) fn cache_resident_sim(
    emit: RustOutput,
    entry_dir: &Path,
    rustc_time: Duration,
    from_cache: bool,
) -> Result<AotSim, AotError> {
    let source_path = entry_dir.join("sim.rs");
    let binary_path = entry_dir.join(binary_name());
    let binary_bytes = std::fs::metadata(&binary_path)?.len();
    Ok(AotSim {
        emit,
        rustc_time,
        binary_bytes,
        source_path,
        binary_path,
        from_cache,
        dir: Arc::new(ArtifactDir {
            path: entry_dir.to_path_buf(),
            keep: true,
            owned: false,
        }),
        run_counter: std::cell::Cell::new(0),
    })
}

impl AotSim {
    /// Runs the compiled binary for `cycles` cycles over `stimulus`,
    /// optionally recording a per-cycle output trace.
    ///
    /// # Errors
    ///
    /// Returns [`AotError`] when the binary fails or its report cannot
    /// be parsed.
    pub fn run(&self, cycles: u64, stimulus: &Scenario, trace: bool) -> Result<AotRun, AotError> {
        let seq = self.run_counter.get();
        self.run_counter.set(seq + 1);
        // Run-scoped scratch lives in the system temp dir, never in
        // the artifact directory: cache-resident artifacts must stay
        // immutable (and evictable) while handles run them.
        let stim_path = std::env::temp_dir().join(format!(
            "gsim_stim_{}_{:p}_{seq}.txt",
            std::process::id(),
            self
        ));
        std::fs::write(&stim_path, stimulus.render())?;
        let mut cmd = Command::new(&self.binary_path);
        cmd.arg("--cycles")
            .arg(cycles.to_string())
            .arg("--stimulus")
            .arg(&stim_path);
        if trace {
            cmd.arg("--trace");
        }
        let out = cmd.output()?;
        let _ = std::fs::remove_file(&stim_path);
        if !out.status.success() {
            return Err(AotError::RunFailed(format!(
                "exit {:?}\nstderr:\n{}",
                out.status,
                String::from_utf8_lossy(&out.stderr)
            )));
        }
        parse_report(&String::from_utf8_lossy(&out.stdout))
    }

    /// Shared handle on the artifact directory, for persistent
    /// sessions that must keep the binary alive past this `AotSim`'s
    /// drop (no-op ownership for cache-resident artifacts).
    pub(crate) fn dir_handle(&self) -> Arc<ArtifactDir> {
        Arc::clone(&self.dir)
    }
}

/// Parses the line-oriented report the emitted simulator prints.
fn parse_report(stdout: &str) -> Result<AotRun, AotError> {
    let mut run = AotRun::default();
    for line in stdout.lines() {
        let mut it = line.split_whitespace();
        match it.next() {
            Some("trace") => {
                let _cycle = it.next();
                let row: Vec<(String, String)> = it
                    .filter_map(|tok| {
                        tok.split_once('=')
                            .map(|(n, v)| (n.to_string(), v.to_string()))
                    })
                    .collect();
                run.trace.push(row);
            }
            Some("peek") => {
                // `peek <name> <width> <hex>`: parsed into a typed
                // Value right here at the protocol boundary.
                let name = it
                    .next()
                    .ok_or_else(|| AotError::BadReport(format!("bad peek line: {line}")))?;
                let width: u32 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| AotError::BadReport(format!("bad peek line: {line}")))?;
                let hex = it
                    .next()
                    .ok_or_else(|| AotError::BadReport(format!("bad peek line: {line}")))?;
                let val = Value::from_str_radix(hex, 16, width)
                    .map_err(|e| AotError::BadReport(format!("bad peek value {hex:?}: {e}")))?;
                run.peeks.push((name.to_string(), val));
            }
            Some("counter") => {
                let name = it
                    .next()
                    .ok_or_else(|| AotError::BadReport(format!("bad counter line: {line}")))?;
                let val: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| AotError::BadReport(format!("bad counter line: {line}")))?;
                run.counters.push((name.to_string(), val));
            }
            Some("timing") => {
                let _name = it.next();
                run.run_seconds = it.next().and_then(|v| v.parse().ok()).unwrap_or(0.0);
            }
            Some("json") => {
                run.json = line
                    .strip_prefix("json")
                    .unwrap_or("")
                    .trim_start()
                    .to_string();
            }
            _ => {}
        }
    }
    if run.counters.is_empty() {
        return Err(AotError::BadReport(
            "no counter lines in simulator output".into(),
        ));
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_renders_what_the_emitted_parser_accepts() {
        let s = Scenario::new()
            .load("imem", vec![0x13, 0xff])
            .frame(&[("rst", 1)])
            .hold(1)
            .frame(&[("rst", 0)]);
        let text = s.render();
        assert_eq!(text, "!load imem 13 ff\nrst=1\n\nrst=0\n");
        let parsed = crate::rt::parse_stimulus(&text).unwrap();
        assert_eq!(parsed.loads.len(), 1);
        assert_eq!(parsed.frames.len(), 3);
        assert!(parsed.frames[1].is_empty());
    }

    #[test]
    fn report_parsing_roundtrip() {
        let out = "trace 0 out=ff halt=0\npeek out 8 ff\ncounter cycles 3\n\
                   timing run_seconds 0.000001\njson {\"cycles\":3}\n";
        let run = parse_report(out).unwrap();
        assert_eq!(run.peek("out"), Some(&Value::from_u64(0xff, 8)));
        assert_eq!(run.peek_u64("out"), Some(0xff));
        assert_eq!(run.counter("cycles"), Some(3));
        assert_eq!(run.trace.len(), 1);
        assert!(run.run_seconds > 0.0);
        assert_eq!(run.json, "{\"cycles\":3}");
    }
}
