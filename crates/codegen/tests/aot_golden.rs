//! Golden-source tests for the AoT backend: emission is deterministic
//! run to run, the emitted program type-checks under a bare
//! `rustc --edition 2021 --emit=metadata` (fast — no codegen), and a
//! small design compiles and simulates end to end.

use gsim_codegen::{compile_aot, emit_rust, AotOptions};
use gsim_partition::PartitionOptions;
use gsim_sim::Scenario;
use std::process::Command;

const COUNTER: &str = r#"
circuit Counter :
  module Counter :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output out : UInt<8>
    reg c : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    when en :
      c <= tail(add(c, UInt<8>(1)), 1)
    out <= c
"#;

/// A design exercising every storage tier (small, u128, multi-word)
/// plus a memory, so the golden type-check covers the whole emitter.
const WIDE: &str = r#"
circuit Wide :
  module Wide :
    input clock : Clock
    input a : UInt<100>
    input b : UInt<100>
    input addr : UInt<3>
    input wen : UInt<1>
    output sum : UInt<101>
    output prod : UInt<200>
    output q : UInt<16>
    output big : UInt<300>
    sum <= add(a, b)
    prod <= mul(a, b)
    big <= cat(cat(a, b), bits(a, 99, 0))
    mem ram :
      data-type => UInt<16>
      depth => 8
      read-latency => 0
      write-latency => 1
      reader => r
      writer => w
    ram.r.addr <= addr
    ram.r.en <= UInt<1>(1)
    ram.w.addr <= addr
    ram.w.data <= bits(a, 15, 0)
    ram.w.en <= wen
    q <= ram.r.data
"#;

#[test]
fn emission_is_deterministic() {
    for src in [COUNTER, WIDE] {
        let g = gsim_firrtl::compile(src).unwrap();
        let one = emit_rust(&g, &PartitionOptions::default()).unwrap();
        let two = emit_rust(&g, &PartitionOptions::default()).unwrap();
        assert_eq!(one.code, two.code, "emitted source wobbled between runs");
        assert_eq!(one.data_bytes, two.data_bytes);
        assert!(one.supernodes > 0);
    }
}

#[test]
fn data_size_is_shared_with_cpp_emitter() {
    // The bugfix contract: Table IV's data size comes from the same
    // layout computation for both emitters, so the numbers agree
    // (modulo the C++ essential style's active-bit bytes).
    let g = gsim_firrtl::compile(WIDE).unwrap();
    let popts = PartitionOptions::default();
    let rust = emit_rust(&g, &popts).unwrap();
    let cpp = gsim_codegen::emit(&g, gsim_codegen::Style::FullCycle, &popts);
    assert_eq!(rust.data_bytes, cpp.data_bytes);
}

#[test]
fn emitted_source_typechecks_with_bare_rustc() {
    if !gsim_codegen::rustc_available() {
        eprintln!("skipping: rustc not available on this host");
        return;
    }
    let g = gsim_firrtl::compile(WIDE).unwrap();
    let out = emit_rust(&g, &PartitionOptions::default()).unwrap();
    let dir = std::env::temp_dir().join(format!("gsim_aot_golden_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("golden.rs");
    std::fs::write(&src, &out.code).unwrap();
    let result = Command::new(gsim_codegen::rustc_path())
        .arg("--edition")
        .arg("2021")
        .arg("--emit=metadata")
        .arg("--out-dir")
        .arg(&dir)
        .arg(&src)
        .output()
        .expect("spawn rustc");
    let stderr = String::from_utf8_lossy(&result.stderr).into_owned();
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        result.status.success(),
        "emitted source failed to type-check:\n{stderr}"
    );
}

#[test]
fn counter_compiles_and_runs_end_to_end() {
    if !gsim_codegen::rustc_available() {
        eprintln!("skipping: rustc not available on this host");
        return;
    }
    let g = gsim_firrtl::compile(COUNTER).unwrap();
    let sim = compile_aot(&g, &AotOptions::default()).unwrap_or_else(|e| panic!("{e}"));
    assert!(sim.binary_bytes > 0);
    // en=1 for 10 cycles -> out shows the pre-edge value 9.
    let stim = Scenario::new().frame(&[("en", 1)]);
    let run = sim.run(10, &stim, true).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(run.peek("out"), Some(&gsim_value::Value::from_u64(9, 8)));
    assert_eq!(run.peek_u64("out"), Some(9));
    assert_eq!(run.counter("cycles"), Some(10));
    assert_eq!(run.trace.len(), 10);
    // Trace shows the counter advancing: cycle 5 pre-edge value is 5.
    let row5: &Vec<(String, String)> = &run.trace[5];
    assert_eq!(
        row5.iter()
            .find(|(n, _)| n == "out")
            .map(|(_, v)| v.as_str()),
        Some("5")
    );
    // Determinism across runs of the same binary.
    let run2 = sim.run(10, &stim, false).unwrap();
    assert_eq!(run.peeks, run2.peeks);
    assert_eq!(run.counters, run2.counters);
}

/// The persistent server mode end to end: one resident process serves
/// poke/step/peek/counters/snapshot/restore interactively, stays
/// bit-identical to the batch run, and survives a rollback.
#[test]
fn server_session_counter_interactive() {
    use gsim_sim::{GsimError, Session as _};
    if !gsim_codegen::rustc_available() {
        eprintln!("skipping: rustc not available on this host");
        return;
    }
    let g = gsim_firrtl::compile(COUNTER).unwrap();
    let sim = compile_aot(&g, &AotOptions::default()).unwrap_or_else(|e| panic!("{e}"));
    let mut s = sim.session().unwrap();
    assert_eq!(s.backend(), "aot");
    s.poke_u64("en", 1).unwrap();
    s.step(10).unwrap();
    assert_eq!(s.peek_u64("out").unwrap(), Some(9));
    assert_eq!(s.cycle(), 10);
    // Hold: en=0 freezes the counter.
    s.poke_u64("en", 0).unwrap();
    s.step(5).unwrap();
    assert_eq!(s.peek_u64("out").unwrap(), Some(10));
    // Snapshot, diverge, restore: replay is bit-identical.
    let snap = s.snapshot().unwrap();
    s.poke_u64("en", 1).unwrap();
    s.step(7).unwrap();
    assert_eq!(s.peek_u64("out").unwrap(), Some(16));
    let diverged = s.counters().unwrap();
    s.restore(snap).unwrap();
    assert_eq!(s.cycle(), 15);
    assert_eq!(s.peek_u64("out").unwrap(), Some(10));
    assert!(s.counters().unwrap().cycles < diverged.cycles);
    s.poke_u64("en", 1).unwrap();
    s.step(7).unwrap();
    assert_eq!(s.peek_u64("out").unwrap(), Some(16));
    // Typed errors across the wire.
    assert_eq!(
        s.peek("nonesuch").unwrap_err(),
        GsimError::UnknownSignal("nonesuch".into())
    );
    assert!(matches!(
        s.poke_u64("out", 1).unwrap_err(),
        GsimError::NotAnInput(_)
    ));
    assert!(matches!(
        s.load_mem("nope", &[1]).unwrap_err(),
        GsimError::UnknownMemory(_)
    ));
    assert!(matches!(
        s.restore(gsim_sim::SnapshotId::from_raw(999)).unwrap_err(),
        GsimError::UnknownSnapshot(999)
    ));
    // run_scenario pipelines frames through the same process.
    let sc = Scenario::new()
        .frame(&[("en", 1)])
        .frame(&[("en", 0)])
        .frame(&[("en", 1)])
        .frame(&[("en", 0)]);
    s.run_scenario(&sc).unwrap();
    assert!(s.peek_u64("out").unwrap().is_some());
}

/// Forking a live compiled session spawns a sibling process from the
/// same binary (no recompile) with bit-identical state, and the two
/// timelines diverge independently.
#[test]
fn forked_session_diverges_without_recompile() {
    use gsim_sim::Session as _;
    if !gsim_codegen::rustc_available() {
        eprintln!("skipping: rustc not available on this host");
        return;
    }
    let g = gsim_firrtl::compile(COUNTER).unwrap();
    let sim = compile_aot(&g, &AotOptions::default()).unwrap_or_else(|e| panic!("{e}"));
    let mut s = sim.session().unwrap();
    s.poke_u64("en", 1).unwrap();
    s.step(5).unwrap();
    let mut fork = s.clone_at_snapshot().unwrap();
    assert_eq!(fork.backend(), "aot");
    assert_eq!(fork.cycle(), s.cycle());
    assert_eq!(fork.peek_u64("out").unwrap(), s.peek_u64("out").unwrap());
    assert_eq!(fork.counters().unwrap(), s.counters().unwrap());
    // Diverge: the fork keeps counting, the parent freezes.
    s.poke_u64("en", 0).unwrap();
    fork.poke_u64("en", 1).unwrap();
    s.step(5).unwrap();
    fork.step(5).unwrap();
    assert_eq!(fork.peek_u64("out").unwrap(), Some(9));
    assert_eq!(s.peek_u64("out").unwrap(), Some(5));
}
