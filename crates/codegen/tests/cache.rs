//! The content-addressed artifact cache, end to end against a real
//! `rustc`: one compile per distinct design, transparent recovery from
//! corruption and eviction, and a deduplicated concurrent cold start.
//! All tests are skipped (with a note) on hosts without `rustc`.

use gsim_codegen::{rustc_available, AotError, AotOptions, ArtifactCache, ArtifactKey};
use gsim_graph::Graph;
use gsim_sim::{FaultPlan, Session};

const COUNTER: &str = r#"
circuit Counter :
  module Counter :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output out : UInt<8>
    reg c : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    when en :
      c <= tail(add(c, UInt<8>(1)), 1)
    out <= c
"#;

/// Same structure, different step constant: a distinct design that
/// must map to a distinct artifact.
const COUNTER_BY_3: &str = r#"
circuit Counter :
  module Counter :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output out : UInt<8>
    reg c : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    when en :
      c <= tail(add(c, UInt<8>(3)), 1)
    out <= c
"#;

fn graph_of(src: &str) -> Graph {
    gsim_firrtl::compile(src).expect("compiles")
}

fn fresh_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("gsim_cache_test_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// Steps a cache-resident sim's session and returns the counter value
/// after `n` enabled cycles — the functional check that a cached
/// binary actually runs. Per the engine's step convention (outputs are
/// evaluated before the register commit), `out` reads `step * (n-1)`.
fn run_counter(sim: &gsim_codegen::AotSim, n: u64) -> u64 {
    let mut s = sim.session().expect("session");
    s.poke_u64("reset", 0).unwrap();
    s.poke_u64("en", 1).unwrap();
    s.step(n).unwrap();
    s.peek("out").unwrap().to_u64().unwrap()
}

#[test]
fn same_design_compiles_once() {
    if !rustc_available() {
        eprintln!("note: rustc unavailable, skipping");
        return;
    }
    let root = fresh_root("once");
    let cache = ArtifactCache::new(&root, 4).unwrap();
    let graph = graph_of(COUNTER);

    let cold = cache.compile(&graph, &AotOptions::default()).unwrap();
    assert!(!cold.from_cache, "first compile must miss");
    assert_eq!(run_counter(&cold, 20), 19);

    let warm = cache.compile(&graph, &AotOptions::default()).unwrap();
    assert!(warm.from_cache, "second compile must hit");
    assert_eq!(run_counter(&warm, 20), 19);

    let s = cache.stats();
    assert_eq!(
        (s.compiles, s.hits, s.misses, s.evictions),
        (1, 1, 1, 0),
        "exactly one rustc for two requests of one design"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn distinct_designs_get_distinct_artifacts() {
    if !rustc_available() {
        eprintln!("note: rustc unavailable, skipping");
        return;
    }
    let root = fresh_root("distinct");
    let cache = ArtifactCache::new(&root, 4).unwrap();

    let a = cache
        .compile(&graph_of(COUNTER), &AotOptions::default())
        .unwrap();
    let b = cache
        .compile(&graph_of(COUNTER_BY_3), &AotOptions::default())
        .unwrap();
    assert_eq!(run_counter(&a, 10), 9);
    assert_eq!(run_counter(&b, 10), 27);

    let entries: Vec<String> = std::fs::read_dir(&root)
        .unwrap()
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .filter(|n| ArtifactKey::parse(n).is_some())
        .collect();
    assert_eq!(entries.len(), 2, "two designs, two published artifacts");
    assert_eq!(cache.stats().compiles, 2);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupted_entry_recompiles_transparently() {
    if !rustc_available() {
        eprintln!("note: rustc unavailable, skipping");
        return;
    }
    let root = fresh_root("corrupt");
    let cache = ArtifactCache::new(&root, 4).unwrap();
    let graph = graph_of(COUNTER);
    let _ = cache.compile(&graph, &AotOptions::default()).unwrap();

    // Truncate the published binary: the `ok` marker's recorded size
    // no longer matches, so the entry must read as absent.
    let entry = std::fs::read_dir(&root)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| ArtifactKey::parse(n).is_some())
        })
        .expect("published entry")
        .path();
    let binary = entry.join(if cfg!(windows) { "sim.exe" } else { "sim" });
    std::fs::write(&binary, b"garbage").unwrap();

    let again = cache.compile(&graph, &AotOptions::default()).unwrap();
    assert!(!again.from_cache, "corrupted entry must recompile");
    assert_eq!(run_counter(&again, 20), 19, "recompiled artifact works");
    assert_eq!(cache.stats().compiles, 2);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn eviction_is_lru_and_recompiles_on_return() {
    if !rustc_available() {
        eprintln!("note: rustc unavailable, skipping");
        return;
    }
    let root = fresh_root("evict");
    let cache = ArtifactCache::new(&root, 1).unwrap();
    let a = graph_of(COUNTER);
    let b = graph_of(COUNTER_BY_3);

    let _ = cache.compile(&a, &AotOptions::default()).unwrap();
    let _ = cache.compile(&b, &AotOptions::default()).unwrap(); // evicts a
    assert_eq!(cache.stats().evictions, 1, "capacity 1 evicts the LRU");

    let back = cache.compile(&a, &AotOptions::default()).unwrap();
    assert!(!back.from_cache, "evicted design must recompile");
    assert_eq!(run_counter(&back, 20), 19);
    assert_eq!(cache.stats().compiles, 3);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn concurrent_cold_start_dedups_to_one_rustc() {
    if !rustc_available() {
        eprintln!("note: rustc unavailable, skipping");
        return;
    }
    let root = fresh_root("concurrent");
    let cache = ArtifactCache::new(&root, 4).unwrap();
    let graph = graph_of(COUNTER);
    let clients = 8;

    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                let sim = cache.compile(&graph, &AotOptions::default()).unwrap();
                assert_eq!(run_counter(&sim, 20), 19);
            });
        }
    });

    let s = cache.stats();
    assert_eq!(s.compiles, 1, "one rustc for {clients} concurrent requests");
    assert_eq!(s.hits + s.misses, clients, "every request counted");
    let _ = std::fs::remove_dir_all(&root);
}

/// Names of everything under the cache root (entries, tmp dirs,
/// leftovers of any kind) — the no-half-entry assertions read this.
fn root_contents(root: &std::path::Path) -> Vec<String> {
    match std::fs::read_dir(root) {
        Ok(read) => read
            .filter_map(|e| e.ok()?.file_name().into_string().ok())
            .collect(),
        Err(_) => Vec::new(),
    }
}

/// A publish that dies of a full disk (injected before anything is
/// written) fails with a clean typed error and leaves *nothing*
/// behind — no half-entry, no stranded tmp dir. Clearing the fault
/// makes the same cache compile normally. The failure path needs no
/// `rustc` (the fault fires before the compiler would run).
#[test]
fn disk_full_publish_fails_cleanly_with_no_half_entry() {
    let root = fresh_root("diskfull");
    let mut cache = ArtifactCache::new(&root, 4).unwrap();
    cache.set_faults(FaultPlan {
        publish_io_error: true,
        ..FaultPlan::default()
    });
    let graph = graph_of(COUNTER);

    let err = cache
        .compile(&graph, &AotOptions::default())
        .expect_err("injected disk-full must fail the publish");
    assert!(matches!(err, AotError::Io(_)), "typed I/O error: {err}");
    assert_eq!(
        root_contents(&root),
        Vec::<String>::new(),
        "a failed publish leaves no half-entry and no tmp leftovers"
    );

    // The cache itself is not poisoned: with the fault cleared, the
    // same handle publishes normally.
    cache.set_faults(FaultPlan::default());
    if rustc_available() {
        let sim = cache.compile(&graph, &AotOptions::default()).unwrap();
        assert!(!sim.from_cache);
        assert_eq!(run_counter(&sim, 20), 19);
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// A torn publish (binary truncated *after* the `ok` marker recorded
/// the full size) must read as absent to every later open — here under
/// 8-thread concurrent load on a fresh cache, which dedups the repair
/// to exactly one recompile and serves everyone a working binary.
#[test]
fn torn_publish_is_detected_under_concurrent_load() {
    if !rustc_available() {
        eprintln!("note: rustc unavailable, skipping");
        return;
    }
    let root = fresh_root("torn");
    let graph = graph_of(COUNTER);
    {
        let mut torn = ArtifactCache::new(&root, 4).unwrap();
        torn.set_faults(FaultPlan {
            torn_publish: true,
            ..FaultPlan::default()
        });
        let _ = torn.compile(&graph, &AotOptions::default()).unwrap();
    }

    let cache = ArtifactCache::new(&root, 4).unwrap();
    let clients = 8;
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                let sim = cache.compile(&graph, &AotOptions::default()).unwrap();
                assert_eq!(run_counter(&sim, 20), 19, "repaired artifact runs");
            });
        }
    });
    let s = cache.stats();
    assert_eq!(s.compiles, 1, "one repair for {clients} concurrent opens");
    assert_eq!(s.hits + s.misses, clients, "every open counted");
    let _ = std::fs::remove_dir_all(&root);
}

/// Eviction racing an in-flight session: a capacity-1 cache evicts
/// design A's entry while a session on A is still running. The live
/// session keeps working (the child holds the binary's inode), and a
/// later open of A recompiles transparently.
#[test]
fn eviction_does_not_break_an_inflight_session() {
    if !rustc_available() {
        eprintln!("note: rustc unavailable, skipping");
        return;
    }
    let root = fresh_root("evict_race");
    let cache = ArtifactCache::new(&root, 1).unwrap();
    let a = graph_of(COUNTER);
    let b = graph_of(COUNTER_BY_3);

    let sim_a = cache.compile(&a, &AotOptions::default()).unwrap();
    let mut live = sim_a.session().expect("session on A");
    live.poke_u64("reset", 0).unwrap();
    live.poke_u64("en", 1).unwrap();
    live.step(10).unwrap();

    // Evict A's entry out from under the running session.
    let _ = cache.compile(&b, &AotOptions::default()).unwrap();
    assert_eq!(cache.stats().evictions, 1, "capacity 1 evicted A");

    // The in-flight session is unaffected by the eviction.
    live.step(10).unwrap();
    assert_eq!(live.peek("out").unwrap().to_u64().unwrap(), 19);
    drop(live);

    // A's next open sees the entry gone and recompiles.
    let back = cache.compile(&a, &AotOptions::default()).unwrap();
    assert!(!back.from_cache, "evicted design must recompile");
    assert_eq!(run_counter(&back, 20), 19);
    let _ = std::fs::remove_dir_all(&root);
}
