//! Successor (fan-out) lists in compressed sparse row form.
//!
//! Essential-signal simulation activates the *successors* of a node
//! whenever its value changes, so fan-out lists are on the hot path of
//! everything: the paper's `Asucc` term is the cost of walking exactly
//! these lists. The supernode partitioner also consumes them (its
//! pre-grouping rules are phrased in terms of in-/out-degree).

use crate::graph::Graph;
use crate::node::NodeId;

/// Deduplicated fan-out lists for every node, plus in-degrees.
#[derive(Debug, Clone)]
pub struct Uses {
    offsets: Vec<u32>,
    succ: Vec<NodeId>,
    in_degree: Vec<u32>,
}

impl Uses {
    /// Builds fan-out lists from all dependency references in the graph
    /// (expressions, memory write operands, register reset signals).
    /// Multiple references from the same user count once.
    pub fn build(g: &Graph) -> Uses {
        let n = g.num_nodes();
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        let mut in_degree = vec![0u32; n];
        let mut deps: Vec<NodeId> = Vec::new();
        for (id, node) in g.iter() {
            deps.clear();
            deps.extend(node.dep_refs());
            deps.sort_unstable();
            deps.dedup();
            in_degree[id.index()] = deps.len() as u32;
            for &d in &deps {
                pairs.push((d, id));
            }
        }
        let mut offsets = vec![0u32; n + 1];
        for &(src, _) in &pairs {
            offsets[src.index() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut succ = vec![NodeId::from_index(0); pairs.len()];
        let mut cursor = offsets.clone();
        for &(src, dst) in &pairs {
            succ[cursor[src.index()] as usize] = dst;
            cursor[src.index()] += 1;
        }
        Uses {
            offsets,
            succ,
            in_degree,
        }
    }

    /// The distinct users of node `id`.
    #[inline]
    pub fn fanout(&self, id: NodeId) -> &[NodeId] {
        let lo = self.offsets[id.index()] as usize;
        let hi = self.offsets[id.index() + 1] as usize;
        &self.succ[lo..hi]
    }

    /// Out-degree (number of distinct users).
    #[inline]
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.fanout(id).len()
    }

    /// In-degree (number of distinct nodes referenced).
    #[inline]
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.in_degree[id.index()] as usize
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.succ.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, PrimOp};
    use crate::graph::GraphBuilder;

    #[test]
    fn fanout_deduplicates() {
        let mut b = GraphBuilder::new("t");
        let a = b.input("a", 8, false);
        // c references a twice
        let c = b.comb(
            "c",
            Expr::prim(
                PrimOp::Add,
                vec![Expr::reference(a, 8, false), Expr::reference(a, 8, false)],
                vec![],
            )
            .unwrap(),
        );
        b.output("y", Expr::reference(c, 9, false));
        let g = b.finish().unwrap();
        let uses = Uses::build(&g);
        assert_eq!(uses.fanout(a), &[c]);
        assert_eq!(uses.out_degree(a), 1);
        assert_eq!(uses.in_degree(c), 1);
        assert_eq!(uses.num_edges(), 2);
    }

    #[test]
    fn fanout_multiple_users() {
        let mut b = GraphBuilder::new("t");
        let a = b.input("a", 8, false);
        let mut users = Vec::new();
        for i in 0..5 {
            users.push(
                b.comb(
                    format!("c{i}"),
                    Expr::prim(
                        PrimOp::Xor,
                        vec![Expr::reference(a, 8, false), Expr::const_u64(i, 8)],
                        vec![],
                    )
                    .unwrap(),
                ),
            );
        }
        for (i, &u) in users.iter().enumerate() {
            b.output(format!("o{i}"), Expr::reference(u, 8, false));
        }
        let g = b.finish().unwrap();
        let uses = Uses::build(&g);
        assert_eq!(uses.out_degree(a), 5);
        for &u in &users {
            assert_eq!(uses.out_degree(u), 1);
            assert_eq!(uses.in_degree(u), 1);
        }
    }
}
