//! Width-inferred expression trees over graph nodes.
//!
//! Every combinational node, register next-value, and memory-port operand
//! in the graph is an [`Expr`]: a tree of FIRRTL primitive operations
//! whose leaves are constants or references to other nodes. Each tree
//! node carries its width and signedness, computed at construction time
//! by the FIRRTL specification's width-inference rules, so passes never
//! have to re-derive types.

use crate::node::NodeId;
use gsim_value::{ops, Value, MAX_WIDTH};
use std::fmt;

/// FIRRTL primitive operations (plus `Mux`, which FIRRTL treats as an
/// expression form rather than a primop — one enum keeps passes uniform).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum PrimOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Leq,
    Gt,
    Geq,
    Eq,
    Neq,
    /// `pad(a, n)` — widen to at least `n` bits.
    Pad,
    AsUInt,
    AsSInt,
    /// `shl(a, n)` — static left shift.
    Shl,
    /// `shr(a, n)` — static right shift (arithmetic for `SInt`).
    Shr,
    Dshl,
    Dshr,
    /// `cvt(a)` — convert to signed.
    Cvt,
    Neg,
    Not,
    And,
    Or,
    Xor,
    Andr,
    Orr,
    Xorr,
    Cat,
    /// `bits(a, hi, lo)` — inclusive bit extraction.
    Bits,
    /// `head(a, n)` — `n` most-significant bits.
    Head,
    /// `tail(a, n)` — drop `n` most-significant bits.
    Tail,
    /// `mux(sel, t, f)`.
    Mux,
}

impl PrimOp {
    /// Number of expression operands the op takes.
    pub fn arity(self) -> usize {
        use PrimOp::*;
        match self {
            Add | Sub | Mul | Div | Rem | Lt | Leq | Gt | Geq | Eq | Neq | Dshl | Dshr | And
            | Or | Xor | Cat => 2,
            Pad | AsUInt | AsSInt | Shl | Shr | Cvt | Neg | Not | Andr | Orr | Xorr | Bits
            | Head | Tail => 1,
            Mux => 3,
        }
    }

    /// Number of integer parameters (e.g. shift amounts, bit indices).
    pub fn num_params(self) -> usize {
        use PrimOp::*;
        match self {
            Pad | Shl | Shr | Head | Tail => 1,
            Bits => 2,
            _ => 0,
        }
    }

    /// The FIRRTL surface syntax name of the op.
    pub fn name(self) -> &'static str {
        use PrimOp::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            Rem => "rem",
            Lt => "lt",
            Leq => "leq",
            Gt => "gt",
            Geq => "geq",
            Eq => "eq",
            Neq => "neq",
            Pad => "pad",
            AsUInt => "asUInt",
            AsSInt => "asSInt",
            Shl => "shl",
            Shr => "shr",
            Dshl => "dshl",
            Dshr => "dshr",
            Cvt => "cvt",
            Neg => "neg",
            Not => "not",
            And => "and",
            Or => "or",
            Xor => "xor",
            Andr => "andr",
            Orr => "orr",
            Xorr => "xorr",
            Cat => "cat",
            Bits => "bits",
            Head => "head",
            Tail => "tail",
            Mux => "mux",
        }
    }

    /// Looks an op up by its FIRRTL surface name.
    pub fn from_name(name: &str) -> Option<PrimOp> {
        use PrimOp::*;
        Some(match name {
            "add" => Add,
            "sub" => Sub,
            "mul" => Mul,
            "div" => Div,
            "rem" => Rem,
            "lt" => Lt,
            "leq" => Leq,
            "gt" => Gt,
            "geq" => Geq,
            "eq" => Eq,
            "neq" => Neq,
            "pad" => Pad,
            "asUInt" => AsUInt,
            "asSInt" => AsSInt,
            "shl" => Shl,
            "shr" => Shr,
            "dshl" => Dshl,
            "dshr" => Dshr,
            "cvt" => Cvt,
            "neg" => Neg,
            "not" => Not,
            "and" => And,
            "or" => Or,
            "xor" => Xor,
            "andr" => Andr,
            "orr" => Orr,
            "xorr" => Xorr,
            "cat" => Cat,
            "bits" => Bits,
            "head" => Head,
            "tail" => Tail,
            "mux" => Mux,
            _ => return None,
        })
    }

    /// An estimate of the evaluation cost of this op in abstract
    /// "operator units", used by the node-level inline/extract cost model
    /// (§III-B of the paper counts operators).
    pub fn cost(self) -> u32 {
        use PrimOp::*;
        match self {
            Mul => 3,
            Div | Rem => 8,
            Mux => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The payload of an [`Expr`] tree node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ExprKind {
    /// A literal value.
    Const(Value),
    /// A reference to another graph node's value.
    Ref(NodeId),
    /// A primitive operation over sub-expressions, with integer
    /// parameters (shift amounts / bit indices) where the op needs them.
    Prim(PrimOp, Vec<Expr>, Vec<u32>),
}

/// A width- and sign-annotated expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Expr {
    /// The expression payload.
    pub kind: ExprKind,
    /// Result width in bits, per FIRRTL inference rules.
    pub width: u32,
    /// Whether the result is an `SInt`.
    pub signed: bool,
}

/// Error from constructing an expression with inconsistent operand types
/// or out-of-range parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WidthError {
    msg: String,
}

impl WidthError {
    fn new(msg: impl Into<String>) -> Self {
        WidthError { msg: msg.into() }
    }
}

impl fmt::Display for WidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "width error: {}", self.msg)
    }
}

impl std::error::Error for WidthError {}

impl Expr {
    /// A constant expression (unsigned).
    pub fn constant(v: Value) -> Expr {
        Expr {
            width: v.width(),
            signed: false,
            kind: ExprKind::Const(v),
        }
    }

    /// A signed constant expression.
    pub fn constant_signed(v: Value) -> Expr {
        Expr {
            width: v.width(),
            signed: true,
            kind: ExprKind::Const(v),
        }
    }

    /// Shorthand for an unsigned constant from a `u64`.
    pub fn const_u64(x: u64, width: u32) -> Expr {
        Expr::constant(Value::from_u64(x, width))
    }

    /// A reference to node `id` of the given type.
    pub fn reference(id: NodeId, width: u32, signed: bool) -> Expr {
        Expr {
            kind: ExprKind::Ref(id),
            width,
            signed,
        }
    }

    /// Builds a primitive-op expression, inferring the result width and
    /// signedness from the operands per the FIRRTL specification.
    ///
    /// # Errors
    ///
    /// Returns [`WidthError`] when the arity or parameter count is wrong,
    /// operand signedness is inconsistent, parameters are out of range,
    /// or the result width would exceed [`MAX_WIDTH`].
    pub fn prim(op: PrimOp, args: Vec<Expr>, params: Vec<u32>) -> Result<Expr, WidthError> {
        if args.len() != op.arity() {
            return Err(WidthError::new(format!(
                "{op} expects {} operands, got {}",
                op.arity(),
                args.len()
            )));
        }
        if params.len() != op.num_params() {
            return Err(WidthError::new(format!(
                "{op} expects {} parameters, got {}",
                op.num_params(),
                params.len()
            )));
        }
        let (width, signed) = infer(op, &args, &params)?;
        if width > MAX_WIDTH {
            return Err(WidthError::new(format!(
                "{op} result width {width} exceeds maximum {MAX_WIDTH}"
            )));
        }
        Ok(Expr {
            kind: ExprKind::Prim(op, args, params),
            width,
            signed,
        })
    }

    /// Convenience: `add(a, b)` with both operands of signedness `signed`.
    pub fn add(a: Expr, b: Expr, signed: bool) -> Result<Expr, WidthError> {
        let _ = signed;
        Expr::prim(PrimOp::Add, vec![a, b], vec![])
    }

    /// Convenience: `mux(sel, t, f)`.
    pub fn mux(sel: Expr, t: Expr, f: Expr) -> Result<Expr, WidthError> {
        Expr::prim(PrimOp::Mux, vec![sel, t, f], vec![])
    }

    /// Convenience: `bits(e, hi, lo)`.
    pub fn bits(e: Expr, hi: u32, lo: u32) -> Result<Expr, WidthError> {
        Expr::prim(PrimOp::Bits, vec![e], vec![hi, lo])
    }

    /// Truncates or keeps `e` at exactly `width` bits (unsigned result).
    ///
    /// This is the common "fit a result back into a register" helper:
    /// `tail`-like, but tolerant of `e` already being narrow.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn truncate(e: Expr, width: u32) -> Expr {
        assert!(width > 0, "cannot truncate to zero width");
        if e.width == width && !e.signed {
            return e;
        }
        if e.width >= width {
            Expr::prim(PrimOp::Bits, vec![e], vec![width - 1, 0]).expect("bits in range")
        } else {
            Expr::prim(
                PrimOp::Pad,
                vec![Expr::prim(PrimOp::AsUInt, vec![e], vec![]).unwrap()],
                vec![width],
            )
            .expect("pad in range")
        }
    }

    /// Iterates over the node references in this expression tree.
    pub fn refs(&self) -> RefIter<'_> {
        RefIter { stack: vec![self] }
    }

    /// Calls `f` on every sub-expression (preorder, including `self`).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        if let ExprKind::Prim(_, args, _) = &self.kind {
            for a in args {
                a.visit(f);
            }
        }
    }

    /// Calls `f` on every sub-expression mutably (postorder).
    pub fn visit_mut(&mut self, f: &mut impl FnMut(&mut Expr)) {
        if let ExprKind::Prim(_, args, _) = &mut self.kind {
            for a in args {
                a.visit_mut(f);
            }
        }
        f(self);
    }

    /// Counts operators in the tree, the paper's cost metric for the
    /// inline/extract decision.
    pub fn op_cost(&self) -> u32 {
        let mut cost = 0;
        self.visit(&mut |e| {
            if let ExprKind::Prim(op, ..) = &e.kind {
                cost += op.cost();
            }
        });
        cost
    }

    /// Total number of tree nodes (size metric).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// `true` if the expression is a constant leaf.
    pub fn is_const(&self) -> bool {
        matches!(self.kind, ExprKind::Const(_))
    }

    /// The constant value if this is a constant leaf.
    pub fn as_const(&self) -> Option<&Value> {
        match &self.kind {
            ExprKind::Const(v) => Some(v),
            _ => None,
        }
    }

    /// The referenced node if this is a plain reference leaf.
    pub fn as_ref_node(&self) -> Option<NodeId> {
        match &self.kind {
            ExprKind::Ref(id) => Some(*id),
            _ => None,
        }
    }

    /// Evaluates the expression given a resolver for node values.
    ///
    /// This is the reference semantics used by the golden-model
    /// interpreter and by constant folding (where `lookup` returns
    /// `None` for non-constant nodes).
    pub fn eval(&self, lookup: &mut impl FnMut(NodeId) -> Option<Value>) -> Option<Value> {
        match &self.kind {
            ExprKind::Const(v) => Some(v.clone()),
            ExprKind::Ref(id) => lookup(*id),
            ExprKind::Prim(op, args, params) => {
                let signed = args[0].signed;
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(lookup)?);
                }
                Some(eval_prim(*op, &vals, params, signed, args))
            }
        }
    }
}

/// Applies a primitive op to already-evaluated operand values.
///
/// `signed` is the signedness of the first operand; `args` supplies
/// per-operand signedness where ops need it.
pub fn eval_prim(op: PrimOp, vals: &[Value], params: &[u32], signed: bool, args: &[Expr]) -> Value {
    use PrimOp::*;
    match op {
        Add => ops::add(&vals[0], &vals[1], signed),
        Sub => ops::sub(&vals[0], &vals[1], signed),
        Mul => ops::mul(&vals[0], &vals[1], signed),
        Div => ops::div(&vals[0], &vals[1], signed),
        Rem => ops::rem(&vals[0], &vals[1], signed),
        Lt => ops::lt(&vals[0], &vals[1], signed),
        Leq => ops::leq(&vals[0], &vals[1], signed),
        Gt => ops::gt(&vals[0], &vals[1], signed),
        Geq => ops::geq(&vals[0], &vals[1], signed),
        Eq => ops::eq(&vals[0], &vals[1], signed),
        Neq => ops::neq(&vals[0], &vals[1], signed),
        Pad => ops::pad(&vals[0], params[0], signed),
        AsUInt | AsSInt => vals[0].clone(),
        Shl => ops::shl(&vals[0], params[0]),
        Shr => ops::shr(&vals[0], params[0], signed),
        Dshl => ops::dshl(&vals[0], &vals[1]),
        Dshr => ops::dshr(&vals[0], &vals[1], signed),
        Cvt => ops::cvt(&vals[0], signed),
        Neg => ops::neg(&vals[0], signed),
        Not => ops::not(&vals[0]),
        And => ops::and(&vals[0], &vals[1], signed),
        Or => ops::or(&vals[0], &vals[1], signed),
        Xor => ops::xor(&vals[0], &vals[1], signed),
        Andr => ops::andr(&vals[0]),
        Orr => ops::orr(&vals[0]),
        Xorr => ops::xorr(&vals[0]),
        Cat => ops::cat(&vals[0], &vals[1]),
        Bits => ops::bits(&vals[0], params[0], params[1]),
        Head => ops::head(&vals[0], params[0]),
        Tail => ops::tail(&vals[0], params[0]),
        Mux => {
            // mux arms may have differing signedness only via lowering
            // bugs; trust the arm type recorded in args.
            let arm_signed = args.get(1).map(|a| a.signed).unwrap_or(signed);
            ops::mux(&vals[0], &vals[1], &vals[2], arm_signed)
        }
    }
}

/// Width/sign inference per the FIRRTL spec.
fn infer(op: PrimOp, args: &[Expr], params: &[u32]) -> Result<(u32, bool), WidthError> {
    use PrimOp::*;
    let w = |i: usize| args[i].width;
    let s = |i: usize| args[i].signed;
    let same_sign2 = || -> Result<bool, WidthError> {
        if s(0) != s(1) {
            Err(WidthError::new(format!(
                "{op} operand signedness mismatch ({} vs {})",
                if s(0) { "SInt" } else { "UInt" },
                if s(1) { "SInt" } else { "UInt" },
            )))
        } else {
            Ok(s(0))
        }
    };
    Ok(match op {
        Add | Sub => (w(0).max(w(1)) + 1, same_sign2()?),
        Mul => (w(0) + w(1), same_sign2()?),
        Div => (w(0) + s(0) as u32, same_sign2()?),
        Rem => (w(0).min(w(1)), same_sign2()?),
        Lt | Leq | Gt | Geq | Eq | Neq => {
            same_sign2()?;
            (1, false)
        }
        Pad => (w(0).max(params[0]), s(0)),
        AsUInt => (w(0), false),
        AsSInt => (w(0), true),
        Shl => (w(0) + params[0], s(0)),
        Shr => (ops::shr_width(w(0), params[0]), s(0)),
        Dshl => {
            if s(1) {
                return Err(WidthError::new("dshl shift amount must be UInt"));
            }
            if w(1) >= 32 {
                return Err(WidthError::new("dshl shift-amount width too large"));
            }
            let width = w(0) as u64 + (1u64 << w(1)) - 1;
            if width > MAX_WIDTH as u64 {
                return Err(WidthError::new(format!(
                    "dshl result width {width} exceeds maximum {MAX_WIDTH}"
                )));
            }
            (width as u32, s(0))
        }
        Dshr => {
            if s(1) {
                return Err(WidthError::new("dshr shift amount must be UInt"));
            }
            (w(0), s(0))
        }
        Cvt => (w(0) + (!s(0)) as u32, true),
        Neg => (w(0) + 1, true),
        Not => (w(0), false),
        And | Or | Xor => (w(0).max(w(1)), {
            same_sign2()?;
            false
        }),
        Andr | Orr | Xorr => (1, false),
        Cat => (w(0) + w(1), false),
        Bits => {
            let (hi, lo) = (params[0], params[1]);
            if hi < lo {
                return Err(WidthError::new(format!("bits hi {hi} < lo {lo}")));
            }
            if hi >= w(0) {
                return Err(WidthError::new(format!(
                    "bits hi {hi} out of range for width {}",
                    w(0)
                )));
            }
            (hi - lo + 1, false)
        }
        Head => {
            let n = params[0];
            if n == 0 || n > w(0) {
                return Err(WidthError::new(format!(
                    "head n {n} out of range for width {}",
                    w(0)
                )));
            }
            (n, false)
        }
        Tail => {
            let n = params[0];
            if n >= w(0) {
                return Err(WidthError::new(format!(
                    "tail n {n} out of range for width {}",
                    w(0)
                )));
            }
            (w(0) - n, false)
        }
        Mux => {
            if w(0) != 1 || s(0) {
                return Err(WidthError::new("mux selector must be UInt<1>"));
            }
            if s(1) != s(2) {
                return Err(WidthError::new("mux arm signedness mismatch"));
            }
            (w(1).max(w(2)), s(1))
        }
    })
}

/// Iterator over node references in an expression tree.
pub struct RefIter<'a> {
    stack: Vec<&'a Expr>,
}

impl Iterator for RefIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while let Some(e) = self.stack.pop() {
            match &e.kind {
                ExprKind::Ref(id) => return Some(*id),
                ExprKind::Prim(_, args, _) => self.stack.extend(args.iter()),
                ExprKind::Const(_) => {}
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i as usize)
    }

    #[test]
    fn width_inference_basics() {
        let a = Expr::reference(n(0), 8, false);
        let b = Expr::reference(n(1), 4, false);
        let e = Expr::prim(PrimOp::Add, vec![a.clone(), b.clone()], vec![]).unwrap();
        assert_eq!((e.width, e.signed), (9, false));
        let e = Expr::prim(PrimOp::Mul, vec![a.clone(), b.clone()], vec![]).unwrap();
        assert_eq!(e.width, 12);
        let e = Expr::prim(PrimOp::Cat, vec![a.clone(), b.clone()], vec![]).unwrap();
        assert_eq!(e.width, 12);
        let e = Expr::prim(PrimOp::Eq, vec![a.clone(), b.clone()], vec![]).unwrap();
        assert_eq!(e.width, 1);
        let e = Expr::prim(PrimOp::Bits, vec![a.clone()], vec![7, 4]).unwrap();
        assert_eq!(e.width, 4);
    }

    #[test]
    fn width_inference_signed() {
        let a = Expr::reference(n(0), 8, true);
        let e = Expr::prim(PrimOp::Neg, vec![a.clone()], vec![]).unwrap();
        assert_eq!((e.width, e.signed), (9, true));
        let e = Expr::prim(PrimOp::Cvt, vec![a.clone()], vec![]).unwrap();
        assert_eq!((e.width, e.signed), (8, true));
        let u = Expr::reference(n(1), 8, false);
        let e = Expr::prim(PrimOp::Cvt, vec![u.clone()], vec![]).unwrap();
        assert_eq!((e.width, e.signed), (9, true));
        let e = Expr::prim(PrimOp::AsUInt, vec![a.clone()], vec![]).unwrap();
        assert_eq!((e.width, e.signed), (8, false));
        let e = Expr::prim(PrimOp::Div, vec![a.clone(), a.clone()], vec![]).unwrap();
        assert_eq!((e.width, e.signed), (9, true));
    }

    #[test]
    fn width_inference_rejects_mixed_signs() {
        let a = Expr::reference(n(0), 8, false);
        let b = Expr::reference(n(1), 8, true);
        assert!(Expr::prim(PrimOp::Add, vec![a.clone(), b.clone()], vec![]).is_err());
        assert!(Expr::prim(PrimOp::Lt, vec![a.clone(), b.clone()], vec![]).is_err());
    }

    #[test]
    fn bad_parameters_rejected() {
        let a = Expr::reference(n(0), 8, false);
        assert!(Expr::prim(PrimOp::Bits, vec![a.clone()], vec![3, 5]).is_err());
        assert!(Expr::prim(PrimOp::Bits, vec![a.clone()], vec![8, 0]).is_err());
        assert!(Expr::prim(PrimOp::Head, vec![a.clone()], vec![9]).is_err());
        assert!(Expr::prim(PrimOp::Tail, vec![a.clone()], vec![8]).is_err());
        assert!(Expr::prim(PrimOp::Add, vec![a.clone()], vec![]).is_err());
        let sel = Expr::reference(n(2), 2, false);
        assert!(Expr::prim(PrimOp::Mux, vec![sel, a.clone(), a.clone()], vec![]).is_err());
    }

    #[test]
    fn refs_iterates_all_leaves() {
        let a = Expr::reference(n(0), 8, false);
        let b = Expr::reference(n(1), 8, false);
        let c = Expr::const_u64(3, 8);
        let e = Expr::prim(
            PrimOp::Add,
            vec![Expr::prim(PrimOp::Xor, vec![a, c], vec![]).unwrap(), b],
            vec![],
        )
        .unwrap();
        let mut ids: Vec<_> = e.refs().map(|r| r.index()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn eval_against_lookup() {
        let a = Expr::reference(n(0), 8, false);
        let b = Expr::const_u64(10, 8);
        let e = Expr::prim(PrimOp::Add, vec![a, b], vec![]).unwrap();
        let v = e
            .eval(&mut |id| (id == n(0)).then(|| Value::from_u64(5, 8)))
            .unwrap();
        assert_eq!(v.to_u64(), Some(15));
        // unknown ref -> None
        assert!(e.eval(&mut |_| None).is_none());
    }

    #[test]
    fn truncate_helper() {
        let a = Expr::reference(n(0), 12, false);
        let t = Expr::truncate(a.clone(), 8);
        assert_eq!(t.width, 8);
        let t = Expr::truncate(a.clone(), 12);
        assert_eq!(t.width, 12);
        let t = Expr::truncate(a, 16);
        assert_eq!(t.width, 16);
    }

    #[test]
    fn cost_counts_operators() {
        let a = Expr::reference(n(0), 8, false);
        let b = Expr::reference(n(1), 8, false);
        let e = Expr::prim(
            PrimOp::Mul,
            vec![
                Expr::prim(PrimOp::Add, vec![a, b.clone()], vec![]).unwrap(),
                b,
            ],
            vec![],
        )
        .unwrap();
        assert_eq!(e.op_cost(), PrimOp::Mul.cost() + PrimOp::Add.cost());
        // tree nodes: mul, add, ref a, ref b, ref b
        assert_eq!(e.size(), 5);
    }

    #[test]
    fn primop_name_roundtrip() {
        for op in [
            PrimOp::Add,
            PrimOp::Sub,
            PrimOp::Mul,
            PrimOp::Div,
            PrimOp::Rem,
            PrimOp::Lt,
            PrimOp::Leq,
            PrimOp::Gt,
            PrimOp::Geq,
            PrimOp::Eq,
            PrimOp::Neq,
            PrimOp::Pad,
            PrimOp::AsUInt,
            PrimOp::AsSInt,
            PrimOp::Shl,
            PrimOp::Shr,
            PrimOp::Dshl,
            PrimOp::Dshr,
            PrimOp::Cvt,
            PrimOp::Neg,
            PrimOp::Not,
            PrimOp::And,
            PrimOp::Or,
            PrimOp::Xor,
            PrimOp::Andr,
            PrimOp::Orr,
            PrimOp::Xorr,
            PrimOp::Cat,
            PrimOp::Bits,
            PrimOp::Head,
            PrimOp::Tail,
            PrimOp::Mux,
        ] {
            assert_eq!(PrimOp::from_name(op.name()), Some(op));
        }
        assert_eq!(PrimOp::from_name("bogus"), None);
    }
}
