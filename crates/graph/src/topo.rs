//! Topological scheduling of the circuit graph.
//!
//! Full-cycle simulation evaluates nodes in a fixed topological order
//! (§II-A of the paper). The ordering constraint is: if a *combinational*
//! node `m` (logic, memory read port, output) is referenced by node `n`,
//! then `m` must be evaluated before `n`. Registers read their previous
//! value, so a reference to a register imposes no ordering edge — this is
//! the classic "split registers into read/write" trick, expressed here
//! without physically splitting nodes.

use crate::graph::Graph;
use crate::node::NodeId;
use std::fmt;

/// Error: combinational logic forms a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombLoopError {
    /// Nodes on one detected cycle, in dependency order.
    pub cycle: Vec<NodeId>,
}

impl fmt::Display for CombLoopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "combinational loop through {} nodes:", self.cycle.len())?;
        for n in self.cycle.iter().take(8) {
            write!(f, " {n}")?;
        }
        if self.cycle.len() > 8 {
            write!(f, " ...")?;
        }
        Ok(())
    }
}

impl std::error::Error for CombLoopError {}

/// Computes a topological evaluation order over all nodes.
///
/// The returned order contains every node exactly once. Inputs come
/// wherever convenient (they have no work); register next-value
/// evaluation and memory writes are ordered after their operands like any
/// other node.
///
/// # Errors
///
/// Returns [`CombLoopError`] if combinational logic is cyclic.
pub fn toposort(g: &Graph) -> Result<Vec<NodeId>, CombLoopError> {
    let n = g.num_nodes();
    // Build successor adjacency over scheduling edges (comb-like -> user).
    let mut indegree = vec![0u32; n];
    let mut succ_offsets = vec![0u32; n + 1];
    // First pass: count scheduling edges per source.
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for (id, node) in g.iter() {
        for dep in node.dep_refs() {
            if g.node(dep).kind.is_comb_like() {
                edges.push((dep, id));
                indegree[id.index()] += 1;
            }
        }
    }
    for &(src, _) in &edges {
        succ_offsets[src.index() + 1] += 1;
    }
    for i in 0..n {
        succ_offsets[i + 1] += succ_offsets[i];
    }
    let mut succ = vec![NodeId::from_index(0); edges.len()];
    let mut cursor = succ_offsets.clone();
    for &(src, dst) in &edges {
        succ[cursor[src.index()] as usize] = dst;
        cursor[src.index()] += 1;
    }

    // Kahn's algorithm with a LIFO worklist: the resulting order is
    // DFS-like, keeping chains of logic contiguous. Interval-based
    // partitioning (Kernighan) depends on that locality — a FIFO order
    // interleaves independent cones and destroys partition quality.
    let mut order = Vec::with_capacity(n);
    let mut queue: Vec<NodeId> = (0..n)
        .rev()
        .filter(|&i| indegree[i] == 0)
        .map(NodeId::from_index)
        .collect();
    while let Some(id) = queue.pop() {
        order.push(id);
        let (lo, hi) = (
            succ_offsets[id.index()] as usize,
            succ_offsets[id.index() + 1] as usize,
        );
        for &next in &succ[lo..hi] {
            indegree[next.index()] -= 1;
            if indegree[next.index()] == 0 {
                queue.push(next);
            }
        }
    }
    if order.len() == n {
        return Ok(order);
    }

    // A cycle exists among nodes with indegree > 0; walk it for the error.
    let stuck = (0..n).find(|&i| indegree[i] > 0).expect("cycle exists");
    let mut cycle = Vec::new();
    let mut seen = vec![false; n];
    let mut cur = NodeId::from_index(stuck);
    loop {
        if seen[cur.index()] {
            // trim the tail before the repeated node
            if let Some(pos) = cycle.iter().position(|&x| x == cur) {
                cycle.drain(..pos);
            }
            break;
        }
        seen[cur.index()] = true;
        cycle.push(cur);
        // follow any comb dependency that is still stuck
        let next = g
            .node(cur)
            .dep_refs()
            .into_iter()
            .find(|d| g.node(*d).kind.is_comb_like() && indegree[d.index()] > 0);
        match next {
            Some(d) => cur = d,
            None => break,
        }
    }
    cycle.reverse();
    Err(CombLoopError { cycle })
}

/// Level assignment for the parallel full-cycle engine: nodes in the same
/// level have no scheduling dependencies among themselves, so a level can
/// be evaluated by multiple threads with a barrier between levels (this
/// is how Verilator-style multithreaded partitions are modeled).
#[derive(Debug, Clone)]
pub struct Levels {
    /// `level[i]` of node `i`.
    pub level: Vec<u32>,
    /// Nodes grouped per level, each group in index order.
    pub groups: Vec<Vec<NodeId>>,
}

impl Levels {
    /// Computes levels: `level(n) = 1 + max(level(comb deps))`, sources
    /// at level 0.
    ///
    /// # Errors
    ///
    /// Returns [`CombLoopError`] if combinational logic is cyclic.
    pub fn compute(g: &Graph) -> Result<Levels, CombLoopError> {
        let order = toposort(g)?;
        let mut level = vec![0u32; g.num_nodes()];
        for &id in &order {
            let mut lv = 0;
            for dep in g.node(id).dep_refs() {
                if g.node(dep).kind.is_comb_like() {
                    lv = lv.max(level[dep.index()] + 1);
                }
            }
            level[id.index()] = lv;
        }
        let max = level.iter().copied().max().unwrap_or(0);
        let mut groups = vec![Vec::new(); max as usize + 1];
        for &id in &order {
            groups[level[id.index()] as usize].push(id);
        }
        Ok(Levels { level, groups })
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, PrimOp};
    use crate::graph::GraphBuilder;

    fn chain(n: usize) -> Graph {
        let mut b = GraphBuilder::new("chain");
        let mut prev = b.input("in", 8, false);
        for i in 0..n {
            let e = Expr::prim(
                PrimOp::Xor,
                vec![
                    Expr::reference(prev, 8, false),
                    Expr::const_u64(i as u64, 8),
                ],
                vec![],
            )
            .unwrap();
            prev = b.comb(format!("c{i}"), e);
        }
        b.output("out", Expr::reference(prev, 8, false));
        b.finish().unwrap()
    }

    #[test]
    fn order_respects_dependencies() {
        let g = chain(10);
        let order = toposort(&g).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.num_nodes()];
            for (i, &id) in order.iter().enumerate() {
                p[id.index()] = i;
            }
            p
        };
        for (id, node) in g.iter() {
            for dep in node.dep_refs() {
                if g.node(dep).kind.is_comb_like() {
                    assert!(pos[dep.index()] < pos[id.index()]);
                }
            }
        }
    }

    #[test]
    fn levels_of_chain_are_sequential() {
        let g = chain(5);
        let lv = Levels::compute(&g).unwrap();
        // Inputs are free sources, so c0 sits at level 0 beside the
        // input; c1..c4 at 1..=4; output at 5.
        assert_eq!(lv.depth(), 6);
        assert_eq!(lv.groups[0].len(), 2);
        assert!(lv.groups[1..].iter().all(|g| g.len() == 1));
    }

    #[test]
    fn wide_fanout_is_flat() {
        let mut b = GraphBuilder::new("fan");
        let a = b.input("a", 8, false);
        for i in 0..16 {
            let e = Expr::prim(
                PrimOp::Add,
                vec![Expr::reference(a, 8, false), Expr::const_u64(i, 8)],
                vec![],
            )
            .unwrap();
            b.comb(format!("c{i}"), Expr::truncate(e, 8));
        }
        let g = b.finish().unwrap();
        let lv = Levels::compute(&g).unwrap();
        // all 16 consumers in one level (plus bits-truncation is folded
        // into the same node expression, so still one level)
        assert!(lv.depth() <= 3);
        assert!(lv.groups.iter().any(|grp| grp.len() >= 16));
    }

    #[test]
    fn register_reference_is_not_a_scheduling_edge() {
        let mut b = GraphBuilder::new("t");
        let r = b.reg("r", 8, false);
        let c = b.comb(
            "c",
            Expr::truncate(
                Expr::prim(
                    PrimOp::Add,
                    vec![Expr::reference(r, 8, false), Expr::const_u64(1, 8)],
                    vec![],
                )
                .unwrap(),
                8,
            ),
        );
        b.set_reg_next(r, Expr::reference(c, 8, false));
        b.output("o", Expr::reference(r, 8, false));
        let g = b.finish().unwrap();
        let order = toposort(&g).unwrap();
        assert_eq!(order.len(), 3);
    }
}
