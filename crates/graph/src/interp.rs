//! Tree-walking reference interpreter (the golden model).
//!
//! This interpreter trades all speed for obviousness: it re-evaluates
//! every node every cycle, directly on owned [`Value`]s, in topological
//! order. Its one job is to define the simulation semantics that the
//! optimized bytecode engines must reproduce bit-for-bit; the
//! differential tests across the workspace compare against it.
//!
//! Semantics fixed here (and documented for the whole simulator):
//!
//! * Registers commit at the end of [`RefInterp::step`]; next values are
//!   computed from pre-edge operand values.
//! * Register reset is synchronous: when the reset signal is 1 at the
//!   edge, the register loads its init value instead of its next value.
//! * Memory reads are combinational; an out-of-range address reads 0.
//! * Memory writes commit at the edge; out-of-range writes are ignored;
//!   when several write ports hit the same address, the port declared
//!   last wins.

use crate::graph::Graph;
use crate::node::{MemId, NodeId, NodeKind};
use crate::topo::{toposort, CombLoopError};
use gsim_value::Value;

/// The reference interpreter. See the module docs for semantics.
///
/// # Example
///
/// ```
/// use gsim_graph::{GraphBuilder, Expr, interp::RefInterp};
///
/// let mut b = GraphBuilder::new("inc");
/// let a = b.input("a", 8, false);
/// let sum = Expr::add(Expr::reference(a, 8, false), Expr::const_u64(1, 8), false).unwrap();
/// b.output("y", sum);
/// let g = b.finish().unwrap();
///
/// let mut sim = RefInterp::new(&g).unwrap();
/// sim.poke_u64("a", 41).unwrap();
/// sim.step();
/// assert_eq!(sim.peek_u64("y"), Some(42));
/// ```
#[derive(Debug)]
pub struct RefInterp<'g> {
    g: &'g Graph,
    order: Vec<NodeId>,
    values: Vec<Value>,
    mems: Vec<Vec<Value>>,
    cycle: u64,
}

impl<'g> RefInterp<'g> {
    /// Builds an interpreter for `g`. All state starts at zero.
    ///
    /// # Errors
    ///
    /// Returns [`CombLoopError`] if the graph has a combinational cycle.
    pub fn new(g: &'g Graph) -> Result<Self, CombLoopError> {
        let order = toposort(g)?;
        let values = g
            .node_ids()
            .map(|id| Value::zero(g.node(id).width))
            .collect();
        let mems = g
            .mems()
            .iter()
            .map(|m| vec![Value::zero(m.width); m.depth as usize])
            .collect();
        Ok(RefInterp {
            g,
            order,
            values,
            mems,
            cycle: 0,
        })
    }

    /// Sets a top-level input (by node id) for subsequent cycles.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an input node.
    pub fn set_input(&mut self, id: NodeId, v: Value) {
        assert!(
            matches!(self.g.node(id).kind, NodeKind::Input),
            "{id} is not an input"
        );
        let w = self.g.node(id).width;
        self.values[id.index()] = v.zext_or_trunc(w);
    }

    /// Sets an input by name.
    ///
    /// # Errors
    ///
    /// Returns `Err` if no input has that name.
    pub fn poke(&mut self, name: &str, v: Value) -> Result<(), String> {
        let id = self
            .g
            .node_by_name(name)
            .ok_or_else(|| format!("no node named {name:?}"))?;
        self.set_input(id, v);
        Ok(())
    }

    /// Sets an input by name from a `u64`.
    ///
    /// # Errors
    ///
    /// Returns `Err` if no input has that name.
    pub fn poke_u64(&mut self, name: &str, x: u64) -> Result<(), String> {
        let id = self
            .g
            .node_by_name(name)
            .ok_or_else(|| format!("no node named {name:?}"))?;
        let w = self.g.node(id).width;
        self.set_input(id, Value::from_u64(x, w));
        Ok(())
    }

    /// Current value of a node.
    pub fn value(&self, id: NodeId) -> &Value {
        &self.values[id.index()]
    }

    /// Current value of a named node, if it exists.
    pub fn peek(&self, name: &str) -> Option<&Value> {
        self.g.node_by_name(name).map(|id| self.value(id))
    }

    /// Current value of a named node as `u64` (None if missing or wide).
    pub fn peek_u64(&self, name: &str) -> Option<u64> {
        self.peek(name).and_then(|v| v.to_u64())
    }

    /// Number of completed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Loads a memory image (word `i` into address `i`).
    ///
    /// # Errors
    ///
    /// Returns `Err` if no memory has that name or the image exceeds
    /// the memory depth.
    pub fn load_mem(&mut self, name: &str, image: &[u64]) -> Result<(), String> {
        let id = self
            .g
            .mem_by_name(name)
            .ok_or_else(|| format!("no memory named {name:?}"))?;
        let mem = self.g.mem(id);
        if image.len() as u64 > mem.depth {
            return Err(format!(
                "image of {} words exceeds depth {} of {name:?}",
                image.len(),
                mem.depth
            ));
        }
        let width = mem.width;
        for (i, &word) in image.iter().enumerate() {
            self.mems[id.index()][i] = Value::from_u64(word, width);
        }
        Ok(())
    }

    /// Reads one memory word.
    pub fn mem_word(&self, mem: MemId, addr: u64) -> Option<&Value> {
        self.mems[mem.index()].get(addr as usize)
    }

    /// Reads one memory word by memory name.
    pub fn mem_word_by_name(&self, name: &str, addr: u64) -> Option<&Value> {
        self.g
            .mem_by_name(name)
            .and_then(|id| self.mem_word(id, addr))
    }

    fn eval_node(&self, id: NodeId) -> Value {
        let node = self.g.node(id);
        match &node.kind {
            NodeKind::MemRead { mem } => {
                let addr_expr = node.expr.as_ref().expect("read port has address");
                let addr = self.eval_expr(addr_expr);
                let a = addr.to_u64().unwrap_or(u64::MAX);
                self.mems[mem.index()]
                    .get(a as usize)
                    .cloned()
                    .unwrap_or_else(|| Value::zero(node.width))
            }
            _ => {
                let e = node.expr.as_ref().expect("node has expression");
                self.eval_expr(e)
            }
        }
    }

    fn eval_expr(&self, e: &crate::expr::Expr) -> Value {
        e.eval(&mut |id| Some(self.values[id.index()].clone()))
            .expect("all refs resolvable")
    }

    /// Advances one clock cycle.
    pub fn step(&mut self) {
        // Phase 1: combinational evaluation in topological order.
        for i in 0..self.order.len() {
            let id = self.order[i];
            if self.g.node(id).kind.is_comb_like() {
                self.values[id.index()] = self.eval_node(id);
            }
        }
        // Phase 2: compute register next values & capture memory writes.
        let mut reg_next: Vec<(NodeId, Value)> = Vec::new();
        let mut writes: Vec<(MemId, u64, Value)> = Vec::new();
        for (id, node) in self.g.iter() {
            match &node.kind {
                NodeKind::Reg { reset } => {
                    let next = self.eval_expr(node.expr.as_ref().expect("reg next"));
                    let committed = match reset {
                        Some(r) if !self.values[r.signal.index()].is_zero() => r.init.clone(),
                        _ => next,
                    };
                    reg_next.push((id, committed));
                }
                NodeKind::MemWrite { mem } => {
                    let w = node.mem_write_operands().expect("write operands");
                    if !self.eval_expr(&w.en).is_zero() {
                        let addr = self.eval_expr(&w.addr).to_u64().unwrap_or(u64::MAX);
                        let data = self.eval_expr(&w.data);
                        writes.push((*mem, addr, data));
                    }
                }
                _ => {}
            }
        }
        // Phase 3: commit.
        for (id, v) in reg_next {
            self.values[id.index()] = v;
        }
        for (mem, addr, data) in writes {
            let width = self.g.mem(mem).width;
            if let Some(slot) = self.mems[mem.index()].get_mut(addr as usize) {
                *slot = data.zext_or_trunc(width);
            }
        }
        self.cycle += 1;
    }

    /// Runs `n` cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, PrimOp};
    use crate::graph::GraphBuilder;

    fn counter_graph() -> Graph {
        let mut b = GraphBuilder::new("counter");
        let rst = b.input("rst", 1, false);
        let r = b.reg_with_reset("count", 8, false, rst, Value::zero(8));
        let next = Expr::truncate(
            Expr::prim(
                PrimOp::Add,
                vec![Expr::reference(r, 8, false), Expr::const_u64(1, 8)],
                vec![],
            )
            .unwrap(),
            8,
        );
        b.set_reg_next(r, next);
        b.output("out", Expr::reference(r, 8, false));
        b.finish().unwrap()
    }

    #[test]
    fn counter_counts_and_resets() {
        let g = counter_graph();
        let mut sim = RefInterp::new(&g).unwrap();
        // Outputs are computed before the edge, so after N steps the
        // visible count is N - 1 (the register's pre-edge value).
        sim.run(5);
        assert_eq!(sim.peek_u64("out"), Some(4));
        // wrap-around: after 257 steps the pre-edge value is 256 % 256
        sim.run(252);
        assert_eq!(sim.peek_u64("out"), Some(0));
        sim.run(3);
        assert_eq!(sim.peek_u64("out"), Some(3));
        // synchronous reset: the edge after asserting rst loads 0; the
        // output shows it on the following evaluation.
        sim.poke_u64("rst", 1).unwrap();
        sim.step();
        sim.poke_u64("rst", 0).unwrap();
        sim.step();
        assert_eq!(sim.peek_u64("out"), Some(0));
        sim.step();
        assert_eq!(sim.peek_u64("out"), Some(1));
    }

    #[test]
    fn memory_read_write() {
        let mut b = GraphBuilder::new("ram");
        let addr = b.input("addr", 4, false);
        let wdata = b.input("wdata", 8, false);
        let wen = b.input("wen", 1, false);
        let m = b.mem("ram", 16, 8);
        let rd = b.mem_read("rd", m, Expr::reference(addr, 4, false));
        b.mem_write(
            m,
            Expr::reference(addr, 4, false),
            Expr::reference(wdata, 8, false),
            Expr::reference(wen, 1, false),
        );
        b.output("q", Expr::reference(rd, 8, false));
        let g = b.finish().unwrap();
        let mut sim = RefInterp::new(&g).unwrap();

        sim.poke_u64("addr", 3).unwrap();
        sim.poke_u64("wdata", 0xab).unwrap();
        sim.poke_u64("wen", 1).unwrap();
        sim.step();
        // Write landed at the edge; combinational read sees it next cycle.
        sim.poke_u64("wen", 0).unwrap();
        sim.step();
        assert_eq!(sim.peek_u64("q"), Some(0xab));
        // Unwritten address reads zero.
        sim.poke_u64("addr", 9).unwrap();
        sim.step();
        assert_eq!(sim.peek_u64("q"), Some(0));
    }

    #[test]
    fn load_mem_and_read() {
        let mut b = GraphBuilder::new("rom");
        let addr = b.input("addr", 2, false);
        let m = b.mem("rom", 4, 16);
        let rd = b.mem_read("rd", m, Expr::reference(addr, 2, false));
        b.output("q", Expr::reference(rd, 16, false));
        let g = b.finish().unwrap();
        let mut sim = RefInterp::new(&g).unwrap();
        sim.load_mem("rom", &[10, 20, 30, 40]).unwrap();
        for (a, want) in [(0u64, 10u64), (1, 20), (2, 30), (3, 40)] {
            sim.poke_u64("addr", a).unwrap();
            sim.step();
            assert_eq!(sim.peek_u64("q"), Some(want));
        }
        assert!(sim.load_mem("rom", &[0; 5]).is_err());
        assert!(sim.load_mem("nope", &[0]).is_err());
    }

    #[test]
    fn last_write_port_wins() {
        let mut b = GraphBuilder::new("dual");
        let m = b.mem("m", 4, 8);
        let one = Expr::const_u64(1, 1);
        let addr = Expr::const_u64(2, 2);
        b.mem_write(m, addr.clone(), Expr::const_u64(11, 8), one.clone());
        b.mem_write(m, addr.clone(), Expr::const_u64(22, 8), one.clone());
        let rd = b.mem_read("rd", m, addr);
        b.output("q", Expr::reference(rd, 8, false));
        let g = b.finish().unwrap();
        let mut sim = RefInterp::new(&g).unwrap();
        sim.step();
        sim.step();
        assert_eq!(sim.peek_u64("q"), Some(22));
    }

    #[test]
    fn register_chain_delays() {
        let mut b = GraphBuilder::new("pipe");
        let a = b.input("a", 8, false);
        let r1 = b.reg("r1", 8, false);
        let r2 = b.reg("r2", 8, false);
        b.set_reg_next(r1, Expr::reference(a, 8, false));
        b.set_reg_next(r2, Expr::reference(r1, 8, false));
        b.output("y", Expr::reference(r2, 8, false));
        let g = b.finish().unwrap();
        let mut sim = RefInterp::new(&g).unwrap();
        // Two registers of delay; output is evaluated pre-edge, so the
        // value poked in cycle 1 is visible after the third step.
        sim.poke_u64("a", 7).unwrap();
        sim.step();
        assert_eq!(sim.peek_u64("y"), Some(0));
        sim.poke_u64("a", 9).unwrap();
        sim.step();
        assert_eq!(sim.peek_u64("y"), Some(0));
        sim.step();
        assert_eq!(sim.peek_u64("y"), Some(7));
        sim.step();
        assert_eq!(sim.peek_u64("y"), Some(9));
    }
}
