//! Graph nodes, node kinds, and memories.

use crate::expr::Expr;
use gsim_value::Value;
use std::fmt;

/// Identifier of a node in a [`crate::Graph`] (a dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Builds a `NodeId` from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> NodeId {
        NodeId(u32::try_from(i).expect("node index fits u32"))
    }

    /// The dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a memory in a [`crate::Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemId(u32);

impl MemId {
    /// Builds a `MemId` from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> MemId {
        MemId(u32::try_from(i).expect("mem index fits u32"))
    }

    /// The dense index of this memory.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Reset behaviour of a register.
///
/// GSIM's reset-handling optimization (§III-B, Listing 6) moves the
/// per-register reset mux out of the fast path; that transform needs the
/// reset signal and the (constant) initialization value explicitly.
#[derive(Debug, Clone, PartialEq)]
pub struct RegReset {
    /// The node carrying the 1-bit reset signal.
    pub signal: NodeId,
    /// Value loaded into the register while reset is asserted.
    pub init: Value,
}

/// What a graph node is.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// Top-level input port; has no defining expression.
    Input,
    /// Top-level output port; `expr` is its driver.
    Output,
    /// Combinational logic; `expr` defines the value.
    Comb,
    /// Register; `expr` is the next-cycle value, evaluated against the
    /// *current* values of its operands and committed at the clock edge.
    Reg {
        /// Synchronous reset, if the register has a reset port.
        reset: Option<RegReset>,
    },
    /// Combinational memory read port; `expr` is the address.
    MemRead {
        /// The memory read from.
        mem: MemId,
    },
    /// Memory write port (a sink); `exprs` via [`Node::expr`] is a
    /// 3-tuple packed as `[addr, data, en]` in a [`crate::PrimOp::Cat`]-free
    /// internal form — see [`Node::mem_write_operands`].
    MemWrite {
        /// The memory written to.
        mem: MemId,
    },
}

impl NodeKind {
    /// `true` for registers.
    pub fn is_reg(&self) -> bool {
        matches!(self, NodeKind::Reg { .. })
    }

    /// `true` for nodes whose evaluation happens combinationally within
    /// a cycle (their value must be produced before their users run).
    pub fn is_comb_like(&self) -> bool {
        matches!(
            self,
            NodeKind::Comb | NodeKind::Output | NodeKind::MemRead { .. }
        )
    }

    /// `true` for sinks that produce no value read by other nodes.
    pub fn is_sink(&self) -> bool {
        matches!(self, NodeKind::Output | NodeKind::MemWrite { .. })
    }
}

/// Operands of a memory write port.
#[derive(Debug, Clone, PartialEq)]
pub struct MemWriteOperands {
    /// Address expression.
    pub addr: Expr,
    /// Data expression.
    pub data: Expr,
    /// Write-enable expression (1 bit).
    pub en: Expr,
}

/// A node in the circuit graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Debug/codegen name; may be empty for generated nodes.
    pub name: String,
    /// The node's role.
    pub kind: NodeKind,
    /// Value width in bits (0 for pure sinks such as write ports).
    pub width: u32,
    /// Signedness of the node's value.
    pub signed: bool,
    /// Defining expression: driver for `Comb`/`Output`, next value for
    /// `Reg`, address for `MemRead`. `None` for `Input`.
    pub expr: Option<Expr>,
    /// Write-port operands; `Some` only for `MemWrite` nodes.
    pub write: Option<Box<MemWriteOperands>>,
}

impl Node {
    /// The write-port operands of a `MemWrite` node.
    pub fn mem_write_operands(&self) -> Option<&MemWriteOperands> {
        self.write.as_deref()
    }

    /// Iterates over all node references this node depends on
    /// (expression refs plus write-port operand refs plus the reset
    /// signal).
    pub fn dep_refs(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        if let Some(e) = &self.expr {
            out.extend(e.refs());
        }
        if let Some(w) = &self.write {
            out.extend(w.addr.refs());
            out.extend(w.data.refs());
            out.extend(w.en.refs());
        }
        if let NodeKind::Reg { reset: Some(r) } = &self.kind {
            out.push(r.signal);
        }
        out
    }
}

/// A memory: `depth` words of `width` bits.
///
/// Read ports are combinational (latency 0); write ports take effect at
/// the next clock edge (latency 1). Sequential-read memories are lowered
/// to a combinational read plus a pipeline register by the front end.
#[derive(Debug, Clone, PartialEq)]
pub struct Mem {
    /// Memory name (used by [`crate::Graph::mem_by_name`] and the
    /// simulator's load/peek API).
    pub name: String,
    /// Number of addressable entries.
    pub depth: u64,
    /// Width of each entry in bits.
    pub width: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
        let m = MemId::from_index(3);
        assert_eq!(format!("{m}"), "m3");
    }

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::Reg { reset: None }.is_reg());
        assert!(!NodeKind::Comb.is_reg());
        assert!(NodeKind::Comb.is_comb_like());
        assert!(NodeKind::Output.is_comb_like());
        assert!(NodeKind::Output.is_sink());
        assert!(NodeKind::MemWrite {
            mem: MemId::from_index(0)
        }
        .is_sink());
        assert!(!NodeKind::Input.is_comb_like());
    }

    #[test]
    fn dep_refs_include_reset_and_write_ports() {
        let sig = NodeId::from_index(7);
        let node = Node {
            name: "r".into(),
            kind: NodeKind::Reg {
                reset: Some(RegReset {
                    signal: sig,
                    init: Value::zero(8),
                }),
            },
            width: 8,
            signed: false,
            expr: Some(Expr::reference(NodeId::from_index(1), 8, false)),
            write: None,
        };
        let deps = node.dep_refs();
        assert!(deps.contains(&sig));
        assert!(deps.contains(&NodeId::from_index(1)));
    }
}
