//! Circuit graph IR for the GSIM RTL simulator.
//!
//! The graph is the representation every optimization pass and every
//! simulation engine operates on, mirroring the paper's "RTL graph":
//! each node is a register, logic unit, memory port, or top-level port;
//! each edge is a signal dependency.
//!
//! * [`expr`] — width-inferred expression trees (FIRRTL primitive ops).
//! * [`node`] — nodes, node kinds, registers with reset, memories.
//! * [`graph`] — the [`Graph`] container and [`GraphBuilder`].
//! * [`topo`] — topological order, combinational-loop detection, level
//!   assignment for the multithreaded engine.
//! * [`uses`] — successor (fan-out) lists in CSR form, the basis of
//!   activation in essential-signal simulation.
//! * [`interp`] — a deliberately simple tree-walking reference
//!   interpreter used as the golden model in differential tests.
//!
//! # Example
//!
//! ```
//! use gsim_graph::{GraphBuilder, Expr};
//!
//! let mut b = GraphBuilder::new("counter");
//! let reg = b.reg("count", 8, false);
//! let one = Expr::const_u64(1, 8);
//! let next = Expr::add(Expr::reference(reg, 8, false), one, false).unwrap();
//! b.set_reg_next(reg, Expr::truncate(next, 8));
//! b.output("out", Expr::reference(reg, 8, false));
//! let graph = b.finish().unwrap();
//! assert_eq!(graph.num_nodes(), 2); // register + output
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expr;
pub mod graph;
pub mod interp;
pub mod node;
pub mod topo;
pub mod uses;

pub use expr::{Expr, ExprKind, PrimOp, WidthError};
pub use graph::{Graph, GraphBuilder, GraphError};
pub use node::{Mem, MemId, Node, NodeId, NodeKind, RegReset};
pub use topo::{CombLoopError, Levels};
pub use uses::Uses;
