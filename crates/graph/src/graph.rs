//! The circuit [`Graph`] container and its builder.

use crate::expr::{Expr, ExprKind};
use crate::node::{Mem, MemId, MemWriteOperands, Node, NodeId, NodeKind, RegReset};
use crate::topo;
use gsim_value::Value;
use std::collections::HashMap;
use std::fmt;

/// A flattened circuit: nodes (registers, logic, ports, memory ports),
/// memories, and the top-level interface.
///
/// Invariants maintained by [`GraphBuilder`] and checked by
/// [`Graph::validate`]:
///
/// * every non-input node has a defining expression (or write-port
///   operands for write ports),
/// * every [`Expr`] reference matches the width and signedness of the
///   node it refers to,
/// * combinational logic is acyclic.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    name: String,
    nodes: Vec<Node>,
    mems: Vec<Mem>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
}

/// Error raised when a graph violates a structural invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A non-input node has no defining expression.
    MissingExpr(NodeId),
    /// An expression references a node id outside the graph.
    DanglingRef {
        /// Node containing the bad reference.
        node: NodeId,
        /// The out-of-range referee.
        target: NodeId,
    },
    /// An expression reference disagrees with the referee's type.
    RefTypeMismatch {
        /// Node containing the reference.
        node: NodeId,
        /// The referenced node.
        target: NodeId,
        /// Expected `(width, signed)` (the referee's declared type).
        expected: (u32, bool),
        /// Found `(width, signed)` on the reference.
        found: (u32, bool),
    },
    /// A node's declared width disagrees with its expression's width.
    NodeWidthMismatch {
        /// The inconsistent node.
        node: NodeId,
        /// The node's declared width.
        declared: u32,
        /// The expression's inferred width.
        inferred: u32,
    },
    /// A register reset init value has the wrong width.
    ResetInitWidth {
        /// The register.
        node: NodeId,
    },
    /// Combinational logic forms a cycle.
    CombLoop(topo::CombLoopError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::MissingExpr(n) => write!(f, "node {n} has no defining expression"),
            GraphError::DanglingRef { node, target } => {
                write!(f, "node {node} references nonexistent node {target}")
            }
            GraphError::RefTypeMismatch {
                node,
                target,
                expected,
                found,
            } => write!(
                f,
                "node {node} references {target} as width {}/signed {} but it is width {}/signed {}",
                found.0, found.1, expected.0, expected.1
            ),
            GraphError::NodeWidthMismatch {
                node,
                declared,
                inferred,
            } => write!(
                f,
                "node {node} declared width {declared} but its expression infers {inferred}"
            ),
            GraphError::ResetInitWidth { node } => {
                write!(f, "register {node} reset init width mismatch")
            }
            GraphError::CombLoop(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<topo::CombLoopError> for GraphError {
    fn from(e: topo::CombLoopError) -> Self {
        GraphError::CombLoop(e)
    }
}

impl Graph {
    /// The circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes ("IR node" in the paper's Table I).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct dependency edges ("IR edge" in Table I).
    pub fn num_edges(&self) -> usize {
        let mut edges = 0;
        let mut seen: Vec<NodeId> = Vec::new();
        for node in &self.nodes {
            seen.clear();
            seen.extend(node.dep_refs());
            seen.sort_unstable();
            seen.dedup();
            edges += seen.len();
        }
        edges
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Iterates over `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// All node ids, in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + use<> {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// The top-level input ports, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// The top-level output ports, in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// The memories.
    pub fn mems(&self) -> &[Mem] {
        &self.mems
    }

    /// Access to one memory.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn mem(&self, id: MemId) -> &Mem {
        &self.mems[id.index()]
    }

    /// Finds a node by name (linear scan; build a map for bulk lookups).
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.iter().find(|(_, n)| n.name == name).map(|(id, _)| id)
    }

    /// Finds a memory by name.
    pub fn mem_by_name(&self, name: &str) -> Option<MemId> {
        self.mems
            .iter()
            .position(|m| m.name == name)
            .map(MemId::from_index)
    }

    /// A printable name for a node (`n<idx>` if the node is unnamed).
    pub fn display_name(&self, id: NodeId) -> String {
        let n = self.node(id);
        if n.name.is_empty() {
            format!("{id}")
        } else {
            n.name.clone()
        }
    }

    /// Checks all structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant found.
    pub fn validate(&self) -> Result<(), GraphError> {
        let check_expr = |node_id: NodeId, e: &Expr| -> Result<(), GraphError> {
            let mut result = Ok(());
            e.visit(&mut |sub| {
                if result.is_err() {
                    return;
                }
                if let ExprKind::Ref(t) = sub.kind {
                    if t.index() >= self.nodes.len() {
                        result = Err(GraphError::DanglingRef {
                            node: node_id,
                            target: t,
                        });
                        return;
                    }
                    let target = self.node(t);
                    if target.width != sub.width || target.signed != sub.signed {
                        result = Err(GraphError::RefTypeMismatch {
                            node: node_id,
                            target: t,
                            expected: (target.width, target.signed),
                            found: (sub.width, sub.signed),
                        });
                    }
                }
            });
            result
        };
        for (id, node) in self.iter() {
            match &node.kind {
                NodeKind::Input => {}
                NodeKind::MemWrite { .. } => {
                    let w = node.write.as_ref().ok_or(GraphError::MissingExpr(id))?;
                    check_expr(id, &w.addr)?;
                    check_expr(id, &w.data)?;
                    check_expr(id, &w.en)?;
                }
                NodeKind::Reg { reset } => {
                    let e = node.expr.as_ref().ok_or(GraphError::MissingExpr(id))?;
                    check_expr(id, e)?;
                    if e.width != node.width {
                        return Err(GraphError::NodeWidthMismatch {
                            node: id,
                            declared: node.width,
                            inferred: e.width,
                        });
                    }
                    if let Some(r) = reset {
                        if r.signal.index() >= self.nodes.len() {
                            return Err(GraphError::DanglingRef {
                                node: id,
                                target: r.signal,
                            });
                        }
                        if r.init.width() != node.width {
                            return Err(GraphError::ResetInitWidth { node: id });
                        }
                    }
                }
                NodeKind::Comb | NodeKind::Output | NodeKind::MemRead { .. } => {
                    let e = node.expr.as_ref().ok_or(GraphError::MissingExpr(id))?;
                    check_expr(id, e)?;
                    if !matches!(node.kind, NodeKind::MemRead { .. }) && e.width != node.width {
                        return Err(GraphError::NodeWidthMismatch {
                            node: id,
                            declared: node.width,
                            inferred: e.width,
                        });
                    }
                }
            }
        }
        topo::toposort(self)?;
        Ok(())
    }

    /// Renames the circuit (used by generators).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Direct push of a fully-formed node; prefer [`GraphBuilder`].
    /// Used by passes that rewrite graphs wholesale.
    pub fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        if matches!(node.kind, NodeKind::Input) {
            self.inputs.push(id);
        }
        if matches!(node.kind, NodeKind::Output) {
            self.outputs.push(id);
        }
        self.nodes.push(node);
        id
    }

    /// Direct push of a memory; prefer [`GraphBuilder`].
    pub fn push_mem(&mut self, mem: Mem) -> MemId {
        let id = MemId::from_index(self.mems.len());
        self.mems.push(mem);
        id
    }
}

/// Incremental builder for [`Graph`].
///
/// Registers may be declared before their next-value expression exists
/// (registers participate in cycles), then completed with
/// [`GraphBuilder::set_reg_next`].
///
/// # Example
///
/// ```
/// use gsim_graph::{GraphBuilder, Expr};
///
/// let mut b = GraphBuilder::new("pass_through");
/// let a = b.input("a", 4, false);
/// b.output("y", Expr::reference(a, 4, false));
/// let g = b.finish().unwrap();
/// assert_eq!(g.inputs().len(), 1);
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    graph: Graph,
    names: HashMap<String, NodeId>,
}

impl GraphBuilder {
    /// Starts building a circuit called `name`.
    pub fn new(name: impl Into<String>) -> GraphBuilder {
        GraphBuilder {
            graph: Graph {
                name: name.into(),
                ..Graph::default()
            },
            names: HashMap::new(),
        }
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId::from_index(self.graph.nodes.len());
        if !node.name.is_empty() {
            self.names.insert(node.name.clone(), id);
        }
        self.graph.push_node(node)
    }

    /// Adds a top-level input port.
    pub fn input(&mut self, name: impl Into<String>, width: u32, signed: bool) -> NodeId {
        self.push(Node {
            name: name.into(),
            kind: NodeKind::Input,
            width,
            signed,
            expr: None,
            write: None,
        })
    }

    /// Adds a combinational node defined by `expr`.
    pub fn comb(&mut self, name: impl Into<String>, expr: Expr) -> NodeId {
        self.push(Node {
            name: name.into(),
            width: expr.width,
            signed: expr.signed,
            kind: NodeKind::Comb,
            expr: Some(expr),
            write: None,
        })
    }

    /// Declares a combinational node whose driver is supplied later via
    /// [`GraphBuilder::set_driver`] (used for FIRRTL wires, whose
    /// drivers are resolved by last-connect semantics after declaration).
    pub fn wire(&mut self, name: impl Into<String>, width: u32, signed: bool) -> NodeId {
        self.push(Node {
            name: name.into(),
            kind: NodeKind::Comb,
            width,
            signed,
            expr: None,
            write: None,
        })
    }

    /// Declares an output port whose driver is supplied later.
    pub fn pending_output(&mut self, name: impl Into<String>, width: u32, signed: bool) -> NodeId {
        self.push(Node {
            name: name.into(),
            kind: NodeKind::Output,
            width,
            signed,
            expr: None,
            write: None,
        })
    }

    /// Sets the driver of a wire or pending output.
    ///
    /// # Panics
    ///
    /// Panics if the node is not `Comb`/`Output` or the widths differ.
    pub fn set_driver(&mut self, id: NodeId, expr: Expr) {
        let node = self.graph.node_mut(id);
        assert!(
            matches!(node.kind, NodeKind::Comb | NodeKind::Output),
            "set_driver on {id} which is not a wire or output"
        );
        assert_eq!(
            node.width, expr.width,
            "driver width {} does not match node {id} width {}",
            expr.width, node.width
        );
        node.expr = Some(expr);
    }

    /// `true` if the node has no defining expression yet.
    pub fn is_pending(&self, id: NodeId) -> bool {
        self.graph.node(id).expr.is_none() && self.graph.node(id).write.is_none()
    }

    /// Read access to the graph under construction.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Adds a top-level output port driven by `expr`.
    pub fn output(&mut self, name: impl Into<String>, expr: Expr) -> NodeId {
        self.push(Node {
            name: name.into(),
            width: expr.width,
            signed: expr.signed,
            kind: NodeKind::Output,
            expr: Some(expr),
            write: None,
        })
    }

    /// Declares a register without reset; complete it with
    /// [`GraphBuilder::set_reg_next`].
    pub fn reg(&mut self, name: impl Into<String>, width: u32, signed: bool) -> NodeId {
        self.push(Node {
            name: name.into(),
            kind: NodeKind::Reg { reset: None },
            width,
            signed,
            expr: None,
            write: None,
        })
    }

    /// Declares a register with a synchronous reset to `init`.
    pub fn reg_with_reset(
        &mut self,
        name: impl Into<String>,
        width: u32,
        signed: bool,
        reset_signal: NodeId,
        init: Value,
    ) -> NodeId {
        self.push(Node {
            name: name.into(),
            kind: NodeKind::Reg {
                reset: Some(RegReset {
                    signal: reset_signal,
                    init,
                }),
            },
            width,
            signed,
            expr: None,
            write: None,
        })
    }

    /// Sets the next-cycle value of a previously declared register.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a register or the expression width differs
    /// from the register width.
    pub fn set_reg_next(&mut self, reg: NodeId, expr: Expr) {
        let node = self.graph.node_mut(reg);
        assert!(node.kind.is_reg(), "set_reg_next on non-register {reg}");
        assert_eq!(
            node.width, expr.width,
            "register {reg} width {} but next expression width {}",
            node.width, expr.width
        );
        node.expr = Some(expr);
    }

    /// Adds a memory.
    pub fn mem(&mut self, name: impl Into<String>, depth: u64, width: u32) -> MemId {
        self.graph.push_mem(Mem {
            name: name.into(),
            depth,
            width,
        })
    }

    /// Adds a combinational read port on `mem` at address `addr`.
    pub fn mem_read(&mut self, name: impl Into<String>, mem: MemId, addr: Expr) -> NodeId {
        let width = self.graph.mem(mem).width;
        self.push(Node {
            name: name.into(),
            kind: NodeKind::MemRead { mem },
            width,
            signed: false,
            expr: Some(addr),
            write: None,
        })
    }

    /// Adds a write port on `mem`: when `en` is 1 at a clock edge,
    /// `mem[addr] <= data`.
    pub fn mem_write(&mut self, mem: MemId, addr: Expr, data: Expr, en: Expr) -> NodeId {
        self.push(Node {
            name: String::new(),
            kind: NodeKind::MemWrite { mem },
            width: 0,
            signed: false,
            expr: None,
            write: Some(Box::new(MemWriteOperands { addr, data, en })),
        })
    }

    /// Looks up a previously added node by name.
    pub fn by_name(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// Finishes and validates the graph.
    ///
    /// # Errors
    ///
    /// Returns any structural invariant violation (see [`GraphError`]).
    pub fn finish(self) -> Result<Graph, GraphError> {
        self.graph.validate()?;
        Ok(self.graph)
    }

    /// Finishes without validation (for performance-sensitive
    /// generators whose output is validated in tests instead).
    pub fn finish_unchecked(self) -> Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::PrimOp;

    #[test]
    fn builder_roundtrip() {
        let mut b = GraphBuilder::new("t");
        let a = b.input("a", 8, false);
        let c = b.comb(
            "c",
            Expr::prim(
                PrimOp::Add,
                vec![Expr::reference(a, 8, false), Expr::const_u64(1, 8)],
                vec![],
            )
            .unwrap(),
        );
        b.output("y", Expr::reference(c, 9, false));
        let g = b.finish().unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.name(), "t");
        assert_eq!(g.node_by_name("c"), Some(c));
        assert_eq!(g.display_name(c), "c");
    }

    #[test]
    fn validate_catches_type_mismatch() {
        let mut b = GraphBuilder::new("t");
        let a = b.input("a", 8, false);
        // Lie about a's width in the reference.
        b.output("y", Expr::reference(a, 9, false));
        let err = b.finish().unwrap_err();
        assert!(matches!(err, GraphError::RefTypeMismatch { .. }));
    }

    #[test]
    fn validate_catches_missing_reg_next() {
        let mut b = GraphBuilder::new("t");
        let r = b.reg("r", 8, false);
        b.output("y", Expr::reference(r, 8, false));
        let err = b.finish().unwrap_err();
        assert_eq!(err, GraphError::MissingExpr(r));
    }

    #[test]
    fn validate_catches_comb_loop() {
        let mut b = GraphBuilder::new("t");
        // Build a cycle: c0 -> c1 -> c0 by forging refs before defs.
        let c0_ref = Expr::reference(NodeId::from_index(1), 1, false);
        let c0 = b.comb("c0", Expr::prim(PrimOp::Not, vec![c0_ref], vec![]).unwrap());
        let c1_ref = Expr::reference(c0, 1, false);
        let _c1 = b.comb("c1", Expr::prim(PrimOp::Not, vec![c1_ref], vec![]).unwrap());
        let err = b.finish().unwrap_err();
        assert!(matches!(err, GraphError::CombLoop(_)));
    }

    #[test]
    fn registers_break_cycles() {
        let mut b = GraphBuilder::new("t");
        let r = b.reg("r", 1, false);
        let inv = b.comb(
            "inv",
            Expr::prim(PrimOp::Not, vec![Expr::reference(r, 1, false)], vec![]).unwrap(),
        );
        b.set_reg_next(r, Expr::reference(inv, 1, false));
        b.output("y", Expr::reference(r, 1, false));
        assert!(b.finish().is_ok());
    }

    #[test]
    fn memories() {
        let mut b = GraphBuilder::new("t");
        let addr = b.input("addr", 4, false);
        let data = b.input("data", 8, false);
        let en = b.input("en", 1, false);
        let m = b.mem("ram", 16, 8);
        let rd = b.mem_read("rd", m, Expr::reference(addr, 4, false));
        b.mem_write(
            m,
            Expr::reference(addr, 4, false),
            Expr::reference(data, 8, false),
            Expr::reference(en, 1, false),
        );
        b.output("q", Expr::reference(rd, 8, false));
        let g = b.finish().unwrap();
        assert_eq!(g.mems().len(), 1);
        assert_eq!(g.mem_by_name("ram"), Some(m));
        assert_eq!(g.node(rd).width, 8);
    }

    #[test]
    fn reset_init_width_checked() {
        let mut b = GraphBuilder::new("t");
        let rst = b.input("rst", 1, false);
        let r = b.reg_with_reset("r", 8, false, rst, Value::zero(4));
        b.set_reg_next(r, Expr::reference(r, 8, false));
        let err = b.finish().unwrap_err();
        assert_eq!(err, GraphError::ResetInitWidth { node: r });
    }
}
