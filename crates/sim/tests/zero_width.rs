//! Zero-width operand regressions in the encoded image: a zero-width
//! signed operand must neither panic the sign-extension path
//! (`pad(SInt<0>, 8)`) nor lose its signedness in comparisons
//! (`lt(SInt<0>, -1)` is signed and false), and a zero-width `andr`
//! stays vacuously 1 — all pinned against the reference interpreter on
//! every engine.

use gsim_graph::interp::RefInterp;
use gsim_sim::{SimOptions, Simulator};

const SRC: &str = r#"
circuit Z :
  module Z :
    input z : SInt<0>
    input u : UInt<0>
    input b : UInt<8>
    output padded : SInt<8>
    output cmp : UInt<1>
    output red : UInt<1>
    output catted : UInt<8>
    padded <= pad(z, 8)
    cmp <= lt(z, asSInt(b))
    red <= andr(u)
    catted <= cat(u, b)
"#;

#[test]
fn zero_width_operands_match_reference_on_every_engine() {
    let graph = gsim_firrtl::compile(SRC).unwrap();
    let engines = [
        ("full-cycle", SimOptions::full_cycle()),
        ("gsim", SimOptions::default()),
        ("gsim-no-fuse", {
            SimOptions {
                superinstr_fusion: false,
                ..SimOptions::default()
            }
        }),
        ("gsim-mt2", SimOptions::essential_mt(2)),
    ];
    for (name, opts) in engines {
        let mut reference = RefInterp::new(&graph).unwrap();
        let mut sim = Simulator::compile(&graph, &opts).unwrap();
        // b = 0xFF is -1 as SInt<8>: signed lt(0, -1) must be false.
        for b in [0xFFu64, 0x00, 0x7F, 0x80] {
            reference.poke_u64("b", b).unwrap();
            sim.poke_u64("b", b).unwrap();
            reference.step();
            sim.step();
            for out in ["padded", "cmp", "red", "catted"] {
                assert_eq!(
                    sim.peek(out).as_ref(),
                    reference.peek(out),
                    "engine {name} diverged on {out} with b={b:#x}"
                );
            }
        }
    }
}
