//! Property test: superinstruction fusion is invisible.
//!
//! Over randomized `gsim_designs` synthetic netlists, every engine kind
//! must produce bit-identical output peeks and identical semantic work
//! counters (`activations`, `node_evals`, `value_changes`,
//! `supernode_evals`) with fusion on versus off — only the executed
//! instruction count may shrink.

use gsim_sim::{Counters, SimOptions, Simulator};
use gsim_value::Value;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Plan {
    lanes: usize,
    fu_chains: usize,
    fu_depth: usize,
    fus_per_lane: usize,
    seed: u64,
    cycles: u64,
}

fn plan_strategy() -> impl Strategy<Value = Plan> {
    (
        1usize..3,
        1usize..4,
        2usize..6,
        2usize..4,
        any::<u64>(),
        12u64..28,
    )
        .prop_map(
            |(lanes, fu_chains, fu_depth, fus_per_lane, seed, cycles)| Plan {
                lanes,
                fu_chains,
                fu_depth,
                fus_per_lane,
                seed,
                cycles,
            },
        )
}

fn engine_kinds() -> Vec<(&'static str, SimOptions)> {
    vec![
        ("full-cycle", SimOptions::full_cycle()),
        ("full-cycle-mt2", SimOptions::full_cycle_mt(2)),
        ("essential", SimOptions::default()),
        ("essential-mt2", SimOptions::essential_mt(2)),
    ]
}

fn run(
    graph: &gsim_graph::Graph,
    opts: &SimOptions,
    outputs: &[String],
    cycles: u64,
) -> (Vec<Option<Value>>, Counters) {
    let mut sim = Simulator::compile(graph, opts).unwrap();
    let handles: Vec<_> = (0..64)
        .map_while(|l| sim.input_handle(&format!("op_in_{l}")))
        .collect();
    sim.poke_u64("reset", 1).ok();
    sim.run(2);
    sim.poke_u64("reset", 0).ok();
    sim.reset_counters();
    sim.run_driven(cycles, |cycle, frame| {
        for (l, h) in handles.iter().enumerate() {
            let v = cycle
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .rotate_left(l as u32 * 11)
                ^ 0x5bd1_e995;
            frame.set(*h, v);
        }
    });
    let peeks = outputs.iter().map(|o| sim.peek(o)).collect();
    (peeks, *sim.counters())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn fusion_is_bit_invisible_on_every_engine(plan in plan_strategy()) {
        let params = gsim_designs::SynthParams {
            name: "prop".into(),
            lanes: plan.lanes,
            fu_chains: plan.fu_chains,
            fu_depth: plan.fu_depth,
            fus_per_lane: plan.fus_per_lane,
            seed: plan.seed,
        };
        let graph = gsim_designs::synth_core(&params);
        let outputs: Vec<String> = graph
            .outputs()
            .iter()
            .map(|&o| graph.display_name(o))
            .collect();
        for (name, opts) in engine_kinds() {
            let fused = run(
                &graph,
                &SimOptions { superinstr_fusion: true, ..opts },
                &outputs,
                plan.cycles,
            );
            let plain = run(
                &graph,
                &SimOptions { superinstr_fusion: false, ..opts },
                &outputs,
                plan.cycles,
            );
            prop_assert_eq!(
                &fused.0,
                &plain.0,
                "engine {} peeks diverged under fusion",
                name
            );
            prop_assert_eq!(fused.1.activations, plain.1.activations, "engine {}", name);
            prop_assert_eq!(fused.1.node_evals, plain.1.node_evals, "engine {}", name);
            prop_assert_eq!(fused.1.value_changes, plain.1.value_changes, "engine {}", name);
            prop_assert_eq!(
                fused.1.supernode_evals,
                plain.1.supernode_evals,
                "engine {}",
                name
            );
            prop_assert!(
                fused.1.instrs_executed <= plain.1.instrs_executed,
                "engine {}: fusion must never execute more instructions",
                name
            );
        }
    }
}
