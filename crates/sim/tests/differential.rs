//! Differential property tests: every engine must agree with the
//! reference interpreter, cycle for cycle, on randomly generated
//! circuits under random stimulus.
//!
//! This is the load-bearing correctness argument for the whole
//! simulator: the optimized engines (full-cycle, multithreaded,
//! essential-signal in both ESSENT and GSIM configurations) all run the
//! same randomly-built designs as `RefInterp`, whose semantics are
//! simple enough to audit by eye.

use gsim_graph::interp::RefInterp;
use gsim_graph::{Expr, Graph, GraphBuilder, NodeId, PrimOp};
use gsim_sim::{SimOptions, Simulator};
use gsim_value::Value;
use proptest::prelude::*;

/// Plan for one random node.
#[derive(Debug, Clone)]
enum NodePlan {
    Unary(u8),
    Binary(u8),
    MuxOp,
    BitsOp { hi_frac: u8, lo_frac: u8 },
    Register { with_reset: bool },
}

#[derive(Debug, Clone)]
struct CircuitPlan {
    widths: Vec<u8>,
    nodes: Vec<(NodePlan, u16, u16, u16)>, // plan + operand seeds
    n_inputs: u8,
    n_outputs: u8,
    stimulus: Vec<u64>,
}

fn plan_strategy() -> impl Strategy<Value = CircuitPlan> {
    (
        proptest::collection::vec(1u8..33, 2..6),
        proptest::collection::vec(
            (
                prop_oneof![
                    (0u8..5).prop_map(NodePlan::Unary),
                    (0u8..10).prop_map(NodePlan::Binary),
                    Just(NodePlan::MuxOp),
                    (0u8..8, 0u8..8).prop_map(|(h, l)| NodePlan::BitsOp {
                        hi_frac: h,
                        lo_frac: l
                    }),
                    any::<bool>().prop_map(|r| NodePlan::Register { with_reset: r }),
                ],
                any::<u16>(),
                any::<u16>(),
                any::<u16>(),
            ),
            3..25,
        ),
        1u8..4,
        1u8..4,
        proptest::collection::vec(any::<u64>(), 8..24),
    )
        .prop_map(
            |(widths, nodes, n_inputs, n_outputs, stimulus)| CircuitPlan {
                widths,
                nodes,
                n_inputs,
                n_outputs,
                stimulus,
            },
        )
}

/// Deterministically builds a valid circuit from a plan. All operands
/// reference earlier nodes, so the result is always a DAG.
fn build_circuit(plan: &CircuitPlan) -> Graph {
    let mut b = GraphBuilder::new("Rand");
    let rst = b.input("rst", 1, false);
    let mut pool: Vec<(NodeId, u32)> = vec![(rst, 1)];
    for i in 0..plan.n_inputs {
        let w = plan.widths[i as usize % plan.widths.len()] as u32;
        let id = b.input(format!("in{i}"), w, false);
        pool.push((id, w));
    }
    let mut pending_regs: Vec<(NodeId, u32)> = Vec::new();
    for (i, (node_plan, s1, s2, s3)) in plan.nodes.iter().enumerate() {
        let pick = |seed: u16, pool: &[(NodeId, u32)]| {
            let (id, w) = pool[seed as usize % pool.len()];
            Expr::reference(id, w, false)
        };
        let expr = match node_plan {
            NodePlan::Unary(op) => {
                let a = pick(*s1, &pool);
                let op = [
                    PrimOp::Not,
                    PrimOp::Andr,
                    PrimOp::Orr,
                    PrimOp::Xorr,
                    PrimOp::Neg,
                ][*op as usize % 5];
                let e = Expr::prim(op, vec![a], vec![]).expect("unary");
                if e.signed {
                    Expr::prim(PrimOp::AsUInt, vec![e], vec![]).expect("cast")
                } else {
                    e
                }
            }
            NodePlan::Binary(op) => {
                let a = pick(*s1, &pool);
                let c = pick(*s2, &pool);
                let op = [
                    PrimOp::Add,
                    PrimOp::Sub,
                    PrimOp::Mul,
                    PrimOp::And,
                    PrimOp::Or,
                    PrimOp::Xor,
                    PrimOp::Cat,
                    PrimOp::Eq,
                    PrimOp::Lt,
                    PrimOp::Div,
                ][*op as usize % 10];
                let e = Expr::prim(op, vec![a, c], vec![]).expect("binary");
                if e.signed {
                    Expr::prim(PrimOp::AsUInt, vec![e], vec![]).expect("cast")
                } else {
                    e
                }
            }
            NodePlan::MuxOp => {
                let sel_src = pick(*s1, &pool);
                let sel = if sel_src.width == 1 {
                    sel_src
                } else {
                    Expr::prim(PrimOp::Orr, vec![sel_src], vec![]).expect("orr")
                };
                let t = pick(*s2, &pool);
                let f = pick(*s3, &pool);
                // arm widths may differ; graph mux takes the max
                Expr::prim(PrimOp::Mux, vec![sel, t, f], vec![]).expect("mux")
            }
            NodePlan::BitsOp { hi_frac, lo_frac } => {
                let a = pick(*s1, &pool);
                let w = a.width;
                let lo = (*lo_frac as u32) % w;
                let hi = lo + ((*hi_frac as u32) % (w - lo));
                Expr::prim(PrimOp::Bits, vec![a], vec![hi, lo]).expect("bits")
            }
            NodePlan::Register { with_reset } => {
                let next_src = pick(*s1, &pool);
                let w = next_src.width;
                let reg = if *with_reset {
                    b.reg_with_reset(
                        format!("r{i}"),
                        w,
                        false,
                        rst,
                        Value::from_u64(*s2 as u64, w),
                    )
                } else {
                    b.reg(format!("r{i}"), w, false)
                };
                b.set_reg_next(reg, next_src);
                pool.push((reg, w));
                pending_regs.push((reg, w));
                continue;
            }
        };
        let w = expr.width;
        let id = b.comb(format!("n{i}"), expr);
        pool.push((id, w));
    }
    // Outputs read the most recently defined signals.
    for o in 0..plan.n_outputs {
        let (id, w) = pool[pool.len() - 1 - (o as usize % pool.len().min(4))];
        b.output(format!("out{o}"), Expr::reference(id, w, false));
    }
    b.finish().expect("plan builds a valid graph")
}

fn engine_matrix() -> Vec<(&'static str, SimOptions)> {
    vec![
        ("full-cycle", SimOptions::full_cycle()),
        ("mt-2", SimOptions::full_cycle_mt(2)),
        ("essent-like", SimOptions::essent_like()),
        ("gsim-default", SimOptions::default()),
        (
            "gsim-small-supernodes",
            SimOptions {
                partition: gsim_partition::PartitionOptions {
                    algorithm: gsim_partition::Algorithm::Gsim,
                    max_size: 3,
                },
                ..SimOptions::default()
            },
        ),
        (
            "kernighan-partition",
            SimOptions {
                partition: gsim_partition::PartitionOptions {
                    algorithm: gsim_partition::Algorithm::Kernighan,
                    max_size: 8,
                },
                ..SimOptions::default()
            },
        ),
        // Odd thread count: exercises uneven level slices (the last
        // thread's slice is shorter or empty on small levels).
        ("gsim-mt3", SimOptions::essential_mt(3)),
        (
            "gsim-mt2-per-flag",
            SimOptions {
                check_multiple_bits: false,
                ..SimOptions::essential_mt(2)
            },
        ),
        // Flat-image ablations: fusion and the locality layout must be
        // bit-invisible on every engine family.
        (
            "gsim-no-fuse",
            SimOptions {
                superinstr_fusion: false,
                ..SimOptions::default()
            },
        ),
        (
            "gsim-legacy-layout",
            SimOptions {
                locality_layout: false,
                ..SimOptions::default()
            },
        ),
        (
            "full-cycle-no-fuse",
            SimOptions {
                superinstr_fusion: false,
                locality_layout: false,
                ..SimOptions::full_cycle()
            },
        ),
        (
            "gsim-mt2-no-fuse",
            SimOptions {
                superinstr_fusion: false,
                ..SimOptions::essential_mt(2)
            },
        ),
        // Threaded-code backend: the lowered handler records must be
        // bit-identical to the reference, with and without the
        // `--no-threaded` ablation (which falls back to the plain
        // essential interpreter under the same engine kind).
        ("gsim-threaded", SimOptions::threaded()),
        (
            "gsim-threaded-ablated",
            SimOptions {
                threaded_dispatch: false,
                ..SimOptions::threaded()
            },
        ),
        (
            "gsim-threaded-no-fuse",
            SimOptions {
                superinstr_fusion: false,
                ..SimOptions::threaded()
            },
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn engines_match_reference(plan in plan_strategy()) {
        let graph = build_circuit(&plan);
        let outputs: Vec<String> = graph
            .outputs()
            .iter()
            .map(|&o| graph.node(o).name.clone())
            .collect();
        let input_names: Vec<String> = graph
            .inputs()
            .iter()
            .map(|&i| graph.node(i).name.clone())
            .collect();

        let mut reference = RefInterp::new(&graph).unwrap();
        let mut sims: Vec<(&str, Simulator)> = engine_matrix()
            .into_iter()
            .map(|(name, opts)| (name, Simulator::compile(&graph, &opts).unwrap()))
            .collect();

        for (cycle, &stim) in plan.stimulus.iter().enumerate() {
            for (k, name) in input_names.iter().enumerate() {
                // Occasionally pulse reset; vary inputs per cycle.
                let v = if name == "rst" {
                    u64::from(stim % 7 == 3)
                } else {
                    stim.rotate_left(k as u32 * 13) ^ cycle as u64
                };
                reference.poke_u64(name, v).unwrap();
                for (_, sim) in &mut sims {
                    sim.poke_u64(name, v).unwrap();
                }
            }
            reference.step();
            for (engine, sim) in &mut sims {
                sim.step();
                for out in &outputs {
                    let want = reference.peek(out).cloned();
                    let got = sim.peek(out);
                    prop_assert_eq!(
                        got.clone(),
                        want.clone(),
                        "engine {} output {} diverged at cycle {}",
                        engine,
                        out,
                        cycle
                    );
                }
            }
        }
    }
}
