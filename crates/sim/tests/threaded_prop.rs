//! Property test: threaded-code dispatch is invisible.
//!
//! Over randomized `gsim_designs` synthetic netlists, the threaded
//! backend must produce bit-identical output peeks and *fully*
//! identical cost counters — every field, examination counts included —
//! against both the plain essential engine and its own `--no-threaded`
//! ablation. The lowered handler records replicate the essential
//! sweep's semantics and accounting exactly; any divergence is a
//! lowering bug, not noise.

use gsim_sim::{Counters, SimOptions, Simulator};
use gsim_value::Value;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Plan {
    lanes: usize,
    fu_chains: usize,
    fu_depth: usize,
    fus_per_lane: usize,
    seed: u64,
    cycles: u64,
}

fn plan_strategy() -> impl Strategy<Value = Plan> {
    (
        1usize..3,
        1usize..4,
        2usize..6,
        2usize..4,
        any::<u64>(),
        12u64..28,
    )
        .prop_map(
            |(lanes, fu_chains, fu_depth, fus_per_lane, seed, cycles)| Plan {
                lanes,
                fu_chains,
                fu_depth,
                fus_per_lane,
                seed,
                cycles,
            },
        )
}

fn run(
    graph: &gsim_graph::Graph,
    opts: &SimOptions,
    outputs: &[String],
    cycles: u64,
) -> (Vec<Option<Value>>, Counters) {
    let mut sim = Simulator::compile(graph, opts).unwrap();
    let handles: Vec<_> = (0..64)
        .map_while(|l| sim.input_handle(&format!("op_in_{l}")))
        .collect();
    sim.poke_u64("reset", 1).ok();
    sim.run(2);
    sim.poke_u64("reset", 0).ok();
    sim.reset_counters();
    sim.run_driven(cycles, |cycle, frame| {
        for (l, h) in handles.iter().enumerate() {
            let v = cycle
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .rotate_left(l as u32 * 11)
                ^ 0x5bd1_e995;
            frame.set(*h, v);
        }
    });
    let peeks = outputs.iter().map(|o| sim.peek(o)).collect();
    (peeks, *sim.counters())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn threaded_dispatch_is_bit_invisible(plan in plan_strategy()) {
        let params = gsim_designs::SynthParams {
            name: "prop".into(),
            lanes: plan.lanes,
            fu_chains: plan.fu_chains,
            fu_depth: plan.fu_depth,
            fus_per_lane: plan.fus_per_lane,
            seed: plan.seed,
        };
        let graph = gsim_designs::synth_core(&params);
        let outputs: Vec<String> = graph
            .outputs()
            .iter()
            .map(|&o| graph.display_name(o))
            .collect();
        let threaded = run(&graph, &SimOptions::threaded(), &outputs, plan.cycles);
        let essential = run(&graph, &SimOptions::default(), &outputs, plan.cycles);
        let ablated = run(
            &graph,
            &SimOptions {
                threaded_dispatch: false,
                ..SimOptions::threaded()
            },
            &outputs,
            plan.cycles,
        );
        prop_assert_eq!(
            &threaded.0,
            &essential.0,
            "threaded peeks diverged from the essential engine"
        );
        prop_assert_eq!(
            &threaded.0,
            &ablated.0,
            "threaded peeks diverged from the --no-threaded ablation"
        );
        // Full counter identity — not just the semantic subset: the
        // record stream mirrors the essential sweep's examination and
        // activation accounting one for one.
        prop_assert_eq!(threaded.1, essential.1, "counters diverged vs essential");
        prop_assert_eq!(threaded.1, ablated.1, "counters diverged vs ablation");
    }
}
