//! Regression test for the allocation-free wide-division path: a
//! cycled (registered) design with >64-bit divides, checked against the
//! reference interpreter on every engine, including zero divisors and
//! signed operands.

use gsim_graph::interp::RefInterp;
use gsim_graph::{Expr, GraphBuilder, PrimOp};
use gsim_sim::{SimOptions, Simulator};
use gsim_value::Value;

fn build() -> gsim_graph::Graph {
    let mut b = GraphBuilder::new("WideDiv");
    let d = b.input("d", 70, false);
    let acc = b.reg("acc", 100, false);
    // acc <= truncate(acc * 3 + d + 1, 100): a feedback that quickly
    // fills all 100 bits.
    let three = Expr::constant(Value::from_u64(3, 2));
    let one = Expr::constant(Value::from_u64(1, 1));
    let mul = Expr::prim(
        PrimOp::Mul,
        vec![Expr::reference(acc, 100, false), three],
        vec![],
    )
    .unwrap();
    let add = Expr::prim(
        PrimOp::Add,
        vec![mul, Expr::reference(d, 70, false)],
        vec![],
    )
    .unwrap();
    let next = Expr::truncate(
        Expr::prim(PrimOp::Add, vec![add, one], vec![]).unwrap(),
        100,
    );
    b.set_reg_next(acc, next);
    // Unsigned quotient and remainder of the wide register.
    let q = Expr::prim(
        PrimOp::Div,
        vec![
            Expr::reference(acc, 100, false),
            Expr::reference(d, 70, false),
        ],
        vec![],
    )
    .unwrap();
    b.output("q", q);
    let r = Expr::prim(
        PrimOp::Rem,
        vec![
            Expr::reference(acc, 100, false),
            Expr::reference(d, 70, false),
        ],
        vec![],
    )
    .unwrap();
    b.output("r", r);
    // Signed variants through asSInt (the remainder keeps the
    // dividend's sign; the quotient the XOR of the signs).
    let sacc = Expr::prim(
        PrimOp::AsSInt,
        vec![Expr::reference(acc, 100, false)],
        vec![],
    )
    .unwrap();
    let sd = Expr::prim(PrimOp::AsSInt, vec![Expr::reference(d, 70, false)], vec![]).unwrap();
    let sq = Expr::prim(PrimOp::Div, vec![sacc.clone(), sd.clone()], vec![]).unwrap();
    b.output("sq", Expr::prim(PrimOp::AsUInt, vec![sq], vec![]).unwrap());
    let sr = Expr::prim(PrimOp::Rem, vec![sacc, sd], vec![]).unwrap();
    b.output("sr", Expr::prim(PrimOp::AsUInt, vec![sr], vec![]).unwrap());
    b.finish().expect("valid graph")
}

#[test]
fn wide_divide_in_cycled_design_matches_reference() {
    let graph = build();
    let engines = [
        ("full-cycle", SimOptions::full_cycle()),
        ("full-cycle-mt2", SimOptions::full_cycle_mt(2)),
        ("essent-like", SimOptions::essent_like()),
        ("gsim", SimOptions::default()),
        ("gsim-mt2", SimOptions::essential_mt(2)),
    ];
    // Divisor stimulus: wide values, small values, all-ones, and zero
    // (division by zero must follow the reference semantics).
    let stimuli: Vec<Value> = vec![
        Value::from_words(vec![0xdead_beef_1234_5678, 0x3f], 70),
        Value::from_u64(7, 70),
        Value::from_words(vec![u64::MAX, 0x3f], 70),
        Value::from_u64(0, 70),
        Value::from_u64(1, 70),
        Value::from_words(vec![0x8000_0000_0000_0001, 0x20], 70),
        Value::from_u64(0, 70),
        Value::from_u64(0xffff_ffff, 70),
    ];
    for (name, opts) in engines {
        let mut reference = RefInterp::new(&graph).unwrap();
        let mut sim = Simulator::compile(&graph, &opts).unwrap();
        for (cycle, d) in stimuli.iter().cycle().take(24).enumerate() {
            reference.poke("d", d.clone()).unwrap();
            sim.poke("d", d.clone()).unwrap();
            reference.step();
            sim.step();
            for out in ["q", "r", "sq", "sr"] {
                assert_eq!(
                    sim.peek(out).as_ref(),
                    reference.peek(out),
                    "engine {name} diverged on {out} at cycle {cycle}"
                );
            }
        }
    }
}
