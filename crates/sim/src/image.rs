//! The flat execution image: one contiguous arena of fixed-size encoded
//! instructions shared by every engine.
//!
//! The compiler lowers each task's mid-level [`Instr`] stream into
//! 16-byte [`EInstr`] units appended to a single `Vec` in schedule
//! order, so the per-cycle sweep streams through one allocation instead
//! of chasing a `Box<[Instr]>` per task. Instructions whose operands all
//! fit one word — the overwhelming majority of RTL signals — are
//! encoded *narrow*: the unit carries packed slot references plus the
//! widths and sign bits the interpreter needs, and the narrow dispatch
//! loop never re-checks operand word counts. Anything multi-word
//! becomes an [`Op::Wide`] unit pointing into a side table of the
//! original [`Instr`]s, executed by the general interpreter.
//!
//! Operand references are packed as `space << 30 | word offset`
//! (state / scratch / const), and zero-width slots are remapped at
//! encode time: reads hit the reserved all-zero word at const-pool
//! offset [`CONST_ZERO_OFF`], and instructions with a zero-width
//! destination are dropped outright (they have no observable effect),
//! so the hot loop carries no zero-width guards at all.
//!
//! Multi-operand instructions (`mux`, the fused compare→mux) occupy two
//! consecutive units; the second is an [`Op::Ext`] carrying the extra
//! operands and is consumed by the first unit's dispatch arm, never
//! dispatched itself.

use crate::compile::{BinOp, Instr, UnOp};
use crate::storage::{Slot, Space};

/// Bit position of the space tag inside a packed operand reference.
pub(crate) const SPACE_SHIFT: u32 = 30;
/// Mask extracting the word offset from a packed operand reference.
pub(crate) const OFF_MASK: u32 = (1 << SPACE_SHIFT) - 1;
/// Space tag of the state arena.
pub(crate) const SPACE_STATE: u32 = 0;
/// Space tag of the scratch arena.
pub(crate) const SPACE_SCRATCH: u32 = 1;
/// Space tag of the const pool.
pub(crate) const SPACE_CONST: u32 = 2;
/// Const-pool offset of the reserved all-zero word that zero-width
/// operand reads are remapped to (the compiler seeds the pool with it).
pub(crate) const CONST_ZERO_OFF: u32 = 0;

/// Sign bit of an operand meta byte (low 7 bits hold the width, 0–64).
pub(crate) const META_SIGNED: u8 = 0x80;

/// Encoded opcode. Everything except [`Op::Wide`] operates on
/// single-word operands; signedness comes from the operand meta bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum Op {
    // Binary `a ⊕ b → dst`, masked to the destination width.
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Leq,
    Gt,
    Geq,
    Eq,
    Neq,
    And,
    Or,
    Xor,
    Dshl,
    Dshr,
    // Unary with the immediate in the `b` field.
    Not,
    Andr,
    Orr,
    Xorr,
    Neg,
    Shl,
    Shr,
    Bits,
    Copy,
    Sext,
    /// `a` = selector, `b` = true arm; false arm in the [`Op::Ext`]
    /// unit's `a` field.
    Mux,
    /// `xb` holds the low operand's width (the shift amount).
    Cat,
    /// Fused cat-of-const: `b` is the low operand's value as an
    /// immediate, `xb` the shift amount.
    CatImm,
    /// `a` = address, `b` = memory index.
    ReadMem,
    // Fused compare→mux: `a ⊗ b` selects between the [`Op::Ext`]
    // unit's `a` (true) and `b` (false) operands.
    CmpMuxLt,
    CmpMuxLeq,
    CmpMuxGt,
    CmpMuxGeq,
    CmpMuxEq,
    CmpMuxNeq,
    /// Extension unit carrying extra operands for the preceding unit;
    /// never dispatched directly.
    Ext,
    /// Multi-word instruction: `a` indexes the wide side table.
    Wide,
}

/// One encoded instruction unit (16 bytes).
///
/// Field use varies by opcode; see [`Op`]. `xa`/`xb` are operand meta
/// bytes (width | sign), `xd` the destination width, `dst`/`a`/`b`
/// packed operand references or immediates.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
pub(crate) struct EInstr {
    pub op: Op,
    pub xa: u8,
    pub xb: u8,
    pub xd: u8,
    pub dst: u32,
    pub a: u32,
    pub b: u32,
}

// The whole point of the encoding: every unit stays within 16 bytes so
// the interpreter streams four instructions per cache line.
const _: () = assert!(std::mem::size_of::<EInstr>() <= 16);

/// The compiled program's code arenas.
#[derive(Debug, Default)]
pub(crate) struct ExecImage {
    /// Contiguous encoded instruction arena, tasks in schedule order.
    pub code: Vec<EInstr>,
    /// Side table of multi-word instructions ([`Op::Wide`] targets).
    pub wide: Vec<Instr>,
}

/// Result of encoding one task's instruction stream.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TaskCode {
    /// Unit range into [`ExecImage::code`].
    pub range: (u32, u32),
    /// Every unit is narrow: the task runs on the fast dispatch loop.
    pub narrow_only: bool,
}

/// Packs a slot reference; zero-width slots read the reserved const
/// zero word.
fn pack(s: Slot) -> u32 {
    if s.words == 0 {
        return (SPACE_CONST << SPACE_SHIFT) | CONST_ZERO_OFF;
    }
    assert!(
        s.off <= OFF_MASK,
        "slot offset {} exceeds the packed 30-bit range",
        s.off
    );
    let tag = match s.space {
        Space::State => SPACE_STATE,
        Space::Scratch => SPACE_SCRATCH,
        Space::Const => SPACE_CONST,
    };
    (tag << SPACE_SHIFT) | s.off
}

/// Operand meta byte: width (≤ 64) plus the sign bit. Zero-width slots
/// (whose packed reference already reads constant zero) claim width 64
/// so the interpreter's sign-extension path never shifts by 64 — the
/// raw zero IS the correct signed value — while the sign bit survives
/// for the comparisons that key signedness on operand `a`'s meta.
fn meta(s: Slot) -> u8 {
    if s.words == 0 {
        return 64 | if s.signed { META_SIGNED } else { 0 };
    }
    debug_assert!(s.width <= 64, "narrow operand wider than a word");
    (s.width as u8) | if s.signed { META_SIGNED } else { 0 }
}

fn narrow(s: Slot) -> bool {
    s.words <= 1
}

/// Destination slot of an instruction (`None` for kinds without one).
fn dst_of(ins: &Instr) -> Slot {
    match *ins {
        Instr::Copy { dst, .. }
        | Instr::Sext { dst, .. }
        | Instr::Bin { dst, .. }
        | Instr::Un { dst, .. }
        | Instr::Mux { dst, .. }
        | Instr::Cat { dst, .. }
        | Instr::CatImm { dst, .. }
        | Instr::ReadMem { dst, .. }
        | Instr::CmpMux { dst, .. } => dst,
    }
}

fn bin_op(op: BinOp) -> Op {
    match op {
        BinOp::Add => Op::Add,
        BinOp::Sub => Op::Sub,
        BinOp::Mul => Op::Mul,
        BinOp::Div => Op::Div,
        BinOp::Rem => Op::Rem,
        BinOp::Lt => Op::Lt,
        BinOp::Leq => Op::Leq,
        BinOp::Gt => Op::Gt,
        BinOp::Geq => Op::Geq,
        BinOp::Eq => Op::Eq,
        BinOp::Neq => Op::Neq,
        BinOp::And => Op::And,
        BinOp::Or => Op::Or,
        BinOp::Xor => Op::Xor,
        BinOp::Dshl => Op::Dshl,
        BinOp::Dshr => Op::Dshr,
    }
}

fn un_op(op: UnOp) -> Op {
    match op {
        UnOp::Not => Op::Not,
        UnOp::Andr => Op::Andr,
        UnOp::Orr => Op::Orr,
        UnOp::Xorr => Op::Xorr,
        UnOp::Neg => Op::Neg,
        UnOp::Shl => Op::Shl,
        UnOp::Shr => Op::Shr,
        UnOp::Bits => Op::Bits,
    }
}

fn cmp_mux_op(op: BinOp) -> Op {
    match op {
        BinOp::Lt => Op::CmpMuxLt,
        BinOp::Leq => Op::CmpMuxLeq,
        BinOp::Gt => Op::CmpMuxGt,
        BinOp::Geq => Op::CmpMuxGeq,
        BinOp::Eq => Op::CmpMuxEq,
        BinOp::Neq => Op::CmpMuxNeq,
        other => unreachable!("{other:?} is not a comparison"),
    }
}

impl ExecImage {
    /// Appends one task's (post-fusion) instruction stream to the
    /// arena.
    pub(crate) fn push_task(&mut self, instrs: &[Instr]) -> TaskCode {
        let lo = self.code.len() as u32;
        let mut narrow_only = true;
        for ins in instrs {
            narrow_only &= self.encode(ins);
        }
        TaskCode {
            range: (lo, self.code.len() as u32),
            narrow_only,
        }
    }

    fn push_wide(&mut self, ins: &Instr) -> bool {
        let idx = self.wide.len() as u32;
        self.wide.push(*ins);
        self.code.push(EInstr {
            op: Op::Wide,
            xa: 0,
            xb: 0,
            xd: 0,
            dst: 0,
            a: idx,
            b: 0,
        });
        false
    }

    /// Encodes one instruction; returns whether it was narrow.
    fn encode(&mut self, ins: &Instr) -> bool {
        // A zero-width destination makes the instruction unobservable.
        if dst_of(ins).words == 0 {
            return true;
        }
        match *ins {
            Instr::Copy { dst, a } if narrow(dst) && narrow(a) => {
                self.emit(Op::Copy, dst, a, meta(a), 0, 0);
                true
            }
            Instr::Sext { dst, a } if narrow(dst) && narrow(a) => {
                // The interpreter sign-extends per the meta byte; the
                // semantics force a signed read regardless of the slot.
                self.emit(Op::Sext, dst, a, meta(a) | META_SIGNED, 0, 0);
                true
            }
            Instr::Bin { op, dst, a, b } if narrow(dst) && narrow(a) && narrow(b) => {
                self.code.push(EInstr {
                    op: bin_op(op),
                    xa: meta(a),
                    xb: meta(b),
                    xd: dst.width as u8,
                    dst: pack(dst),
                    a: pack(a),
                    b: pack(b),
                });
                true
            }
            Instr::Un { op, dst, a, imm }
                if narrow(dst) && narrow(a) && !(op == UnOp::Andr && a.words == 0) =>
            {
                // A zero-width andr is vacuously 1; its encoded arm
                // reads the meta width (64 for zero-width operands), so
                // it takes the wide path below, whose mid-level
                // interpreter keeps the reference semantics.
                self.emit(un_op(op), dst, a, meta(a), imm, 0);
                true
            }
            Instr::Mux { dst, sel, t, f }
                if narrow(dst) && narrow(sel) && narrow(t) && narrow(f) =>
            {
                self.code.push(EInstr {
                    op: Op::Mux,
                    xa: 0,
                    xb: meta(t),
                    xd: dst.width as u8,
                    dst: pack(dst),
                    a: pack(sel),
                    b: pack(t),
                });
                self.ext(f, Slot::constant(CONST_ZERO_OFF, 0, false));
                true
            }
            Instr::Cat { dst, a, b } if narrow(dst) && narrow(a) && narrow(b) => {
                self.code.push(EInstr {
                    op: Op::Cat,
                    xa: 0,
                    xb: b.width as u8,
                    xd: dst.width as u8,
                    dst: pack(dst),
                    a: pack(a),
                    b: pack(b),
                });
                true
            }
            Instr::CatImm { dst, a, imm, shift }
                if narrow(dst) && narrow(a) && imm <= u32::MAX as u64 && shift < 64 =>
            {
                self.code.push(EInstr {
                    op: Op::CatImm,
                    xa: 0,
                    xb: shift as u8,
                    xd: dst.width as u8,
                    dst: pack(dst),
                    a: pack(a),
                    b: imm as u32,
                });
                true
            }
            Instr::ReadMem { dst, mem, addr } if narrow(dst) && narrow(addr) => {
                self.emit(Op::ReadMem, dst, addr, 0, mem, 0);
                true
            }
            Instr::CmpMux {
                cmp,
                dst,
                a,
                b,
                t,
                f,
            } if narrow(dst) && narrow(a) && narrow(b) && narrow(t) && narrow(f) => {
                self.code.push(EInstr {
                    op: cmp_mux_op(cmp),
                    xa: meta(a),
                    xb: meta(b),
                    xd: dst.width as u8,
                    dst: pack(dst),
                    a: pack(a),
                    b: pack(b),
                });
                self.ext(t, f);
                true
            }
            ref wide => self.push_wide(wide),
        }
    }

    /// Single-unit emit with `a` operand + immediate `b`.
    fn emit(&mut self, op: Op, dst: Slot, a: Slot, xa: u8, b: u32, xb: u8) {
        self.code.push(EInstr {
            op,
            xa,
            xb,
            xd: dst.width as u8,
            dst: pack(dst),
            a: pack(a),
            b,
        });
    }

    /// Extension unit carrying two extra operands in `a` and `b`.
    fn ext(&mut self, ea: Slot, eb: Slot) {
        self.code.push(EInstr {
            op: Op::Ext,
            xa: meta(ea),
            xb: meta(eb),
            xd: 0,
            dst: 0,
            a: pack(ea),
            b: pack(eb),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_instruction_is_at_most_16_bytes() {
        assert!(std::mem::size_of::<EInstr>() <= 16);
        // And exactly 16 today: four units per cache line.
        assert_eq!(std::mem::size_of::<EInstr>(), 16);
    }

    #[test]
    fn narrow_and_wide_split() {
        let mut img = ExecImage::default();
        let narrow_add = Instr::Bin {
            op: BinOp::Add,
            dst: Slot::state(0, 8, false),
            a: Slot::state(1, 8, false),
            b: Slot::state(2, 8, false),
        };
        let wide_add = Instr::Bin {
            op: BinOp::Add,
            dst: Slot::state(3, 100, false),
            a: Slot::state(5, 100, false),
            b: Slot::state(7, 100, false),
        };
        let tc = img.push_task(&[narrow_add, wide_add]);
        assert!(!tc.narrow_only);
        assert_eq!(tc.range, (0, 2));
        assert_eq!(img.code[0].op, Op::Add);
        assert_eq!(img.code[1].op, Op::Wide);
        assert_eq!(img.wide.len(), 1);
    }

    #[test]
    fn mux_takes_two_units_and_zero_width_drops() {
        let mut img = ExecImage::default();
        let mux = Instr::Mux {
            dst: Slot::state(0, 4, false),
            sel: Slot::state(1, 1, false),
            t: Slot::state(2, 4, false),
            f: Slot::state(3, 4, false),
        };
        let dead = Instr::Copy {
            dst: Slot::state(4, 0, false),
            a: Slot::state(2, 4, false),
        };
        let tc = img.push_task(&[mux, dead]);
        assert!(tc.narrow_only);
        assert_eq!(img.code.len(), 2, "mux + ext, dead copy dropped");
        assert_eq!(img.code[0].op, Op::Mux);
        assert_eq!(img.code[1].op, Op::Ext);
    }

    #[test]
    fn zero_width_operand_reads_const_zero() {
        let mut img = ExecImage::default();
        let cat = Instr::Cat {
            dst: Slot::state(0, 4, false),
            a: Slot::state(1, 4, false),
            b: Slot::scratch(9, 0, false),
        };
        img.push_task(&[cat]);
        let e = img.code[0];
        assert_eq!(e.b >> SPACE_SHIFT, SPACE_CONST);
        assert_eq!(e.b & OFF_MASK, CONST_ZERO_OFF);
    }
}
